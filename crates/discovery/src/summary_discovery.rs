//! Query discovery with a schema summary (Section 5.3).
//!
//! "Query discovery with a schema summary proceeds just as with \[a\] regular
//! schema, except that now the traversal also includes abstract elements in
//! addition to original elements. When an abstract element of interest is
//! visited, it can be expanded, and the enclosed original elements visited.
//! One unit of cost is applied to every abstract element visited as well as
//! to every original element visited that is not in the query intention."
//!
//! Concretely, the user best-first explores the **summary tree** (the
//! summary's nodes connected by its structural links / structural abstract
//! links, BFS-rooted at the schema root). Visiting an abstract element
//! always costs one unit; when its own member set holds unsatisfied
//! targets, the user expands it and explores the group's internal member
//! forest, paying for every visited non-target original element.
//!
//! How much of an expanded group the user must wade through depends on the
//! [`ExpansionModel`]. Under the default [`ExpansionModel::Scan`] the user
//! examines internal siblings one at a time — the same charging rule as
//! schema-level best-first, and the reading that preserves the paper's
//! Figure 8 story (too-small summaries hurt, because expanding an
//! over-abstracted group costs real exploration). The more optimistic
//! [`ExpansionModel::Reveal`] treats expansion as showing the group's
//! internal structure all at once (Figure 2(C)), charging only the internal
//! paths to targets; it yields larger savings (closer to the paper's
//! Table 3 magnitudes) but flattens Figure 8's left edge — the
//! `ablate_costmodel` bench quantifies the difference.

use crate::intention::{QueryIntention, SatisfactionTracker};
use crate::strategy::{euler_intervals, CostModel, DiscoveryCost, VisitMemory};
use schema_summary_core::summary::SummaryNode;
use schema_summary_core::{ElementId, SchemaGraph, SchemaSummary};
use std::collections::{HashMap, VecDeque};

/// How an expanded abstract element is explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpansionModel {
    /// Expansion reveals the whole group subgraph at once (Figure 2(C));
    /// the user pays only for the internal paths leading to targets.
    Reveal,
    /// The user examines internal siblings one at a time, as in
    /// schema-level best-first under [`CostModel::SiblingScan`].
    #[default]
    Scan,
}

/// Cost of discovering `intention` with the help of `summary`, using the
/// default [`ExpansionModel::Scan`] within expanded groups.
pub fn summary_cost(
    graph: &SchemaGraph,
    summary: &SchemaSummary,
    intention: &QueryIntention,
    model: CostModel,
) -> DiscoveryCost {
    summary_cost_with(graph, summary, intention, model, ExpansionModel::default())
}

/// Cost of discovering `intention` with the help of `summary`, with
/// explicit summary-level and expansion cost models (the expansion model is
/// ablated by the `ablate_costmodel` bench).
pub fn summary_cost_with(
    graph: &SchemaGraph,
    summary: &SchemaSummary,
    intention: &QueryIntention,
    model: CostModel,
    expansion: ExpansionModel,
) -> DiscoveryCost {
    summary_cost_session(graph, summary, intention, model, expansion, None)
}

/// Session-aware summary discovery: with a [`VisitMemory`], elements (and
/// abstract groups) already seen in earlier queries of the same session are
/// familiar and free — modeling a user who learns the summary as they use
/// it.
pub fn summary_cost_session(
    graph: &SchemaGraph,
    summary: &SchemaSummary,
    intention: &QueryIntention,
    model: CostModel,
    expansion: ExpansionModel,
    memory: Option<&mut VisitMemory>,
) -> DiscoveryCost {
    let view = SummaryTree::build(graph, summary);
    let mut run = Run {
        graph,
        summary,
        view: &view,
        tracker: SatisfactionTracker::new(intention),
        charge: Charge::with_memory(memory),
        model,
        expansion,
    };
    run.explore();
    DiscoveryCost {
        cost: run.charge.cost,
        visited: run.charge.visited,
        found_all: run.tracker.done(),
    }
}

/// A tree view over the summary's nodes, rooted at the schema root.
struct SummaryTree {
    nodes: Vec<SummaryNode>,
    /// Tree children (indices into `nodes`), in represented-document order.
    children: Vec<Vec<usize>>,
    /// For each tree node, the set of original elements represented by it
    /// and all its tree descendants.
    cover: Vec<Vec<bool>>,
    root: usize,
}

impl SummaryTree {
    fn build(graph: &SchemaGraph, summary: &SchemaSummary) -> Self {
        // Collect nodes: kept originals + abstracts.
        let mut nodes: Vec<SummaryNode> = summary
            .kept()
            .iter()
            .map(|&e| SummaryNode::Original(e))
            .collect();
        nodes.extend(summary.abstract_ids().map(SummaryNode::Abstract));
        let index: HashMap<SummaryNode, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();

        // Structural adjacency between summary nodes.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for &(p, c) in summary.kept_structural() {
            adj[index[&SummaryNode::Original(p)]].push(index[&SummaryNode::Original(c)]);
        }
        for l in summary.abstract_links() {
            if l.has_structural() {
                adj[index[&l.from]].push(index[&l.to]);
            }
        }

        // Document-order sort key: the smallest element id a node represents.
        let min_repr = |n: SummaryNode| -> u32 {
            match n {
                SummaryNode::Original(e) => e.0,
                SummaryNode::Abstract(aid) => summary.abstracts()[aid.index()]
                    .members
                    .iter()
                    .map(|m| m.0)
                    .min()
                    .unwrap_or(u32::MAX),
            }
        };
        for list in &mut adj {
            list.sort_by_key(|&i| min_repr(nodes[i]));
            list.dedup();
        }

        // BFS tree from the root node (abstract structural links can form
        // cycles between groups; first discovery wins).
        let root = index[&SummaryNode::Original(summary.root())];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut seen = vec![false; nodes.len()];
        seen[root] = true;
        let mut queue = VecDeque::from([root]);
        let mut order = vec![root];
        while let Some(n) = queue.pop_front() {
            for &c in &adj[n] {
                if !seen[c] {
                    seen[c] = true;
                    children[n].push(c);
                    queue.push_back(c);
                    order.push(c);
                }
            }
        }

        // Coverage sets, accumulated bottom-up in reverse BFS order.
        let ne = graph.len();
        let mut cover: Vec<Vec<bool>> = vec![vec![false; ne]; nodes.len()];
        for &n in order.iter().rev() {
            match nodes[n] {
                SummaryNode::Original(e) => cover[n][e.index()] = true,
                SummaryNode::Abstract(aid) => {
                    for &m in &summary.abstracts()[aid.index()].members {
                        cover[n][m.index()] = true;
                    }
                }
            }
            // Children were processed already (reverse BFS order).
            let kids = children[n].clone();
            for c in kids {
                let (src, dst) = if c < n {
                    let (lo, hi) = cover.split_at_mut(n);
                    (&lo[c], &mut hi[0])
                } else {
                    let (lo, hi) = cover.split_at_mut(c);
                    (&hi[0], &mut lo[n])
                };
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d |= s;
                }
            }
        }

        SummaryTree {
            nodes,
            children,
            cover,
            root,
        }
    }
}

/// Mutable cost/visit counters shared between the summary walk and group
/// expansions (also used by multi-level drill-down). With a
/// [`VisitMemory`] attached, only *first* visits of non-target elements
/// are charged (session mode: the user remembers what they have seen).
#[derive(Debug, Default)]
pub(crate) struct Charge<'m> {
    pub cost: usize,
    pub visited: usize,
    pub memory: Option<&'m mut VisitMemory>,
}

impl<'m> Charge<'m> {
    pub(crate) fn with_memory(memory: Option<&'m mut VisitMemory>) -> Self {
        Charge {
            cost: 0,
            visited: 0,
            memory,
        }
    }

    /// Visit an original element: free if it is a target (or, in session
    /// mode, already familiar).
    pub(crate) fn visit_original(
        &mut self,
        e: ElementId,
        tracker: &mut SatisfactionTracker<'_>,
    ) {
        self.visited += 1;
        let is_target = tracker.visit(e);
        let was_seen = match &mut self.memory {
            Some(m) => m.record(e),
            None => false,
        };
        if !is_target && !was_seen {
            self.cost += 1;
        }
    }

    /// Visit an abstract element (always one unit in §5.3; in session mode
    /// only the first encounter of the group — keyed by its representative
    /// — is charged).
    pub(crate) fn visit_abstract(&mut self, representative: ElementId) {
        self.visited += 1;
        let was_seen = match &mut self.memory {
            Some(m) => m.record(representative),
            None => false,
        };
        if !was_seen {
            self.cost += 1;
        }
    }
}

/// Best-first exploration of an expanded group's internal member forest
/// (shared by flat summaries and multi-level drill-down).
pub(crate) fn explore_group(
    graph: &SchemaGraph,
    members: &[ElementId],
    tracker: &mut SatisfactionTracker<'_>,
    expansion: ExpansionModel,
    charge: &mut Charge,
) {
    let mut in_group = vec![false; graph.len()];
    for &m in members {
        in_group[m.index()] = true;
    }
    let eff = match expansion {
        ExpansionModel::Reveal => CostModel::PathOnly,
        ExpansionModel::Scan => CostModel::SiblingScan,
    };
    let intervals = euler_intervals(graph);
    // Internal roots: members whose structural parent is outside the group.
    let mut roots: Vec<ElementId> = members
        .iter()
        .copied()
        .filter(|&m| graph.parent(m).is_none_or(|p| !in_group[p.index()]))
        .collect();
    roots.sort_unstable();

    let useful = |tracker: &SatisfactionTracker<'_>, m: ElementId| {
        let (s, t) = intervals[m.index()];
        tracker.any_unsatisfied(|tgt| {
            let (es, _) = intervals[tgt.index()];
            in_group[tgt.index()] && s <= es && es < t
        })
    };
    let group_has_unsatisfied =
        |tracker: &SatisfactionTracker<'_>| tracker.any_unsatisfied(|t| in_group[t.index()]);

    for &r in &roots {
        if !group_has_unsatisfied(tracker) {
            break;
        }
        let r_useful = useful(tracker, r);
        if eff == CostModel::PathOnly && !r_useful {
            continue;
        }
        charge.visit_original(r, tracker);
        if !r_useful {
            continue;
        }
        let mut stack: Vec<(ElementId, usize)> = vec![(r, 0)];
        while !stack.is_empty() {
            if tracker.done() {
                return;
            }
            let top = stack.len() - 1;
            let (node, next_child) = stack[top];
            if !useful(tracker, node) {
                stack.pop();
                continue;
            }
            let kids: Vec<ElementId> = graph
                .children(node)
                .iter()
                .copied()
                .filter(|c| in_group[c.index()])
                .collect();
            if next_child >= kids.len() {
                stack.pop();
                continue;
            }
            let child = kids[next_child];
            stack[top].1 += 1;
            let child_useful = useful(tracker, child);
            match eff {
                CostModel::SiblingScan => {
                    charge.visit_original(child, tracker);
                    if child_useful {
                        stack.push((child, 0));
                    }
                }
                CostModel::PathOnly => {
                    if child_useful {
                        charge.visit_original(child, tracker);
                        stack.push((child, 0));
                    }
                }
            }
        }
    }
}

struct Run<'a, 'm> {
    graph: &'a SchemaGraph,
    summary: &'a SchemaSummary,
    view: &'a SummaryTree,
    tracker: SatisfactionTracker<'a>,
    charge: Charge<'m>,
    model: CostModel,
    expansion: ExpansionModel,
}

impl<'a, 'm> Run<'a, 'm> {
    fn explore(&mut self) {
        self.visit_node(self.view.root);
        let mut stack: Vec<(usize, usize)> = vec![(self.view.root, 0)];
        while !stack.is_empty() {
            if self.tracker.done() {
                break;
            }
            let top = stack.len() - 1;
            let (node, next_child) = stack[top];
            if !self.node_useful(node) {
                stack.pop();
                continue;
            }
            let kids = &self.view.children[node];
            if next_child >= kids.len() {
                stack.pop();
                continue;
            }
            let child = kids[next_child];
            stack[top].1 += 1;
            let useful = self.node_useful(child);
            match self.model {
                CostModel::SiblingScan => {
                    self.visit_node(child);
                    if useful && !self.tracker.done() {
                        stack.push((child, 0));
                    }
                }
                CostModel::PathOnly => {
                    if useful {
                        self.visit_node(child);
                        if !self.tracker.done() {
                            stack.push((child, 0));
                        }
                    }
                }
            }
        }
    }

    /// Whether any unsatisfied target lies under `node` in the summary tree
    /// (in terms of represented original elements).
    fn node_useful(&self, node: usize) -> bool {
        let cover = &self.view.cover[node];
        self.tracker.any_unsatisfied(|t| cover[t.index()])
    }

    /// Visit a summary node: abstract elements always cost one unit;
    /// original elements cost one unit unless they are targets. Visiting an
    /// abstract element whose own members hold unsatisfied targets expands
    /// it on the spot.
    fn visit_node(&mut self, node: usize) {
        match self.view.nodes[node] {
            SummaryNode::Original(e) => {
                self.charge.visit_original(e, &mut self.tracker);
            }
            SummaryNode::Abstract(aid) => {
                let rep = self.summary.abstracts()[aid.index()].representative;
                self.charge.visit_abstract(rep);
                let members = &self.summary.abstracts()[aid.index()].members;
                let mut in_group = vec![false; self.graph.len()];
                for &m in members {
                    in_group[m.index()] = true;
                }
                if self.tracker.any_unsatisfied(|t| in_group[t.index()]) {
                    explore_group(
                        self.graph,
                        members,
                        &mut self.tracker,
                        self.expansion,
                        &mut self.charge,
                    );
                }
            }
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::best_first_cost;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::types::SchemaType;

    /// site -> {people -> person* -> {pname, profile -> interest*},
    ///          auctions -> auction* -> {bidder*, seller},
    ///          regions -> asia -> item* -> iname}
    fn graph() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
        b.add_child(person, "pname", SchemaType::simple_str()).unwrap();
        let profile = b.add_child(person, "profile", SchemaType::rcd()).unwrap();
        b.add_child(profile, "interest", SchemaType::set_of_rcd()).unwrap();
        let auctions = b.add_child(b.root(), "auctions", SchemaType::rcd()).unwrap();
        let auction = b.add_child(auctions, "auction", SchemaType::set_of_rcd()).unwrap();
        let bidder = b.add_child(auction, "bidder", SchemaType::set_of_rcd()).unwrap();
        b.add_child(auction, "seller", SchemaType::rcd()).unwrap();
        // Filler sections a blind best-first scan must wade through but a
        // summary folds away (they sit between auctions and regions in
        // document order).
        for i in 0..8 {
            b.add_child(b.root(), format!("meta{i}"), SchemaType::simple_str())
                .unwrap();
        }
        let regions = b.add_child(b.root(), "regions", SchemaType::rcd()).unwrap();
        let asia = b.add_child(regions, "asia", SchemaType::rcd()).unwrap();
        let item = b.add_child(asia, "item", SchemaType::set_of_rcd()).unwrap();
        b.add_child(item, "iname", SchemaType::simple_str()).unwrap();
        b.add_value_link(bidder, person).unwrap();
        b.build().unwrap()
    }

    /// Summary with three groups: person-ish, auction-ish, item-ish.
    fn summary(g: &SchemaGraph) -> SchemaSummary {
        let find = |l: &str| g.find_unique(l).unwrap();
        let groups = vec![
            (
                find("person"),
                vec![find("people"), find("person"), find("pname"), find("profile"), find("interest")],
            ),
            (
                find("auction"),
                {
                    let mut m =
                        vec![find("auctions"), find("auction"), find("bidder"), find("seller")];
                    m.extend((0..8).map(|i| find(&format!("meta{i}"))));
                    m
                },
            ),
            (
                find("item"),
                vec![find("regions"), find("asia"), find("item"), find("iname")],
            ),
        ];
        SchemaSummary::from_grouping(g, groups, vec![]).unwrap()
    }

    #[test]
    fn summary_discovery_finds_everything() {
        let g = graph();
        let s = summary(&g);
        for labels in [vec!["pname"], vec!["interest"], vec!["bidder", "iname"]] {
            let q = QueryIntention::from_labels(&g, "q", &labels).unwrap();
            let r = summary_cost(&g, &s, &q, CostModel::SiblingScan);
            assert!(r.found_all, "{labels:?}");
        }
    }

    #[test]
    fn summary_cost_hand_computed() {
        let g = graph();
        let s = summary(&g);
        // Looking for pname: root site (1, non-target) → scan summary
        // children in document order: person-group is first (min element id
        // = people). Visit abstract person (1), members contain pname →
        // expand: internal root 'people' (1), descend: person (1), children
        // scan: pname (free, found). Total = 4.
        let q = QueryIntention::from_labels(&g, "q", &["pname"]).unwrap();
        let r = summary_cost(&g, &s, &q, CostModel::SiblingScan);
        assert_eq!(r.cost, 4);
        assert!(r.found_all);
    }

    #[test]
    fn summary_beats_best_first_for_deep_targets() {
        let g = graph();
        let s = summary(&g);
        // interest is deep; summary jumps straight into the person group.
        let q = QueryIntention::from_labels(&g, "q", &["interest", "iname"]).unwrap();
        let with = summary_cost(&g, &s, &q, CostModel::SiblingScan);
        let without = best_first_cost(&g, &q, CostModel::SiblingScan);
        assert!(
            with.cost <= without.cost,
            "summary {} vs best-first {}",
            with.cost,
            without.cost
        );
    }

    #[test]
    fn abstract_visits_always_cost() {
        let g = graph();
        let s = summary(&g);
        // Target in the last group: the user must pass over / examine
        // earlier abstract elements; each costs one unit.
        let q = QueryIntention::from_labels(&g, "q", &["iname"]).unwrap();
        let r = summary_cost(&g, &s, &q, CostModel::SiblingScan);
        // site(1) + person-group(1, scanned) + auction-group(1, scanned) +
        // item-group(1) + expansion: regions(1), asia(1), item(1), iname(0).
        assert_eq!(r.cost, 7);
    }

    #[test]
    fn path_only_skips_useless_groups() {
        let g = graph();
        let s = summary(&g);
        let q = QueryIntention::from_labels(&g, "q", &["iname"]).unwrap();
        let scan = summary_cost(&g, &s, &q, CostModel::SiblingScan);
        let path = summary_cost(&g, &s, &q, CostModel::PathOnly);
        assert!(path.cost < scan.cost);
        assert!(path.found_all);
    }

    #[test]
    fn expanded_summary_keeps_working() {
        let g = graph();
        let s = summary(&g);
        // Expand the person group; its members become kept originals.
        let aid = s
            .abstract_ids()
            .find(|&a| g.label(s.abstracts()[a.index()].representative) == "person")
            .unwrap();
        let e = s.expand(&g, aid).unwrap();
        let q = QueryIntention::from_labels(&g, "q", &["pname", "bidder"]).unwrap();
        let r = summary_cost(&g, &e, &q, CostModel::SiblingScan);
        assert!(r.found_all);
    }

    #[test]
    fn targets_in_multiple_groups_all_found() {
        let g = graph();
        let s = summary(&g);
        let q =
            QueryIntention::from_labels(&g, "q", &["pname", "seller", "iname"]).unwrap();
        let r = summary_cost(&g, &s, &q, CostModel::SiblingScan);
        assert!(r.found_all);
        assert!(r.cost >= 3); // at least the three abstract visits
    }
}
