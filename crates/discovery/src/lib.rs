//! Query discovery cost (Section 5.3) and summary-agreement metrics
//! (Section 5.2).
//!
//! The paper evaluates summaries objectively by modeling **query
//! discovery**: a user with an implicit *query intention* (a set of schema
//! elements whose locations she does not know) explores the schema — or a
//! schema summary — one element at a time, paying one unit for every
//! visited element that is not part of her intention (and for every
//! abstract element). This crate implements:
//!
//! * [`intention::QueryIntention`] — intentions as target groups
//!   (label-based lookups resolve to "any element with this label");
//! * [`strategy`] — the three schema-exploration baselines: depth-first
//!   pre-order, breadth-first pre-order, and oracle-guided best-first;
//! * [`summary_discovery`] — best-first discovery over a schema summary
//!   with abstract-element expansion;
//! * [`agreement`] — the expert-comparison metrics of Section 5.2
//!   (pairwise agreement, consensus, all-experts agreement);
//! * [`multilevel`] — drill-down discovery over multi-level summaries
//!   (Section 2's extension);
//! * [`report`] — workload-level aggregation (mean / median / p95);
//! * [`session`] — learning-curve replays where the user remembers what
//!   they have already explored (relaxing §5.3's fresh-user assumption).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agreement;
pub mod intention;
pub mod multilevel;
pub mod report;
pub mod session;
pub mod strategy;
pub mod summary_discovery;

pub use intention::QueryIntention;
pub use strategy::{
    best_first_cost, best_first_cost_with_memory, breadth_first_cost, depth_first_cost,
    linear_scan_cost, CostModel, DiscoveryCost, VisitMemory,
};
pub use multilevel::multilevel_cost;
pub use report::WorkloadReport;
pub use session::{session_best_first, session_with_summary, SessionCurve};
pub use summary_discovery::{summary_cost, summary_cost_session, summary_cost_with, ExpansionModel};
