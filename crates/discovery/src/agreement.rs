//! Expert-comparison metrics (Section 5.2).
//!
//! "The agreement between two schema summaries is defined as the percentage
//! of the number of elements selected by both the user and the system over
//! the summary size." A *consensus* summary retains only elements selected
//! by a majority of the experts.

use schema_summary_core::ElementId;
use std::collections::BTreeSet;

/// Pairwise agreement between two selections of (nominally) the same size:
/// `|a ∩ b| / max(|a|, |b|)`.
pub fn agreement(a: &[ElementId], b: &[ElementId]) -> f64 {
    let denom = a.len().max(b.len());
    if denom == 0 {
        return 1.0;
    }
    let sa: BTreeSet<_> = a.iter().copied().collect();
    let common = b.iter().filter(|e| sa.contains(e)).count();
    common as f64 / denom as f64
}

/// Elements selected by at least `majority` of the given selections, in
/// element-id order (the paper's consensus summary with `majority = 2` of
/// three experts).
pub fn consensus(selections: &[Vec<ElementId>], majority: usize) -> Vec<ElementId> {
    let mut counts: std::collections::BTreeMap<ElementId, usize> = Default::default();
    for sel in selections {
        for &e in sel.iter().collect::<BTreeSet<_>>() {
            *counts.entry(e).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .filter(|&(_, c)| c >= majority)
        .map(|(e, _)| e)
        .collect()
}

/// Fraction of the nominal summary size on which **all** selections agree
/// (the paper's "User Agreement" row).
pub fn unanimous_agreement(selections: &[Vec<ElementId>]) -> f64 {
    let Some(first) = selections.first() else {
        return 1.0;
    };
    let size = selections.iter().map(Vec::len).max().unwrap_or(0);
    if size == 0 {
        return 1.0;
    }
    let mut common: BTreeSet<ElementId> = first.iter().copied().collect();
    for sel in &selections[1..] {
        let s: BTreeSet<_> = sel.iter().copied().collect();
        common.retain(|e| s.contains(e));
    }
    common.len() as f64 / size as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ElementId> {
        v.iter().map(|&i| ElementId(i)).collect()
    }

    #[test]
    fn agreement_basics() {
        assert_eq!(agreement(&ids(&[1, 2, 3]), &ids(&[1, 2, 3])), 1.0);
        assert_eq!(agreement(&ids(&[1, 2, 3]), &ids(&[4, 5, 6])), 0.0);
        assert!((agreement(&ids(&[1, 2, 3, 4, 5]), &ids(&[1, 2, 3, 7, 8])) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn agreement_is_symmetric() {
        let a = ids(&[1, 2, 3, 4]);
        let b = ids(&[3, 4, 5, 6]);
        assert_eq!(agreement(&a, &b), agreement(&b, &a));
    }

    #[test]
    fn agreement_with_unequal_sizes_uses_larger() {
        assert!((agreement(&ids(&[1, 2]), &ids(&[1, 2, 3, 4])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_selections_agree_trivially() {
        assert_eq!(agreement(&[], &[]), 1.0);
    }

    #[test]
    fn consensus_majority() {
        let sels = vec![ids(&[1, 2, 3]), ids(&[2, 3, 4]), ids(&[3, 4, 5])];
        assert_eq!(consensus(&sels, 2), ids(&[2, 3, 4]));
        assert_eq!(consensus(&sels, 3), ids(&[3]));
        assert_eq!(consensus(&sels, 1), ids(&[1, 2, 3, 4, 5]));
    }

    #[test]
    fn unanimous_agreement_matches_paper_semantics() {
        // Three experts, size 5, all share exactly 3 elements → 60%.
        let sels = vec![
            ids(&[1, 2, 3, 4, 5]),
            ids(&[1, 2, 3, 6, 7]),
            ids(&[1, 2, 3, 8, 9]),
        ];
        assert!((unanimous_agreement(&sels) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn unanimous_agreement_edge_cases() {
        assert_eq!(unanimous_agreement(&[]), 1.0);
        assert_eq!(unanimous_agreement(&[ids(&[1, 2])]), 1.0);
    }
}
