//! User sessions: a sequence of queries by one user who *learns* the
//! schema as they explore it.
//!
//! The paper's cost metric prices each query in isolation — a fresh user
//! every time. §5.3's limitations discussion acknowledges real users
//! behave differently; the sharpest difference is memory: an element
//! visited while answering query 3 is familiar during query 7. This module
//! replays a workload with cross-query [`VisitMemory`], yielding a
//! learning curve. Two findings fall out (see `repro extensions`):
//! summaries help most at the start of a session (when nothing is
//! familiar), and the per-query cost of both strategies decays toward the
//! residual cost of genuinely new schema regions.

use crate::intention::QueryIntention;
use crate::strategy::{best_first_cost_with_memory, CostModel, VisitMemory};
use crate::summary_discovery::{summary_cost_session, ExpansionModel};
use schema_summary_core::{SchemaGraph, SchemaSummary};
use serde::{Deserialize, Serialize};

/// Per-query costs of one session replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCurve {
    /// `(query name, cost)` in replay order.
    pub per_query: Vec<(String, usize)>,
    /// Number of schema elements familiar at the end.
    pub elements_learned: usize,
}

impl SessionCurve {
    /// Total cost across the session.
    pub fn total(&self) -> usize {
        self.per_query.iter().map(|&(_, c)| c).sum()
    }

    /// Mean cost over the first `n` queries (clamped to the session).
    pub fn mean_of_first(&self, n: usize) -> f64 {
        let n = n.min(self.per_query.len()).max(1);
        self.per_query[..n].iter().map(|&(_, c)| c).sum::<usize>() as f64 / n as f64
    }

    /// Mean cost over the last `n` queries (clamped).
    pub fn mean_of_last(&self, n: usize) -> f64 {
        let len = self.per_query.len();
        let n = n.min(len).max(1);
        self.per_query[len - n..].iter().map(|&(_, c)| c).sum::<usize>() as f64 / n as f64
    }
}

/// Replay `queries` best-first without a summary, accumulating familiarity.
pub fn session_best_first(
    graph: &SchemaGraph,
    queries: &[QueryIntention],
    model: CostModel,
) -> SessionCurve {
    let mut memory = VisitMemory::new(graph.len());
    let per_query = queries
        .iter()
        .map(|q| {
            let r = best_first_cost_with_memory(graph, q, model, &mut memory);
            debug_assert!(r.found_all);
            (q.name.clone(), r.cost)
        })
        .collect();
    SessionCurve {
        per_query,
        elements_learned: memory.count(),
    }
}

/// Replay `queries` with a summary, accumulating familiarity (both over
/// original elements and over abstract groups).
pub fn session_with_summary(
    graph: &SchemaGraph,
    summary: &SchemaSummary,
    queries: &[QueryIntention],
    model: CostModel,
    expansion: ExpansionModel,
) -> SessionCurve {
    let mut memory = VisitMemory::new(graph.len());
    let per_query = queries
        .iter()
        .map(|q| {
            let r = summary_cost_session(graph, summary, q, model, expansion, Some(&mut memory));
            debug_assert!(r.found_all);
            (q.name.clone(), r.cost)
        })
        .collect();
    SessionCurve {
        per_query,
        elements_learned: memory.count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::best_first_cost;
    use schema_summary_algo::{Algorithm, Summarizer};
    use schema_summary_core::{SchemaGraphBuilder, SchemaStats, SchemaType};

    fn fixture() -> (SchemaGraph, SchemaStats, Vec<QueryIntention>) {
        let mut b = SchemaGraphBuilder::new("db");
        for i in 0..5 {
            let sec = b
                .add_child(b.root(), format!("s{i}"), SchemaType::rcd())
                .unwrap();
            let ent = b
                .add_child(sec, format!("e{i}"), SchemaType::set_of_rcd())
                .unwrap();
            b.add_child(ent, format!("f{i}"), SchemaType::simple_str()).unwrap();
        }
        let g = b.build().unwrap();
        let s = SchemaStats::uniform(&g);
        // Repeated interest in section 0, then excursions.
        let qs = ["f0", "f0", "f1", "f0", "f2", "f1", "f3"]
            .iter()
            .enumerate()
            .map(|(i, l)| QueryIntention::from_labels(&g, format!("q{i}"), &[l]).unwrap())
            .collect();
        (g, s, qs)
    }

    #[test]
    fn repeat_queries_become_free() {
        let (g, _, qs) = fixture();
        let curve = session_best_first(&g, &qs, CostModel::SiblingScan);
        // q0 pays; q1 (same target) is fully familiar.
        assert!(curve.per_query[0].1 > 0);
        assert_eq!(curve.per_query[1].1, 0);
        // Returning to f0 later (q3) is also free.
        assert_eq!(curve.per_query[3].1, 0);
        assert!(curve.elements_learned > 0);
    }

    #[test]
    fn session_total_never_exceeds_memoryless_total() {
        let (g, _, qs) = fixture();
        let session = session_best_first(&g, &qs, CostModel::SiblingScan);
        let memoryless: usize = qs
            .iter()
            .map(|q| best_first_cost(&g, q, CostModel::SiblingScan).cost)
            .sum();
        assert!(session.total() <= memoryless);
    }

    #[test]
    fn learning_curve_decays() {
        let (g, _, qs) = fixture();
        let curve = session_best_first(&g, &qs, CostModel::SiblingScan);
        assert!(curve.mean_of_first(2) >= curve.mean_of_last(2));
    }

    #[test]
    fn summary_sessions_complete_and_learn() {
        let (g, s, qs) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let summary = sum.summarize(3, Algorithm::Balance).unwrap();
        let curve = session_with_summary(
            &g,
            &summary,
            &qs,
            CostModel::SiblingScan,
            ExpansionModel::Scan,
        );
        assert_eq!(curve.per_query.len(), qs.len());
        // Repeat of q0 is free with a summary too.
        assert_eq!(curve.per_query[1].1, 0);
        assert!(curve.elements_learned > 0);
    }

    #[test]
    fn first_query_matches_memoryless_cost() {
        let (g, s, qs) = fixture();
        let curve = session_best_first(&g, &qs, CostModel::SiblingScan);
        let fresh = best_first_cost(&g, &qs[0], CostModel::SiblingScan);
        assert_eq!(curve.per_query[0].1, fresh.cost);
        let _ = s;
    }
}
