//! Workload-level cost reports: aggregate a discovery strategy over a
//! query workload with the statistics the evaluation tables need.

use crate::intention::QueryIntention;
use crate::strategy::DiscoveryCost;
use serde::{Deserialize, Serialize};

/// Aggregated discovery costs of one strategy over one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Strategy label (e.g. `"best-first"`).
    pub strategy: String,
    /// Per-query `(query name, cost)` in workload order.
    pub per_query: Vec<(String, usize)>,
    /// Mean cost.
    pub mean: f64,
    /// Median cost.
    pub median: f64,
    /// 95th-percentile cost (nearest-rank).
    pub p95: usize,
    /// Maximum cost and the query that incurred it.
    pub worst: (String, usize),
    /// Whether every query found all its targets.
    pub complete: bool,
}

impl WorkloadReport {
    /// Run `strategy_fn` over `queries` and aggregate.
    pub fn run<F>(
        strategy: impl Into<String>,
        queries: &[QueryIntention],
        mut strategy_fn: F,
    ) -> Self
    where
        F: FnMut(&QueryIntention) -> DiscoveryCost,
    {
        assert!(!queries.is_empty(), "workload must be non-empty");
        let mut per_query = Vec::with_capacity(queries.len());
        let mut complete = true;
        for q in queries {
            let r = strategy_fn(q);
            complete &= r.found_all;
            per_query.push((q.name.clone(), r.cost));
        }
        let mut costs: Vec<usize> = per_query.iter().map(|&(_, c)| c).collect();
        costs.sort_unstable();
        let n = costs.len();
        let mean = costs.iter().sum::<usize>() as f64 / n as f64;
        let median = if n % 2 == 1 {
            costs[n / 2] as f64
        } else {
            (costs[n / 2 - 1] + costs[n / 2]) as f64 / 2.0
        };
        let p95 = costs[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
        let worst = per_query
            .iter()
            .max_by_key(|&&(_, c)| c)
            .cloned()
            .expect("non-empty");
        WorkloadReport {
            strategy: strategy.into(),
            per_query,
            mean,
            median,
            p95,
            worst,
            complete,
        }
    }

    /// Percentage saving of this report relative to `baseline` (by mean).
    pub fn saving_vs(&self, baseline: &WorkloadReport) -> f64 {
        if baseline.mean <= 0.0 {
            return 0.0;
        }
        (1.0 - self.mean / baseline.mean) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{best_first_cost, depth_first_cost, CostModel};
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    fn setup() -> (schema_summary_core::SchemaGraph, Vec<QueryIntention>) {
        let mut b = SchemaGraphBuilder::new("db");
        for i in 0..4 {
            let s = b
                .add_child(b.root(), format!("s{i}"), SchemaType::rcd())
                .unwrap();
            b.add_child(s, format!("f{i}"), SchemaType::simple_str()).unwrap();
        }
        let g = b.build().unwrap();
        let queries = (0..4)
            .map(|i| QueryIntention::from_labels(&g, format!("q{i}"), &[&format!("f{i}")]).unwrap())
            .collect();
        (g, queries)
    }

    #[test]
    fn aggregates_are_consistent() {
        let (g, queries) = setup();
        let r = WorkloadReport::run("df", &queries, |q| depth_first_cost(&g, q));
        assert_eq!(r.per_query.len(), 4);
        assert!(r.complete);
        assert!(r.mean > 0.0);
        assert!(r.median > 0.0);
        assert!(r.p95 >= r.median as usize);
        assert_eq!(r.worst.1, r.p95.max(r.worst.1));
        // DF costs here: f0 at position 3 (root,s0,f0 → cost 2), f3 → cost 8.
        assert_eq!(r.worst.0, "q3");
    }

    #[test]
    fn saving_comparison() {
        let (g, queries) = setup();
        let df = WorkloadReport::run("df", &queries, |q| depth_first_cost(&g, q));
        let best = WorkloadReport::run("best", &queries, |q| {
            best_first_cost(&g, q, CostModel::SiblingScan)
        });
        assert!(best.mean <= df.mean);
        assert!(best.saving_vs(&df) >= 0.0);
        assert_eq!(df.saving_vs(&df), 0.0);
    }

    #[test]
    fn median_of_even_sets() {
        let (g, queries) = setup();
        let r = WorkloadReport::run("df", &queries, |q| depth_first_cost(&g, q));
        let mut costs: Vec<usize> = r.per_query.iter().map(|&(_, c)| c).collect();
        costs.sort_unstable();
        assert_eq!(r.median, (costs[1] + costs[2]) as f64 / 2.0);
    }

    #[test]
    fn serde_roundtrip() {
        let (g, queries) = setup();
        let r = WorkloadReport::run("df", &queries, |q| depth_first_cost(&g, q));
        let json = serde_json::to_string(&r).unwrap();
        let back: WorkloadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_workload_panics() {
        let (g, _) = setup();
        let _ = WorkloadReport::run("df", &[], |q| depth_first_cost(&g, q));
    }
}
