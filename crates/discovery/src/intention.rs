//! Query intentions: the schema elements a user wants to locate.
//!
//! An intention is a list of **target groups**. Each group is a set of
//! schema elements any one of which satisfies that component of the query —
//! this models label-level intentions on schemas where the same label
//! occurs in several structural contexts (e.g. XMark's `item` element under
//! each of the six regions: a user looking for "item" is satisfied by
//! finding any of them). Path-based construction pins a group to a single
//! element for queries where the context matters (`person/name` vs
//! `item/name`).

use schema_summary_core::{ElementId, SchemaError, SchemaGraph};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A user's query intention.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryIntention {
    /// Identifier for reports (e.g. `"xmark-q1"`).
    pub name: String,
    /// Target groups; the query is discovered when every group has at
    /// least one visited element.
    pub targets: Vec<BTreeSet<ElementId>>,
}

impl QueryIntention {
    /// Build an intention from explicit single-element targets.
    pub fn from_elements(name: impl Into<String>, elements: &[ElementId]) -> Self {
        QueryIntention {
            name: name.into(),
            targets: elements
                .iter()
                .map(|&e| BTreeSet::from([e]))
                .collect(),
        }
    }

    /// Build an intention from labels; each label resolves to the group of
    /// **all** elements carrying it.
    pub fn from_labels(
        graph: &SchemaGraph,
        name: impl Into<String>,
        labels: &[&str],
    ) -> Result<Self, SchemaError> {
        let mut targets = Vec::with_capacity(labels.len());
        for &label in labels {
            let matches = graph.find_by_label(label);
            if matches.is_empty() {
                return Err(SchemaError::Invalid(format!(
                    "intention label '{label}' matches no schema element"
                )));
            }
            targets.push(matches.into_iter().collect());
        }
        Ok(QueryIntention {
            name: name.into(),
            targets,
        })
    }

    /// Build an intention from slash-separated label paths (each path pins
    /// one element).
    pub fn from_paths(
        graph: &SchemaGraph,
        name: impl Into<String>,
        paths: &[&str],
    ) -> Result<Self, SchemaError> {
        let mut elements = Vec::with_capacity(paths.len());
        for &p in paths {
            let e = graph
                .find_by_path(p)
                .ok_or_else(|| SchemaError::Invalid(format!("intention path '{p}' not found")))?;
            elements.push(e);
        }
        Ok(Self::from_elements(name, &elements))
    }

    /// Number of target groups — the paper's "query intention size"
    /// (Table 1 reports its average per workload).
    pub fn size(&self) -> usize {
        self.targets.len()
    }

    /// Whether `e` belongs to any target group (such visits are free).
    pub fn is_target(&self, e: ElementId) -> bool {
        self.targets.iter().any(|g| g.contains(&e))
    }

    /// Every element appearing in some target group.
    pub fn all_elements(&self) -> BTreeSet<ElementId> {
        self.targets.iter().flatten().copied().collect()
    }
}

/// Tracks which target groups are satisfied during one discovery run.
#[derive(Debug, Clone)]
pub struct SatisfactionTracker<'a> {
    intention: &'a QueryIntention,
    satisfied: Vec<bool>,
    remaining: usize,
}

impl<'a> SatisfactionTracker<'a> {
    /// Start tracking `intention` with nothing satisfied.
    pub fn new(intention: &'a QueryIntention) -> Self {
        SatisfactionTracker {
            intention,
            satisfied: vec![false; intention.targets.len()],
            remaining: intention.targets.len(),
        }
    }

    /// Record a visit to `e`; marks every group containing it satisfied.
    /// Returns `true` if `e` is a target member (the visit is free).
    pub fn visit(&mut self, e: ElementId) -> bool {
        let mut is_target = false;
        for (i, group) in self.intention.targets.iter().enumerate() {
            if group.contains(&e) {
                is_target = true;
                if !self.satisfied[i] {
                    self.satisfied[i] = true;
                    self.remaining -= 1;
                }
            }
        }
        is_target
    }

    /// Whether every target group is satisfied.
    pub fn done(&self) -> bool {
        self.remaining == 0
    }

    /// Whether any **unsatisfied** group intersects `set`-membership given
    /// by the predicate.
    pub fn any_unsatisfied<F: Fn(ElementId) -> bool>(&self, contains: F) -> bool {
        self.intention
            .targets
            .iter()
            .zip(&self.satisfied)
            .filter(|&(_, &s)| !s)
            .any(|(group, _)| group.iter().any(|&e| contains(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::types::SchemaType;

    fn graph() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("site");
        let r1 = b.add_child(b.root(), "asia", SchemaType::rcd()).unwrap();
        let r2 = b.add_child(b.root(), "europe", SchemaType::rcd()).unwrap();
        let i1 = b.add_child(r1, "item", SchemaType::set_of_rcd()).unwrap();
        let i2 = b.add_child(r2, "item", SchemaType::set_of_rcd()).unwrap();
        b.add_child(i1, "name", SchemaType::simple_str()).unwrap();
        b.add_child(i2, "name", SchemaType::simple_str()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn label_groups_collect_all_matches() {
        let g = graph();
        let q = QueryIntention::from_labels(&g, "q", &["item", "name"]).unwrap();
        assert_eq!(q.size(), 2);
        assert_eq!(q.targets[0].len(), 2);
        assert_eq!(q.targets[1].len(), 2);
    }

    #[test]
    fn unknown_label_is_error() {
        let g = graph();
        assert!(QueryIntention::from_labels(&g, "q", &["nope"]).is_err());
    }

    #[test]
    fn paths_pin_single_elements() {
        let g = graph();
        let q = QueryIntention::from_paths(&g, "q", &["site/asia/item"]).unwrap();
        assert_eq!(q.size(), 1);
        assert_eq!(q.targets[0].len(), 1);
        assert!(QueryIntention::from_paths(&g, "q", &["site/mars/item"]).is_err());
    }

    #[test]
    fn tracker_satisfies_groups_disjunctively() {
        let g = graph();
        let q = QueryIntention::from_labels(&g, "q", &["item"]).unwrap();
        let items = g.find_by_label("item");
        let mut t = SatisfactionTracker::new(&q);
        assert!(!t.done());
        assert!(t.visit(items[0]));
        assert!(t.done());
        // The other item is still a free visit even though the group is
        // already satisfied.
        assert!(t.visit(items[1]));
    }

    #[test]
    fn tracker_needs_every_group() {
        let g = graph();
        let q = QueryIntention::from_labels(&g, "q", &["item", "name"]).unwrap();
        let mut t = SatisfactionTracker::new(&q);
        t.visit(g.find_by_label("item")[0]);
        assert!(!t.done());
        t.visit(g.find_by_label("name")[1]);
        assert!(t.done());
    }

    #[test]
    fn any_unsatisfied_respects_satisfaction() {
        let g = graph();
        let q = QueryIntention::from_labels(&g, "q", &["item", "name"]).unwrap();
        let items = g.find_by_label("item");
        let mut t = SatisfactionTracker::new(&q);
        t.visit(items[0]);
        // items no longer drive exploration; names still do.
        assert!(!t.any_unsatisfied(|e| items.contains(&e)));
        assert!(t.any_unsatisfied(|e| g.find_by_label("name").contains(&e)));
    }

    #[test]
    fn non_target_visit_is_charged() {
        let g = graph();
        let q = QueryIntention::from_labels(&g, "q", &["name"]).unwrap();
        let mut t = SatisfactionTracker::new(&q);
        assert!(!t.visit(g.root()));
        assert!(!q.is_target(g.root()));
    }
}
