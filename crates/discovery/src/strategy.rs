//! Schema-exploration strategies without a summary (Section 5.3).
//!
//! All strategies traverse the structural tree from the root, charging one
//! unit per visited element that is not part of the query intention, and
//! stopping as soon as every target group is satisfied.
//!
//! * **Depth-first pre-order** and **breadth-first pre-order** scan blindly
//!   in document order — the paper's naive baselines.
//! * **Best-first** makes the optimistic assumption that "the label of each
//!   sub-tree root perfectly indicates whether an element of interest to
//!   the user is in the sub-tree": the user never descends into a useless
//!   subtree. Under the default [`CostModel::SiblingScan`], the user still
//!   "examines children of the current node one at a time until it finds
//!   one that it should visit", paying for each examined child; under
//!   [`CostModel::PathOnly`] only the union of root→target paths is paid
//!   for (a strictly more optimistic reading; see DESIGN.md §3.5).

use crate::intention::{QueryIntention, SatisfactionTracker};
use schema_summary_core::{ElementId, SchemaGraph};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How the best-first user is charged (DESIGN.md §3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CostModel {
    /// Charge every examined sibling: the user scans a node's children in
    /// order and pays for each visited child, useful or not, until the
    /// subtree holds no more unsatisfied targets. Reproduces the paper's
    /// Table 3 magnitudes.
    #[default]
    SiblingScan,
    /// Charge only the union of root→target paths (the user teleports past
    /// useless siblings).
    PathOnly,
}

/// Result of one discovery run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoveryCost {
    /// Accumulated cost units.
    pub cost: usize,
    /// Total elements visited (targets included).
    pub visited: usize,
    /// Whether every target group was satisfied. `false` means the
    /// intention references elements unreachable by the strategy.
    pub found_all: bool,
}

/// Flat scan over the element array in declaration order — the paper's
/// "naive approach ... scan through all the elements until the ones of
/// interest are found", which ignores even the tree structure. Included as
/// the floor baseline; on tree-shaped schemas it coincides with the
/// depth-first scan whenever declaration order equals document order
/// (which [`schema_summary_core::SchemaGraphBuilder`] does not guarantee
/// for interleaved construction).
pub fn linear_scan_cost(graph: &SchemaGraph, intention: &QueryIntention) -> DiscoveryCost {
    let mut tracker = SatisfactionTracker::new(intention);
    let mut cost = 0usize;
    let mut visited = 0usize;
    for e in graph.element_ids() {
        visited += 1;
        if !tracker.visit(e) {
            cost += 1;
        }
        if tracker.done() {
            return DiscoveryCost { cost, visited, found_all: true };
        }
    }
    DiscoveryCost { cost, visited, found_all: tracker.done() }
}

/// Depth-first pre-order scan of the structural tree.
pub fn depth_first_cost(graph: &SchemaGraph, intention: &QueryIntention) -> DiscoveryCost {
    let mut tracker = SatisfactionTracker::new(intention);
    let mut cost = 0usize;
    let mut visited = 0usize;
    let mut stack = vec![graph.root()];
    while let Some(e) = stack.pop() {
        visited += 1;
        if !tracker.visit(e) {
            cost += 1;
        }
        if tracker.done() {
            return DiscoveryCost { cost, visited, found_all: true };
        }
        for &c in graph.children(e).iter().rev() {
            stack.push(c);
        }
    }
    DiscoveryCost { cost, visited, found_all: tracker.done() }
}

/// Breadth-first pre-order scan of the structural tree.
pub fn breadth_first_cost(graph: &SchemaGraph, intention: &QueryIntention) -> DiscoveryCost {
    let mut tracker = SatisfactionTracker::new(intention);
    let mut cost = 0usize;
    let mut visited = 0usize;
    let mut queue = VecDeque::from([graph.root()]);
    while let Some(e) = queue.pop_front() {
        visited += 1;
        if !tracker.visit(e) {
            cost += 1;
        }
        if tracker.done() {
            return DiscoveryCost { cost, visited, found_all: true };
        }
        queue.extend(graph.children(e).iter().copied());
    }
    DiscoveryCost { cost, visited, found_all: tracker.done() }
}

/// Cross-query visit memory for session experiments: an element already
/// visited in an earlier query is familiar and costs nothing to pass again
/// (the user has learned that part of the schema).
#[derive(Debug, Clone)]
pub struct VisitMemory {
    seen: Vec<bool>,
}

impl VisitMemory {
    /// Fresh memory over a schema of `n` elements.
    pub fn new(n: usize) -> Self {
        VisitMemory { seen: vec![false; n] }
    }

    /// Whether `e` has been visited before.
    pub fn seen(&self, e: ElementId) -> bool {
        self.seen[e.index()]
    }

    /// Record a visit to `e`; returns whether it was already seen.
    pub fn record(&mut self, e: ElementId) -> bool {
        std::mem::replace(&mut self.seen[e.index()], true)
    }

    /// Number of elements seen so far.
    pub fn count(&self) -> usize {
        self.seen.iter().filter(|&&s| s).count()
    }
}

/// Oracle-guided best-first exploration (Section 5.3's strongest
/// no-summary strategy).
pub fn best_first_cost(
    graph: &SchemaGraph,
    intention: &QueryIntention,
    model: CostModel,
) -> DiscoveryCost {
    let mut memory = VisitMemory::new(graph.len());
    best_first_cost_with_memory(graph, intention, model, &mut memory)
}

/// Best-first exploration that charges only for *first* visits of
/// non-target elements, accumulating familiarity in `memory` across calls.
pub fn best_first_cost_with_memory(
    graph: &SchemaGraph,
    intention: &QueryIntention,
    model: CostModel,
    memory: &mut VisitMemory,
) -> DiscoveryCost {
    // Precompute subtree membership: for each element, does its structural
    // subtree contain each target? We answer "does subtree(e) contain any
    // unsatisfied target" by checking each unsatisfied group against the
    // subtree; memberships are cheap via Euler intervals.
    let intervals = euler_intervals(graph);
    let in_subtree = |root: ElementId, e: ElementId| {
        let (s, t) = intervals[root.index()];
        let (es, _) = intervals[e.index()];
        s <= es && es < t
    };

    let mut tracker = SatisfactionTracker::new(intention);
    let mut cost = 0usize;
    let mut visited = 0usize;

    let mut visit = |e: ElementId, tracker: &mut SatisfactionTracker<'_>| {
        visited += 1;
        let is_target = tracker.visit(e);
        let was_seen = memory.record(e);
        if !is_target && !was_seen {
            cost += 1;
        }
    };

    // Explicit-stack DFS guided by the oracle; each frame remembers how
    // many children it has already examined.
    visit(graph.root(), &mut tracker);
    let mut stack: Vec<(ElementId, usize)> = vec![(graph.root(), 0)];
    while !stack.is_empty() {
        if tracker.done() {
            break;
        }
        let top = stack.len() - 1;
        let (node, next_child) = stack[top];
        // Any unsatisfied target left below this node?
        if !tracker.any_unsatisfied(|t| in_subtree(node, t)) {
            stack.pop();
            continue;
        }
        let children = graph.children(node);
        if next_child >= children.len() {
            stack.pop();
            continue;
        }
        let child = children[next_child];
        stack[top].1 += 1;
        let child_useful = tracker.any_unsatisfied(|t| in_subtree(child, t));
        match model {
            CostModel::SiblingScan => {
                // The user examines this child regardless; descend only if
                // its subtree is useful.
                visit(child, &mut tracker);
                if child_useful && !tracker.done() {
                    stack.push((child, 0));
                }
            }
            CostModel::PathOnly => {
                if child_useful {
                    visit(child, &mut tracker);
                    if !tracker.done() {
                        stack.push((child, 0));
                    }
                }
            }
        }
    }
    DiscoveryCost { cost, visited, found_all: tracker.done() }
}

/// Euler-tour intervals `[start, end)` for subtree containment tests.
pub(crate) fn euler_intervals(graph: &SchemaGraph) -> Vec<(usize, usize)> {
    let mut intervals = vec![(0usize, 0usize); graph.len()];
    let mut counter = 0usize;
    // Iterative post-order assignment of (entry, exit).
    enum Phase {
        Enter(ElementId),
        Exit(ElementId),
    }
    let mut stack = vec![Phase::Enter(graph.root())];
    while let Some(phase) = stack.pop() {
        match phase {
            Phase::Enter(e) => {
                intervals[e.index()].0 = counter;
                counter += 1;
                stack.push(Phase::Exit(e));
                for &c in graph.children(e).iter().rev() {
                    stack.push(Phase::Enter(c));
                }
            }
            Phase::Exit(e) => {
                intervals[e.index()].1 = counter;
            }
        }
    }
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::types::SchemaType;

    /// site
    ///  ├─ regions ── asia ── item ── name
    ///  ├─ people ── person ── {pname, age}
    ///  └─ auctions ── auction ── bidder
    fn graph() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("site");
        let regions = b.add_child(b.root(), "regions", SchemaType::rcd()).unwrap();
        let asia = b.add_child(regions, "asia", SchemaType::rcd()).unwrap();
        let item = b.add_child(asia, "item", SchemaType::set_of_rcd()).unwrap();
        b.add_child(item, "name", SchemaType::simple_str()).unwrap();
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
        b.add_child(person, "pname", SchemaType::simple_str()).unwrap();
        b.add_child(person, "age", SchemaType::simple_int()).unwrap();
        let auctions = b.add_child(b.root(), "auctions", SchemaType::rcd()).unwrap();
        let auction = b.add_child(auctions, "auction", SchemaType::set_of_rcd()).unwrap();
        b.add_child(auction, "bidder", SchemaType::set_of_rcd()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn depth_first_hand_computed() {
        let g = graph();
        // Preorder: site, regions, asia, item, name, people, person, pname,
        // age, auctions, auction, bidder.
        let q = QueryIntention::from_labels(&g, "q", &["pname"]).unwrap();
        let r = depth_first_cost(&g, &q);
        // Visits site..pname = 8 elements, 7 of them non-target.
        assert_eq!(r.visited, 8);
        assert_eq!(r.cost, 7);
        assert!(r.found_all);
    }

    #[test]
    fn breadth_first_hand_computed() {
        let g = graph();
        // BFS order: site | regions people auctions | asia person auction |
        // item pname age bidder | ...
        let q = QueryIntention::from_labels(&g, "q", &["pname"]).unwrap();
        let r = breadth_first_cost(&g, &q);
        assert_eq!(r.visited, 9); // site,3,3, then item, pname
        assert_eq!(r.cost, 8);
        assert!(r.found_all);
    }

    #[test]
    fn best_first_path_only_is_union_of_paths() {
        let g = graph();
        let q = QueryIntention::from_labels(&g, "q", &["pname"]).unwrap();
        let r = best_first_cost(&g, &q, CostModel::PathOnly);
        // Path: site, people, person, pname → 3 non-target visits.
        assert_eq!(r.cost, 3);
        assert!(r.found_all);
    }

    #[test]
    fn best_first_sibling_scan_charges_scanned_siblings() {
        let g = graph();
        let q = QueryIntention::from_labels(&g, "q", &["pname"]).unwrap();
        let r = best_first_cost(&g, &q, CostModel::SiblingScan);
        // site(1) → scan regions(1, useless) → people(1) → person(1) →
        // pname(free). Total 4 charged.
        assert_eq!(r.cost, 4);
        assert!(r.found_all);
    }

    #[test]
    fn best_first_never_beats_path_only() {
        let g = graph();
        for labels in [vec!["pname"], vec!["bidder", "name"], vec!["age", "item"]] {
            let q = QueryIntention::from_labels(&g, "q", &labels).unwrap();
            let scan = best_first_cost(&g, &q, CostModel::SiblingScan);
            let path = best_first_cost(&g, &q, CostModel::PathOnly);
            assert!(scan.cost >= path.cost, "{labels:?}");
        }
    }

    #[test]
    fn strategy_ordering_matches_paper() {
        // DF ≥ BF is not universal, but best-first must never lose to
        // either on any intention (it visits a subset of useful nodes).
        let g = graph();
        for labels in [vec!["pname"], vec!["bidder"], vec!["name"], vec!["age", "bidder"]] {
            let q = QueryIntention::from_labels(&g, "q", &labels).unwrap();
            let df = depth_first_cost(&g, &q);
            let bf = breadth_first_cost(&g, &q);
            let best = best_first_cost(&g, &q, CostModel::SiblingScan);
            assert!(best.cost <= df.cost.max(bf.cost), "{labels:?}");
        }
    }

    #[test]
    fn multi_target_all_groups_needed() {
        let g = graph();
        let q = QueryIntention::from_labels(&g, "q", &["name", "bidder"]).unwrap();
        let r = best_first_cost(&g, &q, CostModel::SiblingScan);
        assert!(r.found_all);
        // Must have visited both subtrees.
        assert!(r.visited >= 7);
    }

    #[test]
    fn root_as_target_is_free() {
        let g = graph();
        let q = QueryIntention::from_labels(&g, "q", &["site"]).unwrap();
        for r in [
            depth_first_cost(&g, &q),
            breadth_first_cost(&g, &q),
            best_first_cost(&g, &q, CostModel::SiblingScan),
        ] {
            assert_eq!(r.cost, 0);
            assert!(r.found_all);
        }
    }

    #[test]
    fn linear_scan_is_the_floor_baseline() {
        let g = graph();
        let q = QueryIntention::from_labels(&g, "q", &["bidder"]).unwrap();
        let lin = linear_scan_cost(&g, &q);
        assert!(lin.found_all);
        // bidder is the last declared element: the scan pays for everything
        // before it.
        assert_eq!(lin.visited, g.len());
        assert_eq!(lin.cost, g.len() - 1);
        // Oracle-guided search is never worse than the flat scan here.
        let best = best_first_cost(&g, &q, CostModel::SiblingScan);
        assert!(best.cost <= lin.cost);
    }

    #[test]
    fn linear_scan_reports_unreachable_targets() {
        let g = graph();
        let mut q = QueryIntention::from_labels(&g, "q", &["pname"]).unwrap();
        // Inject a group that no element can satisfy.
        q.targets.push(std::collections::BTreeSet::new());
        let r = linear_scan_cost(&g, &q);
        assert!(!r.found_all);
    }

    #[test]
    fn euler_intervals_are_nesting() {
        let g = graph();
        let iv = euler_intervals(&g);
        let person = g.find_unique("person").unwrap();
        let pname = g.find_unique("pname").unwrap();
        let item = g.find_unique("item").unwrap();
        let (ps, pt) = iv[person.index()];
        let (ns, _) = iv[pname.index()];
        assert!(ps <= ns && ns < pt);
        let (is_, _) = iv[item.index()];
        assert!(!(ps <= is_ && is_ < pt));
    }
}
