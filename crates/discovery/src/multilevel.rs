//! Query discovery over multi-level summaries.
//!
//! With a multi-level summary the user starts at the **coarsest** level —
//! the handful of top abstract elements — and drills down: a coarse
//! abstract element of interest reveals its child groups at the next finer
//! level (each examined group costs one unit, like any abstract-element
//! visit), until the finest level, where groups expand to original
//! elements exactly as in flat-summary discovery. This extends §5.3's cost
//! model to Section 2's multi-level extension: the user trades a shallower
//! entry point for extra drill steps.

use crate::intention::{QueryIntention, SatisfactionTracker};
use crate::strategy::{CostModel, DiscoveryCost};
use crate::summary_discovery::{explore_group, Charge, ExpansionModel};
use schema_summary_algo::MultiLevelSummary;
use schema_summary_core::{AbstractId, SchemaGraph};

/// Cost of discovering `intention` by drilling through `ml` from its
/// coarsest level down.
pub fn multilevel_cost(
    graph: &SchemaGraph,
    ml: &MultiLevelSummary,
    intention: &QueryIntention,
    model: CostModel,
    expansion: ExpansionModel,
) -> DiscoveryCost {
    let mut tracker = SatisfactionTracker::new(intention);
    let mut charge = Charge::with_memory(None);

    // The root element is always visible first.
    charge.visit_original(graph.root(), &mut tracker);

    let top = ml.depth() - 1;
    let top_groups: Vec<AbstractId> = ordered_groups(graph, ml, top, None);
    scan_level(
        graph,
        ml,
        top,
        &top_groups,
        &mut tracker,
        &mut charge,
        model,
        expansion,
    );
    DiscoveryCost {
        cost: charge.cost,
        visited: charge.visited,
        found_all: tracker.done(),
    }
}

/// Groups of `level`, restricted to children of `parent` when given,
/// ordered by the smallest element id they represent (document order).
fn ordered_groups(
    graph: &SchemaGraph,
    ml: &MultiLevelSummary,
    level: usize,
    parent: Option<AbstractId>,
) -> Vec<AbstractId> {
    let summary = ml.level(level);
    let mut groups: Vec<AbstractId> = match parent {
        None => summary.abstract_ids().collect(),
        Some(p) => ml.child_groups(level, p),
    };
    let _ = graph;
    groups.sort_by_key(|&g| {
        summary.abstracts()[g.index()]
            .members
            .iter()
            .map(|m| m.0)
            .min()
            .unwrap_or(u32::MAX)
    });
    groups
}

#[allow(clippy::too_many_arguments)]
fn scan_level(
    graph: &SchemaGraph,
    ml: &MultiLevelSummary,
    level: usize,
    groups: &[AbstractId],
    tracker: &mut SatisfactionTracker<'_>,
    charge: &mut Charge<'_>,
    model: CostModel,
    expansion: ExpansionModel,
) {
    let summary = ml.level(level);
    let useful = |tracker: &SatisfactionTracker<'_>, g: AbstractId| {
        let members = &summary.abstracts()[g.index()].members;
        tracker.any_unsatisfied(|t| members.binary_search(&t).is_ok())
    };
    let any_here = |tracker: &SatisfactionTracker<'_>| {
        groups.iter().any(|&g| useful(tracker, g))
    };

    for &g in groups {
        if tracker.done() || !any_here(tracker) {
            break;
        }
        let g_useful = useful(tracker, g);
        if model == CostModel::PathOnly && !g_useful {
            continue;
        }
        // Examining an abstract element always costs one unit (§5.3).
        charge.visit_abstract(summary.abstracts()[g.index()].representative);
        if !g_useful {
            continue;
        }
        if level == 0 {
            explore_group(
                graph,
                &summary.abstracts()[g.index()].members,
                tracker,
                expansion,
                charge,
            );
        } else {
            let children = ordered_groups(graph, ml, level - 1, Some(g));
            scan_level(
                graph,
                ml,
                level - 1,
                &children,
                tracker,
                charge,
                model,
                expansion,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{best_first_cost, summary_cost};
    use schema_summary_algo::{Algorithm, Summarizer};
    use schema_summary_core::{SchemaGraphBuilder, SchemaStats, SchemaType};

    /// Six sections of four elements each under the root.
    fn fixture() -> (schema_summary_core::SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("db");
        for i in 0..6 {
            let sec = b
                .add_child(b.root(), format!("section{i}"), SchemaType::rcd())
                .unwrap();
            let ent = b
                .add_child(sec, format!("entity{i}"), SchemaType::set_of_rcd())
                .unwrap();
            b.add_child(ent, format!("field{i}a"), SchemaType::simple_str()).unwrap();
            b.add_child(ent, format!("field{i}b"), SchemaType::simple_str()).unwrap();
        }
        let g = b.build().unwrap();
        let s = SchemaStats::uniform(&g);
        (g, s)
    }

    #[test]
    fn drill_down_finds_everything() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let ml = sum.multi_level(&[6, 2], Algorithm::Balance).unwrap();
        for labels in [vec!["field0a"], vec!["field5b"], vec!["entity2", "field4a"]] {
            let q = QueryIntention::from_labels(&g, "q", &labels).unwrap();
            let r = multilevel_cost(&g, &ml, &q, CostModel::SiblingScan, ExpansionModel::Scan);
            assert!(r.found_all, "{labels:?}");
            assert!(r.cost > 0);
        }
    }

    #[test]
    fn single_level_multilevel_equals_flat_summary() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let ml = sum.multi_level(&[4], Algorithm::Balance).unwrap();
        let flat = sum.summarize(4, Algorithm::Balance).unwrap();
        for labels in [vec!["field1a"], vec!["entity3"], vec!["field2b", "field5a"]] {
            let q = QueryIntention::from_labels(&g, "q", &labels).unwrap();
            let a = multilevel_cost(&g, &ml, &q, CostModel::SiblingScan, ExpansionModel::Scan);
            let b = summary_cost(&g, &flat, &q, CostModel::SiblingScan);
            assert!(a.found_all && b.found_all);
            // Same groups, but the flat walk follows the summary *tree*
            // while drill-down scans a flat group list: costs agree within
            // the scan-order slack.
            assert!(
                (a.cost as i64 - b.cost as i64).abs() <= 2,
                "{labels:?}: drill {} vs flat {}",
                a.cost,
                b.cost
            );
        }
    }

    #[test]
    fn coarse_entry_can_beat_wide_flat_summaries() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let ml = sum.multi_level(&[6, 2], Algorithm::Balance).unwrap();
        let q = QueryIntention::from_labels(&g, "q", &["field0a"]).unwrap();
        let drill = multilevel_cost(&g, &ml, &q, CostModel::SiblingScan, ExpansionModel::Scan);
        let best = best_first_cost(&g, &q, CostModel::SiblingScan);
        assert!(drill.found_all && best.found_all);
        // Sanity: the drill is in the same cost regime (not exploring the
        // whole schema).
        assert!(drill.cost <= best.cost + 4);
    }

    #[test]
    fn path_only_skips_useless_groups() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let ml = sum.multi_level(&[6, 3], Algorithm::Balance).unwrap();
        let q = QueryIntention::from_labels(&g, "q", &["field5b"]).unwrap();
        let scan = multilevel_cost(&g, &ml, &q, CostModel::SiblingScan, ExpansionModel::Scan);
        let path = multilevel_cost(&g, &ml, &q, CostModel::PathOnly, ExpansionModel::Reveal);
        assert!(path.found_all);
        assert!(path.cost <= scan.cost);
    }
}
