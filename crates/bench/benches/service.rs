//! Serving-layer benchmarks: the cold path (register a schema and compute
//! a summary from scratch) against the warm path (identical repeated
//! request answered from the memoized artifacts and the LRU result
//! cache). The acceptance bar is a ≥5× warm-vs-cold speedup on XMark; in
//! practice the warm path is a hash lookup and the gap is orders of
//! magnitude on both datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schema_summary_algo::Algorithm;
use schema_summary_bench::paper_summary_size;
use schema_summary_datasets::{tpch, xmark, Dataset};
use schema_summary_service::SummaryService;
use std::hint::black_box;
use std::sync::Arc;

fn served_datasets() -> Vec<Dataset> {
    vec![xmark::dataset(1.0), tpch::dataset(0.1)]
}

fn cold_requests(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_cold");
    for d in served_datasets() {
        let graph = Arc::new(d.graph.clone());
        let stats = Arc::new(d.stats.clone());
        let k = paper_summary_size(d.name);
        g.bench_with_input(BenchmarkId::from_parameter(d.name), &d, |b, _| {
            b.iter(|| {
                // A fresh service per iteration: every request pays for
                // registration, the importance fixpoint, the all-pairs
                // matrices, and the dominance set.
                let service = SummaryService::default();
                let fp = service.register(Arc::clone(&graph), Arc::clone(&stats));
                black_box(service.summarize(fp, Algorithm::Balance, k).unwrap())
            })
        });
    }
    g.finish();
}

fn warm_requests(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_warm");
    for d in served_datasets() {
        let service = SummaryService::default();
        let fp = service.register(Arc::new(d.graph.clone()), Arc::new(d.stats.clone()));
        let k = paper_summary_size(d.name);
        // Prime the cache; every timed request is a pure hit.
        service.summarize(fp, Algorithm::Balance, k).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(d.name), &d, |b, _| {
            b.iter(|| black_box(service.summarize(fp, Algorithm::Balance, k).unwrap()))
        });
    }
    g.finish();
}

fn warm_mixed_requests(c: &mut Criterion) {
    // Rotating (algorithm, k) requests: hits on distinct cache keys, the
    // interactive-exploration shape the service exists for.
    let mut g = c.benchmark_group("service_warm_mixed");
    for d in served_datasets() {
        let service = SummaryService::default();
        let fp = service.register(Arc::new(d.graph.clone()), Arc::new(d.stats.clone()));
        let requests: Vec<(Algorithm, usize)> = [
            Algorithm::MaxImportance,
            Algorithm::MaxCoverage,
            Algorithm::Balance,
        ]
        .iter()
        .flat_map(|&alg| (2..=6).map(move |k| (alg, k)))
        .collect();
        for &(alg, k) in &requests {
            service.summarize(fp, alg, k).unwrap();
        }
        let mut next = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(d.name), &d, |b, _| {
            b.iter(|| {
                let (alg, k) = requests[next % requests.len()];
                next += 1;
                black_box(service.summarize(fp, alg, k).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, cold_requests, warm_requests, warm_mixed_requests);
criterion_main!(benches);
