//! One bench per evaluation figure (Figures 8 and 9).

use criterion::{criterion_group, criterion_main, Criterion};
use schema_summary_algo::{
    Algorithm, ImportanceConfig, ImportanceMode, Summarizer, SummarizerConfig,
};
use schema_summary_bench::{all_datasets, paper_summary_size};
use schema_summary_datasets::mimi;
use schema_summary_discovery::{summary_cost, CostModel};
use std::hint::black_box;

/// Figure 8: the summary-size sweep on MiMI.
fn fig8_size_sweep(c: &mut Criterion) {
    let d = mimi::dataset(mimi::Version::Jan06);
    c.bench_function("fig8_size_sweep", |b| {
        b.iter(|| {
            let mut s = Summarizer::new(&d.graph, &d.stats);
            let mut acc = 0usize;
            for k in [1usize, 3, 5, 9, 13, 17, 25, 40] {
                let summary = s.summarize(k, Algorithm::Balance).unwrap();
                for q in &d.queries {
                    acc += summary_cost(&d.graph, &summary, q, CostModel::SiblingScan).cost;
                }
            }
            black_box(acc)
        })
    });
}

/// Figure 9: importance-mode ablation over the three datasets.
fn fig9_modes(c: &mut Criterion) {
    let datasets = all_datasets();
    c.bench_function("fig9_modes", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for d in &datasets {
                let k = paper_summary_size(d.name);
                for mode in [
                    ImportanceMode::DataOnly,
                    ImportanceMode::SchemaOnly,
                    ImportanceMode::DataAndSchema,
                ] {
                    let config = SummarizerConfig {
                        importance: ImportanceConfig::default().with_mode(mode),
                        ..Default::default()
                    };
                    let mut s = Summarizer::with_config(&d.graph, &d.stats, config);
                    let summary = s.summarize(k, Algorithm::MaxImportance).unwrap();
                    for q in &d.queries {
                        acc += summary_cost(&d.graph, &summary, q, CostModel::SiblingScan).cost;
                    }
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, fig8_size_sweep, fig9_modes);
criterion_main!(benches);
