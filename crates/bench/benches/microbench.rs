//! Microbenchmarks of the core algorithm stages, per dataset: cardinality
//! statistics consumption (importance iteration), all-pairs path matrices,
//! dominance discovery, element selection, and the full end-to-end
//! pipeline (the paper's "within 5 minutes on a 2.0GHz P4" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schema_summary_algo::importance::compute_importance;
use schema_summary_algo::{
    Algorithm, DominanceSet, ImportanceConfig, PairMatrices, PathConfig, Summarizer,
};
use schema_summary_bench::{all_datasets, paper_summary_size};
use std::hint::black_box;

fn importance_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("importance");
    for d in all_datasets() {
        g.bench_with_input(BenchmarkId::from_parameter(d.name), &d, |b, d| {
            b.iter(|| {
                black_box(compute_importance(
                    &d.graph,
                    &d.stats,
                    &ImportanceConfig::default(),
                ))
            })
        });
    }
    g.finish();
}

fn pair_matrices(c: &mut Criterion) {
    let mut g = c.benchmark_group("pair_matrices");
    for d in all_datasets() {
        g.bench_with_input(BenchmarkId::from_parameter(d.name), &d, |b, d| {
            b.iter(|| black_box(PairMatrices::compute(&d.stats, &PathConfig::default())))
        });
    }
    g.finish();
}

fn dominance(c: &mut Criterion) {
    let mut g = c.benchmark_group("dominance");
    for d in all_datasets() {
        let m = PairMatrices::compute(&d.stats, &PathConfig::default());
        g.bench_with_input(BenchmarkId::from_parameter(d.name), &d, |b, d| {
            b.iter(|| black_box(DominanceSet::compute(&d.graph, &d.stats, &m)))
        });
    }
    g.finish();
}

fn selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("balance_selection");
    for d in all_datasets() {
        g.bench_with_input(BenchmarkId::from_parameter(d.name), &d, |b, d| {
            // Caches are warm: this isolates the Figure 7 walk itself.
            let mut s = Summarizer::new(&d.graph, &d.stats);
            let _ = s
                .select(paper_summary_size(d.name), Algorithm::Balance)
                .unwrap();
            b.iter(|| {
                black_box(
                    s.select(paper_summary_size(d.name), Algorithm::Balance)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(20);
    for d in all_datasets() {
        g.bench_with_input(BenchmarkId::from_parameter(d.name), &d, |b, d| {
            b.iter(|| {
                // Cold start: statistics → importance → matrices →
                // dominance → selection → summary construction.
                let mut s = Summarizer::new(&d.graph, &d.stats);
                let summary = s
                    .summarize(paper_summary_size(d.name), Algorithm::Balance)
                    .unwrap();
                black_box(summary.size())
            })
        });
    }
    g.finish();
}

/// Scalability beyond the paper's datasets: random schemas of growing size
/// (tree + 5% value links, profile statistics), full pipeline.
fn scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_end_to_end");
    group.sample_size(10);
    for n in [100usize, 300, 1000] {
        let (g, s) = schema_summary_bench::synthetic::random_schema(n, 0.05, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut sum = Summarizer::new(&g, &s);
                black_box(sum.summarize(10, Algorithm::Balance).unwrap().size())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    importance_iteration,
    pair_matrices,
    dominance,
    selection,
    end_to_end,
    scale
);
criterion_main!(benches);
