//! Cold-path all-pairs matrix computation over synthetic schemas of growing
//! size — the serving layer's dominant cold-start cost. Exercises the
//! default layered kernel end to end (CSR statistics → per-source
//! relaxation → row assembly) at sizes well beyond the paper's datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schema_summary_algo::{PairMatrices, PathConfig};
use schema_summary_bench::synthetic::random_schema;
use std::hint::black_box;

fn cold_matrices(c: &mut Criterion) {
    let mut g = c.benchmark_group("cold_matrices");
    g.sample_size(10);
    for n in [100usize, 500, 2000] {
        let (_, s) = random_schema(n, 0.05, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(PairMatrices::compute(&s, &PathConfig::default())))
        });
    }
    g.finish();
}

/// The same workload at a higher value-link density: value links multiply
/// simple paths combinatorially, which is the regime the layered kernel
/// exists for.
fn cold_matrices_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("cold_matrices_dense");
    g.sample_size(10);
    for n in [100usize, 500] {
        let (_, s) = random_schema(n, 0.20, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(PairMatrices::compute(&s, &PathConfig::default())))
        });
    }
    g.finish();
}

criterion_group!(benches, cold_matrices, cold_matrices_dense);
criterion_main!(benches);
