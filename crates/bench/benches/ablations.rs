//! Ablation benches for the design choices DESIGN.md §6 calls out.
//!
//! These are quality ablations wrapped in a timing harness: each bench
//! prints (once, on first run) the *metric* difference between the design
//! alternatives and then times the cheaper-to-measure side, so that
//! `cargo bench` output doubles as the ablation record.

use criterion::{criterion_group, criterion_main, Criterion};
use schema_summary_algo::algorithms::max_coverage;
use schema_summary_algo::{
    Algorithm, DominanceSet, PairMatrices, PathConfig, PathLength, SetSearch, Summarizer,
};
use schema_summary_bench::paper_summary_size;
use schema_summary_datasets::mimi;
use schema_summary_discovery::{summary_cost_with, CostModel, ExpansionModel};
use std::hint::black_box;
use std::sync::Once;

static REPORT: Once = Once::new();

/// Path-length convention (Edges vs Nodes) — affinity matrices under both.
fn ablate_pathlen(c: &mut Criterion) {
    let d = mimi::dataset(mimi::Version::Jan06);
    REPORT.call_once(|| {
        for convention in [PathLength::Edges, PathLength::Nodes] {
            let cfg = PathConfig {
                path_length: convention,
                ..Default::default()
            };
            let m = PairMatrices::compute(&d.stats, &cfg);
            let e0 = schema_summary_core::ElementId(2);
            let e1 = schema_summary_core::ElementId(3);
            println!(
                "[ablate_pathlen] {convention:?}: A(e2,e3)={:.4}",
                m.affinity(e0, e1)
            );
        }
    });
    c.bench_function("ablate_pathlen", |b| {
        b.iter(|| {
            let cfg = PathConfig {
                path_length: PathLength::Nodes,
                ..Default::default()
            };
            black_box(PairMatrices::compute(&d.stats, &cfg))
        })
    });
}

/// Best-first / expansion charging model: Scan vs Reveal.
fn ablate_costmodel(c: &mut Criterion) {
    let d = mimi::dataset(mimi::Version::Jan06);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let summary = s
        .summarize(paper_summary_size(d.name), Algorithm::Balance)
        .unwrap();
    for expansion in [ExpansionModel::Scan, ExpansionModel::Reveal] {
        let total: usize = d
            .queries
            .iter()
            .map(|q| {
                summary_cost_with(&d.graph, &summary, q, CostModel::SiblingScan, expansion).cost
            })
            .sum();
        println!(
            "[ablate_costmodel] {expansion:?}: avg cost {:.2}",
            total as f64 / d.queries.len() as f64
        );
    }
    c.bench_function("ablate_costmodel", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for q in &d.queries {
                acc += summary_cost_with(
                    &d.graph,
                    &summary,
                    q,
                    CostModel::SiblingScan,
                    ExpansionModel::Reveal,
                )
                .cost;
            }
            black_box(acc)
        })
    });
}

/// MaxCoverage set search: Greedy vs Beam (exhaustive is guarded out at
/// this scale — exactly why the strategies exist).
fn ablate_setsearch(c: &mut Criterion) {
    let d = mimi::dataset(mimi::Version::Jan06);
    let m = PairMatrices::compute(&d.stats, &PathConfig::default());
    let ds = DominanceSet::compute(&d.graph, &d.stats, &m);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    for (name, search) in [
        ("greedy", SetSearch::Greedy),
        ("beam4", SetSearch::Beam { width: 4 }),
    ] {
        let sel = max_coverage(&d.graph, &d.stats, &m, &ds, 10, search).unwrap();
        println!(
            "[ablate_setsearch] {name}: coverage {:.4}",
            s.selection_coverage(&sel)
        );
    }
    c.bench_function("ablate_setsearch_greedy", |b| {
        b.iter(|| {
            black_box(max_coverage(&d.graph, &d.stats, &m, &ds, 10, SetSearch::Greedy).unwrap())
        })
    });
}

/// Dominance pruning on/off: candidate-set reduction (the paper claims
/// >50% on its schemas) and the time the pruning itself costs.
fn ablate_dominance(c: &mut Criterion) {
    let d = mimi::dataset(mimi::Version::Jan06);
    let m = PairMatrices::compute(&d.stats, &PathConfig::default());
    let ds = DominanceSet::compute(&d.graph, &d.stats, &m);
    let n = d.graph.len() - 1;
    let kept = ds.non_dominated(&d.graph).len();
    println!(
        "[ablate_dominance] candidates {n} -> {kept} ({:.0}% reduction, {} pairs, {} checks)",
        (1.0 - kept as f64 / n as f64) * 100.0,
        ds.len(),
        ds.checked_pairs
    );
    c.bench_function("ablate_dominance", |b| {
        b.iter(|| black_box(DominanceSet::compute(&d.graph, &d.stats, &m)))
    });
}

/// Random-selection floor: any informed selection must beat a random one
/// of the same size (quantifies how much of the saving is algorithmic
/// rather than "any 10 boxes help").
fn ablate_random_floor(c: &mut Criterion) {
    use schema_summary_algo::algorithms::random_select;
    use schema_summary_discovery::summary_cost;
    let d = mimi::dataset(mimi::Version::Jan06);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let balance = s.summarize(10, Algorithm::Balance).unwrap();
    let avg = |summary: &schema_summary_core::SchemaSummary| {
        d.queries
            .iter()
            .map(|q| summary_cost(&d.graph, summary, q, CostModel::SiblingScan).cost)
            .sum::<usize>() as f64
            / d.queries.len() as f64
    };
    let mut random_costs = Vec::new();
    for seed in 0..5 {
        let sel = random_select(&d.graph, 10, seed).unwrap();
        let summary = s.summarize_selection(&sel).unwrap();
        random_costs.push(avg(&summary));
    }
    let random_mean = random_costs.iter().sum::<f64>() / random_costs.len() as f64;
    println!(
        "[ablate_random_floor] balance {:.2} vs random-10 mean {:.2} (5 seeds: {:?})",
        avg(&balance),
        random_mean,
        random_costs.iter().map(|c| (c * 10.0).round() / 10.0).collect::<Vec<_>>()
    );
    c.bench_function("ablate_random_floor", |b| {
        b.iter(|| {
            let sel = random_select(&d.graph, 10, 7).unwrap();
            black_box(sel)
        })
    });
}

/// Convergence threshold / neighborhood factor sweep.
fn ablate_convergence(c: &mut Criterion) {
    use schema_summary_algo::importance::compute_importance;
    use schema_summary_algo::ImportanceConfig;
    let d = mimi::dataset(mimi::Version::Jan06);
    for p in [0.1, 0.5, 0.9] {
        let r = compute_importance(&d.graph, &d.stats, &ImportanceConfig::default().with_p(p));
        println!(
            "[ablate_convergence] p={p}: {} iterations (converged={})",
            r.iterations, r.converged
        );
    }
    c.bench_function("ablate_convergence_p05", |b| {
        b.iter(|| {
            black_box(compute_importance(
                &d.graph,
                &d.stats,
                &ImportanceConfig::default(),
            ))
        })
    });
}

criterion_group!(
    benches,
    ablate_pathlen,
    ablate_costmodel,
    ablate_setsearch,
    ablate_dominance,
    ablate_random_floor,
    ablate_convergence
);
criterion_main!(benches);
