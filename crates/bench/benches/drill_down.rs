//! Drill-down benchmarks: interactive exploration is a cold multi-level
//! build followed by many `expand` requests over the cached stack. The
//! cold path pays registration, the importance fixpoint, the all-pairs
//! matrices, and one clustering pass per level; a warm expand is a cache
//! lookup plus a walk of the stored parent maps.

use criterion::{criterion_group, criterion_main, Criterion};
use schema_summary_algo::Algorithm;
use schema_summary_datasets::xmark;
use schema_summary_service::SummaryService;
use std::hint::black_box;
use std::sync::Arc;

const SIZES: [usize; 3] = [12, 6, 3];

fn cold_multilevel(c: &mut Criterion) {
    let (g, s, _) = xmark::schema(1.0);
    let (graph, stats) = (Arc::new(g), Arc::new(s));
    c.bench_function("drill_down/cold_multilevel_xmark", |b| {
        b.iter(|| {
            // Fresh service per iteration: the full cold path.
            let service = SummaryService::default();
            let fp = service.register(Arc::clone(&graph), Arc::clone(&stats));
            black_box(service.multi_level(fp, Algorithm::Balance, &SIZES).unwrap())
        })
    });
}

fn warm_expand(c: &mut Criterion) {
    let (g, s, _) = xmark::schema(1.0);
    let service = SummaryService::default();
    let fp = service.register(Arc::new(g), Arc::new(s));
    // Prime the stack; every timed expand walks it without computing.
    service.multi_level(fp, Algorithm::Balance, &SIZES).unwrap();
    let mut next = 0usize;
    c.bench_function("drill_down/warm_expand_xmark", |b| {
        b.iter(|| {
            let group = next % SIZES[2];
            next += 1;
            black_box(
                service
                    .expand(fp, Algorithm::Balance, &SIZES, 2, group)
                    .unwrap(),
            )
        })
    });
}

fn cold_flat_summarize(c: &mut Criterion) {
    // The pre-existing interactive unit of work, for scale: what a user
    // paid per exploration step before stacks were cached service-side.
    let (g, s, _) = xmark::schema(1.0);
    let (graph, stats) = (Arc::new(g), Arc::new(s));
    c.bench_function("drill_down/cold_flat_summarize_xmark", |b| {
        b.iter(|| {
            let service = SummaryService::default();
            let fp = service.register(Arc::clone(&graph), Arc::clone(&stats));
            black_box(service.summarize(fp, Algorithm::Balance, SIZES[0]).unwrap())
        })
    });
}

criterion_group!(benches, cold_multilevel, warm_expand, cold_flat_summarize);
criterion_main!(benches);
