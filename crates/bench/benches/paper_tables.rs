//! One bench per evaluation table (Tables 1–6).
//!
//! Each bench measures the wall-clock of regenerating the table's numbers
//! end-to-end (dataset construction excluded where it would dominate, so
//! the algorithm under study is what's timed). The paper reports the whole
//! summarization process finishing "within 5 minutes on a 2.0GHz P4";
//! these benches document how far below that we land.

use criterion::{criterion_group, criterion_main, Criterion};
use schema_summary_algo::{Algorithm, Summarizer};
use schema_summary_baselines::{cafp_select, twbk_select, twbk_select_seeded, Weighting};
use schema_summary_bench::{all_datasets, paper_summary_size};
use schema_summary_datasets::{experts, mimi, xmark};
use schema_summary_discovery::agreement::{agreement, consensus, unanimous_agreement};
use schema_summary_discovery::{
    best_first_cost, breadth_first_cost, depth_first_cost, summary_cost, CostModel,
};
use std::hint::black_box;

fn table1_stats(c: &mut Criterion) {
    c.bench_function("table1_stats", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for d in all_datasets() {
                acc += d.graph.len() as f64 + d.stats.total_card() + d.avg_intention_size();
            }
            black_box(acc)
        })
    });
}

fn table2_agreement(c: &mut Criterion) {
    let (xg, xs, xh) = xmark::schema(1.0);
    let (mg, ms, mh) = mimi::schema(mimi::Version::Jan06);
    c.bench_function("table2_agreement", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            {
                let mut s = Summarizer::new(&xg, &xs);
                for &size in &experts::EXPERT_SIZES {
                    let auto = s.select(size, Algorithm::Balance).unwrap();
                    let sels = experts::xmark_experts(&xh, size);
                    for sel in &sels {
                        acc += agreement(sel, &auto);
                    }
                    acc += unanimous_agreement(&sels);
                    acc += consensus(&sels, 2).len() as f64;
                }
            }
            {
                let mut s = Summarizer::new(&mg, &ms);
                for &size in &experts::EXPERT_SIZES {
                    let auto = s.select(size, Algorithm::Balance).unwrap();
                    let sels = experts::mimi_experts(&mh, size);
                    for sel in &sels {
                        acc += agreement(sel, &auto);
                    }
                }
            }
            black_box(acc)
        })
    });
}

fn table3_discovery(c: &mut Criterion) {
    let datasets = all_datasets();
    c.bench_function("table3_discovery", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for d in &datasets {
                let mut s = Summarizer::new(&d.graph, &d.stats);
                let summary = s
                    .summarize(paper_summary_size(d.name), Algorithm::Balance)
                    .unwrap();
                for q in &d.queries {
                    acc += depth_first_cost(&d.graph, q).cost;
                    acc += breadth_first_cost(&d.graph, q).cost;
                    acc += best_first_cost(&d.graph, q, CostModel::SiblingScan).cost;
                    acc += summary_cost(&d.graph, &summary, q, CostModel::SiblingScan).cost;
                }
            }
            black_box(acc)
        })
    });
}

fn table4_algorithms(c: &mut Criterion) {
    let datasets = all_datasets();
    c.bench_function("table4_algorithms", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for d in &datasets {
                let k = paper_summary_size(d.name);
                let mut s = Summarizer::new(&d.graph, &d.stats);
                for alg in [Algorithm::Balance, Algorithm::MaxImportance, Algorithm::MaxCoverage] {
                    let summary = s.summarize(k, alg).unwrap();
                    for q in &d.queries {
                        acc += summary_cost(&d.graph, &summary, q, CostModel::SiblingScan).cost;
                    }
                }
            }
            black_box(acc)
        })
    });
}

fn table5_evolution(c: &mut Criterion) {
    c.bench_function("table5_evolution", |b| {
        b.iter(|| {
            let mut selections = Vec::new();
            for &v in &mimi::Version::ALL {
                let (g, s, _) = mimi::schema(v);
                let mut sum = Summarizer::new(&g, &s);
                for &size in &experts::EXPERT_SIZES {
                    selections.push(sum.select(size, Algorithm::Balance).unwrap());
                }
            }
            let mut acc = 0.0;
            for i in 0..selections.len() {
                for j in (i + 1)..selections.len() {
                    acc += agreement(&selections[i], &selections[j]);
                }
            }
            black_box(acc)
        })
    });
}

fn table6_baselines(c: &mut Criterion) {
    let d = mimi::dataset(mimi::Version::Jan06);
    let (_, _, h) = mimi::schema(mimi::Version::Jan06);
    let seeds = mimi::major_entities(&h);
    c.bench_function("table6_baselines", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            let mut s = Summarizer::new(&d.graph, &d.stats);
            for sel in [
                twbk_select(&d.graph, Weighting::unsupervised(), 10),
                twbk_select_seeded(&d.graph, Weighting::human(), 10, &seeds),
                cafp_select(&d.graph, Weighting::unsupervised(), 10),
            ] {
                let summary = s.summarize_selection(&sel).unwrap();
                for q in &d.queries {
                    acc += summary_cost(&d.graph, &summary, q, CostModel::SiblingScan).cost;
                }
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    table1_stats,
    table2_agreement,
    table3_discovery,
    table4_algorithms,
    table5_evolution,
    table6_baselines
);
criterion_main!(benches);
