//! Harness target emitting `BENCH_matrices.json`: before/after numbers for
//! the cold all-pairs matrix pass.
//!
//! "Before" is the pre-overhaul algorithm re-measured on this machine — the
//! DFS enumeration without pruning, which performs the same expansions as
//! the old recursive kernel — alongside the pruned DFS, the single-source
//! layered kernel, the **batched** layered kernel (the driver default for
//! layered-resolving configs), and the `Auto` policy as shipped. The XMark
//! SF 1.0 rows are the acceptance measurement; the synthetic rows show
//! scaling in element count and value-link density.
//!
//! Run with `cargo run --release -p schema-summary-bench --bin
//! bench_matrices`. Pass `--quick` for a single-repetition smoke run (CI):
//! same datasets and rows, no timing stability.

use schema_summary_algo::{PairMatrices, PathConfig, PathKernel, DEFAULT_SOURCE_BATCH};
use schema_summary_bench::synthetic::random_schema;
use schema_summary_core::SchemaStats;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct KernelRow {
    kernel: String,
    /// Minimum wall time over the repetitions. The bench hosts are noisy
    /// shared VMs where individual runs swing ±50%; the minimum is the run
    /// least perturbed by neighbors and is stable across invocations.
    min_ms: f64,
    expansions: u64,
    truncated: bool,
}

#[derive(Serialize)]
struct DatasetRows {
    dataset: String,
    elements: usize,
    kernels: Vec<KernelRow>,
    /// Batched layered (the shipping default) vs the re-measured
    /// pre-overhaul algorithm.
    speedup_layered_vs_dfs_unpruned: f64,
    /// Batched layered vs single-source layered at the same thread count —
    /// the isolated win of the multi-source frontier sweep.
    speedup_batched_vs_single_source: f64,
    /// `Auto` vs the fastest non-auto row. ~1 means the policy picked the
    /// winning kernel (the auto row re-runs the chosen kernel, so the
    /// ratio carries one extra run of host noise); materially above 1
    /// means auto picked a loser on this dataset.
    auto_over_best: f64,
}

#[derive(Serialize)]
struct Report {
    description: String,
    config: String,
    datasets: Vec<DatasetRows>,
}

/// One timed variant of the cold pass. `batch` of `None` runs the shipping
/// entry point ([`PairMatrices::compute`]); `Some(b)` pins the driver batch
/// size (1 = single-source handout, the pre-batching driver).
fn time_kernel(
    stats: &SchemaStats,
    kernel: PathKernel,
    prune: bool,
    batch: Option<usize>,
    name: &str,
    reps: usize,
) -> KernelRow {
    let cfg = PathConfig {
        kernel,
        prune,
        max_expansions: 50_000_000,
        ..Default::default()
    };
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let run = || match batch {
        None => PairMatrices::compute(stats, &cfg),
        Some(b) => PairMatrices::compute_with_threads_batched(stats, &cfg, threads, b),
    };
    // Warm-up run, then min over the timed repetitions (noise-robust).
    let m = run();
    let mut min_ms = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(run());
        min_ms = min_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    KernelRow {
        kernel: name.into(),
        min_ms,
        expansions: m.expansions(),
        truncated: m.truncated(),
    }
}

fn measure(dataset: String, stats: &SchemaStats, dfs_too: bool, quick: bool) -> DatasetRows {
    let reps = |full: usize| if quick { 1 } else { full };
    let mut kernels = vec![
        time_kernel(
            stats,
            PathKernel::Layered,
            true,
            Some(DEFAULT_SOURCE_BATCH),
            "layered batched (default driver)",
            reps(9),
        ),
        time_kernel(
            stats,
            PathKernel::Layered,
            true,
            Some(1),
            "layered single-source",
            reps(9),
        ),
        time_kernel(
            stats,
            PathKernel::Auto,
            true,
            None,
            "auto (default; resolves per schema)",
            reps(9),
        ),
    ];
    if dfs_too {
        kernels.push(time_kernel(
            stats,
            PathKernel::Dfs,
            true,
            None,
            "dfs pruned",
            reps(5),
        ));
        kernels.push(time_kernel(
            stats,
            PathKernel::Dfs,
            false,
            None,
            "dfs unpruned (pre-overhaul algorithm)",
            reps(5),
        ));
    }
    let batched = kernels[0].min_ms;
    let single = kernels[1].min_ms;
    let auto = kernels[2].min_ms;
    let unpruned = if dfs_too {
        kernels.last().map_or(batched, |k| k.min_ms)
    } else {
        batched
    };
    let best_non_auto = kernels
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != 2)
        .map(|(_, k)| k.min_ms)
        .fold(f64::INFINITY, f64::min);
    DatasetRows {
        dataset,
        elements: stats.len(),
        kernels,
        speedup_layered_vs_dfs_unpruned: unpruned / batched,
        speedup_batched_vs_single_source: single / batched,
        auto_over_best: auto / best_non_auto,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut datasets = Vec::new();

    let (g, s, _) = schema_summary_datasets::xmark::schema(1.0);
    datasets.push(measure(format!("XMark SF 1.0 (n={})", g.len()), &s, true, quick));

    for (n, density) in [(100usize, 0.05), (500, 0.05), (2000, 0.05), (500, 0.20)] {
        let (_, s) = random_schema(n, density, 42);
        // DFS enumeration on dense synthetic graphs is combinatorial; only
        // run the comparison where it finishes in reasonable time.
        let dfs_too = n <= 500 && density <= 0.05;
        datasets.push(measure(
            format!("synthetic n={n} density={density}"),
            &s,
            dfs_too,
            quick,
        ));
    }

    let report = Report {
        description: "Cold PairMatrices::compute wall time per kernel; \
                      'dfs unpruned' re-measures the pre-overhaul algorithm; \
                      'layered batched' is the shipping driver default"
            .into(),
        config: "PathConfig::default() except kernel/prune (max_edges=10)".into(),
        datasets,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_matrices.json", &json).expect("write BENCH_matrices.json");
    println!("{json}");
}
