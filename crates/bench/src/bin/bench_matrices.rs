//! Harness target emitting `BENCH_matrices.json`: before/after numbers for
//! the cold all-pairs matrix pass.
//!
//! "Before" is the pre-overhaul algorithm re-measured on this machine — the
//! DFS enumeration without pruning, which performs the same expansions as
//! the old recursive kernel — alongside the pruned DFS and the layered
//! relaxation kernel that is now the default. The XMark SF 1.0 rows are the
//! acceptance measurement; the synthetic rows show scaling in element count
//! and value-link density.
//!
//! Run with `cargo run --release -p schema-summary-bench --bin bench_matrices`.

use schema_summary_algo::{PairMatrices, PathConfig, PathKernel};
use schema_summary_bench::synthetic::random_schema;
use schema_summary_core::SchemaStats;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct KernelRow {
    kernel: String,
    mean_ms: f64,
    expansions: u64,
    truncated: bool,
}

#[derive(Serialize)]
struct DatasetRows {
    dataset: String,
    elements: usize,
    kernels: Vec<KernelRow>,
    speedup_layered_vs_dfs_unpruned: f64,
}

#[derive(Serialize)]
struct Report {
    description: String,
    config: String,
    datasets: Vec<DatasetRows>,
}

fn time_kernel(stats: &SchemaStats, kernel: PathKernel, prune: bool, reps: usize) -> KernelRow {
    let cfg = PathConfig {
        kernel,
        prune,
        max_expansions: 50_000_000,
        ..Default::default()
    };
    // Warm-up run, then the timed repetitions.
    let m = PairMatrices::compute(stats, &cfg);
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(PairMatrices::compute(stats, &cfg));
    }
    let mean_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
    KernelRow {
        kernel: match (kernel, prune) {
            (PathKernel::Auto, _) => "auto (default; resolves per schema)".into(),
            (PathKernel::Layered, _) => "layered".into(),
            (PathKernel::Dfs, true) => "dfs pruned".into(),
            (PathKernel::Dfs, false) => "dfs unpruned (pre-overhaul algorithm)".into(),
        },
        mean_ms,
        expansions: m.expansions(),
        truncated: m.truncated(),
    }
}

fn measure(dataset: String, stats: &SchemaStats, dfs_too: bool) -> DatasetRows {
    let mut kernels = vec![time_kernel(stats, PathKernel::Layered, true, 5)];
    if dfs_too {
        kernels.push(time_kernel(stats, PathKernel::Dfs, true, 3));
        kernels.push(time_kernel(stats, PathKernel::Dfs, false, 3));
    }
    let layered = kernels[0].mean_ms;
    let unpruned = kernels.last().map_or(layered, |k| k.mean_ms);
    DatasetRows {
        dataset,
        elements: stats.len(),
        kernels,
        speedup_layered_vs_dfs_unpruned: unpruned / layered,
    }
}

fn main() {
    let mut datasets = Vec::new();

    let (g, s, _) = schema_summary_datasets::xmark::schema(1.0);
    datasets.push(measure(format!("XMark SF 1.0 (n={})", g.len()), &s, true));

    for (n, density) in [(100usize, 0.05), (500, 0.05), (2000, 0.05), (500, 0.20)] {
        let (_, s) = random_schema(n, density, 42);
        // DFS enumeration on dense synthetic graphs is combinatorial; only
        // run the comparison where it finishes in reasonable time.
        let dfs_too = n <= 500 && density <= 0.05;
        datasets.push(measure(
            format!("synthetic n={n} density={density}"),
            &s,
            dfs_too,
        ));
    }

    let report = Report {
        description: "Cold PairMatrices::compute wall time per kernel; \
                      'dfs unpruned' re-measures the pre-overhaul algorithm"
            .into(),
        config: "PathConfig::default() except kernel/prune (max_edges=10)".into(),
        datasets,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_matrices.json", &json).expect("write BENCH_matrices.json");
    println!("{json}");
}
