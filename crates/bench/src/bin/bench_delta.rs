//! Harness target emitting `BENCH_delta.json`: warm-path incremental
//! maintenance (plan + splice) against a cold all-pairs rebuild, across
//! delta sizes on XMark SF 1.0 and a larger synthetic schema.
//!
//! Each row perturbs the cardinality of `delta_elements` elements,
//! diffs the annotations, plans the affected rows
//! (`incremental::plan_delta`), and splices them into the old matrices
//! (`PairMatrices::splice`). Perturbed elements are drawn from the
//! *volume-capped* pool — elements whose every outgoing RC is at most 1 —
//! which is the common data-growth shape: the element gets more populous,
//! every per-instance fan-out factor stays clamped, and no exploration
//! record moves, so the splice is a pure coverage rescale. Deltas that do
//! move fan-out factors (RC > 1 edges) re-explore every row whose trace
//! read them; in the serving layer the fraction guard routes those cold.
//!
//! The acceptance bar is the first XMark row: a single-element delta must
//! cost at most 20% of the cold rebuild it replaces. Every spliced result
//! is checked bitwise-identical to the cold recompute before timing.
//!
//! Run with `cargo run --release -p schema-summary-bench --bin bench_delta`.

use schema_summary_algo::{plan_delta, PairMatrices, PathConfig};
use schema_summary_bench::synthetic::random_schema;
use schema_summary_core::diff::SchemaDelta;
use schema_summary_core::stats::LinkCount;
use schema_summary_core::{
    DeltaClass, ElementId, SchemaGraph, SchemaGraphBuilder, SchemaStats, SchemaType,
};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct DeltaRow {
    delta_elements: usize,
    rows_recomputed: usize,
    rows_total: usize,
    warm_ms: f64,
    cold_ms: f64,
    warm_over_cold: f64,
}

#[derive(Serialize)]
struct DatasetRows {
    dataset: String,
    elements: usize,
    capped_pool: usize,
    rows: Vec<DeltaRow>,
}

#[derive(Serialize)]
struct GrowthRow {
    added_elements: usize,
    added_links: usize,
    /// Growth declared before any data arrives: every new link carries
    /// count 0, so old rows replay bit-for-bit and only the appended
    /// rows are computed fresh.
    dormant: bool,
    rows_recomputed: usize,
    rows_total: usize,
    warm_ms: f64,
    cold_ms: f64,
    warm_over_cold: f64,
}

#[derive(Serialize)]
struct GrowthRows {
    dataset: String,
    elements_before: usize,
    rows: Vec<GrowthRow>,
}

#[derive(Serialize)]
struct Report {
    description: String,
    config: String,
    acceptance: String,
    datasets: Vec<DatasetRows>,
    growth: Vec<GrowthRows>,
}

/// Recover integer cardinalities and per-link counts from an annotation,
/// so perturbed variants rebuild through the same `from_link_counts`
/// path and untouched records stay bitwise identical to the base.
fn reconstruct(graph: &SchemaGraph, stats: &SchemaStats) -> (Vec<u64>, Vec<LinkCount>) {
    let cards: Vec<u64> = (0..graph.len())
        .map(|i| stats.card(ElementId(i as u32)).round() as u64)
        .collect();
    let links = graph
        .structural_links()
        .chain(graph.value_links())
        .map(|(from, to)| LinkCount {
            from,
            to,
            count: (stats.rc(from, to) * stats.card(from)).round() as u64,
        })
        .collect();
    (cards, links)
}

/// The volume-capped element pool: every outgoing RC at most 1 (and the
/// element not the root). Growing such an element only *lowers* its RCs,
/// so every `rc_factor` stays clamped at 1 and the exploration records
/// keep their bits.
fn capped_pool(stats: &SchemaStats, n: usize) -> Vec<usize> {
    (1..n)
        .filter(|&i| stats.edge_rcs(ElementId(i as u32)).iter().all(|&rc| rc <= 1.0))
        .collect()
}

/// Grow `delta_elements` cardinalities (spread across the capped pool)
/// by +10%, rebuilt through the same constructor as the base annotation.
fn perturbed(
    graph: &SchemaGraph,
    cards: &[u64],
    links: &[LinkCount],
    pool: &[usize],
    delta_elements: usize,
) -> SchemaStats {
    let mut cards2 = cards.to_vec();
    let stride = (pool.len() / delta_elements.max(1)).max(1);
    for j in 0..delta_elements {
        let idx = pool[(j * stride) % pool.len()];
        cards2[idx] += (cards2[idx] / 10).max(1);
    }
    SchemaStats::from_link_counts(graph, &cards2, links).expect("perturbed stats build")
}

/// Minimum wall time of `reps` runs, in milliseconds. The minimum is the
/// run least disturbed by scheduler and memory-bandwidth contention, so
/// warm/cold ratios stay stable across machine load.
fn min_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn measure(dataset: String, graph: &SchemaGraph, stats: &SchemaStats) -> DatasetRows {
    let config = PathConfig::default();
    let (cards, links) = reconstruct(graph, stats);
    let base = SchemaStats::from_link_counts(graph, &cards, &links).expect("base stats build");
    let old_m = PairMatrices::compute(&base, &config);
    let n = base.len();
    let pool = capped_pool(&base, n);

    // Untimed warm-up: the first ~30 ms of a fresh process run slow
    // (frequency ramp, cold allocator arenas), which would bias whichever
    // row is measured first. Exercise the exact warm workload shape until
    // that settles.
    for _ in 0..30 {
        std::hint::black_box(old_m.splice(&base, &config, &vec![false; n]));
    }

    let mut rows = Vec::new();
    for delta_elements in [1usize, 2, 4, 8, n / 4] {
        let delta_elements = delta_elements.min(pool.len());
        let new_stats = perturbed(graph, &cards, &links, &pool, delta_elements);
        let delta = SchemaDelta::compute(graph, &base, graph, &new_stats);
        let plan = plan_delta(
            &delta, graph, &base, graph, &new_stats, &old_m, &config, 1.0,
        )
        .expect("cardinality-only delta must plan");

        // Correctness first: the splice must be indistinguishable from a
        // cold rebuild before its time means anything.
        let cold_m = PairMatrices::compute(&new_stats, &config);
        let warm_m = old_m
            .splice(&new_stats, &config, &plan.recompute)
            .expect("base matrices carry source metadata");
        assert!(
            warm_m.bitwise_eq(&cold_m),
            "{dataset}: spliced matrices diverge from cold at delta={delta_elements}"
        );

        let reps = 20;
        let warm_ms = min_ms(reps, || {
            let plan = plan_delta(
                &delta, graph, &base, graph, &new_stats, &old_m, &config, 1.0,
            )
            .expect("plan repeats");
            std::hint::black_box(old_m.splice(&new_stats, &config, &plan.recompute));
        });
        let cold_ms = min_ms(reps, || {
            std::hint::black_box(PairMatrices::compute(&new_stats, &config));
        });

        rows.push(DeltaRow {
            delta_elements,
            rows_recomputed: plan.rows,
            rows_total: n,
            warm_ms,
            cold_ms,
            warm_over_cold: warm_ms / cold_ms,
        });
    }
    DatasetRows {
        dataset,
        elements: n,
        capped_pool: pool.len(),
        rows,
    }
}

/// Re-declare `graph` through the builder (element ids are assigned
/// append-only, so declaring in id order reproduces the graph exactly),
/// then grow it in place per the sweep spec `(extra, extra_links,
/// dormant)`: `extra` new set elements under `attach` plus `extra_links`
/// value links from each new element to spread-out capped targets, link
/// counts zeroed when `dormant`. Returns the grown pair built through
/// `from_link_counts`, so the old prefix stays bitwise identical to the
/// base annotation.
fn grown_variant(
    graph: &SchemaGraph,
    cards: &[u64],
    links: &[LinkCount],
    attach: ElementId,
    targets: &[ElementId],
    spec: (usize, usize, bool),
) -> (SchemaGraph, SchemaStats) {
    let (extra, extra_links, dormant) = spec;
    let mut b = SchemaGraphBuilder::new(graph.label(graph.root()));
    for e in graph.element_ids().skip(1) {
        let parent = graph.parent(e).expect("non-root has a parent");
        b.add_child(parent, graph.label(e), graph.ty(e).clone())
            .expect("re-declaration mirrors a valid graph");
    }
    for (from, to) in graph.value_links() {
        b.add_value_link(from, to).expect("link re-declaration");
    }
    let mut cards2 = cards.to_vec();
    let mut links2 = links.to_vec();
    for j in 0..extra {
        let grown = b
            .add_child(attach, format!("growth{j}"), SchemaType::set_of_rcd())
            .expect("the attach point accepts new children");
        cards2.push(64);
        links2.push(LinkCount {
            from: attach,
            to: grown,
            count: if dormant { 0 } else { 64 },
        });
        for l in 0..extra_links {
            let target = targets[(j * extra_links + l) % targets.len()];
            b.add_value_link(grown, target).expect("growth value link");
            links2.push(LinkCount {
                from: grown,
                to: target,
                count: if dormant { 0 } else { 1 },
            });
        }
    }
    let g2 = b.build().expect("grown graph builds");
    let s2 = SchemaStats::from_link_counts(&g2, &cards2, &links2).expect("grown stats build");
    (g2, s2)
}

/// Time additive structural growth (grow-in-place splice) against the
/// cold rebuild of the grown schema, after asserting bitwise identity.
fn measure_growth(
    dataset: String,
    graph: &SchemaGraph,
    stats: &SchemaStats,
    sweep: &[(usize, usize, bool)],
) -> GrowthRows {
    let config = PathConfig::default();
    let (cards, links) = reconstruct(graph, stats);
    let base = SchemaStats::from_link_counts(graph, &cards, &links).expect("base stats build");
    let old_m = PairMatrices::compute(&base, &config);
    let n = base.len();

    // Growth attaches where the recorded read sets are thinnest: touching
    // an element re-explores exactly the rows whose trace read its lane,
    // so the warm win scales with the attach point's locality — the shape
    // the grow-in-place splice is designed around. Rank every element by
    // reader count; new children hang off the best non-simple element and
    // new value links aim at the cheapest targets.
    let reader_count = |e: usize| {
        let mut touched = vec![false; n];
        touched[e] = true;
        old_m
            .rows_reading(&touched)
            .map_or(n, |r| r.iter().filter(|&&b| b).count())
    };
    let mut ranked: Vec<(usize, usize)> = graph
        .element_ids()
        .map(|e| (reader_count(e.index()), e.index()))
        .collect();
    ranked.sort_unstable();
    if std::env::var_os("BENCH_DELTA_DEBUG").is_some() {
        eprintln!(
            "{dataset}: reader counts min..max {:?} .. {:?}, first 12: {:?}",
            ranked.first(),
            ranked.last(),
            &ranked[..12.min(ranked.len())]
        );
    }
    let attach = ranked
        .iter()
        .map(|&(_, i)| ElementId(i as u32))
        .find(|&e| !graph.ty(e).is_simple())
        .expect("some non-simple element exists");
    let targets: Vec<ElementId> = ranked
        .iter()
        .take((n / 8).max(8))
        .map(|&(_, i)| ElementId(i as u32))
        .collect();

    let mut rows = Vec::new();
    for &(extra, extra_links, dormant) in sweep {
        let (g2, s2) =
            grown_variant(graph, &cards, &links, attach, &targets, (extra, extra_links, dormant));
        let delta = SchemaDelta::compute(graph, &base, &g2, &s2);
        assert_eq!(
            delta.class,
            DeltaClass::AdditiveStructural,
            "{dataset}: growth must classify additive"
        );
        let plan = plan_delta(&delta, graph, &base, &g2, &s2, &old_m, &config, 1.0)
            .expect("additive structural delta must plan");
        assert_eq!(plan.grown, extra);
        if dormant {
            // Zero-count growth is invisible to the kernels: the plan
            // must recompute the appended rows and nothing else.
            assert_eq!(plan.rows, extra, "{dataset}: dormant growth over-plans");
        }

        let cold_m = PairMatrices::compute(&s2, &config);
        let warm_m = old_m
            .splice(&s2, &config, &plan.recompute)
            .expect("base matrices carry source metadata");
        assert!(
            warm_m.bitwise_eq(&cold_m),
            "{dataset}: grown splice diverges from cold at +{extra}/+{extra_links}"
        );

        let reps = 20;
        let warm_ms = min_ms(reps, || {
            let plan = plan_delta(&delta, graph, &base, &g2, &s2, &old_m, &config, 1.0)
                .expect("plan repeats");
            std::hint::black_box(old_m.splice(&s2, &config, &plan.recompute));
        });
        let cold_ms = min_ms(reps, || {
            std::hint::black_box(PairMatrices::compute(&s2, &config));
        });

        rows.push(GrowthRow {
            added_elements: extra,
            added_links: extra * (1 + extra_links),
            dormant,
            rows_recomputed: plan.rows,
            rows_total: s2.len(),
            warm_ms,
            cold_ms,
            warm_over_cold: warm_ms / cold_ms,
        });
    }
    GrowthRows {
        dataset,
        elements_before: base.len(),
        rows,
    }
}

fn main() {
    let mut datasets = Vec::new();

    let (g, s, _) = schema_summary_datasets::xmark::schema(1.0);
    datasets.push(measure(format!("XMark SF 1.0 (n={})", g.len()), &g, &s));

    let (g, s) = random_schema(500, 0.05, 42);
    datasets.push(measure("synthetic n=500 density=0.05".into(), &g, &s));

    let mut growth = Vec::new();
    let (g, s, _) = schema_summary_datasets::xmark::schema(1.0);
    growth.push(measure_growth(
        format!("XMark SF 1.0 (n={})", g.len()),
        &g,
        &s,
        // Dormant rows model DDL-before-data (the acceptance regime);
        // populated rows document the cost once instances arrive and the
        // near-global XMark read sets pull most rows into the plan.
        &[(1, 0, true), (1, 2, true), (1, 2, false), (1, 8, false)],
    ));
    let (g, s) = random_schema(500, 0.05, 42);
    growth.push(measure_growth(
        "synthetic n=500 density=0.05".into(),
        &g,
        &s,
        &[(1, 0, true), (4, 4, true), (2, 2, false), (8, 8, false)],
    ));

    let report = Report {
        description: "Warm delta maintenance (plan_delta + splice) vs cold \
                      PairMatrices::compute, after asserting bitwise identity; \
                      deltas grow volume-capped elements (all outgoing RC <= 1), \
                      growth rows append new elements and value links and splice \
                      the resized matrices in place"
            .into(),
        config: "PathConfig::default() (max_edges=10, layered kernel)".into(),
        acceptance: "XMark SF 1.0, delta_elements=1: warm_over_cold <= 0.20; \
                     XMark SF 1.0 growth +1 dormant element: warm_over_cold <= 0.35"
            .into(),
        datasets,
        growth,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_delta.json", &json).expect("write BENCH_delta.json");
    println!("{json}");
}
