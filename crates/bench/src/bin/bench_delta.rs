//! Harness target emitting `BENCH_delta.json`: warm-path incremental
//! maintenance (plan + splice) against a cold all-pairs rebuild, across
//! delta sizes on XMark SF 1.0 and a larger synthetic schema.
//!
//! Each row perturbs the cardinality of `delta_elements` elements,
//! diffs the annotations, plans the affected rows
//! (`incremental::plan_delta`), and splices them into the old matrices
//! (`PairMatrices::splice`). Perturbed elements are drawn from the
//! *volume-capped* pool — elements whose every outgoing RC is at most 1 —
//! which is the common data-growth shape: the element gets more populous,
//! every per-instance fan-out factor stays clamped, and no exploration
//! record moves, so the splice is a pure coverage rescale. Deltas that do
//! move fan-out factors (RC > 1 edges) re-explore every row whose trace
//! read them; in the serving layer the fraction guard routes those cold.
//!
//! The acceptance bar is the first XMark row: a single-element delta must
//! cost at most 20% of the cold rebuild it replaces. Every spliced result
//! is checked bitwise-identical to the cold recompute before timing.
//!
//! Run with `cargo run --release -p schema-summary-bench --bin bench_delta`.

use schema_summary_algo::{plan_delta, PairMatrices, PathConfig};
use schema_summary_bench::synthetic::random_schema;
use schema_summary_core::diff::SchemaDelta;
use schema_summary_core::stats::LinkCount;
use schema_summary_core::{ElementId, SchemaGraph, SchemaStats};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct DeltaRow {
    delta_elements: usize,
    rows_recomputed: usize,
    rows_total: usize,
    warm_ms: f64,
    cold_ms: f64,
    warm_over_cold: f64,
}

#[derive(Serialize)]
struct DatasetRows {
    dataset: String,
    elements: usize,
    capped_pool: usize,
    rows: Vec<DeltaRow>,
}

#[derive(Serialize)]
struct Report {
    description: String,
    config: String,
    acceptance: String,
    datasets: Vec<DatasetRows>,
}

/// Recover integer cardinalities and per-link counts from an annotation,
/// so perturbed variants rebuild through the same `from_link_counts`
/// path and untouched records stay bitwise identical to the base.
fn reconstruct(graph: &SchemaGraph, stats: &SchemaStats) -> (Vec<u64>, Vec<LinkCount>) {
    let cards: Vec<u64> = (0..graph.len())
        .map(|i| stats.card(ElementId(i as u32)).round() as u64)
        .collect();
    let links = graph
        .structural_links()
        .chain(graph.value_links())
        .map(|(from, to)| LinkCount {
            from,
            to,
            count: (stats.rc(from, to) * stats.card(from)).round() as u64,
        })
        .collect();
    (cards, links)
}

/// The volume-capped element pool: every outgoing RC at most 1 (and the
/// element not the root). Growing such an element only *lowers* its RCs,
/// so every `rc_factor` stays clamped at 1 and the exploration records
/// keep their bits.
fn capped_pool(stats: &SchemaStats, n: usize) -> Vec<usize> {
    (1..n)
        .filter(|&i| stats.edge_rcs(ElementId(i as u32)).iter().all(|&rc| rc <= 1.0))
        .collect()
}

/// Grow `delta_elements` cardinalities (spread across the capped pool)
/// by +10%, rebuilt through the same constructor as the base annotation.
fn perturbed(
    graph: &SchemaGraph,
    cards: &[u64],
    links: &[LinkCount],
    pool: &[usize],
    delta_elements: usize,
) -> SchemaStats {
    let mut cards2 = cards.to_vec();
    let stride = (pool.len() / delta_elements.max(1)).max(1);
    for j in 0..delta_elements {
        let idx = pool[(j * stride) % pool.len()];
        cards2[idx] += (cards2[idx] / 10).max(1);
    }
    SchemaStats::from_link_counts(graph, &cards2, links).expect("perturbed stats build")
}

fn measure(dataset: String, graph: &SchemaGraph, stats: &SchemaStats) -> DatasetRows {
    let config = PathConfig::default();
    let (cards, links) = reconstruct(graph, stats);
    let base = SchemaStats::from_link_counts(graph, &cards, &links).expect("base stats build");
    let old_m = PairMatrices::compute(&base, &config);
    let n = base.len();
    let pool = capped_pool(&base, n);

    let mut rows = Vec::new();
    for delta_elements in [1usize, 2, 4, 8, n / 4] {
        let delta_elements = delta_elements.min(pool.len());
        let new_stats = perturbed(graph, &cards, &links, &pool, delta_elements);
        let delta = SchemaDelta::compute(graph, &base, graph, &new_stats);
        let plan = plan_delta(
            &delta, graph, &base, graph, &new_stats, &old_m, &config, 1.0,
        )
        .expect("cardinality-only delta must plan");

        // Correctness first: the splice must be indistinguishable from a
        // cold rebuild before its time means anything.
        let cold_m = PairMatrices::compute(&new_stats, &config);
        let warm_m = old_m
            .splice(&new_stats, &config, &plan.recompute)
            .expect("base matrices carry source metadata");
        assert!(
            warm_m.bitwise_eq(&cold_m),
            "{dataset}: spliced matrices diverge from cold at delta={delta_elements}"
        );

        let reps = 20;
        let start = Instant::now();
        for _ in 0..reps {
            let plan = plan_delta(
                &delta, graph, &base, graph, &new_stats, &old_m, &config, 1.0,
            )
            .expect("plan repeats");
            std::hint::black_box(old_m.splice(&new_stats, &config, &plan.recompute));
        }
        let warm_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;

        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(PairMatrices::compute(&new_stats, &config));
        }
        let cold_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;

        rows.push(DeltaRow {
            delta_elements,
            rows_recomputed: plan.rows,
            rows_total: n,
            warm_ms,
            cold_ms,
            warm_over_cold: warm_ms / cold_ms,
        });
    }
    DatasetRows {
        dataset,
        elements: n,
        capped_pool: pool.len(),
        rows,
    }
}

fn main() {
    let mut datasets = Vec::new();

    let (g, s, _) = schema_summary_datasets::xmark::schema(1.0);
    datasets.push(measure(format!("XMark SF 1.0 (n={})", g.len()), &g, &s));

    let (g, s) = random_schema(500, 0.05, 42);
    datasets.push(measure("synthetic n=500 density=0.05".into(), &g, &s));

    let report = Report {
        description: "Warm delta maintenance (plan_delta + splice) vs cold \
                      PairMatrices::compute, after asserting bitwise identity; \
                      deltas grow volume-capped elements (all outgoing RC <= 1)"
            .into(),
        config: "PathConfig::default() (max_edges=10, layered kernel)".into(),
        acceptance: "XMark SF 1.0, delta_elements=1: warm_over_cold <= 0.20".into(),
        datasets,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_delta.json", &json).expect("write BENCH_delta.json");
    println!("{json}");
}
