//! Harness target emitting `BENCH_importance.json`: cold versus seeded
//! Formula-1 fixpoint cost across data-statistics evolution steps.
//!
//! Each row rolls a schema forward one data delta and compares a cold
//! restart of the importance fixpoint on the new statistics against the
//! production warm path ([`compute_importance_rebased`]): the previous
//! version's vector, rebased per element by its cardinality ratio, driven
//! by the Aitken-accelerated iteration. The MiMI rows chain — each seed is
//! the previous *seeded* result, exactly as `ArtifactStore::refresh`
//! serves a version history — and the chain summary is the acceptance
//! measurement (seeded iterations < 25% of the cold chain). The XMark row
//! shows the near-uniform-growth case (scale factor 0.5 → 1.0), which the
//! cardinality rebase absorbs almost entirely.
//!
//! Run with `cargo run --release -p schema-summary-bench --bin
//! bench_importance`. Pass `--quick` for a single-repetition smoke run.

use schema_summary_algo::importance::{
    compute_importance, compute_importance_rebased, ImportanceConfig, ImportanceResult,
};
use schema_summary_core::{SchemaGraph, SchemaStats};
use schema_summary_datasets::mimi::{self, Version};
use schema_summary_datasets::xmark;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct EvolutionRow {
    dataset: String,
    elements: usize,
    cold_iterations: usize,
    /// Minimum wall time over the repetitions (the bench hosts are noisy
    /// shared VMs; see BENCH_matrices.json for the rationale).
    cold_min_ms: f64,
    seeded_iterations: usize,
    seeded_min_ms: f64,
    /// `seeded_iterations / cold_iterations` for this step.
    iteration_ratio: f64,
    /// Largest per-element relative deviation of the seeded scores from
    /// the cold scores — both are valid stops of the same ε-criterion, so
    /// this is bounded by the stopping rule's resolution, not by ε itself
    /// (DESIGN.md §3.19).
    max_rel_dev_vs_cold: f64,
    /// `|Σ seeded − total_card| / total_card`: the mass-conservation
    /// contract, exact up to rounding.
    mass_rel_error: f64,
}

#[derive(Serialize)]
struct ChainSummary {
    dataset: String,
    seeded_iterations_total: usize,
    cold_iterations_total: usize,
    /// The acceptance measurement: must stay below 0.25.
    iteration_ratio: f64,
}

#[derive(Serialize)]
struct Report {
    description: String,
    config: String,
    evolutions: Vec<EvolutionRow>,
    chains: Vec<ChainSummary>,
}

fn time_min<R>(reps: usize, mut run: impl FnMut() -> R) -> (R, f64) {
    // Warm-up run, then min over the timed repetitions (noise-robust).
    let first = run();
    let mut min_ms = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(run());
        min_ms = min_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (first, min_ms)
}

/// Measure one evolution step: cold on the new stats vs seeded from the
/// previous vector. Returns the row and the seeded result (for chaining).
fn step(
    dataset: String,
    graph: &SchemaGraph,
    stats: &SchemaStats,
    prev_scores: &[f64],
    prev_stats: &SchemaStats,
    config: &ImportanceConfig,
    reps: usize,
) -> (EvolutionRow, ImportanceResult) {
    let (cold, cold_min_ms) = time_min(reps, || compute_importance(graph, stats, config));
    let (seeded, seeded_min_ms) = time_min(reps, || {
        compute_importance_rebased(graph, stats, prev_scores, prev_stats, config)
    });
    assert!(cold.converged && seeded.converged, "{dataset}: fixpoints must converge");
    let max_rel_dev_vs_cold = cold
        .scores()
        .iter()
        .zip(seeded.scores())
        .map(|(c, s)| ((s - c) / c.abs().max(1e-30)).abs())
        .fold(0.0f64, f64::max);
    let mass: f64 = seeded.scores().iter().sum();
    let row = EvolutionRow {
        dataset,
        elements: stats.len(),
        cold_iterations: cold.iterations,
        cold_min_ms,
        seeded_iterations: seeded.iterations,
        seeded_min_ms,
        iteration_ratio: seeded.iterations as f64 / cold.iterations as f64,
        max_rel_dev_vs_cold,
        mass_rel_error: (mass - stats.total_card()).abs() / stats.total_card(),
    };
    (row, seeded)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 9 };
    let config = ImportanceConfig::default();
    let mut evolutions = Vec::new();
    let mut chains = Vec::new();

    // XMark data growth: scale factor 0.5 → 1.0 (near-uniform cardinality
    // scaling; the rebase lands the seed almost on the new fixpoint).
    {
        let (g_old, s_old, _) = xmark::schema(0.5);
        let (g, s, _) = xmark::schema(1.0);
        assert_eq!(g_old.len(), g.len());
        let previous = compute_importance(&g_old, &s_old, &config);
        let (row, _) = step(
            format!("XMark SF 0.5 -> 1.0 (n={})", g.len()),
            &g,
            &s,
            previous.scores(),
            &s_old,
            &config,
            reps,
        );
        evolutions.push(row);
    }

    // MiMI version history (§6.1 Table 1): chained seeds, production-style.
    {
        let (g0, s0, _) = mimi::schema(Version::Apr04);
        let mut prev = compute_importance(&g0, &s0, &config);
        let mut prev_stats = s0;
        let mut seeded_total = 0;
        let mut cold_total = 0;
        for (from, to) in [
            (Version::Apr04, Version::Jan05),
            (Version::Jan05, Version::Jan06),
        ] {
            let (g, s, _) = mimi::schema(to);
            let (row, seeded) = step(
                format!("MiMI {} -> {} (n={})", from.name(), to.name(), g.len()),
                &g,
                &s,
                prev.scores(),
                &prev_stats,
                &config,
                reps,
            );
            seeded_total += row.seeded_iterations;
            cold_total += row.cold_iterations;
            evolutions.push(row);
            prev = seeded;
            prev_stats = s;
        }
        chains.push(ChainSummary {
            dataset: "MiMI evolution chain (Apr04 cold, Jan05+Jan06 seeded)".into(),
            seeded_iterations_total: seeded_total,
            cold_iterations_total: cold_total,
            iteration_ratio: seeded_total as f64 / cold_total as f64,
        });
    }

    let report = Report {
        description: "Formula-1 importance fixpoint: cold restart vs the \
                      warm path's cardinality-rebased, Aitken-accelerated \
                      seeded restart, per evolution step"
            .into(),
        config: "ImportanceConfig::default() (p=0.5, epsilon=0.001, DataAndSchema)".into(),
        evolutions,
        chains,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_importance.json", &json).expect("write BENCH_importance.json");
    println!("{json}");
}
