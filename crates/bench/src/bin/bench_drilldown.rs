//! Harness target emitting `BENCH_drilldown.json`: cold multi-level build
//! versus warm drill-down through the serving layer on XMark SF 1.0.
//!
//! The acceptance bar is a ≥10× advantage for a warm `expand` over the
//! cold flat `summarize` it replaces in an interactive session — the warm
//! path reuses the cached level stack and memoized matrices instead of
//! recomputing from the schema graph.
//!
//! Run with `cargo run --release -p schema-summary-bench --bin bench_drilldown`.

use schema_summary_algo::Algorithm;
use schema_summary_datasets::xmark;
use schema_summary_service::SummaryService;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const SIZES: [usize; 3] = [12, 6, 3];

#[derive(Serialize)]
struct Report {
    description: String,
    dataset: String,
    sizes: Vec<usize>,
    cold_summarize_us: f64,
    cold_multilevel_us: f64,
    warm_multilevel_us: f64,
    warm_expand_us: f64,
    speedup_warm_expand_vs_cold_summarize: f64,
    speedup_warm_expand_vs_cold_multilevel: f64,
}

fn main() {
    let (g, s, _) = xmark::schema(1.0);
    let (graph, stats) = (Arc::new(g), Arc::new(s));

    // Cold flat summarize: fresh service per repetition.
    const COLD_REPS: u32 = 10;
    let start = Instant::now();
    for _ in 0..COLD_REPS {
        let service = SummaryService::default();
        let fp = service.register(Arc::clone(&graph), Arc::clone(&stats));
        std::hint::black_box(service.summarize(fp, Algorithm::Balance, SIZES[0]).unwrap());
    }
    let cold_summarize_us = start.elapsed().as_secs_f64() * 1e6 / COLD_REPS as f64;

    // Cold multi-level build: fresh service per repetition.
    let start = Instant::now();
    for _ in 0..COLD_REPS {
        let service = SummaryService::default();
        let fp = service.register(Arc::clone(&graph), Arc::clone(&stats));
        std::hint::black_box(service.multi_level(fp, Algorithm::Balance, &SIZES).unwrap());
    }
    let cold_multilevel_us = start.elapsed().as_secs_f64() * 1e6 / COLD_REPS as f64;

    // One long-lived service: the interactive session shape.
    let service = SummaryService::default();
    let fp = service.register(Arc::clone(&graph), Arc::clone(&stats));
    service.multi_level(fp, Algorithm::Balance, &SIZES).unwrap();

    const WARM_REPS: u32 = 10_000;
    let start = Instant::now();
    for _ in 0..WARM_REPS {
        std::hint::black_box(service.multi_level(fp, Algorithm::Balance, &SIZES).unwrap());
    }
    let warm_multilevel_us = start.elapsed().as_secs_f64() * 1e6 / WARM_REPS as f64;

    let start = Instant::now();
    for i in 0..WARM_REPS {
        let level = 1 + (i as usize) % 2;
        let group = (i as usize) % SIZES[level];
        std::hint::black_box(
            service
                .expand(fp, Algorithm::Balance, &SIZES, level, group)
                .unwrap(),
        );
    }
    let warm_expand_us = start.elapsed().as_secs_f64() * 1e6 / WARM_REPS as f64;

    // The whole warm phase never recomputed anything.
    let cache = service.cache_stats();
    assert_eq!(cache.misses, 1, "warm phase must not recompute summaries");
    assert_eq!(cache.matrices_computed, 1, "warm phase must not recompute matrices");

    let report = Report {
        description: "Cold multi-level build vs warm drill-down through the \
                      serving layer; warm expands walk the cached level stack"
            .into(),
        dataset: format!("XMark SF 1.0 (n={})", graph.len()),
        sizes: SIZES.to_vec(),
        cold_summarize_us,
        cold_multilevel_us,
        warm_multilevel_us,
        warm_expand_us,
        speedup_warm_expand_vs_cold_summarize: cold_summarize_us / warm_expand_us,
        speedup_warm_expand_vs_cold_multilevel: cold_multilevel_us / warm_expand_us,
    };
    assert!(
        report.speedup_warm_expand_vs_cold_summarize >= 10.0,
        "acceptance: warm expand must be >=10x faster than cold summarize \
         (cold {cold_summarize_us:.1}us vs warm {warm_expand_us:.1}us)"
    );
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_drilldown.json", &json).expect("write BENCH_drilldown.json");
    println!("{json}");
}
