//! Shared fixtures for the benchmark harness.
//!
//! One bench target exists for every table and figure in the paper's
//! evaluation (see DESIGN.md §5) plus ablations over the design choices
//! DESIGN.md §6 calls out. The benches measure the *time* to regenerate
//! each artifact; the artifact values themselves are printed by the `repro`
//! binary and recorded in EXPERIMENTS.md.

use schema_summary_datasets::{mimi, tpch, xmark, Dataset};

/// The paper's three datasets at their evaluation scales.
pub fn all_datasets() -> Vec<Dataset> {
    vec![
        xmark::dataset(1.0),
        tpch::dataset(0.1),
        mimi::dataset(mimi::Version::Jan06),
    ]
}

/// The summary size each dataset is evaluated at (Tables 3, 4, 6).
pub fn paper_summary_size(name: &str) -> usize {
    match name {
        "TPC-H" => 5,
        _ => 10,
    }
}
