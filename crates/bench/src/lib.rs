//! Shared fixtures for the benchmark harness.
//!
//! One bench target exists for every table and figure in the paper's
//! evaluation (see DESIGN.md §5) plus ablations over the design choices
//! DESIGN.md §6 calls out. The benches measure the *time* to regenerate
//! each artifact; the artifact values themselves are printed by the `repro`
//! binary and recorded in EXPERIMENTS.md.

use schema_summary_datasets::{mimi, tpch, xmark, Dataset};

/// The paper's three datasets at their evaluation scales.
pub fn all_datasets() -> Vec<Dataset> {
    vec![
        xmark::dataset(1.0),
        tpch::dataset(0.1),
        mimi::dataset(mimi::Version::Jan06),
    ]
}

/// The summary size each dataset is evaluated at (Tables 3, 4, 6).
pub fn paper_summary_size(name: &str) -> usize {
    match name {
        "TPC-H" => 5,
        _ => 10,
    }
}

/// Deterministic synthetic schemas for scaling benchmarks beyond the
/// paper's datasets (its largest, XMark, has 295 annotated elements).
pub mod synthetic {
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::{SchemaGraph, SchemaGraphBuilder, SchemaStats, SchemaType};

    /// A random schema of `n` elements: a tree grown by attaching each new
    /// element to a uniformly chosen composite ancestor, plus
    /// `n · link_density` value links between random composite pairs, with
    /// profiled statistics (per-edge fan-out 1–5). Fully deterministic in
    /// `(n, link_density, seed)` — the same inputs always produce the same
    /// schema, so bench runs are comparable across machines and commits.
    pub fn random_schema(n: usize, link_density: f64, seed: u64) -> (SchemaGraph, SchemaStats) {
        // Deterministic xorshift so the bench is stable.
        let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ seed ^ (n as u64).rotate_left(17);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = SchemaGraphBuilder::new("root");
        let mut composites = vec![b.root()];
        for i in 1..n {
            let parent = composites[(next() as usize) % composites.len()];
            let ty = match next() % 3 {
                0 => SchemaType::simple_str(),
                1 => SchemaType::set_of_rcd(),
                _ => SchemaType::rcd(),
            };
            let id = b.add_child(parent, format!("e{i}"), ty.clone()).unwrap();
            if ty.is_composite() {
                composites.push(id);
            }
        }
        let value_links = (n as f64 * link_density).round() as usize;
        for _ in 0..value_links {
            let f = composites[(next() as usize) % composites.len()];
            let t = composites[(next() as usize) % composites.len()];
            let _ = b.add_value_link(f, t);
        }
        let g = b.build().unwrap();
        let mut cards = vec![0u64; g.len()];
        cards[g.root().index()] = 1;
        let mut links = Vec::new();
        for (p, c) in g.structural_links().collect::<Vec<_>>() {
            let fan = 1 + next() % 5;
            let count = cards[p.index()].max(1) * fan;
            cards[c.index()] = count;
            links.push(LinkCount {
                from: p,
                to: c,
                count,
            });
        }
        for (f, t) in g.value_links().collect::<Vec<_>>() {
            links.push(LinkCount {
                from: f,
                to: t,
                count: cards[f.index()].max(1),
            });
        }
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        (g, s)
    }
}
