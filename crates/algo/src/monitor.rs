//! Incremental summary maintenance under data evolution (Section 3.3).
//!
//! "One consequence of using data distributions is that the generated
//! summary may evolve when the database is updated ... If the changes
//! follow the same data distribution ... the summary will not be affected
//! even when the changes are major. When the data distribution has changed
//! significantly ... a change in the summary is indeed appropriate."
//!
//! [`SummaryMonitor`] operationalizes that: re-annotate periodically, call
//! [`refresh`](SummaryMonitor::refresh), and get a [`RefreshReport`] saying
//! whether the summary actually changed and how — the hook a deployment
//! uses to decide when to republish a schema overview (and to audit *why*:
//! which elements entered and left).

use crate::summarizer::{Algorithm, Summarizer, SummarizerConfig};
use schema_summary_core::{
    ElementId, SchemaError, SchemaFingerprint, SchemaGraph, SchemaStats, SchemaSummary,
};
use serde::{Deserialize, Serialize};

/// Tracks a deployed summary across statistics refreshes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SummaryMonitor {
    k: usize,
    algorithm: Algorithm,
    config: SummarizerConfig,
    current: Option<Vec<ElementId>>,
    refreshes: usize,
    changes: usize,
    /// Fingerprint of the annotated schema seen by the last refresh.
    /// Fingerprint equality is exactly `SchemaDelta::is_empty` between
    /// consecutive annotations, so an unchanged fingerprint proves the
    /// selection cannot have moved and the recompute can be skipped.
    last_fingerprint: Option<SchemaFingerprint>,
    /// Refreshes answered by the empty-delta short-circuit.
    skips: usize,
}

/// Outcome of one refresh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefreshReport {
    /// The up-to-date selection.
    pub selection: Vec<ElementId>,
    /// Whether the selection differs from the previous one.
    pub changed: bool,
    /// Elements newly selected, in element-id order.
    pub entered: Vec<ElementId>,
    /// Elements dropped from the selection, in element-id order.
    pub left: Vec<ElementId>,
    /// `|old ∩ new| / k`; 1.0 on the first refresh.
    pub agreement: f64,
    /// True when the refresh was answered without recomputing because the
    /// annotated schema was unchanged since the previous refresh (the
    /// `SchemaDelta` between the two annotations is empty).
    pub skipped: bool,
}

impl SummaryMonitor {
    /// Monitor a summary of size `k` maintained by `algorithm`.
    pub fn new(k: usize, algorithm: Algorithm) -> Self {
        Self::with_config(k, algorithm, SummarizerConfig::default())
    }

    /// Monitor with an explicit algorithm configuration.
    pub fn with_config(k: usize, algorithm: Algorithm, config: SummarizerConfig) -> Self {
        SummaryMonitor {
            k,
            algorithm,
            config,
            current: None,
            refreshes: 0,
            changes: 0,
            last_fingerprint: None,
            skips: 0,
        }
    }

    /// The current selection, if any refresh has run.
    pub fn current(&self) -> Option<&[ElementId]> {
        self.current.as_deref()
    }

    /// Number of refreshes performed.
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }

    /// Number of refreshes that changed the selection.
    pub fn changes(&self) -> usize {
        self.changes
    }

    /// Number of refreshes answered by the empty-delta short-circuit
    /// without recomputing the selection.
    pub fn skips(&self) -> usize {
        self.skips
    }

    /// Recompute the selection against fresh statistics and report the
    /// delta. The schema must be the same graph the monitor has been
    /// running against (element ids are compared across refreshes).
    pub fn refresh(
        &mut self,
        graph: &SchemaGraph,
        stats: &SchemaStats,
    ) -> Result<RefreshReport, SchemaError> {
        // §3.3 short-circuit: the fingerprint is content-addressed over the
        // annotated schema, so equality with the previous refresh means the
        // `SchemaDelta` between the two annotations is empty and the
        // selection provably cannot have moved.
        let fp = SchemaFingerprint::of_annotated(graph, stats);
        if let (Some(old), Some(last)) = (&self.current, &self.last_fingerprint) {
            if *last == fp {
                self.refreshes += 1;
                self.skips += 1;
                return Ok(RefreshReport {
                    selection: old.clone(),
                    changed: false,
                    entered: Vec::new(),
                    left: Vec::new(),
                    agreement: 1.0,
                    skipped: true,
                });
            }
        }
        let mut s = Summarizer::with_config(graph, stats, self.config.clone());
        let new = s.select(self.k, self.algorithm)?;
        self.refreshes += 1;
        let report = match &self.current {
            None => RefreshReport {
                selection: new.clone(),
                changed: false,
                entered: Vec::new(),
                left: Vec::new(),
                agreement: 1.0,
                skipped: false,
            },
            Some(old) => {
                // Report in element-id order, not selection order: the
                // selection order varies by algorithm, and downstream
                // consumers (logs, invalidation, tests) need stable output.
                let mut entered: Vec<ElementId> =
                    new.iter().copied().filter(|e| !old.contains(e)).collect();
                entered.sort_unstable();
                let mut left: Vec<ElementId> =
                    old.iter().copied().filter(|e| !new.contains(e)).collect();
                left.sort_unstable();
                let common = new.iter().filter(|e| old.contains(e)).count();
                let changed = !entered.is_empty() || !left.is_empty();
                if changed {
                    self.changes += 1;
                }
                RefreshReport {
                    selection: new.clone(),
                    changed,
                    entered,
                    left,
                    agreement: common as f64 / self.k.max(1) as f64,
                    skipped: false,
                }
            }
        };
        self.current = Some(new);
        self.last_fingerprint = Some(fp);
        Ok(report)
    }

    /// Materialize the current selection into a summary (e.g. for
    /// republication after a change).
    pub fn materialize(
        &self,
        graph: &SchemaGraph,
        stats: &SchemaStats,
    ) -> Result<SchemaSummary, SchemaError> {
        let selection = self
            .current
            .as_ref()
            .ok_or_else(|| SchemaError::Invalid("monitor has not refreshed yet".into()))?;
        let mut s = Summarizer::with_config(graph, stats, self.config.clone());
        s.summarize_selection(selection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    /// root -> {orders* -> item*, archive* }, with tunable volumes.
    fn graph() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("db");
        let orders = b
            .add_child(b.root(), "orders", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(orders, "item", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(orders, "total", SchemaType::simple_float())
            .unwrap();
        let archive = b
            .add_child(b.root(), "archive", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(archive, "blob", SchemaType::set_of_rcd())
            .unwrap();
        b.build().unwrap()
    }

    fn stats(g: &SchemaGraph, orders: u64, archive: u64) -> SchemaStats {
        let f = |l: &str| g.find_unique(l).unwrap();
        let cards = vec![1, orders, orders * 3, orders, archive, archive * 2];
        let links = vec![
            LinkCount {
                from: g.root(),
                to: f("orders"),
                count: orders,
            },
            LinkCount {
                from: f("orders"),
                to: f("item"),
                count: orders * 3,
            },
            LinkCount {
                from: f("orders"),
                to: f("total"),
                count: orders,
            },
            LinkCount {
                from: g.root(),
                to: f("archive"),
                count: archive,
            },
            LinkCount {
                from: f("archive"),
                to: f("blob"),
                count: archive * 2,
            },
        ];
        SchemaStats::from_link_counts(g, &cards, &links).unwrap()
    }

    #[test]
    fn first_refresh_is_not_a_change() {
        let g = graph();
        let mut m = SummaryMonitor::new(2, Algorithm::Balance);
        let r = m.refresh(&g, &stats(&g, 100, 10)).unwrap();
        assert!(!r.changed);
        assert_eq!(r.agreement, 1.0);
        assert_eq!(r.selection.len(), 2);
        assert_eq!(m.refreshes(), 1);
        assert_eq!(m.changes(), 0);
    }

    #[test]
    fn proportional_growth_does_not_change_the_summary() {
        let g = graph();
        let mut m = SummaryMonitor::new(2, Algorithm::Balance);
        m.refresh(&g, &stats(&g, 100, 10)).unwrap();
        let r = m.refresh(&g, &stats(&g, 1000, 100)).unwrap();
        assert!(!r.changed, "{r:?}");
        assert_eq!(r.agreement, 1.0);
        assert_eq!(m.changes(), 0);
    }

    #[test]
    fn distribution_shift_changes_the_summary() {
        let g = graph();
        let mut m = SummaryMonitor::new(1, Algorithm::Balance);
        m.refresh(&g, &stats(&g, 1000, 1)).unwrap();
        // The archive explodes: the monitor should report a change.
        let r = m.refresh(&g, &stats(&g, 10, 100_000)).unwrap();
        assert!(r.changed, "{r:?}");
        assert!(!r.entered.is_empty());
        assert!(!r.left.is_empty());
        assert!(r.agreement < 1.0);
        assert_eq!(m.changes(), 1);
    }

    #[test]
    fn materialize_requires_a_refresh() {
        let g = graph();
        let s = stats(&g, 10, 10);
        let m = SummaryMonitor::new(1, Algorithm::Balance);
        assert!(m.materialize(&g, &s).is_err());
        let mut m = m;
        m.refresh(&g, &s).unwrap();
        let summary = m.materialize(&g, &s).unwrap();
        summary.validate(&g).unwrap();
    }

    #[test]
    fn unchanged_annotation_short_circuits() {
        let g = graph();
        let mut m = SummaryMonitor::new(2, Algorithm::Balance);
        let first = m.refresh(&g, &stats(&g, 100, 10)).unwrap();
        assert!(!first.skipped);
        let r = m.refresh(&g, &stats(&g, 100, 10)).unwrap();
        assert!(r.skipped);
        assert!(!r.changed);
        assert_eq!(r.agreement, 1.0);
        assert_eq!(r.selection, first.selection);
        assert_eq!(m.refreshes(), 2);
        assert_eq!(m.skips(), 1);
        // A real change still recomputes.
        let r = m.refresh(&g, &stats(&g, 100, 20)).unwrap();
        assert!(!r.skipped);
        assert_eq!(m.refreshes(), 3);
        assert_eq!(m.skips(), 1);
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let g = graph();
        let mut m = SummaryMonitor::new(2, Algorithm::Balance);
        m.refresh(&g, &stats(&g, 100, 10)).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let mut back: SummaryMonitor = serde_json::from_str(&json).unwrap();
        // A refresh against the same stats is a no-change after restore.
        let r = back.refresh(&g, &stats(&g, 100, 10)).unwrap();
        assert!(!r.changed);
    }
}
