//! Incremental maintenance planning for schema deltas (paper §3.3).
//!
//! A [`SchemaDelta`](schema_summary_core::SchemaDelta) tells us *what* changed
//! between two schema versions; this module turns that into a *plan*: the
//! exact set of [`PairMatrices`](crate::PairMatrices) source rows whose
//! exploration could possibly observe the change. Everything outside that set
//! is bitwise-unaffected and can be spliced over from the old matrices via
//! [`PairMatrices::splice`](crate::PairMatrices::splice).
//!
//! # Exactness argument
//!
//! Path exploration from a source `a` is a deterministic trace: a sequence
//! of stats-record reads whose every step is a function of the records
//! read so far. Crucially, the trace consumes only a *slice* of each
//! record: the edge-list shape, each edge's traversability (`rc > 0` —
//! the RC value itself is never multiplied), and the `rc_factor`/`w_back`
//! bits that enter the path products. Cardinalities are read exactly once
//! per row, *after* exploration, when the coverage row is written as
//! `Card(b) · product`. Both kernels record the exact set of elements each
//! source's trace consulted ([`SourceResult::reads`](crate::paths::
//! SourceResult)), and the matrices persist it per row together with the
//! raw path products. So:
//!
//! * if every element in row `a`'s recorded read set carries bit-identical
//!   *exploration-relevant* bits in the old and new versions, the new
//!   trace reads the same bits at every step and is identical end to end —
//!   products, pruning decisions, expansion counts, truncation flags, and
//!   the read set itself;
//! * the coverage row-write is then redone by the splice for *every* row
//!   from the stored products under the new cardinalities — the exact
//!   multiply a cold pass performs — so cardinality bits never force a
//!   re-exploration at all.
//!
//! The plan therefore marks exactly the rows whose read set intersects the
//! set of elements whose exploration-relevant bits differ ("touched"). A
//! cardinality-only delta in which every affected `rc_factor` stays
//! clamped at 1 (the common data-growth case: RC ≤ 1 edges get *less*
//! selective as the element grows) and `w_back` — a count ratio, computed
//! count-natively by `SchemaStats::from_link_counts` — is unchanged marks
//! *zero* rows: the splice is then a pure rescale. This holds for both the
//! DFS and the layered kernel; the plan additionally refuses to fire when
//! the resolved kernel differs between versions (it cannot under graph
//! equality, but the guard keeps the invariant local).
//!
//! The plan only applies when the two versions share the same
//! [`SchemaGraph`](schema_summary_core::SchemaGraph) — structural changes
//! (added/removed/retyped elements, changed links) renumber or rewire the
//! element space and always fall back to a cold recompute, as does a delta
//! touching more than `max_fraction` of the elements (past that point the
//! splice saves little and the cold path's parallelism wins).

use schema_summary_core::{SchemaDelta, SchemaGraph, SchemaStats};

use crate::matrices::PairMatrices;
use crate::paths::PathConfig;

/// Bit-pattern equality over two CSR `f64` lanes of equal length.
fn lane_bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The outcome of [`plan_delta`]: which matrix rows a warm refresh must
/// recompute, and how big the delta footprint was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPlan {
    /// `recompute[e]` is true iff source row `e` must be re-explored.
    pub recompute: Vec<bool>,
    /// Number of elements whose exploration-relevant record bits differ
    /// between versions.
    pub touched: usize,
    /// Number of rows marked for re-exploration (popcount of `recompute`).
    pub rows: usize,
    /// Whether any element's cardinality bits changed. The splice rebuilds
    /// every copied row's coverage from the stored path products, so this
    /// costs no re-exploration — but it does mean copied rows' coverage
    /// *values* may differ from the old matrices, which downstream
    /// row-reuse (e.g. multi-level patching) must treat as changed.
    pub rescaled: bool,
}

impl DeltaPlan {
    /// True when the spliced matrices are guaranteed bitwise equal to the
    /// old ones (nothing to re-explore *and* no cardinality moved — the
    /// delta was a no-op at the bit level, e.g. a re-registration of
    /// identical stats).
    pub fn is_noop(&self) -> bool {
        self.rows == 0 && !self.rescaled
    }
}

/// Plan a warm matrix refresh for `delta`, or return `None` when the delta
/// cannot be served warm and the caller must recompute cold.
///
/// Warm eligibility requires all of:
///
/// * the delta has no structural changes (`old_graph == new_graph` and the
///   delta lists no added/removed/retyped elements or changed value links);
/// * both stats cover the same element space as the graph, and
///   `old_matrices` (the matrices computed over `old_stats`, whose rows the
///   splice will reuse) carry per-source read sets of the same shape;
/// * the path kernel resolves identically for both versions (automatic
///   under graph equality, asserted anyway);
/// * the re-exploration set covers at most `max_fraction` of all elements
///   (`max_fraction` outside `(0, 1]` disables that guard). Pure-rescale
///   plans (zero rows) always qualify: their splice costs one multiply per
///   matrix cell, no matter how many cardinalities moved.
///
/// An empty delta yields a zero-row plan (see [`DeltaPlan::is_noop`]).
// Two (graph, stats) versions plus the old matrices and knobs: the arity
// is the problem's, and bundling would just move the names into a struct
// every caller builds inline.
#[allow(clippy::too_many_arguments)]
pub fn plan_delta(
    delta: &SchemaDelta,
    old_graph: &SchemaGraph,
    old_stats: &SchemaStats,
    new_graph: &SchemaGraph,
    new_stats: &SchemaStats,
    old_matrices: &PairMatrices,
    config: &PathConfig,
    max_fraction: f64,
) -> Option<DeltaPlan> {
    let n = new_graph.len();
    if delta.is_empty() {
        return Some(DeltaPlan {
            recompute: vec![false; n],
            touched: 0,
            rows: 0,
            rescaled: false,
        });
    }
    if !delta.added_elements.is_empty()
        || !delta.removed_elements.is_empty()
        || !delta.retyped_elements.is_empty()
        || !delta.added_value_links.is_empty()
        || !delta.removed_value_links.is_empty()
    {
        return None;
    }
    if old_graph != new_graph {
        return None;
    }
    if old_stats.len() != n || new_stats.len() != n {
        return None;
    }
    if config.effective_kernel(old_stats) != config.effective_kernel(new_stats) {
        return None;
    }

    // Touched = elements whose *exploration-relevant* record bits differ:
    // edge-list shape, per-edge traversability (the kernels read `rc` only
    // through `rc > 0` gates), and the `rc_factor`/`w_back` bits the path
    // products multiply. Comparing bits (not ==) keeps the exactness
    // argument airtight: equal-but-for-NaN or signed-zero differences
    // still force a recompute of affected rows. Cardinality bits (and the
    // RC-value drift they induce at unchanged positivity, e.g. under a
    // clamped `rc_factor`) are deliberately excluded — the splice redoes
    // every coverage row-write from the stored path products, which is the
    // only place cardinalities are read.
    let mut touched_set = vec![false; n];
    let mut touched = 0usize;
    let mut rescaled = false;
    for e in new_graph.element_ids() {
        let same = old_stats.degree(e) == new_stats.degree(e)
            && old_stats.edge_neighbors(e) == new_stats.edge_neighbors(e)
            && old_stats
                .edge_rcs(e)
                .iter()
                .zip(new_stats.edge_rcs(e))
                .all(|(a, b)| (*a > 0.0) == (*b > 0.0))
            && lane_bits_eq(old_stats.edge_rc_factors(e), new_stats.edge_rc_factors(e))
            && lane_bits_eq(old_stats.edge_w_backs(e), new_stats.edge_w_backs(e));
        if !same {
            touched_set[e.index()] = true;
            touched += 1;
        }
        rescaled |= old_stats.card(e).to_bits() != new_stats.card(e).to_bits();
    }

    // Recompute set: the rows whose recorded read trace consulted a touched
    // element. Note this is much tighter than "within max_edges hops of a
    // touched element": a far-away fan-out change leaves every row that
    // never read it untouched, even in a graph whose diameter is inside the
    // exploration horizon — and a pure cardinality delta touches no rows at
    // all.
    let recompute = old_matrices.rows_reading(&touched_set)?;
    let rows = recompute.iter().filter(|&&b| b).count();
    if max_fraction > 0.0 && max_fraction <= 1.0 && (rows as f64) > max_fraction * (n as f64) {
        return None;
    }
    Some(DeltaPlan {
        recompute,
        touched,
        rows,
        rescaled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::PairMatrices;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    /// Fully-connected fixture: every structural link carries instance
    /// counts, so every source's trace reads the whole 5-element graph.
    /// Element ids: root=0, A=1, x=2, B=3, y=4.
    fn fixture() -> (SchemaGraph, Vec<u64>, Vec<LinkCount>) {
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "A", SchemaType::set_of_rcd())
            .unwrap();
        let x = b.add_child(a, "x", SchemaType::simple_str()).unwrap();
        let bb = b
            .add_child(b.root(), "B", SchemaType::set_of_rcd())
            .unwrap();
        let y = b.add_child(bb, "y", SchemaType::simple_str()).unwrap();
        b.add_value_link(x, y).unwrap();
        let g = b.build().unwrap();
        let root = g.root();
        let cards = vec![1, 10, 30, 8, 24];
        let lc = |from, to, count| LinkCount { from, to, count };
        let links = vec![
            lc(root, a, 10),
            lc(a, x, 30),
            lc(root, bb, 8),
            lc(bb, y, 24),
            lc(x, y, 8),
        ];
        (g, cards, links)
    }

    /// Sparse fixture: structural links carry zero instances, so only the
    /// value link `x ↔ y` (count 60, `RC(x→y) = 2` — an *unclamped*
    /// `rc_factor`) is traversable. Sources root/A/B read nothing beyond
    /// themselves.
    fn sparse_fixture() -> (SchemaGraph, Vec<u64>, Vec<LinkCount>) {
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "A", SchemaType::set_of_rcd())
            .unwrap();
        let x = b.add_child(a, "x", SchemaType::simple_str()).unwrap();
        let bb = b
            .add_child(b.root(), "B", SchemaType::set_of_rcd())
            .unwrap();
        let y = b.add_child(bb, "y", SchemaType::simple_str()).unwrap();
        b.add_value_link(x, y).unwrap();
        let g = b.build().unwrap();
        let cards = vec![1, 10, 30, 8, 24];
        let links = vec![LinkCount {
            from: x,
            to: y,
            count: 60,
        }];
        (g, cards, links)
    }

    fn delta_for(g: &SchemaGraph, old: &SchemaStats, new: &SchemaStats) -> SchemaDelta {
        SchemaDelta::compute(g, old, g, new)
    }

    #[test]
    fn empty_delta_is_a_noop_plan() {
        let (g, cards, links) = fixture();
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let config = PathConfig::default();
        let m = PairMatrices::compute(&s, &config);
        let d = delta_for(&g, &s, &s);
        let plan = plan_delta(&d, &g, &s, &g, &s, &m, &config, 0.25).unwrap();
        assert!(plan.is_noop());
        assert!(!plan.rescaled);
        assert_eq!(plan.recompute, vec![false; g.len()]);
    }

    #[test]
    fn cardinality_growth_re_explores_nothing() {
        let (g, cards, links) = fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let mut new_cards = cards.clone();
        new_cards[4] = 48; // y grows; its outgoing RCs (≤ 1) stay clamped
        let new = SchemaStats::from_link_counts(&g, &new_cards, &links).unwrap();
        let d = delta_for(&g, &old, &new);
        assert!(!d.is_empty());
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let plan = plan_delta(&d, &g, &old, &g, &new, &old_m, &config, 1.0).unwrap();
        // No exploration record moved: the clamp absorbs the RC drift and
        // w_back is a count ratio. The splice is a pure coverage rescale.
        assert_eq!(plan.rows, 0);
        assert_eq!(plan.touched, 0);
        assert!(plan.rescaled);
        assert!(!plan.is_noop());
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute(&new, &config);
        assert!(warm.bitwise_eq(&cold));
        // The rescale is not a copy: y's coverage column actually moved.
        assert!(!warm.bitwise_eq(&old_m));
    }

    #[test]
    fn fanout_delta_marks_exactly_the_reading_rows() {
        let (g, cards, links) = sparse_fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let mut new_links = links.clone();
        new_links[0].count = 90; // RC(x→y): 2 → 3, an unclamped factor
        let new = SchemaStats::from_link_counts(&g, &cards, &new_links).unwrap();
        let d = delta_for(&g, &old, &new);
        assert!(!d.is_empty());
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let plan = plan_delta(&d, &g, &old, &g, &new, &old_m, &config, 1.0).unwrap();
        // Both ends of the value link see an unclamped rc_factor move
        // (RC(y→x) = 2.5 → 3.75 as well), and only the x and y traces read
        // either: root, A, and B sit behind zero-count structural links
        // and keep their rows.
        assert_eq!(plan.touched, 2);
        assert_eq!(plan.recompute, vec![false, false, true, false, true]);
        assert_eq!(plan.rows, 2);
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute(&new, &config);
        assert!(warm.bitwise_eq(&cold));
    }

    #[test]
    fn oversized_delta_falls_back() {
        let (g, cards, links) = sparse_fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let mut new_links = links.clone();
        new_links[0].count = 90;
        let new = SchemaStats::from_link_counts(&g, &cards, &new_links).unwrap();
        let d = delta_for(&g, &old, &new);
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        // 2 of 5 rows re-explore; a 25% budget refuses, a disabled guard
        // accepts.
        assert!(plan_delta(&d, &g, &old, &g, &new, &old_m, &config, 0.25).is_none());
        assert!(plan_delta(&d, &g, &old, &g, &new, &old_m, &config, 0.0).is_some());
    }

    #[test]
    fn pure_rescale_bypasses_the_fraction_guard() {
        let (g, cards, links) = fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let new = old.scaled(2.0);
        let d = delta_for(&g, &old, &new);
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        // Proportional growth leaves every RC (and thus every exploration
        // record) bit-identical: zero rows, so even the tightest guard
        // admits it.
        let plan = plan_delta(&d, &g, &old, &g, &new, &old_m, &config, 0.01).unwrap();
        assert_eq!(plan.rows, 0);
        assert!(plan.rescaled);
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute(&new, &config);
        assert!(warm.bitwise_eq(&cold));
    }

    #[test]
    fn structural_delta_falls_back() {
        let (g, cards, links) = fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "A", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(a, "x", SchemaType::simple_str()).unwrap();
        let g2 = b.build().unwrap();
        let s2 = SchemaStats::uniform(&g2);
        let d = SchemaDelta::compute(&g, &old, &g2, &s2);
        assert!(plan_delta(&d, &g, &old, &g2, &s2, &old_m, &config, 1.0).is_none());
    }

    #[test]
    fn spliced_plan_matches_cold_bitwise() {
        let (g, cards, links) = fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let mut new_cards = cards.clone();
        // Shrinking A pushes RC(A→x) = 3 to 6: its unclamped rc_factor
        // moves, so this delta mixes re-explored rows with rescaled ones.
        new_cards[1] = 5;
        let new = SchemaStats::from_link_counts(&g, &new_cards, &links).unwrap();
        let d = delta_for(&g, &old, &new);
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let plan = plan_delta(&d, &g, &old, &g, &new, &old_m, &config, 1.0).unwrap();
        assert!(plan.rows >= 1);
        assert!(plan.rescaled);
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute(&new, &config);
        assert!(warm.bitwise_eq(&cold));
    }
}
