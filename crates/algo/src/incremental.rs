//! Incremental maintenance planning for schema deltas (paper §3.3).
//!
//! A [`SchemaDelta`](schema_summary_core::SchemaDelta) tells us *what* changed
//! between two schema versions; this module turns that into a *plan*: the
//! exact set of [`PairMatrices`](crate::PairMatrices) source rows whose
//! exploration could possibly observe the change. Everything outside that set
//! is bitwise-unaffected and can be spliced over from the old matrices via
//! [`PairMatrices::splice`](crate::PairMatrices::splice).
//!
//! # Exactness argument
//!
//! Path exploration from a source `a` is a deterministic trace: a sequence
//! of stats-record reads whose every step is a function of the records
//! read so far. Crucially, the trace consumes only a *slice* of each
//! record: the edge-list shape, each edge's traversability (`rc > 0` —
//! the RC value itself is never multiplied), and the `rc_factor`/`w_back`
//! bits that enter the path products. Cardinalities are read exactly once
//! per row, *after* exploration, when the coverage row is written as
//! `Card(b) · product`. Both kernels record the exact set of elements each
//! source's trace consulted ([`SourceResult::reads`](crate::paths::
//! SourceResult)), and the matrices persist it per row together with the
//! raw path products. So:
//!
//! * if every element in row `a`'s recorded read set carries bit-identical
//!   *exploration-relevant* bits in the old and new versions, the new
//!   trace reads the same bits at every step and is identical end to end —
//!   products, pruning decisions, expansion counts, truncation flags, and
//!   the read set itself;
//! * the coverage row-write is then redone by the splice for *every* row
//!   from the stored products under the new cardinalities — the exact
//!   multiply a cold pass performs — so cardinality bits never force a
//!   re-exploration at all.
//!
//! The plan therefore marks exactly the rows whose read set intersects the
//! set of elements whose exploration-relevant bits differ ("touched"). A
//! cardinality-only delta in which every affected `rc_factor` stays
//! clamped at 1 (the common data-growth case: RC ≤ 1 edges get *less*
//! selective as the element grows) and `w_back` — a count ratio, computed
//! count-natively by `SchemaStats::from_link_counts` — is unchanged marks
//! *zero* rows: the splice is then a pure rescale. This holds for both the
//! DFS and the layered kernel; the plan additionally refuses to fire when
//! the resolved kernel differs between versions (it cannot under graph
//! equality, but the guard keeps the invariant local).
//!
//! The plan applies to two shapes of delta, routed by
//! [`DeltaClass`](schema_summary_core::DeltaClass):
//!
//! * **same-graph deltas** (`Rescale` / `EdgeTouch`): both versions share the
//!   [`SchemaGraph`](schema_summary_core::SchemaGraph), and the plan marks
//!   the rows whose traces read a changed record;
//! * **additive structural deltas** (`AdditiveStructural`): the new graph
//!   strictly *extends* the old one — every old element keeps its id, label,
//!   type, and parent, and new elements/links only append. New source rows
//!   are always recomputed (there is no old row to splice), and old rows
//!   re-explore exactly when their recorded read set touches a growth point
//!   (an element whose edge slice gained a neighbor). Everything else copies
//!   over bitwise: an untouched old row's trace never visits a new element,
//!   so its affinity/coverage in the new columns is exactly the `+0.0` a
//!   cold pass writes for unreached targets.
//!
//! `Destructive` deltas (removed/retyped elements, removed links) renumber
//! or rewire the element space and always fall back to a cold recompute, as
//! does a delta touching more than `max_fraction` of the elements (past that
//! point the splice saves little and the cold path's parallelism wins).

use schema_summary_core::{DeltaClass, SchemaDelta, SchemaGraph, SchemaStats};

use crate::matrices::PairMatrices;
use crate::paths::PathConfig;

/// The outcome of [`plan_delta`]: which matrix rows a warm refresh must
/// recompute, and how big the delta footprint was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPlan {
    /// `recompute[e]` is true iff source row `e` must be re-explored.
    pub recompute: Vec<bool>,
    /// Number of elements whose exploration-relevant record bits differ
    /// between versions.
    pub touched: usize,
    /// Number of rows marked for re-exploration (popcount of `recompute`).
    pub rows: usize,
    /// Whether any element's cardinality bits changed. The splice rebuilds
    /// every copied row's coverage from the stored path products, so this
    /// costs no re-exploration — but it does mean copied rows' coverage
    /// *values* may differ from the old matrices, which downstream
    /// row-reuse (e.g. multi-level patching) must treat as changed.
    pub rescaled: bool,
    /// Number of elements appended by an additive structural delta
    /// (`new_len - old_len`). Zero for same-graph plans and for link-only
    /// growth; when non-zero the splice *resizes* the matrices, computing
    /// the appended source rows fresh.
    pub grown: usize,
}

impl DeltaPlan {
    /// True when the spliced matrices are guaranteed bitwise equal to the
    /// old ones (nothing to re-explore *and* no cardinality moved — the
    /// delta was a no-op at the bit level, e.g. a re-registration of
    /// identical stats).
    pub fn is_noop(&self) -> bool {
        self.rows == 0 && !self.rescaled
    }
}

/// Plan a warm matrix refresh for `delta`, or return `None` when the delta
/// cannot be served warm and the caller must recompute cold.
///
/// Warm eligibility requires all of:
///
/// * the delta has no structural changes (`old_graph == new_graph` and the
///   delta lists no added/removed/retyped elements or changed value links);
/// * both stats cover the same element space as the graph, and
///   `old_matrices` (the matrices computed over `old_stats`, whose rows the
///   splice will reuse) carry per-source read sets of the same shape;
/// * the path kernel resolves identically for both versions (automatic
///   under graph equality, asserted anyway);
/// * the re-exploration set covers at most `max_fraction` of all elements
///   (`max_fraction` outside `(0, 1]` disables that guard). Pure-rescale
///   plans (zero rows) always qualify: their splice costs one multiply per
///   matrix cell, no matter how many cardinalities moved.
///
/// An empty delta yields a zero-row plan (see [`DeltaPlan::is_noop`]).
// Two (graph, stats) versions plus the old matrices and knobs: the arity
// is the problem's, and bundling would just move the names into a struct
// every caller builds inline.
#[allow(clippy::too_many_arguments)]
pub fn plan_delta(
    delta: &SchemaDelta,
    old_graph: &SchemaGraph,
    old_stats: &SchemaStats,
    new_graph: &SchemaGraph,
    new_stats: &SchemaStats,
    old_matrices: &PairMatrices,
    config: &PathConfig,
    max_fraction: f64,
) -> Option<DeltaPlan> {
    let n = new_graph.len();
    if delta.is_empty() {
        return Some(DeltaPlan {
            recompute: vec![false; n],
            touched: 0,
            rows: 0,
            rescaled: false,
            grown: 0,
        });
    }
    match delta.class {
        DeltaClass::Destructive => return None,
        DeltaClass::AdditiveStructural => {
            return plan_grown(
                old_graph,
                old_stats,
                new_graph,
                new_stats,
                old_matrices,
                config,
                max_fraction,
            );
        }
        DeltaClass::Rescale | DeltaClass::EdgeTouch => {}
    }
    if old_graph != new_graph {
        return None;
    }
    if old_stats.len() != n || new_stats.len() != n {
        return None;
    }
    if config.effective_kernel(old_stats) != config.effective_kernel(new_stats) {
        return None;
    }

    // Touched = elements whose *exploration-relevant* record bits differ:
    // edge-list shape, per-edge traversability (the kernels read `rc` only
    // through `rc > 0` gates), and the `rc_factor`/`w_back` bits the path
    // products multiply — exactly the slice `SchemaStats::
    // exploration_bits_eq` compares. Comparing bits (not ==) keeps the
    // exactness argument airtight: equal-but-for-NaN or signed-zero
    // differences still force a recompute of affected rows. Cardinality
    // bits (and the RC-value drift they induce at unchanged positivity,
    // e.g. under a clamped `rc_factor`) are deliberately excluded — the
    // splice redoes every coverage row-write from the stored path
    // products, which is the only place cardinalities are read.
    let mut touched_set = vec![false; n];
    let mut touched = 0usize;
    let mut rescaled = false;
    for e in new_graph.element_ids() {
        if !old_stats.exploration_bits_eq(new_stats, e) {
            touched_set[e.index()] = true;
            touched += 1;
        }
        rescaled |= old_stats.card(e).to_bits() != new_stats.card(e).to_bits();
    }

    // Recompute set: the rows whose recorded read trace consulted a touched
    // element. Note this is much tighter than "within max_edges hops of a
    // touched element": a far-away fan-out change leaves every row that
    // never read it untouched, even in a graph whose diameter is inside the
    // exploration horizon — and a pure cardinality delta touches no rows at
    // all.
    let recompute = old_matrices.rows_reading(&touched_set)?;
    let rows = recompute.iter().filter(|&&b| b).count();
    if max_fraction > 0.0 && max_fraction <= 1.0 && (rows as f64) > max_fraction * (n as f64) {
        return None;
    }
    Some(DeltaPlan {
        recompute,
        touched,
        rows,
        rescaled,
        grown: 0,
    })
}

/// Plan a warm refresh for an *additive structural* delta.
///
/// Requires the new graph to be an **identity-prefix extension** of the old
/// one: `new_len ≥ old_len` and every old element keeps its id, label, type,
/// and parent (the builder assigns ids append-only, so re-declaring the old
/// schema first and appending the new elements/links after produces exactly
/// this shape). Old rows are diffed on exploration bits against the new
/// stats — a row adjacent to a growth point sees its edge slice change and
/// is naturally touched — and the recompute set is their recorded readers
/// plus every appended row. The `max_fraction` guard counts grown rows.
///
/// Returns `None` (cold fallback) when the extension is not identity-prefix
/// (renumbered or reordered old elements), when shapes or kernels disagree,
/// or when the guard trips.
fn plan_grown(
    old_graph: &SchemaGraph,
    old_stats: &SchemaStats,
    new_graph: &SchemaGraph,
    new_stats: &SchemaStats,
    old_matrices: &PairMatrices,
    config: &PathConfig,
    max_fraction: f64,
) -> Option<DeltaPlan> {
    let n = new_graph.len();
    let n_old = old_graph.len();
    if n < n_old || old_stats.len() != n_old || new_stats.len() != n {
        return None;
    }
    // Identity-prefix check: the old element space must embed unchanged at
    // ids `0..n_old`. Labels/types/parents pin each old element in place;
    // link growth is visible through the stats diff below.
    let prefix_intact = old_graph.element_ids().all(|e| {
        old_graph.label(e) == new_graph.label(e)
            && old_graph.ty(e) == new_graph.ty(e)
            && old_graph.parent(e) == new_graph.parent(e)
    });
    if !prefix_intact {
        return None;
    }
    // Growth can move the auto-resolved kernel (n crosses the layered
    // threshold): expansions metadata differs between kernels even when
    // values agree, so a flip forces a cold pass.
    if config.effective_kernel(old_stats) != config.effective_kernel(new_stats) {
        return None;
    }

    // Diff old rows on replay bits. A row whose edge slice gained a
    // *traversable* neighbor (a populated growth endpoint) diverges; a row
    // whose `w_back` bits moved because a neighbor's in-weight sum changed
    // differs in lane bits. Dormant growth — new edges with no instances
    // yet (`rc == 0`) — leaves a row replayable: every kernel skips
    // non-traversable edges before its budget, expansion count, or read
    // set, so the row's trace is bitwise invariant. Rows passing the
    // comparison never reach a new element — traversable edges into the
    // new suffix exist only in touched rows.
    let mut touched_old = vec![false; n_old];
    let mut touched = 0usize;
    let mut rescaled = false;
    for e in old_graph.element_ids() {
        if !old_stats.replay_bits_eq(new_stats, e) {
            touched_old[e.index()] = true;
            touched += 1;
        }
        rescaled |= old_stats.card(e).to_bits() != new_stats.card(e).to_bits();
    }

    let mut recompute = old_matrices.rows_reading(&touched_old)?;
    recompute.resize(n, true); // every appended source row computes fresh
    let rows = recompute.iter().filter(|&&b| b).count();
    if max_fraction > 0.0 && max_fraction <= 1.0 && (rows as f64) > max_fraction * (n as f64) {
        return None;
    }
    Some(DeltaPlan {
        recompute,
        touched,
        rows,
        rescaled,
        grown: n - n_old,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::PairMatrices;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    /// Fully-connected fixture: every structural link carries instance
    /// counts, so every source's trace reads the whole 5-element graph.
    /// Element ids: root=0, A=1, x=2, B=3, y=4.
    fn fixture() -> (SchemaGraph, Vec<u64>, Vec<LinkCount>) {
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "A", SchemaType::set_of_rcd())
            .unwrap();
        let x = b.add_child(a, "x", SchemaType::simple_str()).unwrap();
        let bb = b
            .add_child(b.root(), "B", SchemaType::set_of_rcd())
            .unwrap();
        let y = b.add_child(bb, "y", SchemaType::simple_str()).unwrap();
        b.add_value_link(x, y).unwrap();
        let g = b.build().unwrap();
        let root = g.root();
        let cards = vec![1, 10, 30, 8, 24];
        let lc = |from, to, count| LinkCount { from, to, count };
        let links = vec![
            lc(root, a, 10),
            lc(a, x, 30),
            lc(root, bb, 8),
            lc(bb, y, 24),
            lc(x, y, 8),
        ];
        (g, cards, links)
    }

    /// Sparse fixture: structural links carry zero instances, so only the
    /// value link `x ↔ y` (count 60, `RC(x→y) = 2` — an *unclamped*
    /// `rc_factor`) is traversable. Sources root/A/B read nothing beyond
    /// themselves.
    fn sparse_fixture() -> (SchemaGraph, Vec<u64>, Vec<LinkCount>) {
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "A", SchemaType::set_of_rcd())
            .unwrap();
        let x = b.add_child(a, "x", SchemaType::simple_str()).unwrap();
        let bb = b
            .add_child(b.root(), "B", SchemaType::set_of_rcd())
            .unwrap();
        let y = b.add_child(bb, "y", SchemaType::simple_str()).unwrap();
        b.add_value_link(x, y).unwrap();
        let g = b.build().unwrap();
        let cards = vec![1, 10, 30, 8, 24];
        let links = vec![LinkCount {
            from: x,
            to: y,
            count: 60,
        }];
        (g, cards, links)
    }

    fn delta_for(g: &SchemaGraph, old: &SchemaStats, new: &SchemaStats) -> SchemaDelta {
        SchemaDelta::compute(g, old, g, new)
    }

    #[test]
    fn empty_delta_is_a_noop_plan() {
        let (g, cards, links) = fixture();
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let config = PathConfig::default();
        let m = PairMatrices::compute(&s, &config);
        let d = delta_for(&g, &s, &s);
        let plan = plan_delta(&d, &g, &s, &g, &s, &m, &config, 0.25).unwrap();
        assert!(plan.is_noop());
        assert!(!plan.rescaled);
        assert_eq!(plan.recompute, vec![false; g.len()]);
    }

    #[test]
    fn cardinality_growth_re_explores_nothing() {
        let (g, cards, links) = fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let mut new_cards = cards.clone();
        new_cards[4] = 48; // y grows; its outgoing RCs (≤ 1) stay clamped
        let new = SchemaStats::from_link_counts(&g, &new_cards, &links).unwrap();
        let d = delta_for(&g, &old, &new);
        assert!(!d.is_empty());
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let plan = plan_delta(&d, &g, &old, &g, &new, &old_m, &config, 1.0).unwrap();
        // No exploration record moved: the clamp absorbs the RC drift and
        // w_back is a count ratio. The splice is a pure coverage rescale.
        assert_eq!(plan.rows, 0);
        assert_eq!(plan.touched, 0);
        assert!(plan.rescaled);
        assert!(!plan.is_noop());
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute(&new, &config);
        assert!(warm.bitwise_eq(&cold));
        // The rescale is not a copy: y's coverage column actually moved.
        assert!(!warm.bitwise_eq(&old_m));
    }

    #[test]
    fn fanout_delta_marks_exactly_the_reading_rows() {
        let (g, cards, links) = sparse_fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let mut new_links = links.clone();
        new_links[0].count = 90; // RC(x→y): 2 → 3, an unclamped factor
        let new = SchemaStats::from_link_counts(&g, &cards, &new_links).unwrap();
        let d = delta_for(&g, &old, &new);
        assert!(!d.is_empty());
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let plan = plan_delta(&d, &g, &old, &g, &new, &old_m, &config, 1.0).unwrap();
        // Both ends of the value link see an unclamped rc_factor move
        // (RC(y→x) = 2.5 → 3.75 as well), and only the x and y traces read
        // either: root, A, and B sit behind zero-count structural links
        // and keep their rows.
        assert_eq!(plan.touched, 2);
        assert_eq!(plan.recompute, vec![false, false, true, false, true]);
        assert_eq!(plan.rows, 2);
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute(&new, &config);
        assert!(warm.bitwise_eq(&cold));
    }

    #[test]
    fn oversized_delta_falls_back() {
        let (g, cards, links) = sparse_fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let mut new_links = links.clone();
        new_links[0].count = 90;
        let new = SchemaStats::from_link_counts(&g, &cards, &new_links).unwrap();
        let d = delta_for(&g, &old, &new);
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        // 2 of 5 rows re-explore; a 25% budget refuses, a disabled guard
        // accepts.
        assert!(plan_delta(&d, &g, &old, &g, &new, &old_m, &config, 0.25).is_none());
        assert!(plan_delta(&d, &g, &old, &g, &new, &old_m, &config, 0.0).is_some());
    }

    #[test]
    fn pure_rescale_bypasses_the_fraction_guard() {
        let (g, cards, links) = fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let new = old.scaled(2.0);
        let d = delta_for(&g, &old, &new);
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        // Proportional growth leaves every RC (and thus every exploration
        // record) bit-identical: zero rows, so even the tightest guard
        // admits it.
        let plan = plan_delta(&d, &g, &old, &g, &new, &old_m, &config, 0.01).unwrap();
        assert_eq!(plan.rows, 0);
        assert!(plan.rescaled);
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute(&new, &config);
        assert!(warm.bitwise_eq(&cold));
    }

    #[test]
    fn structural_delta_falls_back() {
        let (g, cards, links) = fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "A", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(a, "x", SchemaType::simple_str()).unwrap();
        let g2 = b.build().unwrap();
        let s2 = SchemaStats::uniform(&g2);
        let d = SchemaDelta::compute(&g, &old, &g2, &s2);
        // Dropping elements is destructive: no warm plan exists.
        assert_eq!(d.class, DeltaClass::Destructive);
        assert!(plan_delta(&d, &g, &old, &g2, &s2, &old_m, &config, 1.0).is_none());
    }

    /// The fixture graph extended identity-prefix style: the same five
    /// elements re-declared in order, plus a new element `z` under `B` and
    /// a value link `z → x`. Ids: root=0, A=1, x=2, B=3, y=4, z=5.
    fn grown_fixture() -> (SchemaGraph, Vec<u64>, Vec<LinkCount>) {
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "A", SchemaType::set_of_rcd())
            .unwrap();
        let x = b.add_child(a, "x", SchemaType::simple_str()).unwrap();
        let bb = b
            .add_child(b.root(), "B", SchemaType::set_of_rcd())
            .unwrap();
        let y = b.add_child(bb, "y", SchemaType::simple_str()).unwrap();
        let z = b.add_child(bb, "z", SchemaType::simple_str()).unwrap();
        b.add_value_link(x, y).unwrap();
        b.add_value_link(z, x).unwrap();
        let g = b.build().unwrap();
        let root = g.root();
        let cards = vec![1, 10, 30, 8, 24, 16];
        let lc = |from, to, count| LinkCount { from, to, count };
        let links = vec![
            lc(root, a, 10),
            lc(a, x, 30),
            lc(root, bb, 8),
            lc(bb, y, 24),
            lc(x, y, 8),
            lc(bb, z, 16),
            lc(z, x, 16),
        ];
        (g, cards, links)
    }

    #[test]
    fn grown_plan_splices_bitwise_to_cold() {
        let (g, cards, links) = fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let (g2, new_cards, new_links) = grown_fixture();
        let new = SchemaStats::from_link_counts(&g2, &new_cards, &new_links).unwrap();
        let d = SchemaDelta::compute(&g, &old, &g2, &new);
        assert_eq!(d.class, DeltaClass::AdditiveStructural);
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let plan = plan_delta(&d, &g, &old, &g2, &new, &old_m, &config, 1.0).unwrap();
        assert_eq!(plan.grown, 1);
        // The appended row is always recomputed, plus the rows reading the
        // growth endpoints (B gained a child, x gained a referrer).
        assert!(plan.rows >= 1);
        assert!(plan.recompute[5]);
        assert!(!plan.rescaled); // old cardinalities untouched
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute(&new, &config);
        assert!(warm.bitwise_eq(&cold));
    }

    #[test]
    fn grown_plan_carries_rows_outside_the_growth_readers() {
        // Sparse base: zero-count structural links, so sources root/A/x/y
        // read nothing beyond their own traversable component. Growth adds
        // `w` under B behind a populated link: only B's edge slice gains a
        // traversable edge, only B's own trace read it, so root/A/x/y
        // carry over.
        let (g, cards, links) = sparse_fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "A", SchemaType::set_of_rcd())
            .unwrap();
        let x = b.add_child(a, "x", SchemaType::simple_str()).unwrap();
        let bb = b
            .add_child(b.root(), "B", SchemaType::set_of_rcd())
            .unwrap();
        let y = b.add_child(bb, "y", SchemaType::simple_str()).unwrap();
        let w = b.add_child(bb, "w", SchemaType::simple_str()).unwrap();
        b.add_value_link(x, y).unwrap();
        let g2 = b.build().unwrap();
        let mut new_cards = cards.clone();
        new_cards.push(12);
        let mut new_links = links.clone();
        new_links.push(LinkCount {
            from: bb,
            to: w,
            count: 6,
        });
        let new = SchemaStats::from_link_counts(&g2, &new_cards, &new_links).unwrap();
        let d = SchemaDelta::compute(&g, &old, &g2, &new);
        assert_eq!(d.class, DeltaClass::AdditiveStructural);
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let plan = plan_delta(&d, &g, &old, &g2, &new, &old_m, &config, 1.0).unwrap();
        assert_eq!(plan.grown, 1);
        assert_eq!(plan.touched, 1); // B only
        assert_eq!(
            plan.recompute,
            vec![false, false, false, true, false, true]
        );
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute(&new, &config);
        assert!(warm.bitwise_eq(&cold));
    }

    #[test]
    fn dormant_growth_recomputes_only_the_appended_rows() {
        // DDL before data: `w` lands under B with no instances, so the
        // B→w edge has count 0 and no kernel will ever traverse it. B's
        // row replays bit-for-bit over the grown stats, so the plan
        // recomputes nothing but the appended row itself.
        let (g, cards, links) = sparse_fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "A", SchemaType::set_of_rcd())
            .unwrap();
        let x = b.add_child(a, "x", SchemaType::simple_str()).unwrap();
        let bb = b
            .add_child(b.root(), "B", SchemaType::set_of_rcd())
            .unwrap();
        let y = b.add_child(bb, "y", SchemaType::simple_str()).unwrap();
        b.add_child(bb, "w", SchemaType::simple_str()).unwrap();
        b.add_value_link(x, y).unwrap();
        let g2 = b.build().unwrap();
        let mut new_cards = cards.clone();
        new_cards.push(12);
        let new = SchemaStats::from_link_counts(&g2, &new_cards, &links).unwrap();
        let d = SchemaDelta::compute(&g, &old, &g2, &new);
        assert_eq!(d.class, DeltaClass::AdditiveStructural);
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let plan = plan_delta(&d, &g, &old, &g2, &new, &old_m, &config, 1.0).unwrap();
        assert_eq!(plan.grown, 1);
        assert_eq!(plan.touched, 0);
        assert_eq!(plan.rows, 1);
        assert_eq!(
            plan.recompute,
            vec![false, false, false, false, false, true]
        );
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute(&new, &config);
        assert!(warm.bitwise_eq(&cold));
    }

    #[test]
    fn link_only_growth_plans_without_resize() {
        // Same element space, one appended value link y → A: class is
        // additive-structural but nothing grows, so the splice keeps its
        // shape and re-explores the link endpoints' readers only.
        let (g, cards, links) = sparse_fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "A", SchemaType::set_of_rcd())
            .unwrap();
        let x = b.add_child(a, "x", SchemaType::simple_str()).unwrap();
        let bb = b
            .add_child(b.root(), "B", SchemaType::set_of_rcd())
            .unwrap();
        let y = b.add_child(bb, "y", SchemaType::simple_str()).unwrap();
        b.add_value_link(x, y).unwrap();
        b.add_value_link(y, a).unwrap();
        let g2 = b.build().unwrap();
        let mut new_links = links.clone();
        new_links.push(LinkCount {
            from: y,
            to: a,
            count: 48,
        });
        let new = SchemaStats::from_link_counts(&g2, &cards, &new_links).unwrap();
        let d = SchemaDelta::compute(&g, &old, &g2, &new);
        assert_eq!(d.class, DeltaClass::AdditiveStructural);
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let plan = plan_delta(&d, &g, &old, &g2, &new, &old_m, &config, 1.0).unwrap();
        assert_eq!(plan.grown, 0);
        assert!(plan.rows >= 2); // at least the endpoints' own traces
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute(&new, &config);
        assert!(warm.bitwise_eq(&cold));
    }

    #[test]
    fn grown_plan_counts_appended_rows_against_the_fraction_guard() {
        let (g, cards, links) = fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let (g2, new_cards, new_links) = grown_fixture();
        let new = SchemaStats::from_link_counts(&g2, &new_cards, &new_links).unwrap();
        let d = SchemaDelta::compute(&g, &old, &g2, &new);
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let plan = plan_delta(&d, &g, &old, &g2, &new, &old_m, &config, 1.0).unwrap();
        let fraction = plan.rows as f64 / g2.len() as f64;
        // A guard just under the actual footprint refuses the plan.
        assert!(
            plan_delta(&d, &g, &old, &g2, &new, &old_m, &config, fraction - 0.05).is_none()
        );
        // Disabled guard accepts.
        assert!(plan_delta(&d, &g, &old, &g2, &new, &old_m, &config, 0.0).is_some());
    }

    #[test]
    fn spliced_plan_matches_cold_bitwise() {
        let (g, cards, links) = fixture();
        let old = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let mut new_cards = cards.clone();
        // Shrinking A pushes RC(A→x) = 3 to 6: its unclamped rc_factor
        // moves, so this delta mixes re-explored rows with rescaled ones.
        new_cards[1] = 5;
        let new = SchemaStats::from_link_counts(&g, &new_cards, &links).unwrap();
        let d = delta_for(&g, &old, &new);
        let config = PathConfig::default();
        let old_m = PairMatrices::compute(&old, &config);
        let plan = plan_delta(&d, &g, &old, &g, &new, &old_m, &config, 1.0).unwrap();
        assert!(plan.rows >= 1);
        assert!(plan.rescaled);
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute(&new, &config);
        assert!(warm.bitwise_eq(&cold));
    }
}
