//! The [`Summarizer`] facade: configuration plus cached intermediates.
//!
//! Importance scores, the all-pairs matrices, and the dominance set are
//! each computed at most once per summarizer and shared by every algorithm
//! invocation — the paper's Figure 7 likewise reuses `MaxImportance`'s
//! ranking and `MaxCoverage`'s dominance pairs inside `BalanceSummary`.

use crate::algorithms::{balance_summary, max_coverage, max_importance, SetSearch};
use crate::assignment::{assign_elements, summary_coverage, summary_importance};
use crate::builder::build_summary;
use crate::dominance::DominanceSet;
use crate::importance::{compute_importance, ImportanceConfig, ImportanceResult};
use crate::matrices::PairMatrices;
use crate::multilevel::{build_multi_level, MultiLevelSummary};
use crate::paths::PathConfig;
use schema_summary_core::{ElementId, SchemaError, SchemaGraph, SchemaStats, SchemaSummary};
use serde::{Deserialize, Serialize};

/// Which selection algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Algorithm {
    /// `MaxImportance` (Figure 4).
    MaxImportance,
    /// `MaxCoverage` (Figure 6).
    MaxCoverage,
    /// `BalanceSummary` (Figure 7) — the paper's recommended algorithm.
    #[default]
    Balance,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::MaxImportance => "importance",
            Algorithm::MaxCoverage => "coverage",
            Algorithm::Balance => "balance",
        })
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Accepts the CLI spellings: `balance`, `importance`, `coverage`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "balance" => Ok(Algorithm::Balance),
            "importance" => Ok(Algorithm::MaxImportance),
            "coverage" => Ok(Algorithm::MaxCoverage),
            other => Err(format!("unknown algorithm '{other}'")),
        }
    }
}

/// Combined configuration for all algorithm stages.
///
/// Implements `Hash + Eq` (floats compared by bit pattern) so services can
/// key memoized artifacts and cached results by the configuration itself
/// rather than a serialized form.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SummarizerConfig {
    /// Importance iteration parameters (Formula 1).
    pub importance: ImportanceConfig,
    /// Path enumeration parameters (Formulas 2–3).
    pub paths: PathConfig,
    /// `MaxCoverage` subset-search strategy.
    pub search: SetSearch,
}

/// Caching facade over a schema graph and its statistics.
pub struct Summarizer<'a> {
    graph: &'a SchemaGraph,
    stats: &'a SchemaStats,
    config: SummarizerConfig,
    importance: Option<ImportanceResult>,
    matrices: Option<PairMatrices>,
    dominance: Option<DominanceSet>,
}

impl<'a> Summarizer<'a> {
    /// Create a summarizer with the default configuration.
    pub fn new(graph: &'a SchemaGraph, stats: &'a SchemaStats) -> Self {
        Self::with_config(graph, stats, SummarizerConfig::default())
    }

    /// Create a summarizer with an explicit configuration.
    pub fn with_config(
        graph: &'a SchemaGraph,
        stats: &'a SchemaStats,
        config: SummarizerConfig,
    ) -> Self {
        Summarizer {
            graph,
            stats,
            config,
            importance: None,
            matrices: None,
            dominance: None,
        }
    }

    /// The schema graph being summarized.
    pub fn graph(&self) -> &SchemaGraph {
        self.graph
    }

    /// The statistics in use.
    pub fn stats(&self) -> &SchemaStats {
        self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &SummarizerConfig {
        &self.config
    }

    /// Importance scores (computed once, cached).
    pub fn importance(&mut self) -> &ImportanceResult {
        if self.importance.is_none() {
            self.importance = Some(compute_importance(
                self.graph,
                self.stats,
                &self.config.importance,
            ));
        }
        self.importance.as_ref().expect("just computed")
    }

    /// All-pairs affinity/coverage matrices (computed once, cached).
    pub fn matrices(&mut self) -> &PairMatrices {
        if self.matrices.is_none() {
            self.matrices = Some(PairMatrices::compute(self.stats, &self.config.paths));
        }
        self.matrices.as_ref().expect("just computed")
    }

    /// Dominance pairs (computed once, cached).
    pub fn dominance(&mut self) -> &DominanceSet {
        if self.dominance.is_none() {
            self.matrices(); // ensure
            self.dominance = Some(DominanceSet::compute(
                self.graph,
                self.stats,
                self.matrices.as_ref().expect("ensured above"),
            ));
        }
        self.dominance.as_ref().expect("just computed")
    }

    /// Select `k` elements with the given algorithm.
    pub fn select(
        &mut self,
        k: usize,
        algorithm: Algorithm,
    ) -> Result<Vec<ElementId>, SchemaError> {
        match algorithm {
            Algorithm::MaxImportance => {
                self.importance();
                max_importance(self.graph, self.importance.as_ref().expect("ensured"), k)
            }
            Algorithm::MaxCoverage => {
                self.matrices();
                self.dominance();
                max_coverage(
                    self.graph,
                    self.stats,
                    self.matrices.as_ref().expect("ensured"),
                    self.dominance.as_ref().expect("ensured"),
                    k,
                    self.config.search,
                )
            }
            Algorithm::Balance => {
                self.importance();
                self.dominance();
                balance_summary(
                    self.graph,
                    self.importance.as_ref().expect("ensured"),
                    self.dominance.as_ref().expect("ensured"),
                    k,
                )
            }
        }
    }

    /// Select `k` elements and materialize the summary.
    pub fn summarize(
        &mut self,
        k: usize,
        algorithm: Algorithm,
    ) -> Result<SchemaSummary, SchemaError> {
        let selected = self.select(k, algorithm)?;
        self.summarize_selection(&selected)
    }

    /// Build a multi-level summary: `sizes` are level sizes finest-first,
    /// strictly decreasing (e.g. `[15, 5]`). The finest level is selected
    /// by `algorithm`; coarser levels merge finer groups (Section 2's
    /// multi-level extension).
    pub fn multi_level(
        &mut self,
        sizes: &[usize],
        algorithm: Algorithm,
    ) -> Result<MultiLevelSummary, SchemaError> {
        let (&finest, coarser) = sizes.split_first().ok_or(SchemaError::BadSummarySize {
            requested: 0,
            available: self.graph.len().saturating_sub(1),
        })?;
        let selection = self.select(finest, algorithm)?;
        self.matrices();
        build_multi_level(
            self.graph,
            self.matrices.as_ref().expect("ensured"),
            &selection,
            coarser,
        )
    }

    /// Materialize a summary around an explicit selection (e.g. an expert's
    /// or a baseline's).
    pub fn summarize_selection(
        &mut self,
        selected: &[ElementId],
    ) -> Result<SchemaSummary, SchemaError> {
        self.matrices();
        build_summary(
            self.graph,
            self.matrices.as_ref().expect("ensured"),
            selected,
        )
    }

    /// Explain a summary produced against this summarizer's graph/stats:
    /// importance ranks, group compositions, dominance-based exclusions.
    pub fn explain(&mut self, summary: &SchemaSummary) -> crate::explain::Explanation {
        self.importance();
        self.matrices();
        self.dominance();
        crate::explain::explain(
            self.graph,
            self.stats,
            self.importance.as_ref().expect("ensured"),
            self.matrices.as_ref().expect("ensured"),
            self.dominance.as_ref().expect("ensured"),
            summary,
        )
    }

    /// Summary importance `R_SS` (Definition 3) of a selection.
    pub fn selection_importance(&mut self, selected: &[ElementId]) -> f64 {
        self.importance();
        summary_importance(
            self.graph,
            self.importance.as_ref().expect("ensured"),
            selected,
        )
    }

    /// Summary coverage `C_SS` (Definition 4) of a selection.
    pub fn selection_coverage(&mut self, selected: &[ElementId]) -> f64 {
        self.matrices();
        let m = self.matrices.as_ref().expect("ensured");
        let assignment = assign_elements(self.graph, m, selected);
        summary_coverage(self.graph, self.stats, m, selected, &assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::types::SchemaType;

    fn fixture() -> (SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(person, "name", SchemaType::simple_str())
            .unwrap();
        b.add_child(person, "age", SchemaType::simple_int())
            .unwrap();
        let auctions = b
            .add_child(b.root(), "auctions", SchemaType::rcd())
            .unwrap();
        let auction = b
            .add_child(auctions, "auction", SchemaType::set_of_rcd())
            .unwrap();
        let bidder = b
            .add_child(auction, "bidder", SchemaType::set_of_rcd())
            .unwrap();
        b.add_value_link(bidder, person).unwrap();
        let g = b.build().unwrap();
        let find = |l: &str| g.find_unique(l).unwrap();
        let mut cards = vec![0u64; g.len()];
        for (e, c) in [
            (g.root(), 1u64),
            (find("people"), 1),
            (find("person"), 200),
            (find("name"), 200),
            (find("age"), 180),
            (find("auctions"), 1),
            (find("auction"), 100),
            (find("bidder"), 600),
        ] {
            cards[e.index()] = c;
        }
        let links = vec![
            LinkCount {
                from: g.root(),
                to: find("people"),
                count: 1,
            },
            LinkCount {
                from: find("people"),
                to: find("person"),
                count: 200,
            },
            LinkCount {
                from: find("person"),
                to: find("name"),
                count: 200,
            },
            LinkCount {
                from: find("person"),
                to: find("age"),
                count: 180,
            },
            LinkCount {
                from: g.root(),
                to: find("auctions"),
                count: 1,
            },
            LinkCount {
                from: find("auctions"),
                to: find("auction"),
                count: 100,
            },
            LinkCount {
                from: find("auction"),
                to: find("bidder"),
                count: 600,
            },
            LinkCount {
                from: find("bidder"),
                to: find("person"),
                count: 600,
            },
        ];
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        (g, s)
    }

    #[test]
    fn all_algorithms_produce_valid_summaries() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        for alg in [
            Algorithm::MaxImportance,
            Algorithm::MaxCoverage,
            Algorithm::Balance,
        ] {
            let summary = sum.summarize(2, alg).unwrap();
            summary.validate(&g).unwrap();
            assert_eq!(summary.size(), 2, "{alg:?}");
        }
    }

    #[test]
    fn caches_are_reused() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let i1 = sum.importance().iterations;
        let i2 = sum.importance().iterations;
        assert_eq!(i1, i2);
        let _ = sum.matrices();
        let _ = sum.dominance();
        // Re-running select must not panic or recompute incorrectly.
        let a = sum.select(2, Algorithm::Balance).unwrap();
        let b = sum.select(2, Algorithm::Balance).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_behave_as_definitions_say() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let sel2 = sum.select(2, Algorithm::Balance).unwrap();
        let sel4 = sum.select(4, Algorithm::Balance).unwrap();
        // Both metrics are monotone in summary size for nested-ish picks.
        assert!(sum.selection_importance(&sel4) >= sum.selection_importance(&sel2));
        assert!(sum.selection_coverage(&sel4) >= sum.selection_coverage(&sel2) - 1e-9);
        assert!(sum.selection_importance(&sel2) > 0.0);
        assert!(sum.selection_coverage(&sel2) <= 1.0 + 1e-9);
    }

    #[test]
    fn explicit_selection_summary() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let person = g.find_unique("person").unwrap();
        let summary = sum.summarize_selection(&[person]).unwrap();
        summary.validate(&g).unwrap();
        assert_eq!(summary.size(), 1);
    }

    #[test]
    fn config_is_a_stable_map_key() {
        use std::collections::HashMap;
        let base = SummarizerConfig::default();
        let mut map = HashMap::new();
        map.insert(base.clone(), 1);
        // A clone is the same key; a changed float is a different one.
        assert_eq!(map.get(&SummarizerConfig::default()), Some(&1));
        let mut tweaked = base.clone();
        tweaked.importance.p = 0.75;
        assert_ne!(base, tweaked);
        assert_eq!(map.get(&tweaked), None);
        map.insert(tweaked.clone(), 2);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn bad_sizes_error() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        assert!(sum.summarize(0, Algorithm::Balance).is_err());
        assert!(sum.summarize(100, Algorithm::Balance).is_err());
    }
}
