//! Multi-level summaries (Section 2's extension: "an abstract element can
//! itself be represented by another abstract element, thus creating a
//! multi-level summary, which can be helpful for a user facing extremely
//! large schemas").
//!
//! A [`MultiLevelSummary`] stacks full summaries of strictly decreasing
//! sizes. Level 0 is the finest; each coarser level's abstract elements
//! partition the previous level's: every level-`i+1` group is a union of
//! level-`i` groups, so "drilling down" from a coarse abstract element
//! always reveals complete finer-grained components, never fragments.
//!
//! Construction selects the coarser level's representatives from among the
//! finer level's representatives (the BalanceSummary walk restricted to
//! them) and assigns each finer group to the coarser representative its
//! own representative has the highest affinity toward — the same rule the
//! paper uses for elements, lifted one level.

use crate::assignment::ElementAssigner;
use crate::matrices::PairMatrices;
use schema_summary_core::{AbstractId, ElementId, SchemaError, SchemaGraph, SchemaSummary};
use serde::{Deserialize, Serialize};

/// A stack of nested full summaries, finest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLevelSummary {
    levels: Vec<SchemaSummary>,
    /// `parent[i][g]` = index of the level-`i+1` group containing level-`i`
    /// group `g`. One entry per non-final level.
    parent: Vec<Vec<AbstractId>>,
}

impl MultiLevelSummary {
    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The summary at `level` (0 = finest).
    pub fn level(&self, level: usize) -> &SchemaSummary {
        &self.levels[level]
    }

    /// All levels, finest first.
    pub fn levels(&self) -> &[SchemaSummary] {
        &self.levels
    }

    /// Summary sizes per level, finest first — the `sizes` a caller would
    /// pass to rebuild this stack (level 0's size followed by the coarser
    /// sizes).
    pub fn sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.size()).collect()
    }

    /// The level-`level + 1` group containing level-`level` group `g`.
    pub fn parent_group(&self, level: usize, g: AbstractId) -> Option<AbstractId> {
        self.parent.get(level).map(|p| p[g.index()])
    }

    /// The level-`level` groups contained in level-`level + 1` group `g`
    /// ("drilling down" one level).
    pub fn child_groups(&self, level: usize, g: AbstractId) -> Vec<AbstractId> {
        match self.parent.get(level) {
            None => Vec::new(),
            Some(p) => p
                .iter()
                .enumerate()
                .filter(|&(_, &pg)| pg == g)
                .map(|(i, _)| AbstractId(i as u32))
                .collect(),
        }
    }

    /// Check that every pair of consecutive levels nests: each coarse group
    /// is exactly the union of its child groups' members.
    pub fn validate(&self, graph: &SchemaGraph) -> Result<(), SchemaError> {
        for level in &self.levels {
            level.validate(graph)?;
        }
        for (i, parents) in self.parent.iter().enumerate() {
            let fine = &self.levels[i];
            let coarse = &self.levels[i + 1];
            if parents.len() != fine.abstracts().len() {
                return Err(SchemaError::Invalid(format!(
                    "level {i} parent map has wrong length"
                )));
            }
            let mut union: Vec<Vec<ElementId>> = vec![Vec::new(); coarse.abstracts().len()];
            for (g, &pg) in parents.iter().enumerate() {
                union[pg.index()].extend_from_slice(&fine.abstracts()[g].members);
            }
            for (pg, members) in union.iter_mut().enumerate() {
                members.sort_unstable();
                if members != &coarse.abstracts()[pg].members {
                    return Err(SchemaError::Invalid(format!(
                        "level {} group a{pg} is not the union of its children",
                        i + 1
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Build a multi-level summary with the given level sizes (finest first,
/// strictly decreasing). The finest level's selection comes from the
/// caller (typically a `BalanceSummary` run); coarser levels are derived
/// by merging finer groups.
pub fn build_multi_level(
    graph: &SchemaGraph,
    matrices: &PairMatrices,
    finest_selection: &[ElementId],
    coarser_sizes: &[usize],
) -> Result<MultiLevelSummary, SchemaError> {
    let finest = crate::builder::build_summary(graph, matrices, finest_selection)?;
    coarsen(graph, matrices, finest, finest_selection, coarser_sizes)
}

/// Stack the coarser levels on top of an already-built finest level. This
/// is the shared back half of [`build_multi_level`] and
/// [`refresh_multi_level`]: both produce their finest level first (cold vs
/// patched) and derive the coarser levels identically, so the two entry
/// points cannot drift apart.
fn coarsen(
    graph: &SchemaGraph,
    matrices: &PairMatrices,
    finest: SchemaSummary,
    finest_selection: &[ElementId],
    coarser_sizes: &[usize],
) -> Result<MultiLevelSummary, SchemaError> {
    let mut levels = vec![finest];
    let mut parent: Vec<Vec<AbstractId>> = Vec::new();

    let mut current_reps: Vec<ElementId> = finest_selection.to_vec();
    let mut prev_size = current_reps.len();
    for &size in coarser_sizes {
        if size >= prev_size || size == 0 {
            return Err(SchemaError::BadSummarySize {
                requested: size,
                available: prev_size.saturating_sub(1),
            });
        }
        // Coarse representatives: the `size` finer representatives with the
        // highest total coverage of the other representatives — the ones
        // best placed to absorb their neighbors' groups.
        let mut scored: Vec<(f64, ElementId)> = current_reps
            .iter()
            .map(|&r| {
                let score: f64 = current_reps
                    .iter()
                    .filter(|&&o| o != r)
                    .map(|&o| matrices.coverage(r, o))
                    .sum();
                (score, r)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let coarse_reps: Vec<ElementId> = {
            let mut v: Vec<ElementId> = scored.iter().take(size).map(|&(_, r)| r).collect();
            v.sort_unstable();
            v
        };

        // Assign each finer group to a coarse group via its representative's
        // affinity (the element-level rule, lifted). Only the fine
        // representatives' owners are consulted, so evaluate exactly those
        // instead of a full per-element pass.
        let fine = levels.last().expect("at least the finest level exists");
        let assigner = ElementAssigner::new(graph, matrices, &coarse_reps);
        let mut level_parent: Vec<AbstractId> = Vec::with_capacity(fine.abstracts().len());
        let mut members: Vec<Vec<ElementId>> = vec![Vec::new(); coarse_reps.len()];
        for a in fine.abstracts() {
            let rep = a.representative;
            let coarse_idx = match coarse_reps.iter().position(|&c| c == rep) {
                Some(i) => i, // a coarse rep absorbs its own fine group
                None => assigner.assign(rep).unwrap_or(0),
            };
            level_parent.push(AbstractId(coarse_idx as u32));
            members[coarse_idx].extend_from_slice(&a.members);
        }
        let groups: Vec<(ElementId, Vec<ElementId>)> =
            coarse_reps.iter().copied().zip(members).collect();
        let coarse = SchemaSummary::from_grouping(graph, groups, vec![graph.root()])?;
        levels.push(coarse);
        parent.push(level_parent);
        current_reps = coarse_reps;
        prev_size = size;
    }
    Ok(MultiLevelSummary { levels, parent })
}

/// Rebuild a multi-level stack after a schema delta, patching the cached
/// `previous` stack instead of re-clustering from scratch where that is
/// provably identical.
///
/// `row_changed` marks the elements whose matrix row differs from the
/// matrices `previous` was built over (the recompute set of the delta
/// plan). An element's owner depends only on its own row, the selected
/// rows, and the graph, so when the finest selection is unchanged and no
/// *selected* row changed, only the marked elements need re-assignment —
/// every other element keeps its cached group. Coarser levels are always
/// re-derived, but each consults only the fine representatives' owners
/// (at most the previous level's size), never a full per-element pass.
///
/// Falls back to a full [`build_multi_level`] when the cached stack does
/// not match (different selection, shape mismatch, or a touched selected
/// row). Either way the result is bit-identical to a cold rebuild —
/// guarded by the `incremental_multilevel_matches_cold` proptest.
///
/// Grown graphs need no special casing: an additive structural delta
/// leaves old element ids in place, so when the (old-element) selection
/// survives untouched, appended elements simply arrive marked in
/// `row_changed` with no cached owner and are assigned like any other
/// changed element — the affected groups splice, the rest carry over.
///
/// Returns the stack and whether the finest level was patched (vs rebuilt).
pub fn refresh_multi_level(
    graph: &SchemaGraph,
    matrices: &PairMatrices,
    finest_selection: &[ElementId],
    coarser_sizes: &[usize],
    previous: &MultiLevelSummary,
    row_changed: &[bool],
) -> Result<(MultiLevelSummary, bool), SchemaError> {
    let n = graph.len();
    let prev_finest = previous.levels.first();
    let reusable = row_changed.len() == n
        && !finest_selection.is_empty()
        && prev_finest.is_some_and(|f| {
            f.abstracts().len() == finest_selection.len()
                && f.abstracts()
                    .iter()
                    .zip(finest_selection)
                    .all(|(a, &s)| a.representative == s)
        })
        && !finest_selection.iter().any(|&s| row_changed[s.index()]);
    if !reusable {
        return build_multi_level(graph, matrices, finest_selection, coarser_sizes)
            .map(|ml| (ml, false));
    }
    // Same validation as build_summary, so both paths fail alike.
    for &s in finest_selection {
        graph.check(s)?;
        if s == graph.root() {
            return Err(SchemaError::Invalid(
                "the root cannot be an abstract element; it is always kept".into(),
            ));
        }
    }
    let prev = prev_finest.expect("reusable implies a cached finest level");
    // Cached owner of each element, reconstructed from the group members;
    // selected elements and the root stay unowned exactly as a fresh
    // assignment would leave them.
    let mut owner: Vec<Option<usize>> = vec![None; n];
    for (gi, a) in prev.abstracts().iter().enumerate() {
        for &m in &a.members {
            if m != a.representative {
                owner[m.index()] = Some(gi);
            }
        }
    }
    let assigner = ElementAssigner::new(graph, matrices, finest_selection);
    for e in graph.element_ids() {
        if row_changed[e.index()] {
            owner[e.index()] = assigner.assign(e);
        }
    }
    let mut members: Vec<Vec<ElementId>> = finest_selection.iter().map(|&s| vec![s]).collect();
    for e in graph.element_ids() {
        if let Some(idx) = owner[e.index()] {
            members[idx].push(e);
        }
    }
    let groups: Vec<(ElementId, Vec<ElementId>)> =
        finest_selection.iter().copied().zip(members).collect();
    let finest = SchemaSummary::from_grouping(graph, groups, vec![graph.root()])?;
    coarsen(graph, matrices, finest, finest_selection, coarser_sizes).map(|ml| (ml, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::PathConfig;
    use crate::{Algorithm, Summarizer};
    use schema_summary_core::{SchemaGraphBuilder, SchemaStats, SchemaType};

    fn fixture() -> (SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("site");
        for (section, entities) in [
            ("people", ["person", "address"]),
            ("items", ["item", "review"]),
            ("auctions", ["auction", "bid"]),
        ] {
            let s = b.add_child(b.root(), section, SchemaType::rcd()).unwrap();
            for e in entities {
                let id = b.add_child(s, e, SchemaType::set_of_rcd()).unwrap();
                b.add_child(id, format!("{e}_field"), SchemaType::simple_str())
                    .unwrap();
            }
        }
        let g = b.build().unwrap();
        (g.clone(), SchemaStats::uniform(&g))
    }

    #[test]
    fn builds_nested_levels() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let sel = sum.select(6, Algorithm::Balance).unwrap();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ml = build_multi_level(&g, &m, &sel, &[3]).unwrap();
        assert_eq!(ml.depth(), 2);
        assert_eq!(ml.level(0).size(), 6);
        assert_eq!(ml.level(1).size(), 3);
        ml.validate(&g).unwrap();
    }

    #[test]
    fn three_levels_nest() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let sel = sum.select(6, Algorithm::Balance).unwrap();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ml = build_multi_level(&g, &m, &sel, &[4, 2]).unwrap();
        assert_eq!(ml.depth(), 3);
        ml.validate(&g).unwrap();
        // Every fine group has a parent; drilling down returns it.
        for level in 0..2 {
            for g_idx in ml.level(level).abstract_ids() {
                let p = ml.parent_group(level, g_idx).unwrap();
                assert!(ml.child_groups(level, p).contains(&g_idx));
            }
        }
    }

    #[test]
    fn coarse_reps_are_fine_reps() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let sel = sum.select(5, Algorithm::Balance).unwrap();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ml = build_multi_level(&g, &m, &sel, &[2]).unwrap();
        for a in ml.level(1).abstracts() {
            assert!(sel.contains(&a.representative));
        }
    }

    #[test]
    fn rejects_nondecreasing_sizes() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let sel = sum.select(4, Algorithm::Balance).unwrap();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        assert!(build_multi_level(&g, &m, &sel, &[4]).is_err());
        assert!(build_multi_level(&g, &m, &sel, &[5]).is_err());
        assert!(build_multi_level(&g, &m, &sel, &[0]).is_err());
        assert!(build_multi_level(&g, &m, &sel, &[3, 3]).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let sel = sum.select(4, Algorithm::Balance).unwrap();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ml = build_multi_level(&g, &m, &sel, &[2]).unwrap();
        let json = serde_json::to_string(&ml).unwrap();
        let back: MultiLevelSummary = serde_json::from_str(&json).unwrap();
        back.validate(&g).unwrap();
        assert_eq!(ml, back);
    }

    #[test]
    fn refresh_with_no_changed_rows_reuses_stack() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let sel = sum.select(6, Algorithm::Balance).unwrap();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ml = build_multi_level(&g, &m, &sel, &[3]).unwrap();
        let row_changed = vec![false; g.len()];
        let (ml2, reused) = refresh_multi_level(&g, &m, &sel, &[3], &ml, &row_changed).unwrap();
        assert!(reused);
        assert_eq!(ml, ml2);
    }

    #[test]
    fn refresh_patches_changed_rows_identically() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let sel = sum.select(6, Algorithm::Balance).unwrap();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ml = build_multi_level(&g, &m, &sel, &[3]).unwrap();
        // Mark every non-selected element changed: the patch path must then
        // reassign them all against the same matrices, landing bit-for-bit
        // on the cached grouping (assignment is per-element deterministic).
        let mut row_changed = vec![true; g.len()];
        for &e in &sel {
            row_changed[e.index()] = false;
        }
        let (ml2, reused) = refresh_multi_level(&g, &m, &sel, &[3], &ml, &row_changed).unwrap();
        assert!(reused);
        assert_eq!(ml, ml2);
    }

    #[test]
    fn refresh_falls_back_on_selection_change() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let sel = sum.select(6, Algorithm::Balance).unwrap();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ml = build_multi_level(&g, &m, &sel, &[3]).unwrap();
        let sel5 = sum.select(5, Algorithm::Balance).unwrap();
        let row_changed = vec![false; g.len()];
        let (ml2, reused) = refresh_multi_level(&g, &m, &sel5, &[3], &ml, &row_changed).unwrap();
        assert!(!reused);
        assert_eq!(ml2, build_multi_level(&g, &m, &sel5, &[3]).unwrap());
    }

    #[test]
    fn refresh_patches_grown_graphs_when_selection_survives() {
        use crate::incremental::plan_delta;
        use schema_summary_core::stats::LinkCount;
        use schema_summary_core::SchemaDelta;

        // The people section carries zero-count links, so its traces stay
        // on their own rows; items/auctions carry real counts. Growth
        // appends `wishlist` under `people` behind another zero-count
        // link: only `people`'s row (and the appended one) recompute, and
        // no selected representative is touched — the cached stack patches
        // in place even though the element space grew.
        fn declare(grow: bool) -> (SchemaGraph, Vec<u64>, Vec<LinkCount>) {
            let mut b = SchemaGraphBuilder::new("site");
            let mut ids = std::collections::HashMap::new();
            for (section, entities) in [
                ("people", ["person", "address"]),
                ("items", ["item", "review"]),
                ("auctions", ["auction", "bid"]),
            ] {
                let s = b.add_child(b.root(), section, SchemaType::rcd()).unwrap();
                ids.insert(section.to_string(), s);
                for e in entities {
                    let id = b.add_child(s, e, SchemaType::set_of_rcd()).unwrap();
                    ids.insert(e.to_string(), id);
                    let f = b
                        .add_child(id, format!("{e}_field"), SchemaType::simple_str())
                        .unwrap();
                    ids.insert(format!("{e}_field"), f);
                }
            }
            if grow {
                b.add_child(ids["people"], "wishlist", SchemaType::set_of_rcd())
                    .unwrap();
            }
            let g = b.build().unwrap();
            let mut cards = vec![1u64; g.len()];
            for e in g.element_ids() {
                cards[e.index()] = match g.label(e) {
                    "item" | "review" => 4,
                    "auction" => 6,
                    "bid" => 12,
                    "person" | "address" => 5,
                    "wishlist" => 3,
                    l if l.ends_with("_field") => 8,
                    _ => 1,
                };
            }
            let lc = |from, to, count| LinkCount { from, to, count };
            let links = vec![
                lc(ids["items"], ids["item"], 4),
                lc(ids["item"], ids["item_field"], 8),
                lc(ids["items"], ids["review"], 4),
                lc(ids["review"], ids["review_field"], 8),
                lc(ids["auctions"], ids["auction"], 6),
                lc(ids["auction"], ids["auction_field"], 8),
                lc(ids["auctions"], ids["bid"], 12),
                lc(ids["bid"], ids["bid_field"], 8),
            ];
            (g, cards, links)
        }

        let (g, cards, links) = declare(false);
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let (g2, new_cards, new_links) = declare(true);
        let s2 = SchemaStats::from_link_counts(&g2, &new_cards, &new_links).unwrap();
        let sel: Vec<ElementId> = ["person", "address", "item", "review", "auction", "bid"]
            .iter()
            .map(|l| g.element_ids().find(|&e| g.label(e) == *l).unwrap())
            .collect();
        let config = PathConfig::default();
        let m = PairMatrices::compute(&s, &config);
        let ml = build_multi_level(&g, &m, &sel, &[3]).unwrap();

        let d = SchemaDelta::compute(&g, &s, &g2, &s2);
        let plan = plan_delta(&d, &g, &s, &g2, &s2, &m, &config, 1.0).unwrap();
        assert_eq!(plan.grown, 1);
        assert!(
            !sel.iter().any(|&e| plan.recompute[e.index()]),
            "growth must not touch a selected row for this test"
        );
        let m2 = m.splice(&s2, &config, &plan.recompute).unwrap();
        assert!(m2.bitwise_eq(&PairMatrices::compute(&s2, &config)));

        let (ml2, reused) =
            refresh_multi_level(&g2, &m2, &sel, &[3], &ml, &plan.recompute).unwrap();
        assert!(reused, "untouched selection must patch, not rebuild");
        ml2.validate(&g2).unwrap();
        assert_eq!(ml2, build_multi_level(&g2, &m2, &sel, &[3]).unwrap());
    }

    #[test]
    fn refresh_falls_back_when_a_selected_row_changed() {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let sel = sum.select(6, Algorithm::Balance).unwrap();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ml = build_multi_level(&g, &m, &sel, &[3]).unwrap();
        let mut row_changed = vec![false; g.len()];
        row_changed[sel[0].index()] = true;
        let (ml2, reused) = refresh_multi_level(&g, &m, &sel, &[3], &ml, &row_changed).unwrap();
        assert!(!reused);
        assert_eq!(ml, ml2);
    }
}
