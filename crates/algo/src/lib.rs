//! Summarization algorithms (Sections 3 and 4 of the paper).
//!
//! This crate implements every formula and algorithm of *Schema
//! Summarization*:
//!
//! * [`importance`] — schema element importance (Formula 1), the
//!   PageRank-style iteration seeded with database cardinalities;
//! * [`paths`] — the simple-path engine underlying affinity and coverage;
//! * [`matrices`] — all-pairs element affinity (Formula 2) and element
//!   coverage (Formula 3);
//! * [`assignment`] — grouping of schema elements under summary elements by
//!   maximum affinity, and summary coverage (Definition 4);
//! * [`dominance`] — coverage dominance (Theorem 1) with the paper's
//!   ancestor–descendant pruning heuristic;
//! * [`algorithms`] — `MaxImportance` (Figure 4), `MaxCoverage` (Figure 6),
//!   and `BalanceSummary` (Figure 7);
//! * [`builder`] — materializing a selected element set into a validated
//!   [`schema_summary_core::SchemaSummary`];
//! * [`summarizer`] — a caching facade tying everything together.
//!
//! # Quick start
//!
//! ```
//! use schema_summary_core::{SchemaGraphBuilder, SchemaType, SchemaStats};
//! use schema_summary_algo::{Summarizer, Algorithm};
//!
//! let mut b = SchemaGraphBuilder::new("db");
//! let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
//! let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
//! let name = b.add_child(person, "name", SchemaType::simple_str()).unwrap();
//! let graph = b.build().unwrap();
//! let stats = SchemaStats::uniform(&graph);
//!
//! let mut s = Summarizer::new(&graph, &stats);
//! let summary = s.summarize(1, Algorithm::Balance).unwrap();
//! assert_eq!(summary.size(), 1);
//! summary.validate(&graph).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithms;
pub mod assignment;
pub mod builder;
pub mod dominance;
pub mod explain;
pub mod history;
pub mod importance;
pub mod incremental;
pub mod matrices;
pub mod monitor;
pub mod multilevel;
pub mod paths;
pub mod summarizer;

pub use algorithms::{balance_summary, max_coverage, max_importance, random_select, SetSearch};
pub use dominance::DominanceSet;
pub use explain::{explain, Explanation};
pub use history::{compute_importance_with_history, QueryHistory};
pub use importance::{ImportanceConfig, ImportanceMode, ImportanceResult};
pub use incremental::{plan_delta, DeltaPlan};
pub use matrices::{PairMatrices, DEFAULT_SOURCE_BATCH};
pub use monitor::{RefreshReport, SummaryMonitor};
pub use multilevel::{build_multi_level, refresh_multi_level, MultiLevelSummary};
pub use paths::{Explorer, PathConfig, PathKernel, PathLength};
pub use summarizer::{Algorithm, Summarizer, SummarizerConfig};
