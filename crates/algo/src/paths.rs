//! Simple-path enumeration underlying affinity and coverage.
//!
//! Formulas 2 and 3 maximize per-path products over "all possible paths"
//! between two elements. We enumerate **simple paths** (no repeated
//! elements): walks that revisit elements could pump the products without
//! bound whenever an edge has `RC < 1` (optional children), so simple paths
//! are the only sound reading (see DESIGN.md §3.2). Schema graphs are trees
//! plus a handful of value links, so bounded-depth enumeration is cheap.
//!
//! One depth-first exploration per source element simultaneously maintains:
//!
//! * the **affinity product** `Π 1/RC(e_{j-1} → e_j)` (Formula 2), and
//! * the **coverage product**
//!   `Π A(e_{j-1} → e_j) · W(e_j → e_{j-1})` (Formula 3),
//!
//! recording per-target maxima of both. Note the two maxima may be achieved
//! on *different* paths, which is why both products are tracked rather than
//! derived from one another.

use schema_summary_core::{ElementId, SchemaStats};
use serde::{Deserialize, Serialize};

/// How path length `n_i` is counted when dividing the affinity product.
///
/// The paper's Formula 2 text indexes path *elements*, but its worked
/// example (`A(b→o) ≈ 1.0` for a direct edge with `RC(b→o) = 1`) is only
/// consistent with counting *edges*. We follow the worked example by
/// default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PathLength {
    /// `n_i` = number of edges (matches the paper's worked example).
    #[default]
    Edges,
    /// `n_i` = number of elements on the path (the literal formula text).
    Nodes,
}

/// Configuration for path enumeration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathConfig {
    /// Maximum number of edges on an enumerated path. Longer paths carry a
    /// `1/n` penalty and per-edge products ≤ 1 in the common case, so they
    /// contribute negligibly; 10 comfortably exceeds the diameter of the
    /// paper's schemas.
    pub max_edges: usize,
    /// Budget on edge traversals per source; exploration stops (and the
    /// result is flagged truncated) if exceeded. Guards against pathological
    /// densely-linked schemas.
    pub max_expansions: usize,
    /// Path-length convention for the affinity denominator.
    pub path_length: PathLength,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            max_edges: 10,
            max_expansions: 4_000_000,
            path_length: PathLength::Edges,
        }
    }
}

impl PathConfig {
    /// The `1/RC` factor of one edge, clamped at 1.
    ///
    /// Formula 2 divides by the relative cardinality along each step, which
    /// exceeds 1 whenever `RC < 1` (optional children, references split
    /// across several referee elements). Taken literally that makes *rarer*
    /// relationships count as *closer* and lets paths pump affinity through
    /// low-RC links without bound — contradicting the paper's own framing
    /// ("the affinities will be close to 1.0 and 0.5") where affinity tops
    /// out at 1 for a perfect 1:1 step. We therefore clamp the per-edge
    /// factor at 1 (DESIGN.md §3.9); all of the paper's worked examples
    /// have `RC ≥ 1` and are unaffected.
    #[inline]
    pub fn rc_factor(&self, rc: f64) -> f64 {
        (1.0 / rc).min(1.0)
    }

    /// The affinity of a single edge `u → v` under this convention: the
    /// value of Formula 2 for the one-edge path.
    #[inline]
    pub fn edge_affinity(&self, rc: f64) -> f64 {
        match self.path_length {
            PathLength::Edges => self.rc_factor(rc),
            PathLength::Nodes => 0.5 * self.rc_factor(rc),
        }
    }

    fn length_denominator(&self, edges: usize) -> f64 {
        match self.path_length {
            PathLength::Edges => edges as f64,
            PathLength::Nodes => (edges + 1) as f64,
        }
    }
}

/// Per-source exploration result.
#[derive(Debug, Clone)]
pub struct SourceResult {
    /// `best_affinity[b]` = `A(source → b)` (Formula 2); 1 for the source
    /// itself, 0 for unreachable targets.
    pub best_affinity: Vec<f64>,
    /// `best_cov_product[b]` = the path maximum of Formula 3's product
    /// (excluding the `Card` factor); 1 for the source itself.
    pub best_cov_product: Vec<f64>,
    /// Whether the expansion budget was exhausted (maxima become lower
    /// bounds).
    pub truncated: bool,
}

/// Enumerate all simple paths from `source` and record per-target maxima of
/// the affinity and coverage products.
///
/// Edges with `RC(u → v) = 0` (no data instances on the `u` side) are not
/// traversable: affinity through them is undefined (the formula divides by
/// RC) and semantically there is no data connectivity.
pub fn explore_from(
    source: ElementId,
    stats: &SchemaStats,
    config: &PathConfig,
) -> SourceResult {
    let n = stats.len();
    let mut result = SourceResult {
        best_affinity: vec![0.0; n],
        best_cov_product: vec![0.0; n],
        truncated: false,
    };
    result.best_affinity[source.index()] = 1.0;
    result.best_cov_product[source.index()] = 1.0;

    let mut visited = vec![false; n];
    visited[source.index()] = true;
    let mut budget = config.max_expansions;
    dfs(source, 1.0, 1.0, 0, stats, config, &mut visited, &mut budget, &mut result);
    result
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    cur: ElementId,
    aff_prod: f64,
    cov_prod: f64,
    edges: usize,
    stats: &SchemaStats,
    config: &PathConfig,
    visited: &mut [bool],
    budget: &mut usize,
    result: &mut SourceResult,
) {
    if edges >= config.max_edges {
        return;
    }
    // Copy the adjacency (small) so the recursive borrow is clean.
    for &(nb, rc) in stats.rc_neighbors(cur) {
        if visited[nb.index()] || rc <= 0.0 {
            continue;
        }
        if *budget == 0 {
            result.truncated = true;
            return;
        }
        *budget -= 1;

        let new_aff = aff_prod * config.rc_factor(rc);
        // Coverage factor: edge affinity forward × neighbor weight backward.
        let w_back = stats.neighbor_weight(nb, cur);
        let new_cov = cov_prod * config.edge_affinity(rc) * w_back;
        let new_edges = edges + 1;

        let aff_here = new_aff / config.length_denominator(new_edges);
        let i = nb.index();
        if aff_here > result.best_affinity[i] {
            result.best_affinity[i] = aff_here;
        }
        if new_cov > result.best_cov_product[i] {
            result.best_cov_product[i] = new_cov;
        }

        // Extending through a zero coverage product can still improve
        // affinity, so recurse whenever either product is live.
        if new_aff > 0.0 || new_cov > 0.0 {
            visited[i] = true;
            dfs(nb, new_aff, new_cov, new_edges, stats, config, visited, budget, result);
            visited[i] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::types::SchemaType;
    use schema_summary_core::SchemaGraph;

    /// The paper's Section 3.2 worked example: o with child b
    /// (RC(o→b)=2, RC(b→o)=1) plus 10 other children with RC 1 each way.
    fn paper_example() -> (SchemaGraph, ElementId, ElementId, SchemaStats) {
        let mut builder = SchemaGraphBuilder::new("o");
        let b = builder
            .add_child(builder.root(), "b", SchemaType::set_of_rcd())
            .unwrap();
        let mut others = Vec::new();
        for i in 0..10 {
            others.push(
                builder
                    .add_child(builder.root(), format!("c{i}"), SchemaType::rcd())
                    .unwrap(),
            );
        }
        let g = builder.build().unwrap();
        // card(o)=100, card(b)=200 (2 per o), card(c_i)=100 (1 per o).
        let mut cards = vec![100u64, 200];
        cards.extend(std::iter::repeat_n(100, 10));
        let mut links = vec![LinkCount { from: g.root(), to: b, count: 200 }];
        for &c in &others {
            links.push(LinkCount { from: g.root(), to: c, count: 100 });
        }
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let root = g.root();
        (g, root, b, s)
    }

    #[test]
    fn paper_affinity_example() {
        let (_, o, b, s) = paper_example();
        let cfg = PathConfig::default();
        let from_b = explore_from(b, &s, &cfg);
        let from_o = explore_from(o, &s, &cfg);
        // A(b→o) = 1/RC(b→o) = 1.0; A(o→b) = 1/RC(o→b) = 0.5.
        assert!((from_b.best_affinity[o.index()] - 1.0).abs() < 1e-9);
        assert!((from_o.best_affinity[b.index()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn paper_coverage_example() {
        let (_, o, b, s) = paper_example();
        let cfg = PathConfig::default();
        // C(o→b)/card_b = A(o→b) · W(b→o) = 0.5 · 1 = 0.5.
        let from_o = explore_from(o, &s, &cfg);
        assert!((from_o.best_cov_product[b.index()] - 0.5).abs() < 1e-9);
        // C(b→o)/card_o = A(b→o) · W(o→b) = 1.0 · 2/12 ≈ 0.1667.
        let from_b = explore_from(b, &s, &cfg);
        assert!((from_b.best_cov_product[o.index()] - 2.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn nodes_convention_halves_direct_edges() {
        let (_, o, b, s) = paper_example();
        let cfg = PathConfig {
            path_length: PathLength::Nodes,
            ..Default::default()
        };
        let from_b = explore_from(b, &s, &cfg);
        assert!((from_b.best_affinity[o.index()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn longer_paths_are_penalized() {
        // Chain r - a - b, all RC 1. A(r→a) = 1/1 = 1; A(r→b) = 1/2.
        let mut builder = SchemaGraphBuilder::new("r");
        let a = builder.add_child(builder.root(), "a", SchemaType::rcd()).unwrap();
        let b = builder.add_child(a, "b", SchemaType::rcd()).unwrap();
        let g = builder.build().unwrap();
        let s = SchemaStats::uniform(&g);
        let res = explore_from(g.root(), &s, &PathConfig::default());
        assert!((res.best_affinity[a.index()] - 1.0).abs() < 1e-9);
        assert!((res.best_affinity[b.index()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multiple_paths_take_the_max() {
        // Diamond: r has children a (RC 1) and b (RC 10); both value-link to
        // t. Path through a: product 1/1 · 1/rc(a→t); through b: 1/10 · ...
        let mut builder = SchemaGraphBuilder::new("r");
        let a = builder.add_child(builder.root(), "a", SchemaType::rcd()).unwrap();
        let b = builder
            .add_child(builder.root(), "b", SchemaType::set_of_rcd())
            .unwrap();
        let t = builder.add_child(builder.root(), "t", SchemaType::rcd()).unwrap();
        builder.add_value_link(a, t).unwrap();
        builder.add_value_link(b, t).unwrap();
        let g = builder.build().unwrap();
        let cards = vec![1u64, 1, 10, 1];
        let links = vec![
            LinkCount { from: g.root(), to: a, count: 1 },
            LinkCount { from: g.root(), to: b, count: 10 },
            LinkCount { from: g.root(), to: t, count: 1 },
            LinkCount { from: a, to: t, count: 1 },
            LinkCount { from: b, to: t, count: 10 },
        ];
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let res = explore_from(g.root(), &s, &PathConfig::default());
        // Direct edge r→t: affinity 1/RC(r→t) = 1.
        assert!((res.best_affinity[t.index()] - 1.0).abs() < 1e-9);
        // Through a: (1/1 · 1/1)/2 = 0.5 < 1, so the direct edge wins —
        // verify by removing it: recompute on a graph without r→t.
        let mut builder2 = SchemaGraphBuilder::new("r");
        let a2 = builder2.add_child(builder2.root(), "a", SchemaType::rcd()).unwrap();
        let b2 = builder2
            .add_child(builder2.root(), "b", SchemaType::set_of_rcd())
            .unwrap();
        let t2 = builder2.add_child(a2, "t", SchemaType::rcd()).unwrap();
        builder2.add_value_link(b2, t2).unwrap();
        let g2 = builder2.build().unwrap();
        let cards2 = vec![1u64, 1, 10, 1];
        let links2 = vec![
            LinkCount { from: g2.root(), to: a2, count: 1 },
            LinkCount { from: g2.root(), to: b2, count: 10 },
            LinkCount { from: a2, to: t2, count: 1 },
            LinkCount { from: b2, to: t2, count: 10 },
        ];
        let s2 = SchemaStats::from_link_counts(&g2, &cards2, &links2).unwrap();
        let res2 = explore_from(g2.root(), &s2, &PathConfig::default());
        // Two paths to t2: r→a→t (product 1, len 2 → 0.5) and
        // r→b→t (product (1/10)·(1/1), len 2 → 0.05). Max = 0.5.
        assert!((res2.best_affinity[t2.index()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_cuts_long_chains() {
        let mut builder = SchemaGraphBuilder::new("r");
        let mut prev = builder.root();
        let mut ids = vec![prev];
        for i in 0..15 {
            prev = builder.add_child(prev, format!("n{i}"), SchemaType::rcd()).unwrap();
            ids.push(prev);
        }
        let g = builder.build().unwrap();
        let s = SchemaStats::uniform(&g);
        let cfg = PathConfig { max_edges: 5, ..Default::default() };
        let res = explore_from(g.root(), &s, &cfg);
        assert!(res.best_affinity[ids[5].index()] > 0.0);
        assert_eq!(res.best_affinity[ids[6].index()], 0.0);
    }

    #[test]
    fn budget_truncation_is_flagged(){
        let (_, o, _, s) = paper_example();
        let cfg = PathConfig { max_expansions: 3, ..Default::default() };
        let res = explore_from(o, &s, &cfg);
        assert!(res.truncated);
    }

    #[test]
    fn zero_rc_edges_are_not_traversable() {
        let mut builder = SchemaGraphBuilder::new("r");
        let a = builder.add_child(builder.root(), "a", SchemaType::rcd()).unwrap();
        let g = builder.build().unwrap();
        // a has zero cardinality: no data connectivity at all.
        let s = SchemaStats::from_link_counts(&g, &[1, 0], &[]).unwrap();
        let res = explore_from(g.root(), &s, &PathConfig::default());
        assert_eq!(res.best_affinity[a.index()], 0.0);
    }

    #[test]
    fn self_affinity_is_one() {
        let (_, o, b, s) = paper_example();
        let res = explore_from(b, &s, &PathConfig::default());
        assert_eq!(res.best_affinity[b.index()], 1.0);
        assert_eq!(res.best_cov_product[b.index()], 1.0);
        let _ = o;
    }
}
