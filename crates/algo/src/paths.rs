//! Simple-path enumeration underlying affinity and coverage.
//!
//! Formulas 2 and 3 maximize per-path products over "all possible paths"
//! between two elements. We enumerate **simple paths** (no repeated
//! elements): walks that revisit elements could pump the products without
//! bound whenever an edge has `RC < 1` (optional children), so simple paths
//! are the only sound reading (see DESIGN.md §3.2). Schema graphs are trees
//! plus a handful of value links, so bounded-depth enumeration is cheap —
//! but "cheap" stops scaling once value links multiply the path count, so
//! the kernel here is built for the cold-path budget of the serving layer:
//!
//! * the exploration walks the CSR edge records of
//!   [`SchemaStats::edges`](schema_summary_core::SchemaStats::edges), whose
//!   precomputed `rc_factor`/`w_back` remove every per-expansion adjacency
//!   scan;
//! * the depth-first search is an explicit-stack iteration over a reusable
//!   [`Explorer`] scratch, so per-source work allocates nothing beyond the
//!   result rows;
//! * **branch-and-bound pruning** (see DESIGN.md §3.14): every per-edge
//!   factor is clamped to `[0, 1]`, so both path products are monotone
//!   non-increasing in path length. A branch whose best continuation can no
//!   longer strictly beat *any* recorded per-target maximum is cut, and the
//!   cut is exact — the surviving paths include every argmax path.
//!
//! One depth-first exploration per source element simultaneously maintains:
//!
//! * the **affinity product** `Π 1/RC(e_{j-1} → e_j)` (Formula 2), and
//! * the **coverage product**
//!   `Π A(e_{j-1} → e_j) · W(e_j → e_{j-1})` (Formula 3),
//!
//! recording per-target maxima of both. Note the two maxima may be achieved
//! on *different* paths, which is why both products are tracked rather than
//! derived from one another.

use schema_summary_core::{ElementId, SchemaStats};
use serde::{Deserialize, Serialize};

/// How path length `n_i` is counted when dividing the affinity product.
///
/// The paper's Formula 2 text indexes path *elements*, but its worked
/// example (`A(b→o) ≈ 1.0` for a direct edge with `RC(b→o) = 1`) is only
/// consistent with counting *edges*. We follow the worked example by
/// default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PathLength {
    /// `n_i` = number of edges (matches the paper's worked example).
    #[default]
    Edges,
    /// `n_i` = number of elements on the path (the literal formula text).
    Nodes,
}

/// Which exact kernel evaluates the per-target path maxima.
///
/// Both kernels compute the same quantities; they differ in how they search.
/// The clamp on per-edge factors (everything ∈ [0, 1]) makes the two
/// provably equivalent: removing a cycle from a walk divides the product by
/// factors ≤ 1 (so the product can only grow) and shortens the path (so the
/// affinity denominator can only shrink) — hence the max over arbitrary
/// walks equals the max over simple paths, and a layered relaxation over
/// walks is exact for the simple-path formulas (DESIGN.md §3.14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PathKernel {
    /// Pick per schema by a node-count/density heuristic (see
    /// [`PathConfig::effective_kernel`]): DFS on small, sparse,
    /// tree-like schemas where path multiplicity is low (BENCH_matrices.json
    /// measured layered at 0.45× DFS on the n=100 sparse synthetic),
    /// layered everywhere else. Both kernels are exact, so the choice only
    /// affects wall time. The default.
    #[default]
    Auto,
    /// Layered max-product relaxation (Bellman–Ford over the `(max, ×)`
    /// semiring): `O(max_edges · |edges|)` per source, independent of the
    /// number of simple paths — orders of magnitude faster on densely
    /// value-linked schemas.
    Layered,
    /// Explicit-stack depth-first enumeration of simple paths with exact
    /// branch-and-bound pruning. The reference kernel; also the only one
    /// honoring the [`PathConfig::min_product`] floor's joint
    /// affinity/coverage semantics.
    Dfs,
}

/// [`PathKernel::Auto`] picks the layered kernel at or beyond this element
/// count regardless of density: DFS worst-case cost grows with the number
/// of simple paths while the layered relaxation stays
/// `O(max_edges · |edges|)`. Retuned for the batched lane kernel
/// (min-of-reps, near-tree density 0.05): DFS still wins at n=25
/// (0.75×) but batched layered leads from n=50 (1.3×) through n=100
/// (1.6×), n=192 (2.6×), and ~13× on XMark SF 1.0 (n=295). 48 splits
/// the crossover (BENCH_matrices.json).
const AUTO_NODE_THRESHOLD: usize = 48;

/// Below [`AUTO_NODE_THRESHOLD`], [`PathKernel::Auto`] picks DFS only for
/// near-tree densities. A pure tree has average CSR degree ≈ 2 (each edge
/// appears in both endpoints' rows); every value link adds 2/n more. At
/// 2.5 the graph carries ~n/4 extra links and path multiplicity starts to
/// favor the layered kernel even on a few dozen elements.
const AUTO_AVG_DEGREE_THRESHOLD: f64 = 2.5;

/// Configuration for path enumeration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathConfig {
    /// Maximum number of edges on an enumerated path. Longer paths carry a
    /// `1/n` penalty and per-edge products ≤ 1 in the common case, so they
    /// contribute negligibly; 10 comfortably exceeds the diameter of the
    /// paper's schemas.
    pub max_edges: usize,
    /// Budget on edge traversals per source; exploration stops (and the
    /// result is flagged truncated) if exceeded. Guards against pathological
    /// densely-linked schemas.
    pub max_expansions: usize,
    /// Path-length convention for the affinity denominator.
    pub path_length: PathLength,
    /// Which exact kernel to run (see [`PathKernel`]). A positive
    /// [`min_product`](Self::min_product) always selects the DFS kernel,
    /// whose floor cuts a branch only when *both* products fall below the
    /// floor — the layered kernel relaxes affinity and coverage
    /// independently and cannot express that joint condition.
    pub kernel: PathKernel,
    /// Branch-and-bound pruning of branches that can no longer improve any
    /// per-target maximum. The cut is **exact** — per-edge factors are
    /// clamped ≤ 1, so products only shrink along a path (DESIGN.md §3.14).
    /// Disable only to measure pruning effectiveness or cross-check results.
    pub prune: bool,
    /// Approximate-mode floor: branches whose affinity *and* coverage
    /// products both fall below this value are cut and the result is
    /// flagged [`SourceResult::floored`] (maxima become lower bounds, like
    /// `truncated`). `0.0` (the default) keeps exploration exact.
    pub min_product: f64,
    /// Minimum element count before [`crate::PairMatrices::compute`]
    /// parallelizes across source elements; below it, thread spawn overhead
    /// dominates and the serial kernel runs instead.
    pub parallel_threshold: usize,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            max_edges: 10,
            max_expansions: 4_000_000,
            path_length: PathLength::Edges,
            kernel: PathKernel::Auto,
            prune: true,
            min_product: 0.0,
            parallel_threshold: 64,
        }
    }
}

// Configurations key memoized artifacts and cached results, so equality and
// hashing must be total and bit-stable; `min_product` is compared by bit
// pattern (as in `ImportanceConfig`).
impl PartialEq for PathConfig {
    fn eq(&self, other: &Self) -> bool {
        self.max_edges == other.max_edges
            && self.max_expansions == other.max_expansions
            && self.path_length == other.path_length
            && self.kernel == other.kernel
            && self.prune == other.prune
            && self.min_product.to_bits() == other.min_product.to_bits()
            && self.parallel_threshold == other.parallel_threshold
    }
}

impl Eq for PathConfig {}

impl std::hash::Hash for PathConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.max_edges.hash(state);
        self.max_expansions.hash(state);
        self.path_length.hash(state);
        self.kernel.hash(state);
        self.prune.hash(state);
        self.min_product.to_bits().hash(state);
        self.parallel_threshold.hash(state);
    }
}

impl PathConfig {
    /// The kernel that will actually run for `stats` under this
    /// configuration — never [`PathKernel::Auto`].
    ///
    /// A positive [`min_product`](Self::min_product) always resolves to
    /// DFS (only DFS expresses the joint affinity/coverage floor).
    /// Otherwise `Auto` resolves by node count and density: layered at or
    /// beyond [`AUTO_NODE_THRESHOLD`] elements or
    /// [`AUTO_AVG_DEGREE_THRESHOLD`] average CSR degree, DFS on the small
    /// sparse remainder where enumeration is cheaper than `max_edges` full
    /// relaxation sweeps (BENCH_matrices.json). Both kernels are exact, so
    /// resolution never changes results — only wall time.
    pub fn effective_kernel(&self, stats: &SchemaStats) -> PathKernel {
        if self.min_product > 0.0 {
            return PathKernel::Dfs;
        }
        match self.kernel {
            PathKernel::Auto => {
                let n = stats.len();
                if n >= AUTO_NODE_THRESHOLD {
                    return PathKernel::Layered;
                }
                if n == 0 {
                    return PathKernel::Layered;
                }
                let edge_records: usize = (0..n).map(|u| stats.degree(ElementId(u as u32))).sum();
                if edge_records as f64 / n as f64 >= AUTO_AVG_DEGREE_THRESHOLD {
                    PathKernel::Layered
                } else {
                    PathKernel::Dfs
                }
            }
            kernel => kernel,
        }
    }

    /// The `1/RC` factor of one edge, clamped at 1.
    ///
    /// Formula 2 divides by the relative cardinality along each step, which
    /// exceeds 1 whenever `RC < 1` (optional children, references split
    /// across several referee elements). Taken literally that makes *rarer*
    /// relationships count as *closer* and lets paths pump affinity through
    /// low-RC links without bound — contradicting the paper's own framing
    /// ("the affinities will be close to 1.0 and 0.5") where affinity tops
    /// out at 1 for a perfect 1:1 step. We therefore clamp the per-edge
    /// factor at 1 (DESIGN.md §3.9); all of the paper's worked examples
    /// have `RC ≥ 1` and are unaffected. The same clamped factor is
    /// precomputed per edge in the statistics' CSR records
    /// (`EdgeRec::rc_factor`), which is what the exploration consumes.
    #[inline]
    pub fn rc_factor(&self, rc: f64) -> f64 {
        (1.0 / rc).min(1.0)
    }

    /// The affinity of a single edge `u → v` under this convention: the
    /// value of Formula 2 for the one-edge path.
    #[inline]
    pub fn edge_affinity(&self, rc: f64) -> f64 {
        match self.path_length {
            PathLength::Edges => self.rc_factor(rc),
            PathLength::Nodes => 0.5 * self.rc_factor(rc),
        }
    }

    /// The constant the clamped `rc_factor` is scaled by when it enters the
    /// coverage product: 1 under the `Edges` convention, 0.5 under `Nodes`
    /// (every edge affinity halves, cf. [`PathConfig::edge_affinity`]).
    #[inline]
    fn affinity_scale(&self) -> f64 {
        match self.path_length {
            PathLength::Edges => 1.0,
            PathLength::Nodes => 0.5,
        }
    }

    fn length_denominator(&self, edges: usize) -> f64 {
        match self.path_length {
            PathLength::Edges => edges as f64,
            PathLength::Nodes => (edges + 1) as f64,
        }
    }
}

/// Per-source exploration result.
#[derive(Debug, Clone)]
pub struct SourceResult {
    /// `best_affinity[b]` = `A(source → b)` (Formula 2); 1 for the source
    /// itself, 0 for unreachable targets.
    pub best_affinity: Vec<f64>,
    /// `best_cov_product[b]` = the path maximum of Formula 3's product
    /// (excluding the `Card` factor); 1 for the source itself.
    pub best_cov_product: Vec<f64>,
    /// Whether the expansion budget was exhausted (maxima become lower
    /// bounds).
    pub truncated: bool,
    /// Whether the [`PathConfig::min_product`] floor cut any branch
    /// (approximate mode; maxima become lower bounds).
    pub floored: bool,
    /// Edge traversals actually performed for this source. With pruning on,
    /// the gap to the unpruned count measures pruning effectiveness.
    pub expansions: u64,
    /// Sorted ids of every element this exploration *read*: elements whose
    /// edge records the kernel scanned (or may scan next layer), plus every
    /// target with a nonzero product (whose cardinality scales the coverage
    /// row). The result — values, flags, and expansion count — is a
    /// deterministic function of exactly these elements' stats records, the
    /// foundation of incremental maintenance (`incremental::plan_delta`).
    pub reads: Vec<u32>,
}

/// Upper bound on sources advanced per batched frontier sweep: per-node
/// lane membership is a `u64` bitmask, one bit per source lane.
pub const MAX_BATCH_LANES: usize = 64;

/// Arena scratch for the multi-source batched layered kernel
/// ([`Explorer::explore_batch`]): every per-source array of the scalar
/// kernel is flattened into one `n × stride` allocation indexed
/// `[node * stride + lane]`, and the per-node frontier membership flags
/// become `u64` bitmasks (bit `l` ⇔ lane `l`). The arenas hold the same
/// all-zero-between-batches invariant as the scalar scratch, restored via
/// the `touched` list so sparse batches cost O(touched · stride), not O(n).
#[derive(Debug, Default)]
struct BatchScratch {
    /// Max-product value arenas at the current and next edge count.
    cur_aff: Vec<f64>,
    cur_cov: Vec<f64>,
    next_aff: Vec<f64>,
    next_cov: Vec<f64>,
    /// Per-target running maxima (the scalar kernel folds these into the
    /// result row directly; the batch keeps them lane-major until
    /// extraction).
    best_aff: Vec<f64>,
    best_cov: Vec<f64>,
    /// Bit `l` set ⇔ the node is in lane `l`'s current/next frontier.
    cur_mask: Vec<u64>,
    next_mask: Vec<u64>,
    /// Bit `l` set ⇔ lane `l` has recorded the node in its read set.
    read_mask: Vec<u64>,
    /// Union frontiers across lanes (insertion-ordered, deduped by mask).
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    /// Every node with a nonzero `read_mask` — the cleanup list that
    /// restores the all-zero arena invariant after a batch.
    touched: Vec<u32>,
    /// Per-lane read lists (unsorted; closed out by `finish_reads`).
    reads: Vec<Vec<u32>>,
}

impl BatchScratch {
    /// Grow the arenas to cover `nodes × stride` cells and `lanes` lanes.
    /// Growth appends zeros, and the all-zero invariant keeps existing
    /// cells zero, so re-sizing between batches of different shapes is
    /// sound without a wipe.
    fn ensure(&mut self, nodes: usize, stride: usize, lanes: usize) {
        let cells = nodes * stride;
        if self.cur_aff.len() < cells {
            self.cur_aff.resize(cells, 0.0);
            self.cur_cov.resize(cells, 0.0);
            self.next_aff.resize(cells, 0.0);
            self.next_cov.resize(cells, 0.0);
            self.best_aff.resize(cells, 0.0);
            self.best_cov.resize(cells, 0.0);
        }
        if self.cur_mask.len() < nodes {
            self.cur_mask.resize(nodes, 0);
            self.next_mask.resize(nodes, 0);
            self.read_mask.resize(nodes, 0);
        }
        if self.reads.len() < lanes {
            self.reads.resize(lanes, Vec::new());
        }
    }
}

/// One explicit-stack DFS frame: a node on the current path plus the
/// position of the next CSR edge to expand.
#[derive(Debug, Clone, Copy)]
struct Frame {
    node: u32,
    /// Index of the next edge within `stats.edges(node)`.
    cursor: u32,
    /// Affinity product of the path from the source to `node`.
    aff: f64,
    /// Coverage product of the path from the source to `node`.
    cov: f64,
}

/// Reusable per-thread scratch for path exploration.
///
/// One `Explorer` serves any number of sources over schemas of up to the
/// constructed element count; [`PairMatrices::compute`](crate::PairMatrices)
/// keeps one per worker thread so the cold all-pairs pass performs no
/// per-source allocation beyond its output rows.
#[derive(Debug)]
pub struct Explorer {
    visited: Vec<bool>,
    frames: Vec<Frame>,
    /// Scratch for the per-source reachability pass that seeds the pruning
    /// thresholds: membership flags plus the component's node list.
    in_component: Vec<bool>,
    component: Vec<u32>,
    /// Layered-kernel scratch: per-node max walk products at the current
    /// and next edge count (affinity and coverage relax independently — the
    /// two maxima may be achieved on different paths). The value arrays are
    /// kept all-zero between sources; only entries listed in the frontier
    /// are live, so sparse layers cost O(frontier), not O(n).
    cur_aff: Vec<f64>,
    cur_cov: Vec<f64>,
    next_aff: Vec<f64>,
    next_cov: Vec<f64>,
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    in_next: Vec<bool>,
    /// Per-depth pre-multiplied affinity cut thresholds,
    /// `aff_cut[d] = prune_aff · denom(d + 1)`, so the hot prune filter is
    /// a compare instead of a division.
    aff_cut: Vec<f64>,
    /// Dedup flags for the per-source read set ([`SourceResult::reads`]);
    /// restored to all-false between sources.
    read_flag: Vec<bool>,
    /// Lane arenas for [`explore_batch`](Self::explore_batch); allocated on
    /// first batched call so single-source users pay nothing.
    batch: Option<Box<BatchScratch>>,
}

impl Explorer {
    /// Scratch sized for schemas of `n` elements.
    pub fn new(n: usize) -> Self {
        Explorer {
            visited: vec![false; n],
            frames: Vec::with_capacity(64),
            in_component: vec![false; n],
            component: Vec::with_capacity(n),
            cur_aff: vec![0.0; n],
            cur_cov: vec![0.0; n],
            next_aff: vec![0.0; n],
            next_cov: vec![0.0; n],
            frontier: Vec::with_capacity(n),
            next_frontier: Vec::with_capacity(n),
            in_next: vec![false; n],
            aff_cut: Vec::new(),
            read_flag: vec![false; n],
            batch: None,
        }
    }

    /// Record `u` into the read set exactly once.
    #[inline]
    fn record_read(flag: &mut [bool], reads: &mut Vec<u32>, u: u32) {
        if !flag[u as usize] {
            flag[u as usize] = true;
            reads.push(u);
        }
    }

    /// Close out the read set: fold in every target with a nonzero product
    /// (its cardinality is read when the coverage row is written), restore
    /// the dedup scratch, and sort into canonical order.
    fn finish_reads(&mut self, n: usize, result: &mut SourceResult) {
        for b in 0..n {
            if result.best_affinity[b] > 0.0 || result.best_cov_product[b] > 0.0 {
                Self::record_read(&mut self.read_flag, &mut result.reads, b as u32);
            }
        }
        for &u in &result.reads {
            self.read_flag[u as usize] = false;
        }
        result.reads.sort_unstable();
    }

    /// Compute, for every target, the maxima of the affinity and coverage
    /// path products from `source`, using the configured kernel.
    ///
    /// Edges with `RC(u → v) = 0` (no data instances on the `u` side) are
    /// not traversable: affinity through them is undefined (the formula
    /// divides by RC) and semantically there is no data connectivity.
    pub fn explore(
        &mut self,
        source: ElementId,
        stats: &SchemaStats,
        config: &PathConfig,
    ) -> SourceResult {
        let n = stats.len();
        assert!(
            self.visited.len() >= n,
            "explorer sized for {} elements, got {}",
            self.visited.len(),
            n
        );
        let mut result = SourceResult {
            best_affinity: vec![0.0; n],
            best_cov_product: vec![0.0; n],
            truncated: false,
            floored: false,
            expansions: 0,
            reads: Vec::new(),
        };
        result.best_affinity[source.index()] = 1.0;
        result.best_cov_product[source.index()] = 1.0;
        if config.max_edges == 0 || n == 0 {
            self.finish_reads(n, &mut result);
            return result;
        }
        if config.effective_kernel(stats) == PathKernel::Layered {
            self.relax_layered(source, stats, config, &mut result);
            self.finish_reads(n, &mut result);
            return result;
        }

        self.visited[..n].fill(false);
        self.frames.clear();
        if config.prune {
            self.collect_component(source, stats, n, config.max_edges, &mut result);
        }

        // Pruning thresholds: stale lower bounds on the minimum recorded
        // per-target maxima over the source's component. Stale is safe —
        // recorded maxima only grow, so the cached minimum only
        // underestimates and pruning stays exact; it is refreshed every
        // ~|component| expansions (amortized O(1) per expansion).
        let mut prune_aff = 0.0f64;
        let mut prune_cov = 0.0f64;
        let refresh_interval = (self.component.len() as u64).max(64);
        let mut refresh_countdown = refresh_interval;
        self.aff_cut.clear();
        self.aff_cut.resize(config.max_edges + 1, 0.0);

        let aff_scale = config.affinity_scale();
        let mut budget = config.max_expansions;
        self.visited[source.index()] = true;
        // Every node whose frame is pushed has its edge list scanned.
        Self::record_read(&mut self.read_flag, &mut result.reads, source.0);
        self.frames.push(Frame {
            node: source.0,
            cursor: 0,
            aff: 1.0,
            cov: 1.0,
        });

        let neighbors = stats.neighbor_lane();
        let rcs = stats.rc_lane();
        let rc_factors = stats.rc_factor_lane();
        let w_backs = stats.w_back_lane();
        'explore: while let Some(frame) = self.frames.last_mut() {
            let node = frame.node;
            let row = stats.edge_range(ElementId(node));
            let idx = row.start + frame.cursor as usize;
            if idx >= row.end {
                // All edges of this node expanded: backtrack.
                self.visited[node as usize] = false;
                self.frames.pop();
                continue;
            }
            frame.cursor += 1;
            let nb = neighbors[idx];
            if self.visited[nb.index()] || rcs[idx] <= 0.0 {
                continue;
            }
            if budget == 0 {
                result.truncated = true;
                break 'explore;
            }
            budget -= 1;
            result.expansions += 1;

            let new_aff = frame.aff * rc_factors[idx];
            // Coverage factor: edge affinity forward × neighbor weight
            // backward, both precomputed on the CSR factor lanes.
            let new_cov = frame.cov * (aff_scale * rc_factors[idx]) * w_backs[idx];
            // The source frame is depth 1, so the path to `nb` has exactly
            // `frames.len()` edges.
            let new_edges = self.frames.len();

            let aff_here = new_aff / config.length_denominator(new_edges);
            let i = nb.index();
            if aff_here > result.best_affinity[i] {
                result.best_affinity[i] = aff_here;
            }
            if new_cov > result.best_cov_product[i] {
                result.best_cov_product[i] = new_cov;
            }

            // Descend unless the branch is dead (extending through a zero
            // coverage product can still improve affinity, so either live
            // product keeps it alive) or already at the depth limit; the
            // floor and pruning checks run only on descent-eligible
            // expansions — at the deepest level there is nothing to cut.
            if (new_aff > 0.0 || new_cov > 0.0) && new_edges < config.max_edges {
                // Approximate-mode floor: cut the branch once both
                // products sink below it.
                if config.min_product > 0.0
                    && new_aff < config.min_product
                    && new_cov < config.min_product
                {
                    result.floored = true;
                    continue;
                }
                // Branch-and-bound: every deeper target sees products ≤
                // the current ones and an affinity denominator ≥ the next
                // depth's, so if neither bound strictly beats the smallest
                // recorded maximum, no descendant of this branch can beat
                // *any* recorded maximum (factors are clamped ≤ 1; the cut
                // is exact).
                if config.prune {
                    if refresh_countdown == 0 {
                        prune_aff = Self::min_over(&self.component, &result.best_affinity);
                        prune_cov = Self::min_over(&self.component, &result.best_cov_product);
                        for (d, slot) in self.aff_cut.iter_mut().enumerate() {
                            *slot = prune_aff * config.length_denominator(d + 1);
                        }
                        refresh_countdown = refresh_interval;
                    } else {
                        refresh_countdown -= 1;
                    }
                    // Two-stage cut: the pre-multiplied per-depth threshold
                    // is a cheap compare (a rounded-down table entry only
                    // *misses* cuts, never adds them); the division — the
                    // exact arbiter — runs only on the rare candidates that
                    // pass the filter.
                    if new_cov <= prune_cov
                        && new_aff <= self.aff_cut[new_edges]
                        && new_aff / config.length_denominator(new_edges + 1) <= prune_aff
                    {
                        continue;
                    }
                }
                self.visited[i] = true;
                Self::record_read(&mut self.read_flag, &mut result.reads, nb.0);
                self.frames.push(Frame {
                    node: nb.0,
                    cursor: 0,
                    aff: new_aff,
                    cov: new_cov,
                });
            }
        }
        // Leave scratch clean for the next source whether we broke out of
        // the loop (budget) or drained the stack.
        for frame in self.frames.drain(..) {
            self.visited[frame.node as usize] = false;
        }
        self.finish_reads(n, &mut result);
        result
    }

    /// Explore many sources per frontier sweep: the **batched layered
    /// kernel**. One pass over each union-frontier vertex's CSR edge row
    /// advances every source lane at once — the inner loop is a
    /// branch-light multiply-max over the contiguous lane arenas — so the
    /// edge lanes are streamed once per layer for the whole batch instead
    /// of once per source.
    ///
    /// **Bit-for-bit identical to per-source [`explore`](Self::explore)**,
    /// including read sets, expansion counts, and flags:
    ///
    /// * values: the scalar kernel's per-target max is order-independent
    ///   (max over non-negative products), and the batch preserves the
    ///   exact multiply chains, so each lane's maxima carry the same bits;
    ///   blind relaxation of non-member lanes is a no-op because their
    ///   values are zero and every product is ≥ 0;
    /// * membership travels in the `u64` masks, never derived from values
    ///   (a lane's product can underflow to zero while its frontier
    ///   membership — and its read set — must keep growing);
    /// * expansions: a lane's per-layer count is the sum of traversable
    ///   degrees over its frontier members — order-independent, summed
    ///   from the precomputed
    ///   [`traversable_degree`](SchemaStats::traversable_degree) lane;
    /// * budget exhaustion is the one order-*dependent* part of the scalar
    ///   semantics (a mid-layer cut depends on frontier iteration order),
    ///   so a lane whose next layer would overrun its remaining budget is
    ///   evicted from the batch and re-run through the scalar kernel.
    ///
    /// Configurations that resolve to the DFS kernel (including any
    /// positive `min_product` floor) fall back to per-source exploration.
    /// Batches larger than [`MAX_BATCH_LANES`] are processed in chunks.
    pub fn explore_batch(
        &mut self,
        sources: &[ElementId],
        stats: &SchemaStats,
        config: &PathConfig,
    ) -> Vec<SourceResult> {
        let mut out = Vec::with_capacity(sources.len());
        if config.effective_kernel(stats) != PathKernel::Layered || config.max_edges == 0 {
            out.extend(sources.iter().map(|&s| self.explore(s, stats, config)));
            return out;
        }
        for chunk in sources.chunks(MAX_BATCH_LANES) {
            self.explore_batch_chunk(chunk, stats, config, &mut out);
        }
        out
    }

    /// One ≤ [`MAX_BATCH_LANES`]-lane sweep of the batched layered kernel;
    /// appends `sources.len()` results to `out` in source order.
    fn explore_batch_chunk(
        &mut self,
        sources: &[ElementId],
        stats: &SchemaStats,
        config: &PathConfig,
        out: &mut Vec<SourceResult>,
    ) {
        let n = stats.len();
        let lanes = sources.len();
        debug_assert!(lanes <= MAX_BATCH_LANES);
        // Lane stride rounded up to the pad width so the hot multiply-max
        // loop runs whole vector widths.
        let stride = lanes.next_multiple_of(schema_summary_core::stats::LANE_PAD);
        let mut scratch = self.batch.take().unwrap_or_default();
        scratch.ensure(n, stride, lanes);

        let mut remaining = [0u64; MAX_BATCH_LANES];
        let mut expansions = [0u64; MAX_BATCH_LANES];
        let mut layer_exp = [0u64; MAX_BATCH_LANES];
        // Bit `l` set: lane `l` would have exhausted its budget mid-layer;
        // its batch state is abandoned and the source re-runs scalar.
        let mut needs_scalar = 0u64;

        for (l, &src) in sources.iter().enumerate() {
            remaining[l] = config.max_expansions as u64;
            let i = src.index();
            if scratch.read_mask[i] == 0 {
                scratch.touched.push(src.0);
            }
            if scratch.cur_mask[i] == 0 {
                scratch.frontier.push(src.0);
            }
            scratch.cur_mask[i] |= 1 << l;
            scratch.read_mask[i] |= 1 << l;
            scratch.reads[l].push(src.0);
            scratch.cur_aff[i * stride + l] = 1.0;
            scratch.cur_cov[i * stride + l] = 1.0;
        }

        let aff_scale = config.affinity_scale();
        let neighbors = stats.neighbor_lane();
        let rcs = stats.rc_lane();
        let rc_factors = stats.rc_factor_lane();
        let w_backs = stats.w_back_lane();
        for edges_used in 1..=config.max_edges {
            if scratch.frontier.is_empty() {
                break;
            }
            // Whole-layer budget accounting up front: a layer's expansion
            // count per lane is Σ traversable-degree over the lane's
            // frontier members, independent of sweep order. Lanes that
            // cannot afford their full layer are evicted *before* any of
            // it runs (mid-layer truncation is order-dependent).
            layer_exp[..lanes].fill(0);
            for &u in &scratch.frontier {
                let d = u64::from(stats.traversable_degree(ElementId(u)));
                if d == 0 {
                    continue;
                }
                let mut m = scratch.cur_mask[u as usize] & !needs_scalar;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    layer_exp[l] += d;
                    m &= m - 1;
                }
            }
            for (l, &exp) in layer_exp.iter().enumerate().take(lanes) {
                if needs_scalar & (1 << l) != 0 {
                    continue;
                }
                if exp > remaining[l] {
                    needs_scalar |= 1 << l;
                } else {
                    remaining[l] -= exp;
                    expansions[l] += exp;
                }
            }
            // Relaxation sweep: one pass over the union frontier's edge
            // rows updates all lanes. Mask propagation is branchless;
            // non-member lanes carry zeros, so the blind multiply-max is a
            // per-lane no-op for them.
            for &u in &scratch.frontier {
                let ui = u as usize;
                let m = scratch.cur_mask[ui];
                let bu = ui * stride;
                // Lane occupancy decides the sweep shape per *node*: a
                // saturated mask runs the full-stride multiply-max (a
                // straight SIMD stream over the padded row), a sparse one
                // iterates only its set bits — the flop and byte traffic
                // then tracks *active* lanes, not the batch width. Both
                // shapes relax identical values (inactive lanes hold zeros
                // and every product is ≥ 0, so blind relaxation of them is
                // a no-op), so the choice never changes bits.
                let dense = (m.count_ones() as usize) * 4 >= lanes;
                // The source node's value rows are loop-invariant across
                // its edges; staging them in stack buffers pins them in L1
                // and frees the inner loop from re-reading through the
                // arena borrows after every store.
                let mut src_aff = [0.0f64; MAX_BATCH_LANES];
                let mut src_cov = [0.0f64; MAX_BATCH_LANES];
                src_aff[..stride].copy_from_slice(&scratch.cur_aff[bu..][..stride]);
                src_cov[..stride].copy_from_slice(&scratch.cur_cov[bu..][..stride]);
                for idx in stats.edge_range(ElementId(u)) {
                    if rcs[idx] <= 0.0 {
                        continue;
                    }
                    let vi = neighbors[idx].index();
                    let rf = rc_factors[idx];
                    let cf = aff_scale * rf;
                    let wb = w_backs[idx];
                    if scratch.next_mask[vi] == 0 {
                        scratch.next_frontier.push(neighbors[idx].0);
                    }
                    scratch.next_mask[vi] |= m;
                    let bv = vi * stride;
                    if dense {
                        let next_aff = &mut scratch.next_aff[bv..][..stride];
                        let next_cov = &mut scratch.next_cov[bv..][..stride];
                        // Same multiply chains as the scalar kernels; the
                        // branchless select is bitwise the scalar compare-
                        // and-store (ties keep the stored value; no value is
                        // NaN or −0.0).
                        for l in 0..stride {
                            let na = src_aff[l] * rf;
                            let nc = (src_cov[l] * cf) * wb;
                            next_aff[l] = if na > next_aff[l] { na } else { next_aff[l] };
                            next_cov[l] = if nc > next_cov[l] { nc } else { next_cov[l] };
                        }
                    } else {
                        let mut bits = m;
                        while bits != 0 {
                            let l = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let na = src_aff[l] * rf;
                            let nc = (src_cov[l] * cf) * wb;
                            let slot = &mut scratch.next_aff[bv + l];
                            if na > *slot {
                                *slot = na;
                            }
                            let slot = &mut scratch.next_cov[bv + l];
                            if nc > *slot {
                                *slot = nc;
                            }
                        }
                    }
                }
            }
            // Fold the layer into the per-lane maxima and read sets.
            let denom = config.length_denominator(edges_used);
            for &v in &scratch.next_frontier {
                let vi = v as usize;
                let vm = scratch.next_mask[vi];
                let mut new_bits = vm & !scratch.read_mask[vi];
                if scratch.read_mask[vi] == 0 {
                    scratch.touched.push(v);
                }
                scratch.read_mask[vi] |= vm;
                while new_bits != 0 {
                    let l = new_bits.trailing_zeros() as usize;
                    scratch.reads[l].push(v);
                    new_bits &= new_bits - 1;
                }
                // Fold only member lanes (same dense/sparse split as the
                // sweep): non-member lanes hold zeros, which the scalar
                // fold skips via its `> 0` guards anyway.
                let bv = vi * stride;
                if (vm.count_ones() as usize) * 4 >= lanes {
                    let next_aff = &scratch.next_aff[bv..][..stride];
                    let next_cov = &scratch.next_cov[bv..][..stride];
                    let best_aff = &mut scratch.best_aff[bv..][..stride];
                    let best_cov = &mut scratch.best_cov[bv..][..stride];
                    for l in 0..stride {
                        let a = next_aff[l];
                        if a > 0.0 {
                            let val = a / denom;
                            if val > best_aff[l] {
                                best_aff[l] = val;
                            }
                        }
                        let cv = next_cov[l];
                        if cv > 0.0 && cv > best_cov[l] {
                            best_cov[l] = cv;
                        }
                    }
                } else {
                    let mut bits = vm;
                    while bits != 0 {
                        let l = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let a = scratch.next_aff[bv + l];
                        if a > 0.0 {
                            let val = a / denom;
                            if val > scratch.best_aff[bv + l] {
                                scratch.best_aff[bv + l] = val;
                            }
                        }
                        let cv = scratch.next_cov[bv + l];
                        if cv > 0.0 && cv > scratch.best_cov[bv + l] {
                            scratch.best_cov[bv + l] = cv;
                        }
                    }
                }
            }
            // Re-zero the consumed layer, then promote the next one.
            for &u in &scratch.frontier {
                let ui = u as usize;
                let bu = ui * stride;
                scratch.cur_aff[bu..bu + stride].fill(0.0);
                scratch.cur_cov[bu..bu + stride].fill(0.0);
                scratch.cur_mask[ui] = 0;
            }
            std::mem::swap(&mut scratch.cur_aff, &mut scratch.next_aff);
            std::mem::swap(&mut scratch.cur_cov, &mut scratch.next_cov);
            std::mem::swap(&mut scratch.cur_mask, &mut scratch.next_mask);
            std::mem::swap(&mut scratch.frontier, &mut scratch.next_frontier);
            scratch.next_frontier.clear();
        }

        // Extract per-lane results (evicted lanes get a placeholder and a
        // scalar re-run once the arenas are parked again).
        let results_start = out.len();
        for (l, &src) in sources.iter().enumerate() {
            let mut result = SourceResult {
                best_affinity: vec![0.0; n],
                best_cov_product: vec![0.0; n],
                truncated: false,
                floored: false,
                expansions: expansions[l],
                reads: Vec::new(),
            };
            if needs_scalar & (1 << l) != 0 {
                out.push(result);
                continue;
            }
            for &v in &scratch.touched {
                let vi = v as usize;
                result.best_affinity[vi] = scratch.best_aff[vi * stride + l];
                result.best_cov_product[vi] = scratch.best_cov[vi * stride + l];
            }
            // The source's own entries are pinned at 1 (clamped factors
            // keep every walk product ≤ 1, so the scalar fold never
            // improves them either).
            result.best_affinity[src.index()] = 1.0;
            result.best_cov_product[src.index()] = 1.0;
            result.reads = std::mem::take(&mut scratch.reads[l]);
            for &u in &result.reads {
                self.read_flag[u as usize] = true;
            }
            self.finish_reads(n, &mut result);
            out.push(result);
        }

        // Restore the all-zero arena invariant and park the scratch.
        for &v in &scratch.touched {
            let bv = v as usize * stride;
            scratch.cur_aff[bv..bv + stride].fill(0.0);
            scratch.cur_cov[bv..bv + stride].fill(0.0);
            scratch.next_aff[bv..bv + stride].fill(0.0);
            scratch.next_cov[bv..bv + stride].fill(0.0);
            scratch.best_aff[bv..bv + stride].fill(0.0);
            scratch.best_cov[bv..bv + stride].fill(0.0);
            scratch.cur_mask[v as usize] = 0;
            scratch.next_mask[v as usize] = 0;
            scratch.read_mask[v as usize] = 0;
        }
        scratch.touched.clear();
        scratch.frontier.clear();
        scratch.next_frontier.clear();
        for lane_reads in &mut scratch.reads {
            lane_reads.clear();
        }
        self.batch = Some(scratch);

        if needs_scalar != 0 {
            for (l, &src) in sources.iter().enumerate() {
                if needs_scalar & (1 << l) != 0 {
                    out[results_start + l] = self.explore(src, stats, config);
                }
            }
        }
    }

    /// The layered kernel: Bellman–Ford over the `(max, ×)` semiring.
    ///
    /// `cur_*[v]` holds the maximum product over *walks* of exactly
    /// `edges_used - 1` edges from the source to `v`; each layer relaxes
    /// every traversable edge once. Because all per-edge factors are clamped
    /// to `[0, 1]`, the walk maxima equal the simple-path maxima of
    /// Formulas 2 and 3 (cycle removal never decreases a product nor
    /// lengthens a path — DESIGN.md §3.14), so recording each layer's
    /// values yields exactly the DFS kernel's results in
    /// `O(max_edges · |edges|)` instead of enumerating paths.
    fn relax_layered(
        &mut self,
        source: ElementId,
        stats: &SchemaStats,
        config: &PathConfig,
        result: &mut SourceResult,
    ) {
        let aff_scale = config.affinity_scale();
        let mut budget = config.max_expansions;
        // Invariant: the value arrays are all-zero on entry (enforced by
        // zeroing exactly the frontier entries before returning), so a
        // sparse layer touches O(frontier · degree) entries, not O(n).
        self.frontier.clear();
        self.frontier.push(source.0);
        // Frontier members have their edge lists scanned (the final
        // frontier's scan is cut by the depth limit; including it is a
        // harmless over-approximation of the read set).
        Self::record_read(&mut self.read_flag, &mut result.reads, source.0);
        self.cur_aff[source.index()] = 1.0;
        self.cur_cov[source.index()] = 1.0;
        for edges_used in 1..=config.max_edges {
            self.next_frontier.clear();
            let mut exhausted = false;
            let neighbors = stats.neighbor_lane();
            let rcs = stats.rc_lane();
            let rc_factors = stats.rc_factor_lane();
            let w_backs = stats.w_back_lane();
            'relax: for &u in &self.frontier {
                let a = self.cur_aff[u as usize];
                let c = self.cur_cov[u as usize];
                for idx in stats.edge_range(ElementId(u)) {
                    if rcs[idx] <= 0.0 {
                        continue;
                    }
                    if budget == 0 {
                        exhausted = true;
                        break 'relax;
                    }
                    budget -= 1;
                    result.expansions += 1;
                    let i = neighbors[idx].index();
                    // Same multiply chains as the DFS kernel, so a walk's
                    // value is bit-identical to the corresponding path's.
                    let na = a * rc_factors[idx];
                    let nc = c * (aff_scale * rc_factors[idx]) * w_backs[idx];
                    if self.in_next[i] {
                        if na > self.next_aff[i] {
                            self.next_aff[i] = na;
                        }
                        if nc > self.next_cov[i] {
                            self.next_cov[i] = nc;
                        }
                    } else {
                        self.in_next[i] = true;
                        Self::record_read(&mut self.read_flag, &mut result.reads, neighbors[idx].0);
                        self.next_frontier.push(neighbors[idx].0);
                        self.next_aff[i] = na;
                        self.next_cov[i] = nc;
                    }
                }
            }
            // Fold this layer (possibly partial, if the budget ran out) into
            // the per-target maxima; partial layers are lower bounds, which
            // is exactly what `truncated` signals.
            let denom = config.length_denominator(edges_used);
            for &v in &self.next_frontier {
                let v = v as usize;
                self.in_next[v] = false;
                let a = self.next_aff[v];
                if a > 0.0 {
                    let val = a / denom;
                    if val > result.best_affinity[v] {
                        result.best_affinity[v] = val;
                    }
                }
                let cv = self.next_cov[v];
                if cv > 0.0 && cv > result.best_cov_product[v] {
                    result.best_cov_product[v] = cv;
                }
            }
            // Re-zero the consumed layer, then promote the next one.
            for &u in &self.frontier {
                self.cur_aff[u as usize] = 0.0;
                self.cur_cov[u as usize] = 0.0;
            }
            std::mem::swap(&mut self.cur_aff, &mut self.next_aff);
            std::mem::swap(&mut self.cur_cov, &mut self.next_cov);
            std::mem::swap(&mut self.frontier, &mut self.next_frontier);
            if exhausted {
                result.truncated = true;
                break;
            }
            if self.frontier.is_empty() {
                break;
            }
        }
        // Restore the all-zero invariant for the next source.
        for &u in &self.frontier {
            self.cur_aff[u as usize] = 0.0;
            self.cur_cov[u as usize] = 0.0;
        }
        self.frontier.clear();
    }

    /// Nodes reachable from `source` within `max_edges` hops over
    /// traversable (`rc > 0`) edges — the only targets whose maxima this
    /// source can ever improve, and therefore the set the pruning
    /// thresholds are minimized over. Nodes outside it (unreachable, or
    /// whose shortest distance exceeds the depth limit) stay 0 forever and
    /// would pin the minimum there, disabling pruning entirely.
    fn collect_component(
        &mut self,
        source: ElementId,
        stats: &SchemaStats,
        n: usize,
        max_edges: usize,
        result: &mut SourceResult,
    ) {
        self.in_component[..n].fill(false);
        self.component.clear();
        self.in_component[source.index()] = true;
        self.component.push(source.0);
        let mut head = 0;
        let mut frontier_end = self.component.len();
        let mut depth = 0;
        while head < self.component.len() && depth < max_edges {
            while head < frontier_end {
                let u = ElementId(self.component[head]);
                head += 1;
                // The pruning thresholds (and hence the whole trace) depend
                // on this scan of `u`'s edge list.
                Self::record_read(&mut self.read_flag, &mut result.reads, u.0);
                for edge in stats.edges(u) {
                    if edge.rc > 0.0 && !self.in_component[edge.neighbor.index()] {
                        self.in_component[edge.neighbor.index()] = true;
                        self.component.push(edge.neighbor.0);
                    }
                }
            }
            frontier_end = self.component.len();
            depth += 1;
        }
    }

    fn min_over(nodes: &[u32], values: &[f64]) -> f64 {
        nodes
            .iter()
            .map(|&i| values[i as usize])
            .fold(f64::INFINITY, f64::min)
    }
}

/// Enumerate all simple paths from `source` with one-shot scratch. Callers
/// exploring many sources should reuse an [`Explorer`] instead.
pub fn explore_from(source: ElementId, stats: &SchemaStats, config: &PathConfig) -> SourceResult {
    Explorer::new(stats.len()).explore(source, stats, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::types::SchemaType;
    use schema_summary_core::SchemaGraph;

    /// The paper's Section 3.2 worked example: o with child b
    /// (RC(o→b)=2, RC(b→o)=1) plus 10 other children with RC 1 each way.
    fn paper_example() -> (SchemaGraph, ElementId, ElementId, SchemaStats) {
        let mut builder = SchemaGraphBuilder::new("o");
        let b = builder
            .add_child(builder.root(), "b", SchemaType::set_of_rcd())
            .unwrap();
        let mut others = Vec::new();
        for i in 0..10 {
            others.push(
                builder
                    .add_child(builder.root(), format!("c{i}"), SchemaType::rcd())
                    .unwrap(),
            );
        }
        let g = builder.build().unwrap();
        // card(o)=100, card(b)=200 (2 per o), card(c_i)=100 (1 per o).
        let mut cards = vec![100u64, 200];
        cards.extend(std::iter::repeat_n(100, 10));
        let mut links = vec![LinkCount {
            from: g.root(),
            to: b,
            count: 200,
        }];
        for &c in &others {
            links.push(LinkCount {
                from: g.root(),
                to: c,
                count: 100,
            });
        }
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let root = g.root();
        (g, root, b, s)
    }

    #[test]
    fn paper_affinity_example() {
        let (_, o, b, s) = paper_example();
        let cfg = PathConfig::default();
        let from_b = explore_from(b, &s, &cfg);
        let from_o = explore_from(o, &s, &cfg);
        // A(b→o) = 1/RC(b→o) = 1.0; A(o→b) = 1/RC(o→b) = 0.5.
        assert!((from_b.best_affinity[o.index()] - 1.0).abs() < 1e-9);
        assert!((from_o.best_affinity[b.index()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn paper_coverage_example() {
        let (_, o, b, s) = paper_example();
        let cfg = PathConfig::default();
        // C(o→b)/card_b = A(o→b) · W(b→o) = 0.5 · 1 = 0.5.
        let from_o = explore_from(o, &s, &cfg);
        assert!((from_o.best_cov_product[b.index()] - 0.5).abs() < 1e-9);
        // C(b→o)/card_o = A(b→o) · W(o→b) = 1.0 · 2/12 ≈ 0.1667.
        let from_b = explore_from(b, &s, &cfg);
        assert!((from_b.best_cov_product[o.index()] - 2.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn nodes_convention_halves_direct_edges() {
        let (_, o, b, s) = paper_example();
        let cfg = PathConfig {
            path_length: PathLength::Nodes,
            ..Default::default()
        };
        let from_b = explore_from(b, &s, &cfg);
        assert!((from_b.best_affinity[o.index()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn longer_paths_are_penalized() {
        // Chain r - a - b, all RC 1. A(r→a) = 1/1 = 1; A(r→b) = 1/2.
        let mut builder = SchemaGraphBuilder::new("r");
        let a = builder
            .add_child(builder.root(), "a", SchemaType::rcd())
            .unwrap();
        let b = builder.add_child(a, "b", SchemaType::rcd()).unwrap();
        let g = builder.build().unwrap();
        let s = SchemaStats::uniform(&g);
        let res = explore_from(g.root(), &s, &PathConfig::default());
        assert!((res.best_affinity[a.index()] - 1.0).abs() < 1e-9);
        assert!((res.best_affinity[b.index()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multiple_paths_take_the_max() {
        // Diamond: r has children a (RC 1) and b (RC 10); both value-link to
        // t. Path through a: product 1/1 · 1/rc(a→t); through b: 1/10 · ...
        let mut builder = SchemaGraphBuilder::new("r");
        let a = builder
            .add_child(builder.root(), "a", SchemaType::rcd())
            .unwrap();
        let b = builder
            .add_child(builder.root(), "b", SchemaType::set_of_rcd())
            .unwrap();
        let t = builder
            .add_child(builder.root(), "t", SchemaType::rcd())
            .unwrap();
        builder.add_value_link(a, t).unwrap();
        builder.add_value_link(b, t).unwrap();
        let g = builder.build().unwrap();
        let cards = vec![1u64, 1, 10, 1];
        let links = vec![
            LinkCount {
                from: g.root(),
                to: a,
                count: 1,
            },
            LinkCount {
                from: g.root(),
                to: b,
                count: 10,
            },
            LinkCount {
                from: g.root(),
                to: t,
                count: 1,
            },
            LinkCount {
                from: a,
                to: t,
                count: 1,
            },
            LinkCount {
                from: b,
                to: t,
                count: 10,
            },
        ];
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let res = explore_from(g.root(), &s, &PathConfig::default());
        // Direct edge r→t: affinity 1/RC(r→t) = 1.
        assert!((res.best_affinity[t.index()] - 1.0).abs() < 1e-9);
        // Through a: (1/1 · 1/1)/2 = 0.5 < 1, so the direct edge wins —
        // verify by removing it: recompute on a graph without r→t.
        let mut builder2 = SchemaGraphBuilder::new("r");
        let a2 = builder2
            .add_child(builder2.root(), "a", SchemaType::rcd())
            .unwrap();
        let b2 = builder2
            .add_child(builder2.root(), "b", SchemaType::set_of_rcd())
            .unwrap();
        let t2 = builder2.add_child(a2, "t", SchemaType::rcd()).unwrap();
        builder2.add_value_link(b2, t2).unwrap();
        let g2 = builder2.build().unwrap();
        let cards2 = vec![1u64, 1, 10, 1];
        let links2 = vec![
            LinkCount {
                from: g2.root(),
                to: a2,
                count: 1,
            },
            LinkCount {
                from: g2.root(),
                to: b2,
                count: 10,
            },
            LinkCount {
                from: a2,
                to: t2,
                count: 1,
            },
            LinkCount {
                from: b2,
                to: t2,
                count: 10,
            },
        ];
        let s2 = SchemaStats::from_link_counts(&g2, &cards2, &links2).unwrap();
        let res2 = explore_from(g2.root(), &s2, &PathConfig::default());
        // Two paths to t2: r→a→t (product 1, len 2 → 0.5) and
        // r→b→t (product (1/10)·(1/1), len 2 → 0.05). Max = 0.5.
        assert!((res2.best_affinity[t2.index()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn depth_limit_cuts_long_chains() {
        let mut builder = SchemaGraphBuilder::new("r");
        let mut prev = builder.root();
        let mut ids = vec![prev];
        for i in 0..15 {
            prev = builder
                .add_child(prev, format!("n{i}"), SchemaType::rcd())
                .unwrap();
            ids.push(prev);
        }
        let g = builder.build().unwrap();
        let s = SchemaStats::uniform(&g);
        let cfg = PathConfig {
            max_edges: 5,
            ..Default::default()
        };
        let res = explore_from(g.root(), &s, &cfg);
        assert!(res.best_affinity[ids[5].index()] > 0.0);
        assert_eq!(res.best_affinity[ids[6].index()], 0.0);
    }

    #[test]
    fn budget_truncation_is_flagged() {
        let (_, o, _, s) = paper_example();
        let cfg = PathConfig {
            max_expansions: 3,
            ..Default::default()
        };
        let res = explore_from(o, &s, &cfg);
        assert!(res.truncated);
        assert_eq!(res.expansions, 3);
    }

    #[test]
    fn zero_rc_edges_are_not_traversable() {
        let mut builder = SchemaGraphBuilder::new("r");
        let a = builder
            .add_child(builder.root(), "a", SchemaType::rcd())
            .unwrap();
        let g = builder.build().unwrap();
        // a has zero cardinality: no data connectivity at all.
        let s = SchemaStats::from_link_counts(&g, &[1, 0], &[]).unwrap();
        let res = explore_from(g.root(), &s, &PathConfig::default());
        assert_eq!(res.best_affinity[a.index()], 0.0);
    }

    #[test]
    fn self_affinity_is_one() {
        let (_, o, b, s) = paper_example();
        let res = explore_from(b, &s, &PathConfig::default());
        assert_eq!(res.best_affinity[b.index()], 1.0);
        assert_eq!(res.best_cov_product[b.index()], 1.0);
        let _ = o;
    }

    /// Build a diamond-rich graph where many paths exist so pruning has
    /// something to cut: a 3-level tree with cross value links.
    fn braided() -> (SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("r");
        let mut level1 = Vec::new();
        let mut level2 = Vec::new();
        for i in 0..4 {
            let s1 = b
                .add_child(b.root(), format!("a{i}"), SchemaType::set_of_rcd())
                .unwrap();
            level1.push(s1);
            for j in 0..3 {
                level2.push(
                    b.add_child(s1, format!("a{i}b{j}"), SchemaType::set_of_rcd())
                        .unwrap(),
                );
            }
        }
        for (i, &f) in level2.iter().enumerate() {
            let t = level2[(i + 5) % level2.len()];
            let _ = b.add_value_link(f, t);
        }
        let g = b.build().unwrap();
        let mut cards = vec![1u64; g.len()];
        for (i, c) in cards.iter_mut().enumerate().skip(1) {
            *c = 1 + (i as u64 * 7) % 13;
        }
        let mut links = Vec::new();
        for (p, c) in g.structural_links().collect::<Vec<_>>() {
            links.push(LinkCount {
                from: p,
                to: c,
                count: cards[c.index()],
            });
        }
        for (f, t) in g.value_links().collect::<Vec<_>>() {
            links.push(LinkCount {
                from: f,
                to: t,
                count: cards[f.index()].min(cards[t.index()]),
            });
        }
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        (g, s)
    }

    #[test]
    fn pruning_is_exact_and_cuts_expansions() {
        let (g, s) = braided();
        let pruned_cfg = PathConfig {
            kernel: PathKernel::Dfs,
            ..Default::default()
        };
        let unpruned_cfg = PathConfig {
            kernel: PathKernel::Dfs,
            prune: false,
            ..Default::default()
        };
        let mut pruned_total = 0;
        let mut unpruned_total = 0;
        for e in g.element_ids() {
            let pruned = explore_from(e, &s, &pruned_cfg);
            let unpruned = explore_from(e, &s, &unpruned_cfg);
            assert!(!pruned.truncated && !unpruned.truncated);
            assert!(!pruned.floored && !unpruned.floored);
            assert_eq!(pruned.best_affinity, unpruned.best_affinity, "source {e}");
            assert_eq!(
                pruned.best_cov_product, unpruned.best_cov_product,
                "source {e}"
            );
            pruned_total += pruned.expansions;
            unpruned_total += unpruned.expansions;
        }
        assert!(
            pruned_total < unpruned_total,
            "pruning cut nothing: {pruned_total} vs {unpruned_total}"
        );
    }

    #[test]
    fn min_product_floor_is_flagged_and_lower_bounds() {
        let (g, s) = braided();
        let exact_cfg = PathConfig {
            kernel: PathKernel::Dfs,
            ..Default::default()
        };
        // Compare expansion counts with pruning off: the floor cuts a strict
        // subset of the unpruned search tree, whereas under pruning a
        // floored run can expand *more* (its lower recorded maxima weaken
        // the prune thresholds).
        let unpruned_cfg = PathConfig {
            kernel: PathKernel::Dfs,
            prune: false,
            ..Default::default()
        };
        let floored_cfg = PathConfig {
            kernel: PathKernel::Dfs,
            min_product: 0.05,
            prune: false,
            ..Default::default()
        };
        let mut any_floored = false;
        for e in g.element_ids() {
            let exact = explore_from(e, &s, &exact_cfg);
            let unpruned = explore_from(e, &s, &unpruned_cfg);
            let approx = explore_from(e, &s, &floored_cfg);
            any_floored |= approx.floored;
            for i in 0..s.len() {
                assert!(approx.best_affinity[i] <= exact.best_affinity[i] + 1e-15);
                assert!(approx.best_cov_product[i] <= exact.best_cov_product[i] + 1e-15);
            }
            assert!(approx.expansions <= unpruned.expansions);
        }
        assert!(
            any_floored,
            "floor of 0.05 cut nothing on the braided graph"
        );
    }

    #[test]
    fn explorer_scratch_is_reusable_across_sources() {
        let (g, s) = braided();
        let mut explorer = Explorer::new(s.len());
        let cfg = PathConfig::default();
        for e in g.element_ids() {
            let reused = explorer.explore(e, &s, &cfg);
            let fresh = explore_from(e, &s, &cfg);
            assert_eq!(reused.best_affinity, fresh.best_affinity, "source {e}");
            assert_eq!(
                reused.best_cov_product, fresh.best_cov_product,
                "source {e}"
            );
            assert_eq!(reused.expansions, fresh.expansions);
        }
    }

    #[test]
    fn truncated_exploration_leaves_scratch_clean() {
        let (g, s) = braided();
        for kernel in [PathKernel::Dfs, PathKernel::Layered] {
            let mut explorer = Explorer::new(s.len());
            let tight = PathConfig {
                kernel,
                max_expansions: 5,
                ..Default::default()
            };
            let res = explorer.explore(g.root(), &s, &tight);
            assert!(res.truncated);
            // A subsequent full exploration on the same scratch must be
            // correct.
            let full = PathConfig {
                kernel,
                ..Default::default()
            };
            let after = explorer.explore(g.root(), &s, &full);
            let fresh = explore_from(g.root(), &s, &full);
            assert_eq!(after.best_affinity, fresh.best_affinity);
            assert_eq!(after.best_cov_product, fresh.best_cov_product);
        }
    }

    /// The whole per-source contract, bit-for-bit: values, flags,
    /// expansion counts, and read sets.
    fn assert_result_bits_eq(a: &SourceResult, b: &SourceResult, ctx: &str) {
        assert_eq!(a.truncated, b.truncated, "{ctx}: truncated");
        assert_eq!(a.floored, b.floored, "{ctx}: floored");
        assert_eq!(a.expansions, b.expansions, "{ctx}: expansions");
        assert_eq!(a.reads, b.reads, "{ctx}: reads");
        for i in 0..a.best_affinity.len() {
            assert_eq!(
                a.best_affinity[i].to_bits(),
                b.best_affinity[i].to_bits(),
                "{ctx}: affinity[{i}]"
            );
            assert_eq!(
                a.best_cov_product[i].to_bits(),
                b.best_cov_product[i].to_bits(),
                "{ctx}: coverage[{i}]"
            );
        }
    }

    #[test]
    fn batched_kernel_matches_single_source_bitwise() {
        let (g, s) = braided();
        let cfg = PathConfig {
            kernel: PathKernel::Layered,
            ..Default::default()
        };
        let sources: Vec<_> = g.element_ids().collect();
        for batch in [1usize, 2, 3, 7, sources.len()] {
            let mut batched = Explorer::new(s.len());
            let mut scalar = Explorer::new(s.len());
            for chunk in sources.chunks(batch) {
                let results = batched.explore_batch(chunk, &s, &cfg);
                assert_eq!(results.len(), chunk.len());
                for (src, got) in chunk.iter().zip(&results) {
                    let want = scalar.explore(*src, &s, &cfg);
                    assert_result_bits_eq(got, &want, &format!("batch={batch} src={src}"));
                }
            }
        }
    }

    #[test]
    fn batched_kernel_evicts_budget_lanes_to_scalar() {
        let (g, s) = braided();
        // Budgets chosen to exhaust mid-layer on the braided graph, the one
        // order-dependent case: those lanes must be re-run scalar.
        for max_expansions in [0usize, 1, 3, 5, 17, 40] {
            let cfg = PathConfig {
                kernel: PathKernel::Layered,
                max_expansions,
                ..Default::default()
            };
            let sources: Vec<_> = g.element_ids().collect();
            let mut batched = Explorer::new(s.len());
            let mut scalar = Explorer::new(s.len());
            let results = batched.explore_batch(&sources, &s, &cfg);
            let mut any_truncated = false;
            for (src, got) in sources.iter().zip(&results) {
                let want = scalar.explore(*src, &s, &cfg);
                any_truncated |= want.truncated;
                assert_result_bits_eq(got, &want, &format!("budget={max_expansions} src={src}"));
            }
            if max_expansions > 0 && max_expansions < 17 {
                assert!(any_truncated, "budget {max_expansions} truncated nothing");
            }
        }
    }

    #[test]
    fn batch_scratch_is_reusable_across_batches() {
        let (g, s) = braided();
        let cfg = PathConfig {
            kernel: PathKernel::Layered,
            ..Default::default()
        };
        let sources: Vec<_> = g.element_ids().collect();
        let mut explorer = Explorer::new(s.len());
        let first = explorer.explore_batch(&sources, &s, &cfg);
        // Interleave a truncating batch to dirty the arenas, then repeat.
        let tight = PathConfig {
            kernel: PathKernel::Layered,
            max_expansions: 5,
            ..Default::default()
        };
        let _ = explorer.explore_batch(&sources, &s, &tight);
        let second = explorer.explore_batch(&sources, &s, &cfg);
        for (i, (a, b)) in first.iter().zip(&second).enumerate() {
            assert_result_bits_eq(a, b, &format!("reuse src index {i}"));
        }
    }

    #[test]
    fn batched_kernel_falls_back_for_dfs_configs() {
        let (g, s) = braided();
        // A positive floor always resolves to DFS; explore_batch must
        // transparently run per-source.
        let cfg = PathConfig {
            min_product: 0.05,
            prune: false,
            ..Default::default()
        };
        let sources: Vec<_> = g.element_ids().collect();
        let mut batched = Explorer::new(s.len());
        let mut scalar = Explorer::new(s.len());
        let results = batched.explore_batch(&sources, &s, &cfg);
        for (src, got) in sources.iter().zip(&results) {
            let want = scalar.explore(*src, &s, &cfg);
            assert_result_bits_eq(got, &want, &format!("dfs fallback src={src}"));
        }
    }

    #[test]
    fn layered_kernel_matches_dfs_enumeration() {
        let (g, s) = braided();
        let layered_cfg = PathConfig {
            kernel: PathKernel::Layered,
            ..Default::default()
        };
        let dfs_cfg = PathConfig {
            kernel: PathKernel::Dfs,
            ..Default::default()
        };
        for e in g.element_ids() {
            let layered = explore_from(e, &s, &layered_cfg);
            let dfs = explore_from(e, &s, &dfs_cfg);
            assert!(!layered.truncated && !dfs.truncated);
            for i in 0..s.len() {
                let (la, da) = (layered.best_affinity[i], dfs.best_affinity[i]);
                assert!(
                    (la - da).abs() <= 1e-12 * da.max(1.0),
                    "aff {e}→{i}: {la} vs {da}"
                );
                let (lc, dc) = (layered.best_cov_product[i], dfs.best_cov_product[i]);
                assert!(
                    (lc - dc).abs() <= 1e-12 * dc.max(1.0),
                    "cov {e}→{i}: {lc} vs {dc}"
                );
            }
        }
    }

    #[test]
    fn positive_min_product_falls_back_to_dfs_semantics() {
        // A layered config with a positive floor must behave like the DFS
        // kernel with the same floor (the layered kernel cannot express the
        // joint affinity/coverage floor).
        let (g, s) = braided();
        let via_layered = PathConfig {
            min_product: 0.05,
            ..Default::default()
        };
        let via_dfs = PathConfig {
            kernel: PathKernel::Dfs,
            min_product: 0.05,
            ..Default::default()
        };
        for e in g.element_ids() {
            let a = explore_from(e, &s, &via_layered);
            let b = explore_from(e, &s, &via_dfs);
            assert_eq!(a.best_affinity, b.best_affinity);
            assert_eq!(a.best_cov_product, b.best_cov_product);
            assert_eq!(a.expansions, b.expansions);
        }
    }

    /// A pure tree: minimal density, CSR average degree ≈ 2.
    fn sparse_tree(n: usize) -> SchemaStats {
        let mut b = SchemaGraphBuilder::new("r");
        let mut prev = b.root();
        for i in 1..n {
            prev = b
                .add_child(prev, format!("t{i}"), SchemaType::set_of_rcd())
                .unwrap();
        }
        let g = b.build().unwrap();
        SchemaStats::uniform(&g)
    }

    #[test]
    fn auto_kernel_resolves_by_node_count_and_density() {
        let cfg = PathConfig::default();
        assert_eq!(cfg.kernel, PathKernel::Auto);
        // Tiny and tree-sparse: enumeration wins (BENCH_matrices.json,
        // n=25 sparse synthetic).
        assert_eq!(cfg.effective_kernel(&sparse_tree(25)), PathKernel::Dfs);
        // Large: layered regardless of density.
        assert_eq!(
            cfg.effective_kernel(&sparse_tree(AUTO_NODE_THRESHOLD)),
            PathKernel::Layered
        );
        // Small but densely value-linked (braided: avg degree > 2.5).
        let (_, dense) = braided();
        assert_eq!(cfg.effective_kernel(&dense), PathKernel::Layered);
        // Explicit kernels resolve to themselves; a positive floor always
        // resolves to DFS (joint-floor semantics).
        let explicit = PathConfig {
            kernel: PathKernel::Layered,
            ..Default::default()
        };
        assert_eq!(
            explicit.effective_kernel(&sparse_tree(8)),
            PathKernel::Layered
        );
        let floored = PathConfig {
            min_product: 0.05,
            ..Default::default()
        };
        assert_eq!(floored.effective_kernel(&dense), PathKernel::Dfs);
    }

    #[test]
    fn auto_kernel_matches_both_explicit_kernels() {
        let (g, s) = braided();
        let auto_cfg = PathConfig::default();
        for kernel in [PathKernel::Layered, PathKernel::Dfs] {
            let explicit = PathConfig {
                kernel,
                ..Default::default()
            };
            for e in g.element_ids() {
                let a = explore_from(e, &s, &auto_cfg);
                let b = explore_from(e, &s, &explicit);
                for i in 0..s.len() {
                    assert!(
                        (a.best_affinity[i] - b.best_affinity[i]).abs()
                            <= 1e-12 * b.best_affinity[i].max(1.0),
                        "aff {e}→{i} vs {kernel:?}"
                    );
                    assert!(
                        (a.best_cov_product[i] - b.best_cov_product[i]).abs()
                            <= 1e-12 * b.best_cov_product[i].max(1.0),
                        "cov {e}→{i} vs {kernel:?}"
                    );
                }
            }
        }
    }
}
