//! The three selection algorithms: `MaxImportance` (Figure 4),
//! `MaxCoverage` (Figure 6), and `BalanceSummary` (Figure 7).
//!
//! Each algorithm selects `K` schema elements to become the abstract
//! elements of a summary; [`crate::builder::build_summary`] then materializes
//! the selection into a validated summary.

use crate::assignment::{assign_elements, summary_coverage};
use crate::dominance::DominanceSet;
use crate::importance::ImportanceResult;
use crate::matrices::PairMatrices;
use schema_summary_core::{ElementId, SchemaError, SchemaGraph, SchemaStats};
use serde::{Deserialize, Serialize};

/// Strategy for `MaxCoverage`'s search over candidate K-subsets.
///
/// The paper's exhaustive `O(C(N', K))` enumeration is intractable at the
/// reported dataset sizes (DESIGN.md §3.3), so greedy marginal-gain
/// selection is the default; exhaustive search remains available for small
/// inputs and is used by tests to confirm the greedy result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SetSearch {
    /// Enumerate every K-subset of the pruned candidates (errors out when
    /// more than the given number of subsets would be examined).
    Exhaustive {
        /// Upper bound on the number of subsets to evaluate.
        max_sets: u64,
    },
    /// Greedy marginal-gain selection (default).
    #[default]
    Greedy,
    /// Beam search keeping the best `width` partial sets per round.
    Beam {
        /// Number of partial sets retained per round.
        width: usize,
    },
}

/// `MaxImportance` (Figure 4): the `K` elements with the highest importance
/// scores (root excluded; it is always kept).
pub fn max_importance(
    graph: &SchemaGraph,
    importance: &ImportanceResult,
    k: usize,
) -> Result<Vec<ElementId>, SchemaError> {
    check_k(graph, k)?;
    Ok(importance.top_k(graph, k))
}

/// `MaxCoverage` (Figure 6): prune dominated candidates, then search for the
/// K-subset with the highest summary coverage (Definition 4).
///
/// If fewer than `K` non-dominated candidates remain, dominated elements are
/// re-admitted in descending self-coverage (cardinality) order — the paper
/// leaves this case unspecified; re-admission keeps large requested sizes
/// (e.g. the Figure 8 sweep) well-defined.
pub fn max_coverage(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    matrices: &PairMatrices,
    dominance: &DominanceSet,
    k: usize,
    search: SetSearch,
) -> Result<Vec<ElementId>, SchemaError> {
    check_k(graph, k)?;
    let mut candidates = dominance.non_dominated(graph);
    if candidates.len() < k {
        let mut rest: Vec<ElementId> = graph
            .element_ids()
            .filter(|&e| e != graph.root() && dominance.is_dominated(e))
            .collect();
        rest.sort_by(|&a, &b| {
            stats
                .card(b)
                .partial_cmp(&stats.card(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        candidates.extend(rest.into_iter().take(k - candidates.len()));
    }

    let eval = |set: &[ElementId]| {
        let assignment = assign_elements(graph, matrices, set);
        summary_coverage(graph, stats, matrices, set, &assignment)
    };

    match search {
        SetSearch::Greedy => Ok(greedy(&candidates, k, eval)),
        SetSearch::Beam { width } => Ok(beam(&candidates, k, width.max(1), eval)),
        SetSearch::Exhaustive { max_sets } => exhaustive(&candidates, k, max_sets, eval),
    }
}

fn greedy(
    candidates: &[ElementId],
    k: usize,
    eval: impl Fn(&[ElementId]) -> f64,
) -> Vec<ElementId> {
    let mut selected: Vec<ElementId> = Vec::with_capacity(k);
    let mut remaining: Vec<ElementId> = candidates.to_vec();
    while selected.len() < k && !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for (i, &c) in remaining.iter().enumerate() {
            selected.push(c);
            let score = eval(&selected);
            selected.pop();
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((i, score));
            }
        }
        let (i, _) = best.expect("remaining is non-empty");
        selected.push(remaining.swap_remove(i));
    }
    selected.sort_unstable();
    selected
}

fn beam(
    candidates: &[ElementId],
    k: usize,
    width: usize,
    eval: impl Fn(&[ElementId]) -> f64,
) -> Vec<ElementId> {
    let mut beams: Vec<(Vec<ElementId>, f64)> = vec![(Vec::new(), 0.0)];
    for _ in 0..k.min(candidates.len()) {
        let mut next: Vec<(Vec<ElementId>, f64)> = Vec::new();
        for (set, _) in &beams {
            for &c in candidates {
                if set.contains(&c) {
                    continue;
                }
                let mut extended = set.clone();
                extended.push(c);
                extended.sort_unstable();
                if next.iter().any(|(s, _)| *s == extended) {
                    continue;
                }
                let score = eval(&extended);
                next.push((extended, score));
            }
        }
        next.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        next.truncate(width);
        if next.is_empty() {
            break;
        }
        beams = next;
    }
    beams.into_iter().next().map(|(s, _)| s).unwrap_or_default()
}

fn exhaustive(
    candidates: &[ElementId],
    k: usize,
    max_sets: u64,
    eval: impl Fn(&[ElementId]) -> f64,
) -> Result<Vec<ElementId>, SchemaError> {
    let n = candidates.len();
    let k = k.min(n);
    if binomial(n as u64, k as u64) > max_sets {
        return Err(SchemaError::Invalid(format!(
            "exhaustive search over C({n},{k}) subsets exceeds the {max_sets}-set budget; \
             use SetSearch::Greedy or SetSearch::Beam"
        )));
    }
    let mut best: Option<(Vec<ElementId>, f64)> = None;
    let mut current: Vec<ElementId> = Vec::with_capacity(k);
    fn rec(
        candidates: &[ElementId],
        start: usize,
        k: usize,
        current: &mut Vec<ElementId>,
        best: &mut Option<(Vec<ElementId>, f64)>,
        eval: &impl Fn(&[ElementId]) -> f64,
    ) {
        if current.len() == k {
            let score = eval(current);
            if best.as_ref().is_none_or(|(_, b)| score > *b) {
                *best = Some((current.clone(), score));
            }
            return;
        }
        let needed = k - current.len();
        for i in start..=candidates.len().saturating_sub(needed) {
            current.push(candidates[i]);
            rec(candidates, i + 1, k, current, best, eval);
            current.pop();
        }
    }
    rec(candidates, 0, k, &mut current, &mut best, &eval);
    Ok(best.map(|(s, _)| s).unwrap_or_default())
}

/// Saturating binomial coefficient used for the exhaustive-search guard.
fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
        if result == u64::MAX {
            return u64::MAX;
        }
    }
    result
}

/// `BalanceSummary` (Figure 7): walk elements in descending importance,
/// skipping any element dominated by an already-selected one, and evicting
/// selected elements dominated by a newcomer (re-admitting the elements
/// whose skipping they caused).
///
/// If the importance-ordered walk exhausts before `K` elements are selected
/// (every remaining element dominated), the highest-importance unselected
/// elements fill the remaining slots — the paper leaves this case
/// unspecified.
pub fn balance_summary(
    graph: &SchemaGraph,
    importance: &ImportanceResult,
    dominance: &DominanceSet,
    k: usize,
) -> Result<Vec<ElementId>, SchemaError> {
    check_k(graph, k)?;
    let ranked = importance.ranked(graph);
    let rank_of = {
        let mut v = vec![usize::MAX; graph.len()];
        for (i, &e) in ranked.iter().enumerate() {
            v[e.index()] = i;
        }
        v
    };

    // Queue ordered by importance rank; re-admitted elements are merged back
    // by rank. A BTreeSet of ranks gives O(log n) pops in rank order.
    let mut queue: std::collections::BTreeSet<usize> = (0..ranked.len()).collect();
    let mut selected: Vec<ElementId> = Vec::with_capacity(k);
    // For each selected element, the elements skipped because it dominated
    // them (Figure 7 line: "add all elements skipped due to e' back to I").
    let mut skipped_due_to: Vec<Vec<usize>> = Vec::new();

    let mut steps = 0usize;
    let step_cap = 50 * graph.len() + 1_000;
    while selected.len() < k && steps < step_cap {
        let Some(&rank) = queue.iter().next() else {
            break;
        };
        queue.remove(&rank);
        steps += 1;
        let e = ranked[rank];

        if let Some(pos) = selected.iter().position(|&s| dominance.dominates(s, e)) {
            skipped_due_to[pos].push(rank);
            continue;
        }
        // Evict selected elements the newcomer dominates, re-admitting
        // everything skipped on their account.
        let mut i = 0;
        while i < selected.len() {
            if dominance.dominates(e, selected[i]) {
                let evicted = selected.remove(i);
                let readmitted = skipped_due_to.remove(i);
                queue.insert(rank_of[evicted.index()]);
                for r in readmitted {
                    queue.insert(r);
                }
            } else {
                i += 1;
            }
        }
        selected.push(e);
        skipped_due_to.push(Vec::new());
    }

    // Fill any shortfall with the best-ranked unselected elements.
    if selected.len() < k {
        for &e in &ranked {
            if selected.len() == k {
                break;
            }
            if !selected.contains(&e) {
                selected.push(e);
            }
        }
    }
    selected.truncate(k);
    selected.sort_unstable();
    Ok(selected)
}

/// Uniform-random selection of `k` non-root elements — the sanity floor
/// baseline for the ablation benches (any informed algorithm must beat
/// it). Deterministic in `seed`; no RNG dependency (xorshift).
pub fn random_select(
    graph: &SchemaGraph,
    k: usize,
    seed: u64,
) -> Result<Vec<ElementId>, SchemaError> {
    check_k(graph, k)?;
    let mut pool: Vec<ElementId> = graph.element_ids().filter(|&e| e != graph.root()).collect();
    // Splitmix-style seed scrambling so nearby seeds diverge.
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x1234_5678_9ABC_DEF1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Partial Fisher-Yates.
    for i in 0..k {
        let j = i + (next() as usize) % (pool.len() - i);
        pool.swap(i, j);
    }
    let mut out = pool[..k].to_vec();
    out.sort_unstable();
    Ok(out)
}

fn check_k(graph: &SchemaGraph, k: usize) -> Result<(), SchemaError> {
    let available = graph.len().saturating_sub(1);
    if k == 0 || k > available {
        return Err(SchemaError::BadSummarySize {
            requested: k,
            available,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::importance::{compute_importance, ImportanceConfig};
    use crate::paths::PathConfig;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::types::SchemaType;

    /// An auction-flavored fixture where person/auction/item dominate their
    /// attribute children.
    fn fixture() -> (SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(person, "name", SchemaType::simple_str())
            .unwrap();
        b.add_child(person, "email", SchemaType::simple_str())
            .unwrap();
        let items = b.add_child(b.root(), "items", SchemaType::rcd()).unwrap();
        let item = b
            .add_child(items, "item", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(item, "descr", SchemaType::simple_str())
            .unwrap();
        let auctions = b
            .add_child(b.root(), "auctions", SchemaType::rcd())
            .unwrap();
        let auction = b
            .add_child(auctions, "auction", SchemaType::set_of_rcd())
            .unwrap();
        let bidder = b
            .add_child(auction, "bidder", SchemaType::set_of_rcd())
            .unwrap();
        b.add_value_link(bidder, person).unwrap();
        b.add_value_link(auction, item).unwrap();
        let g = b.build().unwrap();
        let find = |l: &str| g.find_unique(l).unwrap();
        let (person, name, email) = (find("person"), find("name"), find("email"));
        let (item, descr) = (find("item"), find("descr"));
        let (auction, bidder) = (find("auction"), find("bidder"));
        let (people, items_e, auctions_e) = (find("people"), find("items"), find("auctions"));
        let mut cards = vec![0u64; g.len()];
        for (e, c) in [
            (g.root(), 1),
            (people, 1),
            (person, 500),
            (name, 500),
            (email, 450),
            (items_e, 1),
            (item, 400),
            (descr, 400),
            (auctions_e, 1),
            (auction, 300),
            (bidder, 1500),
        ] {
            cards[e.index()] = c;
        }
        let links = vec![
            LinkCount {
                from: g.root(),
                to: people,
                count: 1,
            },
            LinkCount {
                from: people,
                to: person,
                count: 500,
            },
            LinkCount {
                from: person,
                to: name,
                count: 500,
            },
            LinkCount {
                from: person,
                to: email,
                count: 450,
            },
            LinkCount {
                from: g.root(),
                to: items_e,
                count: 1,
            },
            LinkCount {
                from: items_e,
                to: item,
                count: 400,
            },
            LinkCount {
                from: item,
                to: descr,
                count: 400,
            },
            LinkCount {
                from: g.root(),
                to: auctions_e,
                count: 1,
            },
            LinkCount {
                from: auctions_e,
                to: auction,
                count: 300,
            },
            LinkCount {
                from: auction,
                to: bidder,
                count: 1500,
            },
            LinkCount {
                from: bidder,
                to: person,
                count: 1500,
            },
            LinkCount {
                from: auction,
                to: item,
                count: 300,
            },
        ];
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        (g, s)
    }

    #[test]
    fn max_importance_picks_heavy_elements() {
        let (g, s) = fixture();
        let imp = compute_importance(&g, &s, &ImportanceConfig::default());
        let top = max_importance(&g, &imp, 3).unwrap();
        let labels: Vec<_> = top.iter().map(|&e| g.label(e)).collect();
        assert!(labels.contains(&"bidder"), "{labels:?}");
        assert!(labels.contains(&"person"), "{labels:?}");
    }

    #[test]
    fn greedy_matches_exhaustive_on_small_input() {
        let (g, s) = fixture();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ds = DominanceSet::compute(&g, &s, &m);
        for k in 1..=3 {
            let greedy = max_coverage(&g, &s, &m, &ds, k, SetSearch::Greedy).unwrap();
            let exact = max_coverage(
                &g,
                &s,
                &m,
                &ds,
                k,
                SetSearch::Exhaustive {
                    max_sets: 1_000_000,
                },
            )
            .unwrap();
            let eval = |set: &[ElementId]| {
                let a = assign_elements(&g, &m, set);
                summary_coverage(&g, &s, &m, set, &a)
            };
            assert!(
                eval(&greedy) >= eval(&exact) - 1e-9,
                "k={k}: greedy {greedy:?} < exhaustive {exact:?}"
            );
        }
    }

    #[test]
    fn beam_is_at_least_greedy_quality() {
        let (g, s) = fixture();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ds = DominanceSet::compute(&g, &s, &m);
        let eval = |set: &[ElementId]| {
            let a = assign_elements(&g, &m, set);
            summary_coverage(&g, &s, &m, set, &a)
        };
        let greedy = max_coverage(&g, &s, &m, &ds, 3, SetSearch::Greedy).unwrap();
        let beam = max_coverage(&g, &s, &m, &ds, 3, SetSearch::Beam { width: 8 }).unwrap();
        assert!(eval(&beam) >= eval(&greedy) - 1e-9);
    }

    #[test]
    fn exhaustive_guard_rejects_blowup() {
        let (g, s) = fixture();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ds = DominanceSet::compute(&g, &s, &m);
        let err = max_coverage(&g, &s, &m, &ds, 2, SetSearch::Exhaustive { max_sets: 0 });
        assert!(err.is_err());
    }

    #[test]
    fn balance_skips_dominated_elements() {
        let (g, s) = fixture();
        let imp = compute_importance(&g, &s, &ImportanceConfig::default());
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ds = DominanceSet::compute(&g, &s, &m);
        let sel = balance_summary(&g, &imp, &ds, 3).unwrap();
        assert_eq!(sel.len(), 3);
        // No selected element dominates another selected element.
        for &a in &sel {
            for &b in &sel {
                if a != b {
                    assert!(
                        !ds.dominates(a, b),
                        "{} dominates {}",
                        g.label(a),
                        g.label(b)
                    );
                }
            }
        }
    }

    #[test]
    fn balance_produces_requested_size_even_when_walk_exhausts() {
        let (g, s) = fixture();
        let imp = compute_importance(&g, &s, &ImportanceConfig::default());
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ds = DominanceSet::compute(&g, &s, &m);
        let k = g.len() - 1; // every non-root element
        let sel = balance_summary(&g, &imp, &ds, k).unwrap();
        assert_eq!(sel.len(), k);
    }

    #[test]
    fn size_bounds_are_enforced() {
        let (g, s) = fixture();
        let imp = compute_importance(&g, &s, &ImportanceConfig::default());
        assert!(max_importance(&g, &imp, 0).is_err());
        assert!(max_importance(&g, &imp, g.len()).is_err());
    }

    #[test]
    fn random_select_is_deterministic_and_valid() {
        let (g, _) = fixture();
        let a = random_select(&g, 3, 42).unwrap();
        let b = random_select(&g, 3, 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.contains(&g.root()));
        let mut d = a.clone();
        d.dedup();
        assert_eq!(d.len(), 3);
        let c = random_select(&g, 3, 43).unwrap();
        // Different seeds usually differ (not guaranteed, but for this
        // fixture they do).
        assert_ne!(a, c);
        assert!(random_select(&g, 0, 1).is_err());
    }

    #[test]
    fn binomial_sanity() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(60, 30), binomial(60, 30));
        assert!(binomial(163, 10) > 1_000_000_000);
    }

    use crate::assignment::{assign_elements, summary_coverage};
    use schema_summary_core::SchemaGraph;
}
