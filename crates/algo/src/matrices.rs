//! All-pairs element affinity (Formula 2) and coverage (Formula 3).
//!
//! [`PairMatrices`] materializes `A(a → b)` and `C(a → b)` for every ordered
//! element pair by running one path exploration per source element. For the
//! paper's datasets (70–327 elements) this is a few hundred kilobytes and
//! milliseconds; both `MaxCoverage` and summary construction consume the
//! matrices repeatedly, so computing them once up front dominates
//! recomputation.
//!
//! Per-source explorations are fully independent, so the cold pass scales by
//! fanning sources out to scoped worker threads. Sources are handed out
//! through a shared atomic counter (work stealing) rather than static
//! chunks: exploration cost varies wildly per source — a source inside a
//! densely value-linked region can cost orders of magnitude more than a
//! leaf — and static chunking strands every other worker behind the
//! unluckiest chunk. Workers send finished rows over a channel and the
//! calling thread assembles the matrices, keeping the crate free of
//! `unsafe` row aliasing.
//!
//! When the configuration resolves to the layered kernel, the counter hands
//! out source *batches* of [`DEFAULT_SOURCE_BATCH`] instead of single
//! sources: each worker advances its whole batch through one
//! [`Explorer::explore_batch`] frontier sweep per layer, streaming the CSR
//! edge lanes once per layer for the batch rather than once per source.
//! DFS-resolving configurations keep single-source handout (the DFS kernel
//! has no cross-source sharing to exploit, and finer granularity steals
//! better).

use crate::paths::{Explorer, PathConfig, PathKernel, SourceResult};
use schema_summary_core::{ElementId, SchemaStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Sources per work-stealing handout when the layered kernel resolves.
/// The batched kernel's win scales with *lane density* — how many of a
/// batch's sources have overlapping frontiers at each relaxed node — and
/// with the arena working set staying cache-resident; 16 lanes measured
/// fastest across the bench schemas on both axes (BENCH_matrices.json),
/// ahead of 8 (metadata amortized over too few lanes) and 32+ (arenas
/// spill L2 on thousand-element schemas).
pub const DEFAULT_SOURCE_BATCH: usize = 16;

/// Source handout order for batched computes: breadth-first from each
/// unvisited node over traversable edges. Sources batched together should
/// have *overlapping* frontiers — every node they share per layer is one
/// relaxation serving many lanes — and BFS rank groups graph neighbors,
/// whereas raw id order reflects schema construction order, which scatters
/// a batch across the graph (measured ~2× slower on the synthetic bench
/// schemas, whose ids are assigned in random-parent insertion order).
/// Pure driver policy: rows are written per source id, so handout order
/// never changes any bit of the result.
fn locality_order(stats: &SchemaStats) -> Vec<ElementId> {
    let n = stats.len();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        let mut head = order.len();
        order.push(ElementId(start as u32));
        while head < order.len() {
            let u = order[head];
            head += 1;
            for (nb, &rc) in stats
                .edge_neighbors(u)
                .iter()
                .zip(stats.edge_rcs(u))
            {
                if rc > 0.0 && !seen[nb.index()] {
                    seen[nb.index()] = true;
                    order.push(*nb);
                }
            }
        }
    }
    order
}

/// Per-source exploration metadata, kept alongside the dense matrices so a
/// row-level splice ([`PairMatrices::splice`]) can rebuild the run-wide
/// flags and expansion count as the exact fold a from-scratch compute would
/// produce. Absent only on matrices decoded from the legacy disk format.
#[derive(Debug, Clone)]
struct SourceMeta {
    truncated: Vec<bool>,
    floored: Vec<bool>,
    expansions: Vec<u64>,
    /// Per-source read sets (sorted element ids): exactly the elements
    /// whose stats records source `a`'s exploration consulted (see
    /// [`SourceResult::reads`](crate::paths::SourceResult)). A row is
    /// invariant under any delta that leaves all of its read records
    /// bit-identical — the row-selection predicate of
    /// [`rows_reading`](PairMatrices::rows_reading).
    visited: Vec<Vec<u32>>,
    /// The raw per-row path products (`SourceResult::best_cov_product`,
    /// row-major `n × n`). Exploration never reads cardinalities — they
    /// enter exactly once, when the coverage row is written as
    /// `Card(b) · product` — so keeping the products lets
    /// [`splice`](PairMatrices::splice) redo that final multiply under
    /// *new* cardinalities for rows it did not re-explore, bit-identically
    /// to a cold pass.
    cov_product: Vec<f64>,
}

impl SourceMeta {
    fn zeroed(n: usize) -> Self {
        SourceMeta {
            truncated: vec![false; n],
            floored: vec![false; n],
            expansions: vec![0; n],
            visited: vec![Vec::new(); n],
            cov_product: vec![0.0; n * n],
        }
    }
}

/// Dense all-pairs affinity and coverage matrices.
#[derive(Debug, Clone)]
pub struct PairMatrices {
    n: usize,
    affinity: Vec<f64>,
    coverage: Vec<f64>,
    truncated: bool,
    floored: bool,
    expansions: u64,
    per_source: Option<SourceMeta>,
}

impl PairMatrices {
    /// Compute both matrices for `stats` under `config`, parallelizing
    /// across source elements when the schema reaches
    /// [`PathConfig::parallel_threshold`] and more than one CPU is
    /// available.
    pub fn compute(stats: &SchemaStats, config: &PathConfig) -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::compute_with_threads(stats, config, threads)
    }

    /// [`compute`](Self::compute) with an explicit worker-thread count
    /// (primarily for tests and benchmarks that need the parallel path on
    /// machines where `available_parallelism` would fall back to serial).
    /// Layered-resolving configurations run the batched kernel with
    /// [`DEFAULT_SOURCE_BATCH`] sources per handout; DFS keeps single-source
    /// handout. Results are bit-identical either way.
    pub fn compute_with_threads(stats: &SchemaStats, config: &PathConfig, threads: usize) -> Self {
        let batch = match config.effective_kernel(stats) {
            PathKernel::Layered => DEFAULT_SOURCE_BATCH,
            _ => 1,
        };
        Self::compute_with_threads_batched(stats, config, threads, batch)
    }

    /// The work-stealing driver with an explicit source-batch size: the
    /// shared counter hands each worker `batch` consecutive sources, which
    /// advance through one [`Explorer::explore_batch`] call. `batch ≤ 1`
    /// reproduces the single-source driver exactly (per-source
    /// [`Explorer::explore`], the bitwise reference); batches above
    /// [`crate::paths::MAX_BATCH_LANES`] are chunked by the kernel. Exposed
    /// for benchmarks that sweep batch sizes; output is bit-identical to
    /// [`compute_serial`](Self::compute_serial) for every batch size.
    pub fn compute_with_threads_batched(
        stats: &SchemaStats,
        config: &PathConfig,
        threads: usize,
        batch: usize,
    ) -> Self {
        let n = stats.len();
        let batch = batch.max(1);
        if n < config.parallel_threshold || threads < 2 {
            return Self::compute_serial_batched(stats, config, batch);
        }
        let mut out = Self::zeroed(n);
        let order = if batch > 1 {
            locality_order(stats)
        } else {
            Vec::new()
        };
        let next_source = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(Vec<ElementId>, Vec<SourceResult>)>();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(n) {
                let tx = tx.clone();
                let next_source = &next_source;
                let order = &order;
                scope.spawn(move || {
                    let mut explorer = Explorer::new(n);
                    loop {
                        let start = next_source.fetch_add(batch, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + batch).min(n);
                        let (sources, results) = if batch == 1 {
                            let src = ElementId(start as u32);
                            (vec![src], vec![explorer.explore(src, stats, config)])
                        } else {
                            let chunk = order[start..end].to_vec();
                            let results = explorer.explore_batch(&chunk, stats, config);
                            (chunk, results)
                        };
                        if tx.send((sources, results)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            while let Ok((sources, results)) = rx.recv() {
                for (src, res) in sources.iter().zip(&results) {
                    out.write_source_row(src.index(), res, stats);
                }
            }
        });
        out
    }

    /// Single-threaded reference implementation (also used below the
    /// parallel threshold, where thread spawn overhead dominates). The
    /// parallel and batched paths run the exact same per-source kernels, so
    /// their output is bit-identical to this one.
    pub fn compute_serial(stats: &SchemaStats, config: &PathConfig) -> Self {
        let n = stats.len();
        let mut out = Self::zeroed(n);
        let mut explorer = Explorer::new(n);
        for a in 0..n {
            let res = explorer.explore(ElementId(a as u32), stats, config);
            out.write_source_row(a, &res, stats);
        }
        out
    }

    /// Single-threaded batched pass: sources advance in consecutive chunks
    /// of `batch` through [`Explorer::explore_batch`]. `batch ≤ 1` is
    /// exactly [`compute_serial`](Self::compute_serial). Exposed for
    /// benchmarks isolating the kernel speedup from thread scaling.
    pub fn compute_serial_batched(stats: &SchemaStats, config: &PathConfig, batch: usize) -> Self {
        if batch <= 1 {
            return Self::compute_serial(stats, config);
        }
        let n = stats.len();
        let mut out = Self::zeroed(n);
        let mut explorer = Explorer::new(n);
        let order = locality_order(stats);
        for chunk in order.chunks(batch) {
            let results = explorer.explore_batch(chunk, stats, config);
            for (src, res) in chunk.iter().zip(&results) {
                out.write_source_row(src.index(), res, stats);
            }
        }
        out
    }

    fn zeroed(n: usize) -> Self {
        PairMatrices {
            n,
            affinity: vec![0.0; n * n],
            coverage: vec![0.0; n * n],
            truncated: false,
            floored: false,
            expansions: 0,
            per_source: Some(SourceMeta::zeroed(n)),
        }
    }

    /// The shared per-source kernel: fold one exploration result into row
    /// `a` of both matrices and the run-wide flags.
    fn write_source_row(&mut self, a: usize, res: &SourceResult, stats: &SchemaStats) {
        let n = self.n;
        let row = a * n;
        self.affinity[row..row + n].copy_from_slice(&res.best_affinity);
        for b in 0..n {
            // Formula 3: C(a→b) = Card_b · max path product; the special
            // case C(a→a) = Card_a falls out since the product is 1.
            self.coverage[row + b] = stats.card(ElementId(b as u32)) * res.best_cov_product[b];
        }
        self.truncated |= res.truncated;
        self.floored |= res.floored;
        self.expansions += res.expansions;
        if let Some(meta) = self.per_source.as_mut() {
            meta.truncated[a] = res.truncated;
            meta.floored[a] = res.floored;
            meta.expansions[a] = res.expansions;
            meta.visited[a] = res.reads.clone();
            meta.cov_product[row..row + n].copy_from_slice(&res.best_cov_product);
        }
    }

    /// Derive the matrices of a *changed* statistics annotation by
    /// re-exploring only the sources marked in `recompute` and carrying
    /// every other row over from `self`: affinity, flags, expansion counts,
    /// and metadata are copied verbatim (exploration never reads
    /// cardinalities, so an un-marked row's trace — and its products — are
    /// bit-identical under the new stats), while the coverage row is
    /// rewritten from the stored path products as `Card(b) · product`,
    /// the exact multiply [`write_source_row`](Self::write_source_row)
    /// performs. A cardinality-only delta therefore splices with *zero*
    /// re-exploration, at one multiply per matrix cell.
    ///
    /// The caller is responsible for the soundness of `recompute` (see
    /// `incremental::plan_delta`): a carried-over row is bit-identical to a
    /// cold recompute only when none of the exploration-relevant records
    /// its trace read changed. Given a sound plan, the spliced matrices —
    /// entries, flags, and expansion counts — are indistinguishable from
    /// [`compute`](Self::compute) on the new statistics.
    ///
    /// **Resizing**: `stats` may cover *more* elements than `self` (an
    /// additive structural delta appended elements). The splice then grows
    /// the matrices in place: every appended source row must be marked in
    /// `recompute` (there is no old row to carry), and carried-over old
    /// rows are re-strided into the wider layout with their new columns
    /// left at `+0.0` — exactly what a cold pass writes there, because a
    /// sound plan guarantees an unmarked row's trace never reaches an
    /// appended element, so its path product for those targets is zero and
    /// `Card · 0.0 = +0.0`.
    ///
    /// Returns `None` when the shapes disagree (including a *shrinking*
    /// `stats`, or an appended row left unmarked) or `self` lacks
    /// per-source metadata (matrices rehydrated from the legacy disk
    /// format), in which case the caller must fall back to a cold compute.
    pub fn splice(
        &self,
        stats: &SchemaStats,
        config: &PathConfig,
        recompute: &[bool],
    ) -> Option<Self> {
        let n_old = self.n;
        let n = stats.len();
        if n < n_old || recompute.len() != n {
            return None;
        }
        if recompute[n_old..].iter().any(|&redo| !redo) {
            return None;
        }
        let per = self.per_source.as_ref()?;
        let mut out = Self::zeroed(n);
        // Carried-over rows first, then the re-explored rows in batches:
        // rows are disjoint and the run-wide folds (`|=` flags, `u64` sum)
        // are order-independent, so the two-pass order changes no bits.
        // Only old rows (`a < n_old`) can be unmarked, checked above.
        for (a, &redo) in recompute.iter().enumerate() {
            if !redo {
                let src = a * n_old;
                let dst = a * n;
                out.affinity[dst..dst + n_old]
                    .copy_from_slice(&self.affinity[src..src + n_old]);
                // Redo only the final card multiply over the unchanged
                // products — bitwise what a cold write of this row does.
                // Appended columns keep the `0.0` product `zeroed` laid
                // down, and their coverage stays `+0.0 = Card · 0.0`.
                let products = &per.cov_product[src..src + n_old];
                for (b, product) in products.iter().enumerate() {
                    out.coverage[dst + b] = stats.card(ElementId(b as u32)) * product;
                }
                out.truncated |= per.truncated[a];
                out.floored |= per.floored[a];
                out.expansions += per.expansions[a];
                let meta = out.per_source.as_mut().expect("zeroed carries metadata");
                meta.truncated[a] = per.truncated[a];
                meta.floored[a] = per.floored[a];
                meta.expansions[a] = per.expansions[a];
                // A carried-over row's trace is unchanged, so its read set
                // and products are too.
                meta.visited[a] = per.visited[a].clone();
                meta.cov_product[dst..dst + n_old].copy_from_slice(products);
            }
        }
        let mut redo_rows: Vec<ElementId> = recompute
            .iter()
            .enumerate()
            .filter(|&(_, &redo)| redo)
            .map(|(a, _)| ElementId(a as u32))
            .collect();
        if redo_rows.len() > 1 {
            // Same locality policy as the cold driver: batches of
            // graph-neighboring sources share frontier relaxations.
            let mut rank = vec![0u32; n];
            for (pos, e) in locality_order(stats).into_iter().enumerate() {
                rank[e.index()] = pos as u32;
            }
            redo_rows.sort_unstable_by_key(|e| rank[e.index()]);
        }
        let mut explorer = Explorer::new(n);
        for chunk in redo_rows.chunks(DEFAULT_SOURCE_BATCH) {
            let results = explorer.explore_batch(chunk, stats, config);
            for (src, res) in chunk.iter().zip(&results) {
                out.write_source_row(src.index(), res, stats);
            }
        }
        Some(out)
    }

    /// Whether these matrices carry per-source metadata and can therefore
    /// serve as the base of a [`splice`](Self::splice).
    #[inline]
    pub fn has_source_meta(&self) -> bool {
        self.per_source.is_some()
    }

    /// The rows whose recorded read set intersects `touched` — exactly the
    /// sources whose exploration consulted a changed stats record and must
    /// be re-explored; every other row is bitwise invariant. Returns `None`
    /// when the metadata is absent (legacy decode) or the shape disagrees.
    pub fn rows_reading(&self, touched: &[bool]) -> Option<Vec<bool>> {
        let per = self.per_source.as_ref()?;
        if touched.len() != self.n {
            return None;
        }
        Some(
            per.visited
                .iter()
                .map(|reads| {
                    reads
                        .iter()
                        .any(|&u| touched.get(u as usize) == Some(&true))
                })
                .collect(),
        )
    }

    /// Bitwise equality of entries, flags, and expansion counts — the
    /// equivalence the incremental-maintenance proptests assert between a
    /// spliced refresh and a cold recompute. Per-source metadata presence
    /// is intentionally ignored (legacy-decoded matrices lack it).
    pub fn bitwise_eq(&self, other: &Self) -> bool {
        self.n == other.n
            && self.truncated == other.truncated
            && self.floored == other.floored
            && self.expansions == other.expansions
            && self
                .affinity
                .iter()
                .zip(&other.affinity)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self
                .coverage
                .iter()
                .zip(&other.coverage)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Number of elements covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrices are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Element affinity `A(a → b)` (Formula 2).
    #[inline]
    pub fn affinity(&self, a: ElementId, b: ElementId) -> f64 {
        self.affinity[a.index() * self.n + b.index()]
    }

    /// Element coverage `C(a → b)` (Formula 3).
    #[inline]
    pub fn coverage(&self, a: ElementId, b: ElementId) -> f64 {
        self.coverage[a.index() * self.n + b.index()]
    }

    /// Whether any per-source exploration exhausted its budget (entries are
    /// then lower bounds).
    #[inline]
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Whether any exploration cut branches at the
    /// [`PathConfig::min_product`] floor (entries are then lower bounds).
    #[inline]
    pub fn floored(&self) -> bool {
        self.floored
    }

    /// Total edge expansions across all sources — the cold pass's unit of
    /// work, comparable across configurations to measure pruning.
    #[inline]
    pub fn expansions(&self) -> u64 {
        self.expansions
    }

    /// Serialize to a compact binary form that round-trips bit-exactly:
    /// every `f64` is stored as its IEEE-754 bit pattern, so
    /// [`from_bytes`](Self::from_bytes) rebuilds matrices indistinguishable
    /// from the originals. This is the persistence format of the serving
    /// layer's disk tier.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n;
        let mut out = Vec::with_capacity(8 + 2 + 8 + 16 * n * n);
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.push(u8::from(self.truncated));
        out.push(u8::from(self.floored));
        out.extend_from_slice(&self.expansions.to_le_bytes());
        for &v in &self.affinity {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for &v in &self.coverage {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        // Per-source metadata rides as a trailing section so pre-existing
        // readers of the original layout still see a well-formed prefix and
        // legacy files (no section) decode with `per_source: None`.
        if let Some(meta) = &self.per_source {
            for a in 0..n {
                out.push(u8::from(meta.truncated[a]));
            }
            for a in 0..n {
                out.push(u8::from(meta.floored[a]));
            }
            for a in 0..n {
                out.extend_from_slice(&meta.expansions[a].to_le_bytes());
            }
            for a in 0..n {
                out.extend_from_slice(&(meta.visited[a].len() as u32).to_le_bytes());
                for &u in &meta.visited[a] {
                    out.extend_from_slice(&u.to_le_bytes());
                }
            }
            for &v in &meta.cov_product {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// Rebuild matrices from [`to_bytes`](Self::to_bytes) output. Returns
    /// `None` on any malformed input (short, long, or inconsistent) —
    /// callers treat that as a cache miss and recompute.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, len: usize| -> Option<&[u8]> {
            let end = pos.checked_add(len)?;
            let slice = bytes.get(*pos..end)?;
            *pos = end;
            Some(slice)
        };
        let n = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?) as usize;
        // Reject sizes whose matrix byte count cannot even be addressed.
        let cells = n.checked_mul(n)?;
        let truncated = match take(&mut pos, 1)?[0] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let floored = match take(&mut pos, 1)?[0] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let expansions = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let read_matrix = |pos: &mut usize| -> Option<Vec<f64>> {
            let raw = take(pos, cells.checked_mul(8)?)?;
            Some(
                raw.chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
                    .collect(),
            )
        };
        let affinity = read_matrix(&mut pos)?;
        let coverage = read_matrix(&mut pos)?;
        // Legacy files end here; current files carry the per-source section.
        let per_source = if pos == bytes.len() {
            None
        } else {
            let read_flags = |pos: &mut usize| -> Option<Vec<bool>> {
                take(pos, n)?
                    .iter()
                    .map(|&b| match b {
                        0 => Some(false),
                        1 => Some(true),
                        _ => None,
                    })
                    .collect()
            };
            let src_truncated = read_flags(&mut pos)?;
            let src_floored = read_flags(&mut pos)?;
            let src_expansions: Vec<u64> = take(&mut pos, n.checked_mul(8)?)?
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            let mut visited = Vec::with_capacity(n);
            for _ in 0..n {
                let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
                if len > n {
                    return None;
                }
                let reads: Vec<u32> = take(&mut pos, len.checked_mul(4)?)?
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect();
                // Read sets are sorted element ids within the matrix shape.
                if reads.iter().any(|&u| u as usize >= n) || reads.windows(2).any(|w| w[0] >= w[1])
                {
                    return None;
                }
                visited.push(reads);
            }
            let cov_product = read_matrix(&mut pos)?;
            // The section must be internally consistent with the aggregates.
            if src_truncated.iter().any(|&t| t) != truncated
                || src_floored.iter().any(|&f| f) != floored
                || src_expansions.iter().sum::<u64>() != expansions
            {
                return None;
            }
            Some(SourceMeta {
                truncated: src_truncated,
                floored: src_floored,
                expansions: src_expansions,
                visited,
                cov_product,
            })
        };
        if pos != bytes.len() {
            return None;
        }
        Some(PairMatrices {
            n,
            affinity,
            coverage,
            truncated,
            floored,
            expansions,
            per_source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::types::SchemaType;

    fn chain_stats() -> (schema_summary_core::SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("r");
        let a = b
            .add_child(b.root(), "a", SchemaType::set_of_rcd())
            .unwrap();
        let c = b.add_child(a, "c", SchemaType::set_of_rcd()).unwrap();
        let g = b.build().unwrap();
        let s = SchemaStats::from_link_counts(
            &g,
            &[1, 10, 40],
            &[
                LinkCount {
                    from: g.root(),
                    to: a,
                    count: 10,
                },
                LinkCount {
                    from: a,
                    to: c,
                    count: 40,
                },
            ],
        )
        .unwrap();
        (g, s)
    }

    #[test]
    fn diagonal_entries() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        for e in g.element_ids() {
            assert_eq!(m.affinity(e, e), 1.0);
            assert_eq!(m.coverage(e, e), s.card(e));
        }
    }

    #[test]
    fn child_has_higher_affinity_to_parent_than_vice_versa() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let a = g.find_unique("a").unwrap();
        let c = g.find_unique("c").unwrap();
        // RC(a→c)=4, RC(c→a)=1: each c belongs to one a, each a has 4 c's.
        assert!(m.affinity(c, a) > m.affinity(a, c));
        assert!((m.affinity(c, a) - 1.0).abs() < 1e-9);
        assert!((m.affinity(a, c) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn coverage_values_hand_checked() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let a = g.find_unique("a").unwrap();
        let c = g.find_unique("c").unwrap();
        // C(a→c) = card_c · A(a→c) · W(c→a). c's only neighbor is a, so
        // W(c→a) = 1. A(a→c) = 1/4. => 40 · 0.25 = 10.
        assert!((m.coverage(a, c) - 10.0).abs() < 1e-9);
        // C(c→a) = card_a · A(c→a) · W(a→c).
        // W(a→c) = RC(a→c)/(RC(a→r)+RC(a→c)) = 4/(1+4).
        assert!((m.coverage(c, a) - 10.0 * 1.0 * 0.8).abs() < 1e-9);
    }

    #[test]
    fn asymmetry_is_preserved() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let a = g.find_unique("a").unwrap();
        let c = g.find_unique("c").unwrap();
        assert_ne!(m.affinity(a, c), m.affinity(c, a));
        assert_ne!(m.coverage(a, c), m.coverage(c, a));
        assert!(!m.truncated());
    }

    #[test]
    fn forced_parallel_matches_serial_bitwise() {
        let (g, s) = chain_stats();
        // parallel_threshold 0 forces the work-stealing path even for this
        // tiny schema; 4 workers on any machine.
        let cfg = PathConfig {
            parallel_threshold: 0,
            ..Default::default()
        };
        let par = PairMatrices::compute_with_threads(&s, &cfg, 4);
        let ser = PairMatrices::compute_serial(&s, &cfg);
        for a in g.element_ids() {
            for b in g.element_ids() {
                assert_eq!(par.affinity(a, b).to_bits(), ser.affinity(a, b).to_bits());
                assert_eq!(par.coverage(a, b).to_bits(), ser.coverage(a, b).to_bits());
            }
        }
        assert_eq!(par.truncated(), ser.truncated());
        assert_eq!(par.floored(), ser.floored());
        assert_eq!(par.expansions(), ser.expansions());
    }

    #[test]
    fn batched_drivers_match_serial_bitwise() {
        let (_, s) = chain_stats();
        let cfg = PathConfig {
            kernel: PathKernel::Layered,
            parallel_threshold: 0,
            ..Default::default()
        };
        let reference = PairMatrices::compute_serial(&s, &cfg);
        for batch in [1usize, 2, 3, DEFAULT_SOURCE_BATCH, 100] {
            let serial = PairMatrices::compute_serial_batched(&s, &cfg, batch);
            assert!(serial.bitwise_eq(&reference), "serial batch={batch}");
            let parallel = PairMatrices::compute_with_threads_batched(&s, &cfg, 4, batch);
            assert!(parallel.bitwise_eq(&reference), "parallel batch={batch}");
        }
        // The default entry point routes layered configs through the batched
        // driver; it too must be indistinguishable.
        let default_path = PairMatrices::compute_with_threads(&s, &cfg, 4);
        assert!(default_path.bitwise_eq(&reference));
    }

    #[test]
    fn expansions_are_reported() {
        let (_, s) = chain_stats();
        let m = PairMatrices::compute_serial(&s, &PathConfig::default());
        assert!(m.expansions() > 0);
        assert!(!m.floored());
    }

    #[test]
    fn byte_codec_roundtrips_bitwise() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let bytes = m.to_bytes();
        let back = PairMatrices::from_bytes(&bytes).unwrap();
        for a in g.element_ids() {
            for b in g.element_ids() {
                assert_eq!(m.affinity(a, b).to_bits(), back.affinity(a, b).to_bits());
                assert_eq!(m.coverage(a, b).to_bits(), back.coverage(a, b).to_bits());
            }
        }
        assert_eq!(m.truncated(), back.truncated());
        assert_eq!(m.floored(), back.floored());
        assert_eq!(m.expansions(), back.expansions());
    }

    #[test]
    fn byte_codec_rejects_malformed_input() {
        let (_, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let bytes = m.to_bytes();
        assert!(PairMatrices::from_bytes(&[]).is_none());
        assert!(PairMatrices::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut long = bytes.clone();
        long.push(0);
        assert!(PairMatrices::from_bytes(&long).is_none());
        let mut bad_flag = bytes;
        bad_flag[8] = 7; // truncated flag must be 0 or 1
        assert!(PairMatrices::from_bytes(&bad_flag).is_none());
    }
}
