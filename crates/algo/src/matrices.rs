//! All-pairs element affinity (Formula 2) and coverage (Formula 3).
//!
//! [`PairMatrices`] materializes `A(a → b)` and `C(a → b)` for every ordered
//! element pair by running one path exploration per source element. For the
//! paper's datasets (70–327 elements) this is a few hundred kilobytes and
//! milliseconds; both `MaxCoverage` and summary construction consume the
//! matrices repeatedly, so computing them once up front dominates
//! recomputation.

use crate::paths::{explore_from, PathConfig};
use schema_summary_core::{ElementId, SchemaStats};

/// Dense all-pairs affinity and coverage matrices.
#[derive(Debug, Clone)]
pub struct PairMatrices {
    n: usize,
    affinity: Vec<f64>,
    coverage: Vec<f64>,
    truncated: bool,
}

impl PairMatrices {
    /// Compute both matrices for `stats` under `config`, parallelizing
    /// across source elements for larger schemas (each source's exploration
    /// is independent; scoped threads keep the API dependency-free).
    pub fn compute(stats: &SchemaStats, config: &PathConfig) -> Self {
        let n = stats.len();
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        if n < 64 || threads < 2 {
            return Self::compute_serial(stats, config);
        }
        let chunk = n.div_ceil(threads);
        let mut affinity = vec![0.0; n * n];
        let mut coverage = vec![0.0; n * n];
        let mut truncated = false;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, (aff_chunk, cov_chunk)) in affinity
                .chunks_mut(chunk * n)
                .zip(coverage.chunks_mut(chunk * n))
                .enumerate()
            {
                handles.push(scope.spawn(move || {
                    let start = t * chunk;
                    let mut trunc = false;
                    for (i, (aff_row, cov_row)) in aff_chunk
                        .chunks_mut(n)
                        .zip(cov_chunk.chunks_mut(n))
                        .enumerate()
                    {
                        let src = ElementId((start + i) as u32);
                        let res = explore_from(src, stats, config);
                        trunc |= res.truncated;
                        aff_row.copy_from_slice(&res.best_affinity);
                        for (b, slot) in cov_row.iter_mut().enumerate() {
                            *slot =
                                stats.card(ElementId(b as u32)) * res.best_cov_product[b];
                        }
                    }
                    trunc
                }));
            }
            for h in handles {
                truncated |= h.join().expect("exploration threads do not panic");
            }
        });
        PairMatrices {
            n,
            affinity,
            coverage,
            truncated,
        }
    }

    /// Single-threaded reference implementation (also used for small
    /// schemas where thread spawn overhead dominates).
    pub fn compute_serial(stats: &SchemaStats, config: &PathConfig) -> Self {
        let n = stats.len();
        let mut affinity = vec![0.0; n * n];
        let mut coverage = vec![0.0; n * n];
        let mut truncated = false;
        for a in 0..n {
            let src = ElementId(a as u32);
            let res = explore_from(src, stats, config);
            truncated |= res.truncated;
            let row = a * n;
            affinity[row..row + n].copy_from_slice(&res.best_affinity);
            for b in 0..n {
                // Formula 3: C(a→b) = Card_b · max path product; the special
                // case C(a→a) = Card_a falls out since the product is 1.
                coverage[row + b] = stats.card(ElementId(b as u32)) * res.best_cov_product[b];
            }
        }
        PairMatrices {
            n,
            affinity,
            coverage,
            truncated,
        }
    }

    /// Number of elements covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrices are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Element affinity `A(a → b)` (Formula 2).
    #[inline]
    pub fn affinity(&self, a: ElementId, b: ElementId) -> f64 {
        self.affinity[a.index() * self.n + b.index()]
    }

    /// Element coverage `C(a → b)` (Formula 3).
    #[inline]
    pub fn coverage(&self, a: ElementId, b: ElementId) -> f64 {
        self.coverage[a.index() * self.n + b.index()]
    }

    /// Whether any per-source exploration exhausted its budget (entries are
    /// then lower bounds).
    #[inline]
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::types::SchemaType;

    fn chain_stats() -> (schema_summary_core::SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("r");
        let a = b.add_child(b.root(), "a", SchemaType::set_of_rcd()).unwrap();
        let c = b.add_child(a, "c", SchemaType::set_of_rcd()).unwrap();
        let g = b.build().unwrap();
        let s = SchemaStats::from_link_counts(
            &g,
            &[1, 10, 40],
            &[
                LinkCount { from: g.root(), to: a, count: 10 },
                LinkCount { from: a, to: c, count: 40 },
            ],
        )
        .unwrap();
        (g, s)
    }

    #[test]
    fn diagonal_entries() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        for e in g.element_ids() {
            assert_eq!(m.affinity(e, e), 1.0);
            assert_eq!(m.coverage(e, e), s.card(e));
        }
    }

    #[test]
    fn child_has_higher_affinity_to_parent_than_vice_versa() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let a = g.find_unique("a").unwrap();
        let c = g.find_unique("c").unwrap();
        // RC(a→c)=4, RC(c→a)=1: each c belongs to one a, each a has 4 c's.
        assert!(m.affinity(c, a) > m.affinity(a, c));
        assert!((m.affinity(c, a) - 1.0).abs() < 1e-9);
        assert!((m.affinity(a, c) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn coverage_values_hand_checked() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let a = g.find_unique("a").unwrap();
        let c = g.find_unique("c").unwrap();
        // C(a→c) = card_c · A(a→c) · W(c→a). c's only neighbor is a, so
        // W(c→a) = 1. A(a→c) = 1/4. => 40 · 0.25 = 10.
        assert!((m.coverage(a, c) - 10.0).abs() < 1e-9);
        // C(c→a) = card_a · A(c→a) · W(a→c).
        // W(a→c) = RC(a→c)/(RC(a→r)+RC(a→c)) = 4/(1+4).
        assert!((m.coverage(c, a) - 10.0 * 1.0 * 0.8).abs() < 1e-9);
    }

    #[test]
    fn asymmetry_is_preserved() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let a = g.find_unique("a").unwrap();
        let c = g.find_unique("c").unwrap();
        assert_ne!(m.affinity(a, c), m.affinity(c, a));
        assert_ne!(m.coverage(a, c), m.coverage(c, a));
        assert!(!m.truncated());
    }
}
