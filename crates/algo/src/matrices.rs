//! All-pairs element affinity (Formula 2) and coverage (Formula 3).
//!
//! [`PairMatrices`] materializes `A(a → b)` and `C(a → b)` for every ordered
//! element pair by running one path exploration per source element. For the
//! paper's datasets (70–327 elements) this is a few hundred kilobytes and
//! milliseconds; both `MaxCoverage` and summary construction consume the
//! matrices repeatedly, so computing them once up front dominates
//! recomputation.
//!
//! Per-source explorations are fully independent, so the cold pass scales by
//! fanning sources out to scoped worker threads. Sources are handed out
//! through a shared atomic counter (work stealing) rather than static
//! chunks: exploration cost varies wildly per source — a source inside a
//! densely value-linked region can cost orders of magnitude more than a
//! leaf — and static chunking strands every other worker behind the
//! unluckiest chunk. Workers send finished rows over a channel and the
//! calling thread assembles the matrices, keeping the crate free of
//! `unsafe` row aliasing.

use crate::paths::{Explorer, PathConfig, SourceResult};
use schema_summary_core::{ElementId, SchemaStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Dense all-pairs affinity and coverage matrices.
#[derive(Debug, Clone)]
pub struct PairMatrices {
    n: usize,
    affinity: Vec<f64>,
    coverage: Vec<f64>,
    truncated: bool,
    floored: bool,
    expansions: u64,
}

impl PairMatrices {
    /// Compute both matrices for `stats` under `config`, parallelizing
    /// across source elements when the schema reaches
    /// [`PathConfig::parallel_threshold`] and more than one CPU is
    /// available.
    pub fn compute(stats: &SchemaStats, config: &PathConfig) -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::compute_with_threads(stats, config, threads)
    }

    /// [`compute`](Self::compute) with an explicit worker-thread count
    /// (primarily for tests and benchmarks that need the parallel path on
    /// machines where `available_parallelism` would fall back to serial).
    pub fn compute_with_threads(stats: &SchemaStats, config: &PathConfig, threads: usize) -> Self {
        let n = stats.len();
        if n < config.parallel_threshold || threads < 2 {
            return Self::compute_serial(stats, config);
        }
        let mut out = Self::zeroed(n);
        let next_source = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, SourceResult)>();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(n) {
                let tx = tx.clone();
                let next_source = &next_source;
                scope.spawn(move || {
                    let mut explorer = Explorer::new(n);
                    loop {
                        let a = next_source.fetch_add(1, Ordering::Relaxed);
                        if a >= n {
                            break;
                        }
                        let res = explorer.explore(ElementId(a as u32), stats, config);
                        if tx.send((a, res)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            while let Ok((a, res)) = rx.recv() {
                out.write_source_row(a, &res, stats);
            }
        });
        out
    }

    /// Single-threaded reference implementation (also used below the
    /// parallel threshold, where thread spawn overhead dominates). The
    /// parallel path runs the exact same per-source kernel, so its output
    /// is bit-identical to this one.
    pub fn compute_serial(stats: &SchemaStats, config: &PathConfig) -> Self {
        let n = stats.len();
        let mut out = Self::zeroed(n);
        let mut explorer = Explorer::new(n);
        for a in 0..n {
            let res = explorer.explore(ElementId(a as u32), stats, config);
            out.write_source_row(a, &res, stats);
        }
        out
    }

    fn zeroed(n: usize) -> Self {
        PairMatrices {
            n,
            affinity: vec![0.0; n * n],
            coverage: vec![0.0; n * n],
            truncated: false,
            floored: false,
            expansions: 0,
        }
    }

    /// The shared per-source kernel: fold one exploration result into row
    /// `a` of both matrices and the run-wide flags.
    fn write_source_row(&mut self, a: usize, res: &SourceResult, stats: &SchemaStats) {
        let n = self.n;
        let row = a * n;
        self.affinity[row..row + n].copy_from_slice(&res.best_affinity);
        for b in 0..n {
            // Formula 3: C(a→b) = Card_b · max path product; the special
            // case C(a→a) = Card_a falls out since the product is 1.
            self.coverage[row + b] = stats.card(ElementId(b as u32)) * res.best_cov_product[b];
        }
        self.truncated |= res.truncated;
        self.floored |= res.floored;
        self.expansions += res.expansions;
    }

    /// Number of elements covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrices are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Element affinity `A(a → b)` (Formula 2).
    #[inline]
    pub fn affinity(&self, a: ElementId, b: ElementId) -> f64 {
        self.affinity[a.index() * self.n + b.index()]
    }

    /// Element coverage `C(a → b)` (Formula 3).
    #[inline]
    pub fn coverage(&self, a: ElementId, b: ElementId) -> f64 {
        self.coverage[a.index() * self.n + b.index()]
    }

    /// Whether any per-source exploration exhausted its budget (entries are
    /// then lower bounds).
    #[inline]
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Whether any exploration cut branches at the
    /// [`PathConfig::min_product`] floor (entries are then lower bounds).
    #[inline]
    pub fn floored(&self) -> bool {
        self.floored
    }

    /// Total edge expansions across all sources — the cold pass's unit of
    /// work, comparable across configurations to measure pruning.
    #[inline]
    pub fn expansions(&self) -> u64 {
        self.expansions
    }

    /// Serialize to a compact binary form that round-trips bit-exactly:
    /// every `f64` is stored as its IEEE-754 bit pattern, so
    /// [`from_bytes`](Self::from_bytes) rebuilds matrices indistinguishable
    /// from the originals. This is the persistence format of the serving
    /// layer's disk tier.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n;
        let mut out = Vec::with_capacity(8 + 2 + 8 + 16 * n * n);
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.push(u8::from(self.truncated));
        out.push(u8::from(self.floored));
        out.extend_from_slice(&self.expansions.to_le_bytes());
        for &v in &self.affinity {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for &v in &self.coverage {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out
    }

    /// Rebuild matrices from [`to_bytes`](Self::to_bytes) output. Returns
    /// `None` on any malformed input (short, long, or inconsistent) —
    /// callers treat that as a cache miss and recompute.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, len: usize| -> Option<&[u8]> {
            let end = pos.checked_add(len)?;
            let slice = bytes.get(*pos..end)?;
            *pos = end;
            Some(slice)
        };
        let n = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?) as usize;
        // Reject sizes whose matrix byte count cannot even be addressed.
        let cells = n.checked_mul(n)?;
        let truncated = match take(&mut pos, 1)?[0] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let floored = match take(&mut pos, 1)?[0] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let expansions = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let read_matrix = |pos: &mut usize| -> Option<Vec<f64>> {
            let raw = take(pos, cells.checked_mul(8)?)?;
            Some(
                raw.chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
                    .collect(),
            )
        };
        let affinity = read_matrix(&mut pos)?;
        let coverage = read_matrix(&mut pos)?;
        if pos != bytes.len() {
            return None;
        }
        Some(PairMatrices {
            n,
            affinity,
            coverage,
            truncated,
            floored,
            expansions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::types::SchemaType;

    fn chain_stats() -> (schema_summary_core::SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("r");
        let a = b
            .add_child(b.root(), "a", SchemaType::set_of_rcd())
            .unwrap();
        let c = b.add_child(a, "c", SchemaType::set_of_rcd()).unwrap();
        let g = b.build().unwrap();
        let s = SchemaStats::from_link_counts(
            &g,
            &[1, 10, 40],
            &[
                LinkCount {
                    from: g.root(),
                    to: a,
                    count: 10,
                },
                LinkCount {
                    from: a,
                    to: c,
                    count: 40,
                },
            ],
        )
        .unwrap();
        (g, s)
    }

    #[test]
    fn diagonal_entries() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        for e in g.element_ids() {
            assert_eq!(m.affinity(e, e), 1.0);
            assert_eq!(m.coverage(e, e), s.card(e));
        }
    }

    #[test]
    fn child_has_higher_affinity_to_parent_than_vice_versa() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let a = g.find_unique("a").unwrap();
        let c = g.find_unique("c").unwrap();
        // RC(a→c)=4, RC(c→a)=1: each c belongs to one a, each a has 4 c's.
        assert!(m.affinity(c, a) > m.affinity(a, c));
        assert!((m.affinity(c, a) - 1.0).abs() < 1e-9);
        assert!((m.affinity(a, c) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn coverage_values_hand_checked() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let a = g.find_unique("a").unwrap();
        let c = g.find_unique("c").unwrap();
        // C(a→c) = card_c · A(a→c) · W(c→a). c's only neighbor is a, so
        // W(c→a) = 1. A(a→c) = 1/4. => 40 · 0.25 = 10.
        assert!((m.coverage(a, c) - 10.0).abs() < 1e-9);
        // C(c→a) = card_a · A(c→a) · W(a→c).
        // W(a→c) = RC(a→c)/(RC(a→r)+RC(a→c)) = 4/(1+4).
        assert!((m.coverage(c, a) - 10.0 * 1.0 * 0.8).abs() < 1e-9);
    }

    #[test]
    fn asymmetry_is_preserved() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let a = g.find_unique("a").unwrap();
        let c = g.find_unique("c").unwrap();
        assert_ne!(m.affinity(a, c), m.affinity(c, a));
        assert_ne!(m.coverage(a, c), m.coverage(c, a));
        assert!(!m.truncated());
    }

    #[test]
    fn forced_parallel_matches_serial_bitwise() {
        let (g, s) = chain_stats();
        // parallel_threshold 0 forces the work-stealing path even for this
        // tiny schema; 4 workers on any machine.
        let cfg = PathConfig {
            parallel_threshold: 0,
            ..Default::default()
        };
        let par = PairMatrices::compute_with_threads(&s, &cfg, 4);
        let ser = PairMatrices::compute_serial(&s, &cfg);
        for a in g.element_ids() {
            for b in g.element_ids() {
                assert_eq!(par.affinity(a, b).to_bits(), ser.affinity(a, b).to_bits());
                assert_eq!(par.coverage(a, b).to_bits(), ser.coverage(a, b).to_bits());
            }
        }
        assert_eq!(par.truncated(), ser.truncated());
        assert_eq!(par.floored(), ser.floored());
        assert_eq!(par.expansions(), ser.expansions());
    }

    #[test]
    fn expansions_are_reported() {
        let (_, s) = chain_stats();
        let m = PairMatrices::compute_serial(&s, &PathConfig::default());
        assert!(m.expansions() > 0);
        assert!(!m.floored());
    }

    #[test]
    fn byte_codec_roundtrips_bitwise() {
        let (g, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let bytes = m.to_bytes();
        let back = PairMatrices::from_bytes(&bytes).unwrap();
        for a in g.element_ids() {
            for b in g.element_ids() {
                assert_eq!(m.affinity(a, b).to_bits(), back.affinity(a, b).to_bits());
                assert_eq!(m.coverage(a, b).to_bits(), back.coverage(a, b).to_bits());
            }
        }
        assert_eq!(m.truncated(), back.truncated());
        assert_eq!(m.floored(), back.floored());
        assert_eq!(m.expansions(), back.expansions());
    }

    #[test]
    fn byte_codec_rejects_malformed_input() {
        let (_, s) = chain_stats();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let bytes = m.to_bytes();
        assert!(PairMatrices::from_bytes(&[]).is_none());
        assert!(PairMatrices::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut long = bytes.clone();
        long.push(0);
        assert!(PairMatrices::from_bytes(&long).is_none());
        let mut bad_flag = bytes;
        bad_flag[8] = 7; // truncated flag must be 0 or 1
        assert!(PairMatrices::from_bytes(&bad_flag).is_none());
    }
}
