//! Schema element importance (Formula 1, Algorithm MaxImportance part 1).
//!
//! The importance of an element combines its **cardinality** in the database
//! (initial value) with its **connectivity** in the schema (the iteration
//! redistributes importance across links, weighted by relative
//! cardinalities):
//!
//! ```text
//! I_e^r = p · I_e^{r-1} + (1 - p) · Σ_j W(e_j → e) · I_{e_j}^{r-1}
//! W(e_j → e) = RC(e_j → e) / Σ_k RC(e_j → e_k)
//! ```
//!
//! Because each element donates exactly its `(1 - p)` share across
//! neighbors whose weights sum to one, the total importance mass equals the
//! total cardinality at every iteration (the paper notes this invariant;
//! our property tests enforce it). Isolated elements retain their mass.

use schema_summary_core::{ElementId, SchemaGraph, SchemaStats};
use serde::{Deserialize, Serialize};

/// Which inputs drive the importance computation (Section 5.4's ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ImportanceMode {
    /// Both schema structure and data distribution (the paper's default).
    #[default]
    DataAndSchema,
    /// Fully data driven (`p = 1`): importance equals cardinality.
    DataOnly,
    /// Fully schema driven (`RC ≡ 1`, `I⁰ ≡ 1`): only connectivity matters.
    SchemaOnly,
}

/// Configuration for the importance iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImportanceConfig {
    /// Neighborhood factor `p` (Formula 1); the paper recommends 0.5.
    pub p: f64,
    /// Per-element relative convergence threshold `c` (Figure 4 uses 0.1%).
    pub epsilon: f64,
    /// Iteration cap (Figure 4 notes "a limit on the # iterations can also
    /// be set"); the paper observes convergence within several hundred
    /// iterations at `p = 0.5`.
    pub max_iterations: usize,
    /// Input ablation mode.
    pub mode: ImportanceMode,
}

impl Default for ImportanceConfig {
    fn default() -> Self {
        ImportanceConfig {
            p: 0.5,
            epsilon: 0.001,
            max_iterations: 5_000,
            mode: ImportanceMode::DataAndSchema,
        }
    }
}

// Configurations key memoized artifacts and cached results, so equality
// and hashing must be total and bit-stable. Comparing the floats by bit
// pattern gives exactly that: two configs hash alike iff they serialize
// alike (NaN configs are degenerate but still consistent).
impl PartialEq for ImportanceConfig {
    fn eq(&self, other: &Self) -> bool {
        self.p.to_bits() == other.p.to_bits()
            && self.epsilon.to_bits() == other.epsilon.to_bits()
            && self.max_iterations == other.max_iterations
            && self.mode == other.mode
    }
}

impl Eq for ImportanceConfig {}

impl std::hash::Hash for ImportanceConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.p.to_bits().hash(state);
        self.epsilon.to_bits().hash(state);
        self.max_iterations.hash(state);
        self.mode.hash(state);
    }
}

impl ImportanceConfig {
    /// Builder-style setter for `p`.
    pub fn with_p(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// Builder-style setter for the mode.
    pub fn with_mode(mut self, mode: ImportanceMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Result of the importance computation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImportanceResult {
    scores: Vec<f64>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the per-element convergence criterion was met within the
    /// iteration cap.
    pub converged: bool,
}

impl ImportanceResult {
    /// Importance score of `e`.
    #[inline]
    pub fn score(&self, e: ElementId) -> f64 {
        self.scores[e.index()]
    }

    /// All scores, indexed by element id.
    #[inline]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Total importance mass (invariant: equals the total cardinality).
    pub fn total(&self) -> f64 {
        self.scores.iter().sum()
    }

    /// Element ids sorted by descending importance, ties broken by id.
    /// The root is **excluded**: it is always kept in a summary and never a
    /// candidate representative.
    pub fn ranked(&self, graph: &SchemaGraph) -> Vec<ElementId> {
        let mut ids: Vec<ElementId> = graph.element_ids().filter(|&e| e != graph.root()).collect();
        ids.sort_by(|&a, &b| {
            self.scores[b.index()]
                .partial_cmp(&self.scores[a.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        ids
    }

    /// The `k` most important non-root elements.
    pub fn top_k(&self, graph: &SchemaGraph, k: usize) -> Vec<ElementId> {
        let mut r = self.ranked(graph);
        r.truncate(k);
        r
    }
}

/// Compute element importance over `graph` annotated with `stats`.
pub fn compute_importance(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    config: &ImportanceConfig,
) -> ImportanceResult {
    match config.mode {
        ImportanceMode::DataOnly => {
            // p = 1: the iteration is the identity, importance = cardinality.
            let scores = graph.element_ids().map(|e| stats.card(e)).collect();
            ImportanceResult {
                scores,
                iterations: 0,
                converged: true,
            }
        }
        ImportanceMode::SchemaOnly => {
            let unit = stats.with_unit_rc();
            let init = vec![1.0; graph.len()];
            iterate(graph, &unit, init, config)
        }
        ImportanceMode::DataAndSchema => {
            let init = graph.element_ids().map(|e| stats.card(e)).collect();
            iterate(graph, stats, init, config)
        }
    }
}

/// Compute element importance seeded from a previous fixpoint — the
/// paper's §3.3 maintenance restart. When the statistics change little,
/// the previous scores are already near the new fixed point and the
/// iteration stops after a handful of rounds instead of the hundreds a
/// cold start needs.
///
/// The seed is rescaled so its mass equals the new total cardinality
/// (Formula 1 conserves mass, so any fixed point must carry exactly that
/// total). With a degenerate seed (zero or non-finite mass) this falls
/// back to [`compute_importance`].
///
/// Note the trade-off: the seeded restart converges to the *same ε-ball*
/// as a cold run but generally stops at a *different point inside it*
/// (the stopping rule sees different iterates), so the scores are
/// epsilon-close, not bit-identical. The serving layer therefore uses
/// this for monitoring and advisory refreshes, while bit-exact paths
/// recompute importance cold — which is cheap next to the matrices.
pub fn compute_importance_from(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    previous: &[f64],
    config: &ImportanceConfig,
) -> ImportanceResult {
    if previous.len() != graph.len() || config.mode != ImportanceMode::DataAndSchema {
        return compute_importance(graph, stats, config);
    }
    let prev_total: f64 = previous.iter().sum();
    if !(prev_total.is_finite() && prev_total > 0.0) {
        return compute_importance(graph, stats, config);
    }
    let scale = stats.total_card() / prev_total;
    let init: Vec<f64> = previous.iter().map(|&v| v * scale).collect();
    iterate(graph, stats, init, config)
}

/// Run the Formula-1 iteration from an explicit initial mass vector
/// (crate-internal: used by the query-history extension).
pub(crate) fn iterate_from(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    init: Vec<f64>,
    config: &ImportanceConfig,
) -> ImportanceResult {
    iterate(graph, stats, init, config)
}

fn iterate(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    init: Vec<f64>,
    config: &ImportanceConfig,
) -> ImportanceResult {
    let n = graph.len();
    let p = config.p.clamp(0.0, 1.0);
    // The iteration consumes the statistics' CSR adjacency directly:
    // W(j → nb) = rc / rc_sum(j) per Formula 1, computed from the flat edge
    // records instead of materializing a nested weight table. An element
    // donates only when it has neighbors and positive RC mass; otherwise it
    // keeps everything (isolated elements retain their mass).
    let rc_mass: Vec<f64> = (0..n as u32)
        .map(|j| {
            let j = ElementId(j);
            if stats.edges(j).is_empty() {
                0.0
            } else {
                stats.rc_sum(j)
            }
        })
        .collect();

    let tiny = (init.iter().sum::<f64>() / n.max(1) as f64).max(1.0) * 1e-12;
    let mut cur = init;
    let mut new = vec![0.0; n];
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        // Retained share; elements that donate nothing keep everything.
        for i in 0..n {
            new[i] = if rc_mass[i] <= 0.0 {
                cur[i]
            } else {
                p * cur[i]
            };
        }
        // Push (1-p) of each donor's mass along its weighted links.
        for (j, &mass) in rc_mass.iter().enumerate() {
            if mass <= 0.0 {
                continue;
            }
            let share = (1.0 - p) * cur[j];
            for edge in stats.edges(ElementId(j as u32)) {
                new[edge.neighbor.index()] += share * (edge.rc / mass);
            }
        }
        let mut done = true;
        for i in 0..n {
            let denom = cur[i].max(tiny);
            if (new[i] - cur[i]).abs() / denom > config.epsilon {
                done = false;
                break;
            }
        }
        std::mem::swap(&mut cur, &mut new);
        if done {
            converged = true;
            break;
        }
    }
    ImportanceResult {
        scores: cur,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::types::SchemaType;

    /// a -> b (structural) with RC(a→b)=2, RC(b→a)=1; cards 10, 20.
    fn two_node() -> (SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("a");
        let bid = b
            .add_child(b.root(), "b", SchemaType::set_of_rcd())
            .unwrap();
        let g = b.build().unwrap();
        let s = SchemaStats::from_link_counts(
            &g,
            &[10, 20],
            &[LinkCount {
                from: g.root(),
                to: bid,
                count: 20,
            }],
        )
        .unwrap();
        (g, s)
    }

    #[test]
    fn two_node_fixed_point() {
        let (g, s) = two_node();
        let r = compute_importance(&g, &s, &ImportanceConfig::default());
        assert!(r.converged);
        // Each node's only neighbor is the other, so W = 1 both ways and the
        // fixed point is the average: 15 each.
        assert!((r.score(ElementId(0)) - 15.0).abs() < 0.1);
        assert!((r.score(ElementId(1)) - 15.0).abs() < 0.1);
    }

    #[test]
    fn mass_is_conserved() {
        let (g, s) = two_node();
        for p in [0.1, 0.5, 0.9] {
            let r = compute_importance(&g, &s, &ImportanceConfig::default().with_p(p));
            assert!((r.total() - s.total_card()).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn data_only_returns_cardinalities() {
        let (g, s) = two_node();
        let r = compute_importance(
            &g,
            &s,
            &ImportanceConfig::default().with_mode(ImportanceMode::DataOnly),
        );
        assert_eq!(r.score(ElementId(0)), 10.0);
        assert_eq!(r.score(ElementId(1)), 20.0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn schema_only_favors_connectivity() {
        // Star: hub with 4 leaves vs a chain node; hub must win even though
        // all cardinalities are ignored.
        let mut b = SchemaGraphBuilder::new("root");
        let hub = b.add_child(b.root(), "hub", SchemaType::rcd()).unwrap();
        for i in 0..4 {
            b.add_child(hub, format!("leaf{i}"), SchemaType::simple_str())
                .unwrap();
        }
        let lonely = b
            .add_child(b.root(), "lonely", SchemaType::simple_str())
            .unwrap();
        let g = b.build().unwrap();
        let card = vec![1u64; g.len()];
        let s = SchemaStats::from_link_counts(&g, &card, &[]).unwrap();
        let r = compute_importance(
            &g,
            &s,
            &ImportanceConfig::default().with_mode(ImportanceMode::SchemaOnly),
        );
        assert!(r.score(hub) > r.score(lonely));
    }

    #[test]
    fn high_rc_attracts_importance() {
        // root -> {popular*, niche*}: 100 popular instances, 1 niche.
        let mut b = SchemaGraphBuilder::new("root");
        let popular = b
            .add_child(b.root(), "popular", SchemaType::set_of_rcd())
            .unwrap();
        let niche = b
            .add_child(b.root(), "niche", SchemaType::set_of_rcd())
            .unwrap();
        let g = b.build().unwrap();
        let s = SchemaStats::from_link_counts(
            &g,
            &[1, 100, 1],
            &[
                LinkCount {
                    from: g.root(),
                    to: popular,
                    count: 100,
                },
                LinkCount {
                    from: g.root(),
                    to: niche,
                    count: 1,
                },
            ],
        )
        .unwrap();
        let r = compute_importance(&g, &s, &ImportanceConfig::default());
        assert!(r.score(popular) > 10.0 * r.score(niche));
    }

    #[test]
    fn ranking_excludes_root() {
        let (g, s) = two_node();
        let r = compute_importance(&g, &s, &ImportanceConfig::default());
        let ranked = r.ranked(&g);
        assert!(!ranked.contains(&g.root()));
        assert_eq!(ranked.len(), g.len() - 1);
        assert_eq!(r.top_k(&g, 1).len(), 1);
    }

    #[test]
    fn isolated_elements_keep_mass() {
        // Graph with a single root and nothing else: no neighbors at all.
        let b = SchemaGraphBuilder::new("only");
        let g = b.build().unwrap();
        let s = SchemaStats::from_link_counts(&g, &[7], &[]).unwrap();
        let r = compute_importance(&g, &s, &ImportanceConfig::default());
        assert_eq!(r.score(g.root()), 7.0);
        assert!(r.converged);
    }

    #[test]
    fn seeded_restart_converges_faster_and_close() {
        let (g, s) = two_node();
        let cfg = ImportanceConfig::default();
        let cold = compute_importance(&g, &s, &cfg);
        // Perturb the statistics slightly (pure growth keeps RCs) and
        // restart from the old vector.
        let s2 = s.scaled(1.02);
        let cold2 = compute_importance(&g, &s2, &cfg);
        let warm2 = compute_importance_from(&g, &s2, cold.scores(), &cfg);
        assert!(warm2.converged);
        assert!(
            warm2.iterations <= cold2.iterations,
            "seeded {} vs cold {}",
            warm2.iterations,
            cold2.iterations
        );
        // Mass is conserved and the scores land in the same epsilon-ball.
        assert!((warm2.total() - s2.total_card()).abs() < 1e-6);
        for e in g.element_ids() {
            let (w, c) = (warm2.score(e), cold2.score(e));
            assert!((w - c).abs() <= c.abs().max(1.0) * 0.01, "{e}: {w} vs {c}");
        }
    }

    #[test]
    fn seeded_restart_with_degenerate_seed_falls_back_cold() {
        let (g, s) = two_node();
        let cfg = ImportanceConfig::default();
        let cold = compute_importance(&g, &s, &cfg);
        let zeroed = compute_importance_from(&g, &s, &vec![0.0; g.len()], &cfg);
        let short = compute_importance_from(&g, &s, &[1.0], &cfg);
        for e in g.element_ids() {
            assert_eq!(zeroed.score(e).to_bits(), cold.score(e).to_bits());
            assert_eq!(short.score(e).to_bits(), cold.score(e).to_bits());
        }
    }

    #[test]
    fn smaller_p_converges_slower() {
        // The paper observes slow convergence for p near 0.
        let (g, s) = two_node();
        let fast = compute_importance(&g, &s, &ImportanceConfig::default().with_p(0.9));
        let slow = compute_importance(&g, &s, &ImportanceConfig::default().with_p(0.05));
        assert!(slow.iterations >= fast.iterations);
    }
}
