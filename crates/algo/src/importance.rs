//! Schema element importance (Formula 1, Algorithm MaxImportance part 1).
//!
//! The importance of an element combines its **cardinality** in the database
//! (initial value) with its **connectivity** in the schema (the iteration
//! redistributes importance across links, weighted by relative
//! cardinalities):
//!
//! ```text
//! I_e^r = p · I_e^{r-1} + (1 - p) · Σ_j W(e_j → e) · I_{e_j}^{r-1}
//! W(e_j → e) = RC(e_j → e) / Σ_k RC(e_j → e_k)
//! ```
//!
//! Because each element donates exactly its `(1 - p)` share across
//! neighbors whose weights sum to one, the total importance mass equals the
//! total cardinality at every iteration (the paper notes this invariant;
//! our property tests enforce it). Isolated elements retain their mass.

use schema_summary_core::{ElementId, SchemaGraph, SchemaStats};
use serde::{Deserialize, Serialize};

/// Which inputs drive the importance computation (Section 5.4's ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ImportanceMode {
    /// Both schema structure and data distribution (the paper's default).
    #[default]
    DataAndSchema,
    /// Fully data driven (`p = 1`): importance equals cardinality.
    DataOnly,
    /// Fully schema driven (`RC ≡ 1`, `I⁰ ≡ 1`): only connectivity matters.
    SchemaOnly,
}

/// Configuration for the importance iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImportanceConfig {
    /// Neighborhood factor `p` (Formula 1); the paper recommends 0.5.
    pub p: f64,
    /// Per-element relative convergence threshold `c` (Figure 4 uses 0.1%).
    pub epsilon: f64,
    /// Iteration cap (Figure 4 notes "a limit on the # iterations can also
    /// be set"); the paper observes convergence within several hundred
    /// iterations at `p = 0.5`.
    pub max_iterations: usize,
    /// Input ablation mode.
    pub mode: ImportanceMode,
}

impl Default for ImportanceConfig {
    fn default() -> Self {
        ImportanceConfig {
            p: 0.5,
            epsilon: 0.001,
            max_iterations: 5_000,
            mode: ImportanceMode::DataAndSchema,
        }
    }
}

// Configurations key memoized artifacts and cached results, so equality
// and hashing must be total and bit-stable. Comparing the floats by bit
// pattern gives exactly that: two configs hash alike iff they serialize
// alike (NaN configs are degenerate but still consistent).
impl PartialEq for ImportanceConfig {
    fn eq(&self, other: &Self) -> bool {
        self.p.to_bits() == other.p.to_bits()
            && self.epsilon.to_bits() == other.epsilon.to_bits()
            && self.max_iterations == other.max_iterations
            && self.mode == other.mode
    }
}

impl Eq for ImportanceConfig {}

impl std::hash::Hash for ImportanceConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.p.to_bits().hash(state);
        self.epsilon.to_bits().hash(state);
        self.max_iterations.hash(state);
        self.mode.hash(state);
    }
}

impl ImportanceConfig {
    /// Builder-style setter for `p`.
    pub fn with_p(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// Builder-style setter for the mode.
    pub fn with_mode(mut self, mode: ImportanceMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Result of the importance computation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImportanceResult {
    scores: Vec<f64>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the per-element convergence criterion was met within the
    /// iteration cap.
    pub converged: bool,
}

impl ImportanceResult {
    /// Importance score of `e`.
    #[inline]
    pub fn score(&self, e: ElementId) -> f64 {
        self.scores[e.index()]
    }

    /// All scores, indexed by element id.
    #[inline]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Total importance mass (invariant: equals the total cardinality).
    pub fn total(&self) -> f64 {
        self.scores.iter().sum()
    }

    /// Element ids sorted by descending importance, ties broken by id.
    /// The root is **excluded**: it is always kept in a summary and never a
    /// candidate representative.
    pub fn ranked(&self, graph: &SchemaGraph) -> Vec<ElementId> {
        let mut ids: Vec<ElementId> = graph.element_ids().filter(|&e| e != graph.root()).collect();
        ids.sort_by(|&a, &b| {
            self.scores[b.index()]
                .partial_cmp(&self.scores[a.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        ids
    }

    /// The `k` most important non-root elements.
    pub fn top_k(&self, graph: &SchemaGraph, k: usize) -> Vec<ElementId> {
        let mut r = self.ranked(graph);
        r.truncate(k);
        r
    }
}

/// Compute element importance over `graph` annotated with `stats`.
pub fn compute_importance(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    config: &ImportanceConfig,
) -> ImportanceResult {
    match config.mode {
        ImportanceMode::DataOnly => {
            // p = 1: the iteration is the identity, importance = cardinality.
            let scores = graph.element_ids().map(|e| stats.card(e)).collect();
            ImportanceResult {
                scores,
                iterations: 0,
                converged: true,
            }
        }
        ImportanceMode::SchemaOnly => {
            let unit = stats.with_unit_rc();
            let init = vec![1.0; graph.len()];
            iterate(graph, &unit, init, config)
        }
        ImportanceMode::DataAndSchema => {
            let init = graph.element_ids().map(|e| stats.card(e)).collect();
            iterate(graph, stats, init, config)
        }
    }
}

/// Compute element importance seeded from a previous fixpoint — the
/// paper's §3.3 maintenance restart. When the statistics change little,
/// the previous scores are already near the new fixed point and the
/// iteration stops after a handful of rounds instead of the hundreds a
/// cold start needs.
///
/// The seed is rescaled so its mass equals the new total cardinality
/// (Formula 1 conserves mass, so any fixed point must carry exactly that
/// total). With a degenerate seed (zero or non-finite mass) this falls
/// back to [`compute_importance`].
///
/// Note the trade-off: the seeded restart converges to the *same ε-ball*
/// as a cold run but generally stops at a *different point inside it*
/// (the stopping rule sees different iterates), so the scores are
/// epsilon-close, not bit-identical. The serving layer's warm delta path
/// accepts exactly that contract: it seeds each new schema version's
/// fixpoint from the previous version's vector (mass conserved exactly,
/// scores within the `ImportanceConfig::epsilon` ball, a fraction of the
/// cold iterations) while keeping matrices and coverage bit-exact.
///
/// Seeded restarts run the Aitken-accelerated iteration (see
/// [`iterate_accelerated`]): the exit condition is unchanged — only the
/// trajectory toward it is shortened.
pub fn compute_importance_from(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    previous: &[f64],
    config: &ImportanceConfig,
) -> ImportanceResult {
    if previous.len() != graph.len() || config.mode != ImportanceMode::DataAndSchema {
        return compute_importance(graph, stats, config);
    }
    let prev_total: f64 = previous.iter().sum();
    if !(prev_total.is_finite() && prev_total > 0.0) {
        return compute_importance(graph, stats, config);
    }
    let scale = stats.total_card() / prev_total;
    let init: Vec<f64> = previous.iter().map(|&v| v * scale).collect();
    iterate_accelerated(graph, stats, init, config)
}

/// Seeded restart across a *data* delta, rebasing the previous fixpoint by
/// each element's cardinality ratio before iterating.
///
/// A uniformly rescaled old vector is a poor seed when the delta grows
/// elements non-uniformly: Formula 1's mixing is slow (the transition
/// matrix's second eigenvalue is close to 1), so the iteration takes a
/// long time to move mass between regions whose relative volume shifted.
/// Rebasing each element by `card_new / card_old` applies that shift
/// directly — the iteration then only has to smooth out the local
/// redistribution, which the per-step stopping rule accepts within a few
/// rounds. Elements the old statistics had at zero cardinality fall back
/// to their cold init (`card_new`), and the whole seed is rescaled so its
/// mass equals the new total cardinality exactly.
///
/// **Grown schemas**: when `stats` covers *more* elements than
/// `previous_stats` (an additive structural delta appended elements at the
/// tail of the id space), the old prefix still rebases element-wise and
/// each appended element seeds at its cold init, `card_new` — mass
/// proportional to its cardinality, which is where Formula 1's fixed point
/// puts an element before link mixing redistributes it. The full seed is
/// then mass-rescaled as usual. A *shrunk* `previous_stats` (or any other
/// mismatch) falls back to [`compute_importance_from`], with the same
/// degenerate-seed guards otherwise.
pub fn compute_importance_rebased(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    previous: &[f64],
    previous_stats: &SchemaStats,
    config: &ImportanceConfig,
) -> ImportanceResult {
    if previous_stats.len() > stats.len() || previous.len() != previous_stats.len() {
        return compute_importance_from(graph, stats, previous, config);
    }
    if config.mode != ImportanceMode::DataAndSchema || stats.len() != graph.len() {
        return compute_importance(graph, stats, config);
    }
    let mut init: Vec<f64> = (0..graph.len())
        .map(|i| {
            let e = ElementId(i as u32);
            if i >= previous_stats.len() {
                // Appended element: no previous mass to rebase.
                return stats.card(e);
            }
            let old_card = previous_stats.card(e);
            if old_card > 0.0 {
                previous[i] * (stats.card(e) / old_card)
            } else {
                stats.card(e)
            }
        })
        .collect();
    let total: f64 = init.iter().sum();
    if !(total.is_finite() && total > 0.0) {
        return compute_importance(graph, stats, config);
    }
    let scale = stats.total_card() / total;
    for v in &mut init {
        *v *= scale;
    }
    iterate_accelerated(graph, stats, init, config)
}

/// Run the Formula-1 iteration from an explicit initial mass vector
/// (crate-internal: used by the query-history extension).
pub(crate) fn iterate_from(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    init: Vec<f64>,
    config: &ImportanceConfig,
) -> ImportanceResult {
    iterate(graph, stats, init, config)
}

/// Loop-invariant state of the Formula-1 iteration: the donor masses and
/// the precomputed per-edge weight lane, built once and reused by every
/// round of the plain and accelerated drivers.
struct IterKernel<'a> {
    stats: &'a SchemaStats,
    /// `rc_sum(j)` for donors, 0 for isolated elements (which keep all
    /// their mass).
    rc_mass: Vec<f64>,
    /// Precomputed weight lane, parallel to the CSR edge lanes:
    /// `weight[idx] = rc / rc_mass(row)` is loop-invariant across
    /// iterations, so hoisting it replaces the per-edge division in the
    /// hot pass with a multiply (`share · (rc / mass)` and
    /// `share · weight` produce identical bits — the quotient is computed
    /// once either way).
    weights: Vec<f64>,
    p: f64,
    epsilon: f64,
    /// Relative-change floor so zero-mass elements don't divide by zero.
    tiny: f64,
    n: usize,
}

impl<'a> IterKernel<'a> {
    fn new(graph: &SchemaGraph, stats: &'a SchemaStats, init: &[f64], config: &ImportanceConfig) -> Self {
        let n = graph.len();
        // The iteration consumes the statistics' CSR adjacency directly:
        // W(j → nb) = rc / rc_sum(j) per Formula 1, computed from the flat
        // edge lanes instead of materializing a nested weight table. An
        // element donates only when it has neighbors and positive RC mass;
        // otherwise it keeps everything (isolated elements retain their
        // mass).
        let rc_mass: Vec<f64> = (0..n as u32)
            .map(|j| {
                let j = ElementId(j);
                if stats.degree(j) == 0 {
                    0.0
                } else {
                    stats.rc_sum(j)
                }
            })
            .collect();
        let mut weights = vec![0.0; stats.rc_lane().len()];
        for (j, &mass) in rc_mass.iter().enumerate() {
            if mass <= 0.0 {
                continue;
            }
            let row = stats.edge_range(ElementId(j as u32));
            let rcs = &stats.rc_lane()[row.clone()];
            for (slot, &rc) in weights[row].iter_mut().zip(rcs) {
                *slot = rc / mass;
            }
        }
        let tiny = (init.iter().sum::<f64>() / n.max(1) as f64).max(1.0) * 1e-12;
        IterKernel {
            stats,
            rc_mass,
            weights,
            p: config.p.clamp(0.0, 1.0),
            epsilon: config.epsilon,
            tiny,
            n,
        }
    }

    /// One Formula-1 round: `new = M · cur`. Returns whether the per-step
    /// stopping rule is satisfied (every element's relative change is
    /// within epsilon).
    fn step(&self, cur: &[f64], new: &mut [f64]) -> bool {
        let n = self.n;
        let neighbors = self.stats.neighbor_lane();
        // Fused retain + donate pass: one sweep over the donors writes each
        // element's retained share and scatters its `(1 - p)` donation
        // along the precomputed weight lane. (Relative to the historical
        // two-pass form this reassociates the per-target sums, which is
        // fine: the fixpoint is defined up to the convergence epsilon, and
        // every in-process consumer compares under that contract.)
        new[..n].fill(0.0);
        for (j, &mass) in self.rc_mass.iter().enumerate() {
            let cj = cur[j];
            if mass <= 0.0 {
                // Donates nothing: keeps everything.
                new[j] += cj;
                continue;
            }
            new[j] += self.p * cj;
            let share = (1.0 - self.p) * cj;
            let row = self.stats.edge_range(ElementId(j as u32));
            for idx in row {
                new[neighbors[idx].index()] += share * self.weights[idx];
            }
        }
        for i in 0..n {
            let denom = cur[i].max(self.tiny);
            if (new[i] - cur[i]).abs() / denom > self.epsilon {
                return false;
            }
        }
        true
    }
}

fn iterate(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    init: Vec<f64>,
    config: &ImportanceConfig,
) -> ImportanceResult {
    let kernel = IterKernel::new(graph, stats, &init, config);
    let mut cur = init;
    let mut new = vec![0.0; kernel.n];
    let mut iterations = 0;
    let mut converged = false;
    while iterations < config.max_iterations {
        iterations += 1;
        let done = kernel.step(&cur, &mut new);
        std::mem::swap(&mut cur, &mut new);
        if done {
            converged = true;
            break;
        }
    }
    ImportanceResult {
        scores: cur,
        iterations,
        converged,
    }
}

/// Formula-1 iteration with Aitken Δ² acceleration, used by the seeded
/// restarts.
///
/// A good seed lands close to the fixed point but in the iteration's
/// slow-mixing directions, where plain rounds contract by a factor near 1
/// and the per-step stopping rule takes dozens of rounds to trigger.
/// Because those directions shrink almost geometrically, three adjacent
/// iterates predict their own limit: after a two-round burn-in, every
/// cycle takes two plain rounds and then extrapolates each element through
/// `x₂ + d₂·r/(1−r)` with `r = d₂/d₁` (Aitken's Δ² on the adjacent
/// triple `x₀, x₁, x₂`).
///
/// Safety of the shortcut:
/// - an element is only extrapolated when its ratio is cleanly geometric
///   (`r ∈ (0, 0.995)`) and the extrapolated value is finite and
///   positive — otherwise it keeps its plain iterate;
/// - the whole vector is rescaled to the seed's exact mass after every
///   extrapolation, so Formula 1's mass conservation holds bit-exactly;
/// - the loop exits **only** through the standard per-step criterion
///   inside [`IterKernel::step`] — extrapolation shortens the trajectory
///   but never substitutes for convergence, so any result returned here
///   is a valid answer under the same stopping rule as a cold run.
fn iterate_accelerated(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    init: Vec<f64>,
    config: &ImportanceConfig,
) -> ImportanceResult {
    const BURN_IN: usize = 2;
    let kernel = IterKernel::new(graph, stats, &init, config);
    let n = kernel.n;
    let target_mass: f64 = init.iter().sum();
    let mut cur = init;
    let mut new = vec![0.0; n];
    let mut x0 = vec![0.0; n];
    let mut x1 = vec![0.0; n];
    let mut iterations = 0;
    let mut converged = false;
    'drive: {
        macro_rules! round {
            () => {{
                if iterations >= config.max_iterations {
                    break 'drive;
                }
                iterations += 1;
                let done = kernel.step(&cur, &mut new);
                std::mem::swap(&mut cur, &mut new);
                if done {
                    converged = true;
                    break 'drive;
                }
            }};
        }
        for _ in 0..BURN_IN {
            round!();
        }
        loop {
            x0.copy_from_slice(&cur);
            round!();
            x1.copy_from_slice(&cur);
            round!();
            // Per-element Aitken on the adjacent triple (x0, x1, cur).
            for i in 0..n {
                let d1 = x1[i] - x0[i];
                let d2 = cur[i] - x1[i];
                if d1.abs() > 1e-300 {
                    let r = d2 / d1;
                    if r > 0.0 && r < 0.995 {
                        let extrapolated = cur[i] + d2 * r / (1.0 - r);
                        if extrapolated.is_finite() && extrapolated > 0.0 {
                            cur[i] = extrapolated;
                        }
                    }
                }
            }
            let mass: f64 = cur.iter().sum();
            if mass.is_finite() && mass > 0.0 {
                let scale = target_mass / mass;
                for v in &mut cur {
                    *v *= scale;
                }
            }
        }
    }
    ImportanceResult {
        scores: cur,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::types::SchemaType;

    /// a -> b (structural) with RC(a→b)=2, RC(b→a)=1; cards 10, 20.
    fn two_node() -> (SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("a");
        let bid = b
            .add_child(b.root(), "b", SchemaType::set_of_rcd())
            .unwrap();
        let g = b.build().unwrap();
        let s = SchemaStats::from_link_counts(
            &g,
            &[10, 20],
            &[LinkCount {
                from: g.root(),
                to: bid,
                count: 20,
            }],
        )
        .unwrap();
        (g, s)
    }

    #[test]
    fn two_node_fixed_point() {
        let (g, s) = two_node();
        let r = compute_importance(&g, &s, &ImportanceConfig::default());
        assert!(r.converged);
        // Each node's only neighbor is the other, so W = 1 both ways and the
        // fixed point is the average: 15 each.
        assert!((r.score(ElementId(0)) - 15.0).abs() < 0.1);
        assert!((r.score(ElementId(1)) - 15.0).abs() < 0.1);
    }

    #[test]
    fn mass_is_conserved() {
        let (g, s) = two_node();
        for p in [0.1, 0.5, 0.9] {
            let r = compute_importance(&g, &s, &ImportanceConfig::default().with_p(p));
            assert!((r.total() - s.total_card()).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn data_only_returns_cardinalities() {
        let (g, s) = two_node();
        let r = compute_importance(
            &g,
            &s,
            &ImportanceConfig::default().with_mode(ImportanceMode::DataOnly),
        );
        assert_eq!(r.score(ElementId(0)), 10.0);
        assert_eq!(r.score(ElementId(1)), 20.0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn schema_only_favors_connectivity() {
        // Star: hub with 4 leaves vs a chain node; hub must win even though
        // all cardinalities are ignored.
        let mut b = SchemaGraphBuilder::new("root");
        let hub = b.add_child(b.root(), "hub", SchemaType::rcd()).unwrap();
        for i in 0..4 {
            b.add_child(hub, format!("leaf{i}"), SchemaType::simple_str())
                .unwrap();
        }
        let lonely = b
            .add_child(b.root(), "lonely", SchemaType::simple_str())
            .unwrap();
        let g = b.build().unwrap();
        let card = vec![1u64; g.len()];
        let s = SchemaStats::from_link_counts(&g, &card, &[]).unwrap();
        let r = compute_importance(
            &g,
            &s,
            &ImportanceConfig::default().with_mode(ImportanceMode::SchemaOnly),
        );
        assert!(r.score(hub) > r.score(lonely));
    }

    #[test]
    fn high_rc_attracts_importance() {
        // root -> {popular*, niche*}: 100 popular instances, 1 niche.
        let mut b = SchemaGraphBuilder::new("root");
        let popular = b
            .add_child(b.root(), "popular", SchemaType::set_of_rcd())
            .unwrap();
        let niche = b
            .add_child(b.root(), "niche", SchemaType::set_of_rcd())
            .unwrap();
        let g = b.build().unwrap();
        let s = SchemaStats::from_link_counts(
            &g,
            &[1, 100, 1],
            &[
                LinkCount {
                    from: g.root(),
                    to: popular,
                    count: 100,
                },
                LinkCount {
                    from: g.root(),
                    to: niche,
                    count: 1,
                },
            ],
        )
        .unwrap();
        let r = compute_importance(&g, &s, &ImportanceConfig::default());
        assert!(r.score(popular) > 10.0 * r.score(niche));
    }

    #[test]
    fn ranking_excludes_root() {
        let (g, s) = two_node();
        let r = compute_importance(&g, &s, &ImportanceConfig::default());
        let ranked = r.ranked(&g);
        assert!(!ranked.contains(&g.root()));
        assert_eq!(ranked.len(), g.len() - 1);
        assert_eq!(r.top_k(&g, 1).len(), 1);
    }

    #[test]
    fn rebased_seed_covers_grown_schemas() {
        let (g, s) = two_node();
        let cfg = ImportanceConfig::default();
        let prev = compute_importance(&g, &s, &cfg);
        // Identity-prefix growth: re-declare a → b, append c under b.
        let mut b = SchemaGraphBuilder::new("a");
        let bid = b
            .add_child(b.root(), "b", SchemaType::set_of_rcd())
            .unwrap();
        let c = b.add_child(bid, "c", SchemaType::set_of_rcd()).unwrap();
        let g2 = b.build().unwrap();
        let s2 = SchemaStats::from_link_counts(
            &g2,
            &[10, 20, 40],
            &[
                LinkCount {
                    from: g2.root(),
                    to: bid,
                    count: 20,
                },
                LinkCount {
                    from: bid,
                    to: c,
                    count: 40,
                },
            ],
        )
        .unwrap();
        let cold = compute_importance(&g2, &s2, &cfg);
        let warm = compute_importance_rebased(&g2, &s2, prev.scores(), &s, &cfg);
        assert!(warm.converged);
        // Mass lands exactly on the new total (the seed is rescaled), and
        // the seeded run stops in the same ε-ball as the cold one.
        assert!((warm.total() - s2.total_card()).abs() < 1e-6);
        for i in 0..g2.len() {
            let e = ElementId(i as u32);
            assert!(
                (warm.score(e) - cold.score(e)).abs() <= 10.0 * cfg.epsilon,
                "element {i}: warm {} vs cold {}",
                warm.score(e),
                cold.score(e)
            );
        }
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn rebased_seed_falls_back_on_shrunk_schemas() {
        // previous_stats wider than stats: no element-wise rebase exists;
        // the uniform-rescale fallback (or cold) must take over without
        // panicking on the length mismatch.
        let (g, s) = two_node();
        let cfg = ImportanceConfig::default();
        let mut b = SchemaGraphBuilder::new("a");
        let bid = b
            .add_child(b.root(), "b", SchemaType::set_of_rcd())
            .unwrap();
        let c = b.add_child(bid, "c", SchemaType::set_of_rcd()).unwrap();
        let g2 = b.build().unwrap();
        let s2 = SchemaStats::from_link_counts(
            &g2,
            &[10, 20, 40],
            &[
                LinkCount {
                    from: g2.root(),
                    to: bid,
                    count: 20,
                },
                LinkCount {
                    from: bid,
                    to: c,
                    count: 40,
                },
            ],
        )
        .unwrap();
        let wide = compute_importance(&g2, &s2, &cfg);
        let shrunk = compute_importance_rebased(&g, &s, wide.scores(), &s2, &cfg);
        assert!(shrunk.converged);
        assert!((shrunk.total() - s.total_card()).abs() < 1e-6);
    }

    #[test]
    fn isolated_elements_keep_mass() {
        // Graph with a single root and nothing else: no neighbors at all.
        let b = SchemaGraphBuilder::new("only");
        let g = b.build().unwrap();
        let s = SchemaStats::from_link_counts(&g, &[7], &[]).unwrap();
        let r = compute_importance(&g, &s, &ImportanceConfig::default());
        assert_eq!(r.score(g.root()), 7.0);
        assert!(r.converged);
    }

    #[test]
    fn seeded_restart_converges_faster_and_close() {
        let (g, s) = two_node();
        let cfg = ImportanceConfig::default();
        let cold = compute_importance(&g, &s, &cfg);
        // Perturb the statistics slightly (pure growth keeps RCs) and
        // restart from the old vector.
        let s2 = s.scaled(1.02);
        let cold2 = compute_importance(&g, &s2, &cfg);
        let warm2 = compute_importance_from(&g, &s2, cold.scores(), &cfg);
        assert!(warm2.converged);
        assert!(
            warm2.iterations <= cold2.iterations,
            "seeded {} vs cold {}",
            warm2.iterations,
            cold2.iterations
        );
        // Mass is conserved and the scores land in the same epsilon-ball.
        assert!((warm2.total() - s2.total_card()).abs() < 1e-6);
        for e in g.element_ids() {
            let (w, c) = (warm2.score(e), cold2.score(e));
            assert!((w - c).abs() <= c.abs().max(1.0) * 0.01, "{e}: {w} vs {c}");
        }
    }

    #[test]
    fn seeded_restart_with_degenerate_seed_falls_back_cold() {
        let (g, s) = two_node();
        let cfg = ImportanceConfig::default();
        let cold = compute_importance(&g, &s, &cfg);
        let zeroed = compute_importance_from(&g, &s, &vec![0.0; g.len()], &cfg);
        let short = compute_importance_from(&g, &s, &[1.0], &cfg);
        for e in g.element_ids() {
            assert_eq!(zeroed.score(e).to_bits(), cold.score(e).to_bits());
            assert_eq!(short.score(e).to_bits(), cold.score(e).to_bits());
        }
    }

    #[test]
    fn smaller_p_converges_slower() {
        // The paper observes slow convergence for p near 0.
        let (g, s) = two_node();
        let fast = compute_importance(&g, &s, &ImportanceConfig::default().with_p(0.9));
        let slow = compute_importance(&g, &s, &ImportanceConfig::default().with_p(0.05));
        assert!(slow.iterations >= fast.iterations);
    }
}
