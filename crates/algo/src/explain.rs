//! Summary explanation: *why* a summary looks the way it does.
//!
//! A summary a user cannot interrogate is a black box; this module produces
//! the per-element evidence behind a selection — importance scores and
//! ranks, coverage contributions, group compositions, and the dominance
//! relationships that kept elements out (the paper's Figure 7 walk made
//! observable). The CLI's `summarize` command and the examples print these.

use crate::assignment::assign_elements;
use crate::dominance::DominanceSet;
use crate::importance::ImportanceResult;
use crate::matrices::PairMatrices;
use schema_summary_core::{ElementId, SchemaGraph, SchemaStats, SchemaSummary};
use serde::{Deserialize, Serialize};

/// Evidence for one summary element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElementEvidence {
    /// The summary element (group representative).
    pub element: ElementId,
    /// Its label path in the schema.
    pub path: String,
    /// Importance score (Formula 1).
    pub importance: f64,
    /// 1-based rank in the importance ordering (root excluded).
    pub importance_rank: usize,
    /// Cardinality in the database.
    pub cardinality: f64,
    /// Number of elements in its group (including itself).
    pub group_size: usize,
    /// Sum of its coverage of its group members (Formula 3 over the group).
    pub group_coverage: f64,
    /// Elements it dominates (Theorem 1) — candidates it displaced.
    pub dominates: Vec<ElementId>,
}

/// A near-miss: a high-importance element left out of the summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exclusion {
    /// The excluded element.
    pub element: ElementId,
    /// Its label path.
    pub path: String,
    /// Its importance rank.
    pub importance_rank: usize,
    /// A selected element that dominates it, if that is why it is out.
    pub dominated_by: Option<ElementId>,
}

/// Full explanation of a summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// Evidence per summary element, in selection order.
    pub elements: Vec<ElementEvidence>,
    /// High-importance non-selected elements (up to the summary size),
    /// with the dominance that excluded them when applicable.
    pub near_misses: Vec<Exclusion>,
}

/// Explain `summary` against the pipeline intermediates.
pub fn explain(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    importance: &ImportanceResult,
    matrices: &PairMatrices,
    dominance: &DominanceSet,
    summary: &SchemaSummary,
) -> Explanation {
    let ranked = importance.ranked(graph);
    let rank_of = |e: ElementId| ranked.iter().position(|&r| r == e).map_or(0, |p| p + 1);
    let selected: Vec<ElementId> = summary
        .abstracts()
        .iter()
        .map(|a| a.representative)
        .collect();
    let assignment = assign_elements(graph, matrices, &selected);

    let elements = summary
        .abstracts()
        .iter()
        .map(|a| {
            let rep = a.representative;
            let group_coverage: f64 = a
                .members
                .iter()
                .map(|&m| {
                    if m == rep {
                        stats.card(m)
                    } else {
                        matrices.coverage(rep, m)
                    }
                })
                .sum();
            let dominates = graph
                .element_ids()
                .filter(|&e| dominance.dominates(rep, e))
                .collect();
            ElementEvidence {
                element: rep,
                path: graph.label_path(rep),
                importance: importance.score(rep),
                importance_rank: rank_of(rep),
                cardinality: stats.card(rep),
                group_size: a.members.len(),
                group_coverage,
                dominates,
            }
        })
        .collect::<Vec<_>>();
    let _ = &assignment; // group membership is already in the summary

    let k = selected.len().max(1);
    let near_misses = ranked
        .iter()
        .filter(|e| !selected.contains(e))
        .take(k)
        .map(|&e| Exclusion {
            element: e,
            path: graph.label_path(e),
            importance_rank: rank_of(e),
            dominated_by: selected
                .iter()
                .copied()
                .find(|&s| dominance.dominates(s, e)),
        })
        .collect();
    Explanation {
        elements,
        near_misses,
    }
}

impl Explanation {
    /// Render a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("summary elements:\n");
        for e in &self.elements {
            out.push_str(&format!(
                "  {:<44} imp #{:<3} ({:.0})  card {:.0}  group {} (cov {:.0})",
                e.path,
                e.importance_rank,
                e.importance,
                e.cardinality,
                e.group_size,
                e.group_coverage
            ));
            if !e.dominates.is_empty() {
                out.push_str(&format!("  dominates {} elements", e.dominates.len()));
            }
            out.push('\n');
        }
        if !self.near_misses.is_empty() {
            out.push_str("left out:\n");
            for x in &self.near_misses {
                out.push_str(&format!("  {:<44} imp #{:<3}", x.path, x.importance_rank));
                match x.dominated_by {
                    Some(_) => out.push_str("  (dominated by a selected element)\n"),
                    None => out.push_str("  (outranked)\n"),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, Summarizer};
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    fn fixture() -> (SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(person, "name", SchemaType::simple_str())
            .unwrap();
        let items = b.add_child(b.root(), "items", SchemaType::rcd()).unwrap();
        let item = b
            .add_child(items, "item", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(item, "title", SchemaType::simple_str())
            .unwrap();
        let g = b.build().unwrap();
        let f = |l: &str| g.find_unique(l).unwrap();
        let cards = {
            let mut c = vec![0u64; g.len()];
            for (e, v) in [
                (g.root(), 1u64),
                (f("people"), 1),
                (f("person"), 100),
                (f("name"), 100),
                (f("items"), 1),
                (f("item"), 300),
                (f("title"), 300),
            ] {
                c[e.index()] = v;
            }
            c
        };
        let links = vec![
            LinkCount {
                from: g.root(),
                to: f("people"),
                count: 1,
            },
            LinkCount {
                from: f("people"),
                to: f("person"),
                count: 100,
            },
            LinkCount {
                from: f("person"),
                to: f("name"),
                count: 100,
            },
            LinkCount {
                from: g.root(),
                to: f("items"),
                count: 1,
            },
            LinkCount {
                from: f("items"),
                to: f("item"),
                count: 300,
            },
            LinkCount {
                from: f("item"),
                to: f("title"),
                count: 300,
            },
        ];
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        (g, s)
    }

    fn explanation(k: usize) -> (SchemaGraph, Explanation) {
        let (g, s) = fixture();
        let mut sum = Summarizer::new(&g, &s);
        let summary = sum.summarize(k, Algorithm::Balance).unwrap();
        let imp = sum.importance().clone();
        let m = sum.matrices().clone();
        let ds = sum.dominance().clone();
        let ex = explain(&g, &s, &imp, &m, &ds, &summary);
        (g, ex)
    }

    #[test]
    fn covers_every_summary_element() {
        let (_, ex) = explanation(2);
        assert_eq!(ex.elements.len(), 2);
        for e in &ex.elements {
            assert!(e.importance > 0.0);
            assert!(e.importance_rank >= 1);
            assert!(e.group_size >= 1);
            assert!(e.group_coverage > 0.0);
            assert!(!e.path.is_empty());
        }
    }

    #[test]
    fn group_sizes_partition_the_schema() {
        let (g, ex) = explanation(2);
        let total: usize = ex.elements.iter().map(|e| e.group_size).sum();
        assert_eq!(total, g.len() - 1); // everything but the root
    }

    #[test]
    fn near_misses_are_ranked_and_annotated() {
        let (_, ex) = explanation(2);
        assert!(!ex.near_misses.is_empty());
        for x in &ex.near_misses {
            assert!(x.importance_rank >= 1);
        }
    }

    #[test]
    fn render_is_informative() {
        let (_, ex) = explanation(2);
        let text = ex.render();
        assert!(text.contains("summary elements:"));
        assert!(text.contains("imp #"));
        assert!(text.contains("left out:"));
    }

    #[test]
    fn serde_roundtrip() {
        let (_, ex) = explanation(2);
        let json = serde_json::to_string(&ex).unwrap();
        let back: Explanation = serde_json::from_str(&json).unwrap();
        assert_eq!(ex, back);
    }
}
