//! Grouping elements under summary elements, and summary-level metrics.
//!
//! Once a set of summary elements is selected, "each remaining schema
//! element \[is\] assigned to the summary element toward which it has the
//! highest affinity" (Section 3.2). Summary coverage (Definition 4) then
//! sums each summary element's coverage of the elements it represents,
//! normalized by the total cardinality; summary importance (Definition 3)
//! sums the importance of the summary elements, normalized by the total
//! importance mass.

use crate::matrices::PairMatrices;
use schema_summary_core::{ElementId, SchemaGraph, SchemaStats};
use std::collections::VecDeque;

/// For each element, the index (into `selected`) of the summary element it
/// is assigned to; `None` for the root and for selected elements themselves.
pub type Assignment = Vec<Option<usize>>;

/// Assign every non-root, non-selected element to the selected element
/// toward which it has the highest affinity. Affinity ties — common, since
/// per-edge affinities clamp at 1 — break first toward the *structurally
/// closer* selected element (containment is the user's mental model of
/// where an element "lives"), then toward the selected element with the
/// higher *coverage* of the element (Formula 3), then toward selection
/// order. Elements with zero affinity to every selected element fall back
/// to the nearest selected element by undirected link distance (then
/// selection order) so that the resulting summary always represents every
/// element, as Definition 2 requires.
pub fn assign_elements(
    graph: &SchemaGraph,
    matrices: &PairMatrices,
    selected: &[ElementId],
) -> Assignment {
    let assigner = ElementAssigner::new(graph, matrices, selected);
    graph.element_ids().map(|e| assigner.assign(e)).collect()
}

/// The assignment rule of [`assign_elements`], factored so callers can
/// evaluate single elements. Each element's owner depends only on its own
/// matrix row, the selected elements' rows, and the graph structure — never
/// on other elements' assignments — so evaluating a subset of elements
/// yields exactly the entries a full pass would produce. The incremental
/// re-clustering path (`refresh_multi_level`) leans on this to recompute
/// only the elements a delta touched.
pub struct ElementAssigner<'a> {
    graph: &'a SchemaGraph,
    matrices: &'a PairMatrices,
    selected: &'a [ElementId],
    is_selected: Vec<bool>,
    /// Fallback owners: multi-source BFS from the selected set over all
    /// links (structural + value, undirected).
    nearest: Vec<Option<usize>>,
    depth: Vec<usize>,
}

impl<'a> ElementAssigner<'a> {
    /// Precompute the shared state (selection bitmap, BFS fallback owners,
    /// structural depths) one full pass needs.
    pub fn new(
        graph: &'a SchemaGraph,
        matrices: &'a PairMatrices,
        selected: &'a [ElementId],
    ) -> Self {
        let n = graph.len();
        let is_selected = {
            let mut v = vec![false; n];
            for &s in selected {
                v[s.index()] = true;
            }
            v
        };

        let mut nearest: Vec<Option<usize>> = vec![None; n];
        let mut queue = VecDeque::new();
        for (idx, &s) in selected.iter().enumerate() {
            nearest[s.index()] = Some(idx);
            queue.push_back(s);
        }
        while let Some(cur) = queue.pop_front() {
            let owner = nearest[cur.index()];
            for (nb, _) in graph.neighbors(cur) {
                if nearest[nb.index()].is_none() {
                    nearest[nb.index()] = owner;
                    queue.push_back(nb);
                }
            }
        }

        let depth: Vec<usize> = graph.element_ids().map(|e| graph.depth(e)).collect();
        ElementAssigner {
            graph,
            matrices,
            selected,
            is_selected,
            nearest,
            depth,
        }
    }

    fn tree_dist(&self, a: ElementId, b: ElementId) -> usize {
        // Distance in the structural tree via the lowest common ancestor.
        let (mut x, mut y) = (a, b);
        let mut d = 0usize;
        while self.depth[x.index()] > self.depth[y.index()] {
            x = self.graph.parent(x).expect("deeper node has a parent");
            d += 1;
        }
        while self.depth[y.index()] > self.depth[x.index()] {
            y = self.graph.parent(y).expect("deeper node has a parent");
            d += 1;
        }
        while x != y {
            x = self.graph.parent(x).expect("non-root nodes have parents");
            y = self.graph.parent(y).expect("non-root nodes have parents");
            d += 2;
        }
        d
    }

    /// The owner of `e`: the entry a full [`assign_elements`] pass would
    /// put at `e`'s index.
    pub fn assign(&self, e: ElementId) -> Option<usize> {
        if e == self.graph.root() || self.is_selected[e.index()] {
            return None;
        }
        let mut best: Option<(usize, f64, usize, f64)> = None;
        for (idx, &s) in self.selected.iter().enumerate() {
            let a = self.matrices.affinity(e, s);
            if a <= 0.0 {
                continue;
            }
            let dist = self.tree_dist(e, s);
            let c = self.matrices.coverage(s, e);
            let better = match best {
                None => true,
                Some((_, ba, bd, bc)) => {
                    a > ba || (a == ba && (dist < bd || (dist == bd && c > bc)))
                }
            };
            if better {
                best = Some((idx, a, dist, c));
            }
        }
        match best {
            Some((idx, ..)) => Some(idx),
            None => self.nearest[e.index()].or(if self.selected.is_empty() {
                None
            } else {
                Some(0)
            }),
        }
    }
}

/// Summary coverage (Definition 4): the coverage each summary element has of
/// the elements it represents (plus itself), over the total cardinality.
/// The root, always kept as an original element, covers itself.
pub fn summary_coverage(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    matrices: &PairMatrices,
    selected: &[ElementId],
    assignment: &Assignment,
) -> f64 {
    let total = stats.total_card();
    if total <= 0.0 {
        return 0.0;
    }
    let mut covered = stats.card(graph.root());
    for &s in selected {
        covered += stats.card(s); // C(s→s) = Card_s
    }
    for e in graph.element_ids() {
        if let Some(idx) = assignment[e.index()] {
            covered += matrices.coverage(selected[idx], e);
        }
    }
    covered / total
}

/// Summary importance (Definition 3): total importance of the summary
/// elements (the root plus the selected representatives) over the total
/// importance mass.
pub fn summary_importance(
    graph: &SchemaGraph,
    importance: &crate::importance::ImportanceResult,
    selected: &[ElementId],
) -> f64 {
    let total = importance.total();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sum = importance.score(graph.root());
    for &s in selected {
        sum += importance.score(s);
    }
    sum / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::importance::{compute_importance, ImportanceConfig};
    use crate::paths::PathConfig;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::types::SchemaType;
    use schema_summary_core::SchemaGraph;

    /// site -> {people -> person* -> {name, address},
    ///          auctions -> auction* -> bidder*}; bidder ->V person.
    fn fixture() -> (SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(person, "name", SchemaType::simple_str())
            .unwrap();
        b.add_child(person, "address", SchemaType::rcd()).unwrap();
        let auctions = b
            .add_child(b.root(), "auctions", SchemaType::rcd())
            .unwrap();
        let auction = b
            .add_child(auctions, "auction", SchemaType::set_of_rcd())
            .unwrap();
        let bidder = b
            .add_child(auction, "bidder", SchemaType::set_of_rcd())
            .unwrap();
        b.add_value_link(bidder, person).unwrap();
        let g = b.build().unwrap();
        let person_e = g.find_unique("person").unwrap();
        let name = g.find_unique("name").unwrap();
        let address = g.find_unique("address").unwrap();
        let auction_e = g.find_unique("auction").unwrap();
        let bidder_e = g.find_unique("bidder").unwrap();
        let people_e = g.find_unique("people").unwrap();
        let auctions_e = g.find_unique("auctions").unwrap();
        let cards = {
            let mut c = vec![0u64; g.len()];
            c[g.root().index()] = 1;
            c[people_e.index()] = 1;
            c[person_e.index()] = 100;
            c[name.index()] = 100;
            c[address.index()] = 100;
            c[auctions_e.index()] = 1;
            c[auction_e.index()] = 50;
            c[bidder_e.index()] = 250;
            c
        };
        let links = vec![
            LinkCount {
                from: g.root(),
                to: people_e,
                count: 1,
            },
            LinkCount {
                from: people_e,
                to: person_e,
                count: 100,
            },
            LinkCount {
                from: person_e,
                to: name,
                count: 100,
            },
            LinkCount {
                from: person_e,
                to: address,
                count: 100,
            },
            LinkCount {
                from: g.root(),
                to: auctions_e,
                count: 1,
            },
            LinkCount {
                from: auctions_e,
                to: auction_e,
                count: 50,
            },
            LinkCount {
                from: auction_e,
                to: bidder_e,
                count: 250,
            },
            LinkCount {
                from: bidder_e,
                to: person_e,
                count: 250,
            },
        ];
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        (g, s)
    }

    #[test]
    fn elements_go_to_highest_affinity_owner() {
        let (g, s) = fixture();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let person = g.find_unique("person").unwrap();
        let auction = g.find_unique("auction").unwrap();
        let selected = vec![person, auction];
        let a = assign_elements(&g, &m, &selected);
        // name and address belong with person. bidder ties at affinity 1.0
        // toward both person (value link, RC 1 each way) and auction
        // (structural, RC(bidder→auction) = 1); the structural-distance
        // tie-break puts it under its parent auction, matching the paper's
        // Figure 2 where bidder sits inside the open_auction component.
        let name = g.find_unique("name").unwrap();
        let address = g.find_unique("address").unwrap();
        let bidder = g.find_unique("bidder").unwrap();
        assert_eq!(a[name.index()], Some(0));
        assert_eq!(a[address.index()], Some(0));
        assert_eq!(a[bidder.index()], Some(1));
        // Selected elements and root are unassigned.
        assert_eq!(a[person.index()], None);
        assert_eq!(a[g.root().index()], None);
    }

    #[test]
    fn summary_coverage_bounds() {
        let (g, s) = fixture();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let person = g.find_unique("person").unwrap();
        let auction = g.find_unique("auction").unwrap();
        let selected = vec![person, auction];
        let a = assign_elements(&g, &m, &selected);
        let cov = summary_coverage(&g, &s, &m, &selected, &a);
        assert!(cov > 0.0 && cov <= 1.0, "coverage {cov}");
    }

    // Note: summary coverage is not monotone in the selection in general
    // (an added element can steal members by affinity while covering them
    // worse); on this fixture the supersets happen to cover more, which is
    // the typical case the paper's Figure 8 basin relies on.
    #[test]
    fn typical_supersets_cover_more_on_this_fixture() {
        let (g, s) = fixture();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let person = g.find_unique("person").unwrap();
        let auction = g.find_unique("auction").unwrap();
        let bidder = g.find_unique("bidder").unwrap();
        let small = vec![person];
        let a_small = assign_elements(&g, &m, &small);
        let large = vec![person, auction, bidder];
        let a_large = assign_elements(&g, &m, &large);
        let c_small = summary_coverage(&g, &s, &m, &small, &a_small);
        let c_large = summary_coverage(&g, &s, &m, &large, &a_large);
        assert!(c_large >= c_small);
    }

    #[test]
    fn full_selection_reaches_total_coverage() {
        let (g, s) = fixture();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let selected: Vec<_> = g.element_ids().filter(|&e| e != g.root()).collect();
        let a = assign_elements(&g, &m, &selected);
        let cov = summary_coverage(&g, &s, &m, &selected, &a);
        assert!((cov - 1.0).abs() < 1e-9);
    }

    #[test]
    fn summary_importance_definition3() {
        let (g, s) = fixture();
        let imp = compute_importance(&g, &s, &ImportanceConfig::default());
        let person = g.find_unique("person").unwrap();
        let r1 = summary_importance(&g, &imp, &[person]);
        assert!(r1 > 0.0 && r1 < 1.0);
        let all: Vec<_> = g.element_ids().filter(|&e| e != g.root()).collect();
        let rall = summary_importance(&g, &imp, &all);
        assert!((rall - 1.0).abs() < 1e-9);
        // Monotone in the selected set.
        let auction = g.find_unique("auction").unwrap();
        let r2 = summary_importance(&g, &imp, &[person, auction]);
        assert!(r2 > r1);
    }

    #[test]
    fn unreachable_elements_fall_back_to_nearest() {
        // Disconnected-ish: element with zero cardinality has zero RC edges,
        // hence zero affinity everywhere; fallback must still assign it.
        let mut b = SchemaGraphBuilder::new("r");
        let a = b
            .add_child(b.root(), "a", SchemaType::set_of_rcd())
            .unwrap();
        let dead = b.add_child(b.root(), "dead", SchemaType::rcd()).unwrap();
        let g = b.build().unwrap();
        let s = SchemaStats::from_link_counts(
            &g,
            &[1, 10, 0],
            &[LinkCount {
                from: g.root(),
                to: a,
                count: 10,
            }],
        )
        .unwrap();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let selected = vec![a];
        let asg = assign_elements(&g, &m, &selected);
        assert_eq!(asg[dead.index()], Some(0));
    }
}
