//! Materializing a selected element set into a schema summary.
//!
//! "Given the set of selected schema elements, which serve as the abstract
//! elements in the summary, generating \[the\] schema summary is simply
//! assigning each remaining schema element to its closest abstract element
//! and establishing abstract links between those elements" (Section 4).

use crate::assignment::assign_elements;
use crate::matrices::PairMatrices;
use schema_summary_core::{ElementId, SchemaError, SchemaGraph, SchemaSummary};

/// Build a full summary whose abstract elements are `selected`, grouping
/// every other element under the selected element toward which it has the
/// highest affinity.
pub fn build_summary(
    graph: &SchemaGraph,
    matrices: &PairMatrices,
    selected: &[ElementId],
) -> Result<SchemaSummary, SchemaError> {
    if selected.is_empty() {
        return Err(SchemaError::BadSummarySize {
            requested: 0,
            available: graph.len().saturating_sub(1),
        });
    }
    for &s in selected {
        graph.check(s)?;
        if s == graph.root() {
            return Err(SchemaError::Invalid(
                "the root cannot be an abstract element; it is always kept".into(),
            ));
        }
    }
    let assignment = assign_elements(graph, matrices, selected);
    let mut members: Vec<Vec<ElementId>> = selected.iter().map(|&s| vec![s]).collect();
    for e in graph.element_ids() {
        if let Some(idx) = assignment[e.index()] {
            members[idx].push(e);
        }
    }
    let groups = selected
        .iter()
        .zip(members)
        .map(|(&rep, mem)| (rep, mem))
        .collect();
    SchemaSummary::from_grouping(graph, groups, vec![graph.root()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::PathConfig;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::stats::{LinkCount, SchemaStats};
    use schema_summary_core::types::SchemaType;

    fn fixture() -> (SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(person, "name", SchemaType::simple_str())
            .unwrap();
        let auctions = b
            .add_child(b.root(), "auctions", SchemaType::rcd())
            .unwrap();
        let auction = b
            .add_child(auctions, "auction", SchemaType::set_of_rcd())
            .unwrap();
        let bidder = b
            .add_child(auction, "bidder", SchemaType::set_of_rcd())
            .unwrap();
        b.add_value_link(bidder, person).unwrap();
        let g = b.build().unwrap();
        let find = |l: &str| g.find_unique(l).unwrap();
        let mut cards = vec![0u64; g.len()];
        for (e, c) in [
            (g.root(), 1u64),
            (find("people"), 1),
            (find("person"), 100),
            (find("name"), 100),
            (find("auctions"), 1),
            (find("auction"), 50),
            (find("bidder"), 250),
        ] {
            cards[e.index()] = c;
        }
        let links = vec![
            LinkCount {
                from: g.root(),
                to: find("people"),
                count: 1,
            },
            LinkCount {
                from: find("people"),
                to: find("person"),
                count: 100,
            },
            LinkCount {
                from: find("person"),
                to: find("name"),
                count: 100,
            },
            LinkCount {
                from: g.root(),
                to: find("auctions"),
                count: 1,
            },
            LinkCount {
                from: find("auctions"),
                to: find("auction"),
                count: 50,
            },
            LinkCount {
                from: find("auction"),
                to: find("bidder"),
                count: 250,
            },
            LinkCount {
                from: find("bidder"),
                to: find("person"),
                count: 250,
            },
        ];
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        (g, s)
    }

    #[test]
    fn built_summary_is_valid_and_full() {
        let (g, s) = fixture();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let person = g.find_unique("person").unwrap();
        let auction = g.find_unique("auction").unwrap();
        let summary = build_summary(&g, &m, &[person, auction]).unwrap();
        summary.validate(&g).unwrap();
        assert!(summary.is_full());
        assert_eq!(summary.size(), 2);
        // name groups with person; bidder ties between person and auction
        // (affinity 1.0 to both) and the structural-distance tie-break puts
        // it under its parent auction.
        let bidder = g.find_unique("bidder").unwrap();
        let name = g.find_unique("name").unwrap();
        assert_eq!(summary.node_of(name), summary.node_of(person));
        assert_eq!(summary.node_of(bidder), summary.node_of(auction));
    }

    #[test]
    fn rejects_root_selection() {
        let (g, s) = fixture();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        assert!(build_summary(&g, &m, &[g.root()]).is_err());
    }

    #[test]
    fn rejects_empty_selection() {
        let (g, s) = fixture();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        assert!(build_summary(&g, &m, &[]).is_err());
    }

    #[test]
    fn every_element_represented() {
        let (g, s) = fixture();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let person = g.find_unique("person").unwrap();
        let summary = build_summary(&g, &m, &[person]).unwrap();
        summary.validate(&g).unwrap();
        // With one abstract element, the whole schema (minus root) is one
        // group.
        assert_eq!(summary.abstracts()[0].members.len(), g.len() - 1);
    }
}
