//! Query-history-informed importance (the paper's §5.4 discussion item).
//!
//! "Another potentially important input to automatic schema summarization
//! algorithms is historical queries. By analyzing the query history,
//! important elements can be extracted as the most frequently queried
//! elements." The paper leaves this as future work, noting history is
//! unavailable for new databases and slow to adapt; we implement it as an
//! optional *blend*: the importance iteration's initial mass is a convex
//! combination of cardinalities (the paper's default) and the query-hit
//! distribution, preserving the total-mass invariant so every property of
//! Formula 1 carries over.

use crate::importance::{ImportanceConfig, ImportanceMode, ImportanceResult};
use schema_summary_core::{ElementId, SchemaGraph, SchemaStats};
use serde::{Deserialize, Serialize};

/// Accumulated per-element query-hit counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryHistory {
    hits: Vec<f64>,
}

impl QueryHistory {
    /// An empty history over a schema of `n` elements.
    pub fn new(n: usize) -> Self {
        QueryHistory { hits: vec![0.0; n] }
    }

    /// An empty history sized for `graph`.
    pub fn for_graph(graph: &SchemaGraph) -> Self {
        Self::new(graph.len())
    }

    /// Record one query referencing `elements` (duplicates count once per
    /// occurrence, mirroring a trace where each reference is a hit).
    pub fn record(&mut self, elements: &[ElementId]) {
        for &e in elements {
            if e.index() < self.hits.len() {
                self.hits[e.index()] += 1.0;
            }
        }
    }

    /// Hits recorded for `e`.
    pub fn hits(&self, e: ElementId) -> f64 {
        self.hits[e.index()]
    }

    /// Total recorded hits.
    pub fn total(&self) -> f64 {
        self.hits.iter().sum()
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0.0
    }
}

/// Compute importance with the initial mass blended between cardinalities
/// and the query-hit distribution: `blend = 0` reproduces Formula 1
/// exactly, `blend = 1` seeds entirely from history. Total mass stays equal
/// to the total cardinality either way.
pub fn compute_importance_with_history(
    graph: &SchemaGraph,
    stats: &SchemaStats,
    history: &QueryHistory,
    config: &ImportanceConfig,
    blend: f64,
) -> ImportanceResult {
    let blend = blend.clamp(0.0, 1.0);
    if blend == 0.0 || history.is_empty() {
        return crate::importance::compute_importance(graph, stats, config);
    }
    let total = stats.total_card();
    let hist_total = history.total();
    let init: Vec<f64> = graph
        .element_ids()
        .map(|e| (1.0 - blend) * stats.card(e) + blend * (history.hits(e) / hist_total) * total)
        .collect();
    // Reuse the standard iteration with the blended seed. DataOnly would
    // ignore the seed's purpose; force the full mode.
    let mut cfg = config.clone();
    cfg.mode = ImportanceMode::DataAndSchema;
    crate::importance::iterate_from(graph, stats, init, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    /// root -> {hot*, cold*}: same cardinality, but only `hot` is queried.
    fn fixture() -> (SchemaGraph, SchemaStats, ElementId, ElementId) {
        let mut b = SchemaGraphBuilder::new("db");
        let hot = b
            .add_child(b.root(), "hot", SchemaType::set_of_rcd())
            .unwrap();
        let cold = b
            .add_child(b.root(), "cold", SchemaType::set_of_rcd())
            .unwrap();
        let g = b.build().unwrap();
        let s = SchemaStats::from_link_counts(
            &g,
            &[1, 100, 100],
            &[
                LinkCount {
                    from: g.root(),
                    to: hot,
                    count: 100,
                },
                LinkCount {
                    from: g.root(),
                    to: cold,
                    count: 100,
                },
            ],
        )
        .unwrap();
        (g, s, hot, cold)
    }

    #[test]
    fn history_breaks_symmetry() {
        let (g, s, hot, cold) = fixture();
        let mut h = QueryHistory::for_graph(&g);
        for _ in 0..10 {
            h.record(&[hot]);
        }
        let r = compute_importance_with_history(&g, &s, &h, &ImportanceConfig::default(), 0.5);
        assert!(
            r.score(hot) > r.score(cold),
            "hot {} vs cold {}",
            r.score(hot),
            r.score(cold)
        );
    }

    #[test]
    fn zero_blend_matches_plain_importance() {
        let (g, s, hot, _) = fixture();
        let mut h = QueryHistory::for_graph(&g);
        h.record(&[hot]);
        let plain = crate::importance::compute_importance(&g, &s, &ImportanceConfig::default());
        let blended =
            compute_importance_with_history(&g, &s, &h, &ImportanceConfig::default(), 0.0);
        for e in g.element_ids() {
            assert_eq!(plain.score(e), blended.score(e));
        }
    }

    #[test]
    fn empty_history_is_a_noop() {
        let (g, s, _, _) = fixture();
        let h = QueryHistory::for_graph(&g);
        let plain = crate::importance::compute_importance(&g, &s, &ImportanceConfig::default());
        let blended =
            compute_importance_with_history(&g, &s, &h, &ImportanceConfig::default(), 0.9);
        for e in g.element_ids() {
            assert_eq!(plain.score(e), blended.score(e));
        }
    }

    #[test]
    fn mass_is_still_conserved() {
        let (g, s, hot, cold) = fixture();
        let mut h = QueryHistory::for_graph(&g);
        h.record(&[hot, cold, hot]);
        for blend in [0.25, 0.5, 1.0] {
            let r =
                compute_importance_with_history(&g, &s, &h, &ImportanceConfig::default(), blend);
            assert!(
                (r.total() - s.total_card()).abs() < 1e-6,
                "blend {blend}: mass {}",
                r.total()
            );
        }
    }

    #[test]
    fn out_of_range_records_are_ignored() {
        let (g, _, _, _) = fixture();
        let mut h = QueryHistory::for_graph(&g);
        h.record(&[ElementId(99)]);
        assert!(h.is_empty());
    }
}
