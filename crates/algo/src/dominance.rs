//! Coverage dominance (Theorem 1) and the candidate-pruning heuristic.
//!
//! Element `e1` **dominates** `e2` when any summary containing `e2` (but not
//! `e1`) gets strictly better summary coverage by swapping `e2` for `e1`.
//! Theorem 1 gives a sufficient condition: with `E` the set of elements
//! covered better by `e2` than by `e1`, `C1/C2` the respective coverage
//! sums over `E`, and `e_c` the best coverer of `e1` other than itself,
//!
//! ```text
//! C2 - C1 ≤ Card(e1) - C(e2 → e1)          and, if e_c ≠ e2,
//! C2 - C1 ≤ Card(e1) - C(e_c → e1)
//! ```
//!
//! We evaluate the theorem's conditions exactly from the all-pairs coverage
//! matrix. Following Section 4.3's heuristic, only pairs in an
//! ancestor–descendant relationship are examined (both directions), where
//! value-link referees count as parents (footnote 6). Dominance found this
//! way is sound; pairs the heuristic skips merely leave some dominated
//! elements unpruned.

use crate::matrices::PairMatrices;
use schema_summary_core::{ElementId, SchemaGraph, SchemaStats};
use std::collections::HashSet;

/// The set of discovered dominance pairs.
#[derive(Debug, Clone)]
pub struct DominanceSet {
    pairs: HashSet<(u32, u32)>,
    dominated: Vec<bool>,
    /// Number of ordered pairs whose Theorem-1 conditions were evaluated
    /// (reported by the dominance-pruning ablation bench).
    pub checked_pairs: usize,
}

impl DominanceSet {
    /// Discover dominance pairs among ancestor–descendant element pairs.
    pub fn compute(graph: &SchemaGraph, stats: &SchemaStats, matrices: &PairMatrices) -> Self {
        let n = graph.len();
        let mut pairs = HashSet::new();
        let mut dominated = vec![false; n];
        let mut checked = 0usize;

        // Precompute, for every element, the best coverer other than
        // itself: e_c = argmax_{e ≠ e1} C(e → e1).
        let best_coverer: Vec<Option<(ElementId, f64)>> = (0..n as u32)
            .map(|t| {
                let target = ElementId(t);
                let mut best: Option<(ElementId, f64)> = None;
                for s in 0..n as u32 {
                    let src = ElementId(s);
                    if src == target {
                        continue;
                    }
                    let c = matrices.coverage(src, target);
                    if best.is_none_or(|(_, bc)| c > bc) {
                        best = Some((src, c));
                    }
                }
                best
            })
            .collect();

        for desc in graph.element_ids() {
            for anc in extended_ancestors(graph, desc) {
                for (e1, e2) in [(anc, desc), (desc, anc)] {
                    checked += 1;
                    if theorem1_dominates(e1, e2, graph, stats, matrices, &best_coverer) {
                        pairs.insert((e1.0, e2.0));
                        dominated[e2.index()] = true;
                    }
                }
            }
        }
        DominanceSet {
            pairs,
            dominated,
            checked_pairs: checked,
        }
    }

    /// Whether `a` dominates `b`.
    #[inline]
    pub fn dominates(&self, a: ElementId, b: ElementId) -> bool {
        self.pairs.contains(&(a.0, b.0))
    }

    /// Whether any element dominates `e`.
    #[inline]
    pub fn is_dominated(&self, e: ElementId) -> bool {
        self.dominated[e.index()]
    }

    /// Non-root elements not dominated by anyone — `MaxCoverage`'s pruned
    /// candidate set `CS`.
    pub fn non_dominated(&self, graph: &SchemaGraph) -> Vec<ElementId> {
        graph
            .element_ids()
            .filter(|&e| e != graph.root() && !self.is_dominated(e))
            .collect()
    }

    /// All discovered `(dominator, dominated)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (ElementId, ElementId)> + '_ {
        self.pairs
            .iter()
            .map(|&(a, b)| (ElementId(a), ElementId(b)))
    }

    /// Number of discovered pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no dominance was discovered.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Elements reachable from `e` by repeatedly moving to the structural
/// parent or to a value-link referee ("ancestors" per footnote 6),
/// excluding `e` itself.
pub fn extended_ancestors(graph: &SchemaGraph, e: ElementId) -> Vec<ElementId> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    seen.insert(e);
    let mut stack: Vec<ElementId> = Vec::new();
    let push_parents = |of: ElementId, stack: &mut Vec<ElementId>| {
        if let Some(p) = graph.parent(of) {
            stack.push(p);
        }
        for &r in graph.value_links_from(of) {
            stack.push(r);
        }
    };
    push_parents(e, &mut stack);
    while let Some(a) = stack.pop() {
        if !seen.insert(a) {
            continue;
        }
        out.push(a);
        push_parents(a, &mut stack);
    }
    out
}

fn theorem1_dominates(
    e1: ElementId,
    e2: ElementId,
    graph: &SchemaGraph,
    stats: &SchemaStats,
    matrices: &PairMatrices,
    best_coverer: &[Option<(ElementId, f64)>],
) -> bool {
    // E = elements (including e2) covered strictly better by e2 than e1.
    let mut c1 = 0.0;
    let mut c2 = 0.0;
    for e in graph.element_ids() {
        let by2 = matrices.coverage(e2, e);
        let by1 = matrices.coverage(e1, e);
        if by2 > by1 {
            c1 += by1;
            c2 += by2;
        }
    }
    let diff = c2 - c1;
    let card1 = stats.card(e1);
    if diff > card1 - matrices.coverage(e2, e1) {
        return false;
    }
    if let Some((ec, cov_ec)) = best_coverer[e1.index()] {
        if ec != e2 && diff > card1 - cov_ec {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::PathConfig;
    use schema_summary_core::graph::SchemaGraphBuilder;
    use schema_summary_core::stats::LinkCount;
    use schema_summary_core::types::SchemaType;
    use schema_summary_core::SchemaGraph;

    /// The paper's Figure 5 fragment: person -> profile -> {interest*,
    /// education}; interest -> @category. RC(profile→interest) = 4 > 1,
    /// everything else 1.
    fn figure5() -> (SchemaGraph, SchemaStats) {
        let mut b = SchemaGraphBuilder::new("people");
        let person = b
            .add_child(b.root(), "person", SchemaType::set_of_rcd())
            .unwrap();
        let profile = b.add_child(person, "profile", SchemaType::rcd()).unwrap();
        let interest = b
            .add_child(profile, "interest", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(interest, "@category", SchemaType::simple_idref())
            .unwrap();
        b.add_child(profile, "education", SchemaType::simple_str())
            .unwrap();
        let g = b.build().unwrap();
        let person_e = g.find_unique("person").unwrap();
        let profile_e = g.find_unique("profile").unwrap();
        let interest_e = g.find_unique("interest").unwrap();
        let cat = g.find_unique("@category").unwrap();
        let edu = g.find_unique("education").unwrap();
        let cards = {
            let mut c = vec![0u64; g.len()];
            c[g.root().index()] = 1;
            c[person_e.index()] = 100;
            c[profile_e.index()] = 100;
            c[interest_e.index()] = 400;
            c[cat.index()] = 400;
            c[edu.index()] = 100;
            c
        };
        let links = vec![
            LinkCount {
                from: g.root(),
                to: person_e,
                count: 100,
            },
            LinkCount {
                from: person_e,
                to: profile_e,
                count: 100,
            },
            LinkCount {
                from: profile_e,
                to: interest_e,
                count: 400,
            },
            LinkCount {
                from: interest_e,
                to: cat,
                count: 400,
            },
            LinkCount {
                from: profile_e,
                to: edu,
                count: 100,
            },
        ];
        let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        (g, s)
    }

    #[test]
    fn interest_dominates_its_category_attribute() {
        let (g, s) = figure5();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ds = DominanceSet::compute(&g, &s, &m);
        let interest = g.find_unique("interest").unwrap();
        let cat = g.find_unique("@category").unwrap();
        assert!(ds.dominates(interest, cat), "paper's Section 4.3 example");
        assert!(ds.is_dominated(cat));
        // And never the other way around.
        assert!(!ds.dominates(cat, interest));
    }

    #[test]
    fn pruning_reduces_candidates() {
        let (g, s) = figure5();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ds = DominanceSet::compute(&g, &s, &m);
        let cs = ds.non_dominated(&g);
        assert!(cs.len() < g.len() - 1, "no pruning happened");
        assert!(!cs.is_empty());
        assert!(ds.checked_pairs > 0);
    }

    #[test]
    fn extended_ancestors_follow_value_links() {
        // a -> b; c (sibling of a); b ->V c: c is an extended ancestor of b.
        let mut builder = SchemaGraphBuilder::new("r");
        let a = builder
            .add_child(builder.root(), "a", SchemaType::rcd())
            .unwrap();
        let b = builder.add_child(a, "b", SchemaType::rcd()).unwrap();
        let c = builder
            .add_child(builder.root(), "c", SchemaType::rcd())
            .unwrap();
        builder.add_value_link(b, c).unwrap();
        let g = builder.build().unwrap();
        let anc = extended_ancestors(&g, b);
        assert!(anc.contains(&a));
        assert!(anc.contains(&c));
        assert!(anc.contains(&g.root()));
        assert!(!anc.contains(&b));
    }

    #[test]
    fn extended_ancestors_handle_value_cycles() {
        // a ->V b, b ->V a: the upward walk must terminate.
        let mut builder = SchemaGraphBuilder::new("r");
        let a = builder
            .add_child(builder.root(), "a", SchemaType::rcd())
            .unwrap();
        let b = builder
            .add_child(builder.root(), "b", SchemaType::rcd())
            .unwrap();
        builder.add_value_link(a, b).unwrap();
        builder.add_value_link(b, a).unwrap();
        let g = builder.build().unwrap();
        let anc = extended_ancestors(&g, a);
        assert!(anc.contains(&b));
        assert!(anc.contains(&g.root()));
    }

    #[test]
    fn dominance_swap_never_hurts_coverage() {
        // Empirical check of Theorem 1's guarantee on the Figure 5 fixture:
        // replacing a dominated element by its dominator in a singleton
        // summary never lowers summary coverage.
        use crate::assignment::{assign_elements, summary_coverage};
        let (g, s) = figure5();
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ds = DominanceSet::compute(&g, &s, &m);
        for (dominator, dominated) in ds.pairs() {
            if dominator == g.root() {
                continue;
            }
            let with_dominated = vec![dominated];
            let with_dominator = vec![dominator];
            let a1 = assign_elements(&g, &m, &with_dominated);
            let a2 = assign_elements(&g, &m, &with_dominator);
            let c1 = summary_coverage(&g, &s, &m, &with_dominated, &a1);
            let c2 = summary_coverage(&g, &s, &m, &with_dominator, &a2);
            assert!(
                c2 >= c1 - 1e-9,
                "swapping {} for {} lowered coverage {c1} -> {c2}",
                g.label(dominated),
                g.label(dominator)
            );
        }
    }
}
