//! Property-based tests specific to the algorithm crate: invariants of the
//! formulas under controlled perturbations of the statistics.

use proptest::prelude::*;
use schema_summary_algo::importance::{compute_importance, compute_importance_rebased};
use schema_summary_algo::{
    build_multi_level, plan_delta, refresh_multi_level, Algorithm, DominanceSet, ImportanceConfig,
    PairMatrices, PathConfig, PathKernel, PathLength, Summarizer,
};
use schema_summary_core::stats::LinkCount;
use schema_summary_core::{
    DeltaClass, ElementId, SchemaDelta, SchemaGraph, SchemaGraphBuilder, SchemaStats, SchemaType,
};

/// A two-section schema whose link counts are driven by the inputs:
/// root -> {a* -> {x, y*}, b* -> {z*}}, b ->V a.
fn build(
    a_card: u64,
    y_per_a: u64,
    b_card: u64,
    z_per_b: u64,
) -> (SchemaGraph, SchemaStats, [ElementId; 5]) {
    let mut builder = SchemaGraphBuilder::new("root");
    let a = builder
        .add_child(builder.root(), "a", SchemaType::set_of_rcd())
        .unwrap();
    let x = builder.add_child(a, "x", SchemaType::simple_str()).unwrap();
    let y = builder.add_child(a, "y", SchemaType::set_of_rcd()).unwrap();
    let b = builder
        .add_child(builder.root(), "b", SchemaType::set_of_rcd())
        .unwrap();
    let z = builder.add_child(b, "z", SchemaType::set_of_rcd()).unwrap();
    builder.add_value_link(b, a).unwrap();
    let g = builder.build().unwrap();
    let cards = vec![
        1,
        a_card,
        a_card, // x: one per a
        a_card * y_per_a,
        b_card,
        b_card * z_per_b,
    ];
    let links = vec![
        LinkCount {
            from: g.root(),
            to: a,
            count: a_card,
        },
        LinkCount {
            from: a,
            to: x,
            count: a_card,
        },
        LinkCount {
            from: a,
            to: y,
            count: a_card * y_per_a,
        },
        LinkCount {
            from: g.root(),
            to: b,
            count: b_card,
        },
        LinkCount {
            from: b,
            to: z,
            count: b_card * z_per_b,
        },
        LinkCount {
            from: b,
            to: a,
            count: b_card,
        },
    ];
    let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
    (g, s, [a, x, y, b, z])
}

/// A randomized tree-with-value-links schema: one section per entry of
/// `secs` (card, leaf fan-out), leaves under each section, plus value links
/// picked by index pairs (invalid or duplicate picks are skipped). Value
/// links create diamonds and cycles, which is exactly the regime where the
/// path kernels disagree if one of them is wrong.
fn linked_schema(
    secs: &[(u64, usize)],
    link_picks: &[(usize, usize)],
) -> (SchemaGraph, SchemaStats) {
    let mut builder = SchemaGraphBuilder::new("root");
    let mut all = vec![builder.root()];
    for (i, &(_, fan)) in secs.iter().enumerate() {
        let sec = builder
            .add_child(builder.root(), format!("s{i}"), SchemaType::set_of_rcd())
            .unwrap();
        all.push(sec);
        for j in 0..fan {
            all.push(
                builder
                    .add_child(sec, format!("s{i}f{j}"), SchemaType::set_of_rcd())
                    .unwrap(),
            );
        }
    }
    let mut value_links = Vec::new();
    for &(f, t) in link_picks {
        let from = all[f % all.len()];
        let to = all[t % all.len()];
        if from != to && builder.add_value_link(from, to).is_ok() {
            value_links.push((from, to));
        }
    }
    let g = builder.build().unwrap();
    // Cardinalities: root 1; section i its given card; each leaf a distinct
    // multiple of its section's card so RCs vary per edge.
    let mut cards = vec![0u64; g.len()];
    cards[g.root().index()] = 1;
    let mut links = Vec::new();
    let mut cursor = 1;
    for &(card, fan) in secs {
        let sec = all[cursor];
        cursor += 1;
        cards[sec.index()] = card;
        links.push(LinkCount {
            from: g.root(),
            to: sec,
            count: card,
        });
        for j in 0..fan {
            let leaf = all[cursor];
            cursor += 1;
            let leaf_card = card * (j as u64 + 1);
            cards[leaf.index()] = leaf_card;
            links.push(LinkCount {
                from: sec,
                to: leaf,
                count: leaf_card,
            });
        }
    }
    for (from, to) in value_links {
        let count = cards[from.index()].min(cards[to.index()]);
        links.push(LinkCount { from, to, count });
    }
    let s = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
    (g, s)
}

/// [`linked_schema`] extended identity-prefix style: the same sections,
/// leaves, and value links are declared first (so old element ids, old link
/// lists, and old cardinalities are exactly the ungrown declaration's), then
/// growth appends — extra leaves on existing sections, an optional extra
/// section with its own leaves, and extra value links that may touch both
/// old and new elements. Returns the raw (graph, cards, link counts) so
/// callers can drive both `from_link_counts` and `grow_from`.
fn grown_linked_schema(
    secs: &[(u64, usize)],
    link_picks: &[(usize, usize)],
    extra_leaves: &[(usize, u64)],
    extra_section: Option<(u64, usize)>,
    extra_picks: &[(usize, usize)],
) -> (SchemaGraph, Vec<u64>, Vec<LinkCount>) {
    let mut builder = SchemaGraphBuilder::new("root");
    let mut all = vec![builder.root()];
    let mut sec_ids = Vec::new();
    for (i, &(_, fan)) in secs.iter().enumerate() {
        let sec = builder
            .add_child(builder.root(), format!("s{i}"), SchemaType::set_of_rcd())
            .unwrap();
        sec_ids.push(sec);
        all.push(sec);
        for j in 0..fan {
            all.push(
                builder
                    .add_child(sec, format!("s{i}f{j}"), SchemaType::set_of_rcd())
                    .unwrap(),
            );
        }
    }
    let n_old_all = all.len();
    // Old value links first, resolved over the old id space in the original
    // pick order, so every old element's link list is a prefix of its grown
    // one.
    let mut value_links = Vec::new();
    for &(f, t) in link_picks {
        let from = all[f % n_old_all];
        let to = all[t % n_old_all];
        if from != to && builder.add_value_link(from, to).is_ok() {
            value_links.push((from, to));
        }
    }
    // Growth: appended leaves on existing sections, then an appended
    // section, then the new value links (which may land on new elements).
    let mut extra_elems: Vec<(ElementId, u64)> = Vec::new();
    for (k, &(pick, card)) in extra_leaves.iter().enumerate() {
        let sec = sec_ids[pick % sec_ids.len()];
        let id = builder
            .add_child(sec, format!("g{k}"), SchemaType::set_of_rcd())
            .unwrap();
        all.push(id);
        extra_elems.push((id, card));
    }
    if let Some((card, fan)) = extra_section {
        let sec = builder
            .add_child(builder.root(), "gsec", SchemaType::set_of_rcd())
            .unwrap();
        all.push(sec);
        extra_elems.push((sec, card));
        for j in 0..fan {
            let id = builder
                .add_child(sec, format!("gsecf{j}"), SchemaType::set_of_rcd())
                .unwrap();
            all.push(id);
            extra_elems.push((id, card * (j as u64 + 1)));
        }
    }
    for &(f, t) in extra_picks {
        let from = all[f % all.len()];
        let to = all[t % all.len()];
        if from != to && builder.add_value_link(from, to).is_ok() {
            value_links.push((from, to));
        }
    }
    let g = builder.build().unwrap();
    let mut cards = vec![0u64; g.len()];
    cards[g.root().index()] = 1;
    let mut links = Vec::new();
    let mut cursor = 1;
    for &(card, fan) in secs {
        let sec = all[cursor];
        cursor += 1;
        cards[sec.index()] = card;
        links.push(LinkCount {
            from: g.root(),
            to: sec,
            count: card,
        });
        for j in 0..fan {
            let leaf = all[cursor];
            cursor += 1;
            let leaf_card = card * (j as u64 + 1);
            cards[leaf.index()] = leaf_card;
            links.push(LinkCount {
                from: sec,
                to: leaf,
                count: leaf_card,
            });
        }
    }
    for (id, card) in extra_elems {
        cards[id.index()] = card;
        links.push(LinkCount {
            from: g.parent(id).expect("growth elements are never the root"),
            to: id,
            count: card,
        });
    }
    for (from, to) in value_links {
        let count = cards[from.index()].min(cards[to.index()]);
        links.push(LinkCount { from, to, count });
    }
    (g, cards, links)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Importance is approximately scale-equivariant for non-root elements:
    /// multiplying the data volume by a constant multiplies their scores by
    /// it (the paper's footnote 8 relies on this to justify its choice of
    /// scale factors). The root is excluded — its cardinality is pinned at
    /// 1 while everything around it scales, so its share genuinely shrinks.
    #[test]
    fn importance_is_scale_equivariant(
        a in 2u64..50, y in 1u64..8, b in 2u64..50, z in 1u64..8, m in 2u64..5,
    ) {
        let (g1, s1, _) = build(a, y, b, z);
        let (_, s2, _) = build(a * m, y, b * m, z);
        let r1 = compute_importance(&g1, &s1, &ImportanceConfig::default());
        let r2 = compute_importance(&g1, &s2, &ImportanceConfig::default());
        for e in g1.element_ids() {
            if e == g1.root() {
                continue;
            }
            let lhs = r2.score(e);
            let rhs = r1.score(e) * m as f64;
            prop_assert!(
                (lhs - rhs).abs() <= rhs.abs().max(1.0) * 0.05,
                "{e}: {lhs} vs {rhs}"
            );
        }
    }

    /// Scale invariance extends to the selection itself: the summary of the
    /// scaled database equals the summary of the original (footnote 8).
    #[test]
    fn selection_is_scale_invariant(
        a in 2u64..50, y in 1u64..8, b in 2u64..50, z in 1u64..8, m in 2u64..6,
    ) {
        let (g, s1, _) = build(a, y, b, z);
        let (_, s2, _) = build(a * m, y, b * m, z);
        let mut sum1 = Summarizer::new(&g, &s1);
        let mut sum2 = Summarizer::new(&g, &s2);
        for k in 1..=2 {
            prop_assert_eq!(
                sum1.select(k, Algorithm::Balance).unwrap(),
                sum2.select(k, Algorithm::Balance).unwrap()
            );
        }
    }

    /// Raising RC(parent → child) never increases the child's affinity to
    /// the parent's *other* children beyond 1, and the parent-to-child
    /// affinity is monotonically non-increasing in RC.
    #[test]
    fn affinity_monotone_in_rc(a in 2u64..60, y1 in 1u64..10, y2 in 1u64..10) {
        prop_assume!(y1 < y2);
        let (_g, s1, ids) = build(a, y1, 10, 1);
        let (_, s2, _) = build(a, y2, 10, 1);
        let m1 = PairMatrices::compute(&s1, &PathConfig::default());
        let m2 = PairMatrices::compute(&s2, &PathConfig::default());
        let [a_el, _, y_el, _, _] = ids;
        // More y's per a → each y is "further" from a.
        prop_assert!(m2.affinity(a_el, y_el) <= m1.affinity(a_el, y_el) + 1e-12);
        // The child's affinity toward its parent is unaffected (RC(y→a)=1).
        prop_assert!((m2.affinity(y_el, a_el) - m1.affinity(y_el, a_el)).abs() < 1e-12);
    }

    /// The Nodes path-length convention never yields a higher affinity than
    /// Edges (its denominator is one larger on every path).
    #[test]
    fn nodes_convention_is_dominated(a in 2u64..40, y in 1u64..8, b in 2u64..40, z in 1u64..8) {
        let (g, s, _) = build(a, y, b, z);
        let edges = PairMatrices::compute(&s, &PathConfig::default());
        let nodes = PairMatrices::compute(
            &s,
            &PathConfig { path_length: PathLength::Nodes, ..Default::default() },
        );
        for x in g.element_ids() {
            for t in g.element_ids() {
                if x != t {
                    prop_assert!(nodes.affinity(x, t) <= edges.affinity(x, t) + 1e-12);
                }
            }
        }
    }

    /// Dominance is irreflexive and the dominated set matches the pair set.
    #[test]
    fn dominance_is_consistent(a in 2u64..60, y in 1u64..10, b in 2u64..60, z in 1u64..10) {
        let (g, s, _) = build(a, y, b, z);
        let m = PairMatrices::compute(&s, &PathConfig::default());
        let ds = DominanceSet::compute(&g, &s, &m);
        for e in g.element_ids() {
            prop_assert!(!ds.dominates(e, e), "{e} dominates itself");
        }
        for (x, t) in ds.pairs() {
            prop_assert!(ds.is_dominated(t), "pair ({x},{t}) not in dominated set");
        }
        let kept = ds.non_dominated(&g);
        for &e in &kept {
            prop_assert!(!ds.is_dominated(e));
        }
    }

    /// Work-stealing parallel and serial matrix computation agree
    /// bit-for-bit on randomized value-linked graphs, for both kernels.
    /// `parallel_threshold: 0` plus an explicit thread count forces the
    /// parallel path even on single-core machines and small schemas.
    #[test]
    fn parallel_matrices_match_serial(
        secs in prop::collection::vec((1u64..40, 1usize..5), 3..6),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..8),
    ) {
        let (g, s) = linked_schema(&secs, &picks);
        for kernel in [PathKernel::Layered, PathKernel::Dfs] {
            let cfg = PathConfig { kernel, parallel_threshold: 0, ..Default::default() };
            let par = PairMatrices::compute_with_threads(&s, &cfg, 4);
            let ser = PairMatrices::compute_serial(&s, &cfg);
            for x in g.element_ids() {
                for t in g.element_ids() {
                    prop_assert_eq!(par.affinity(x, t).to_bits(), ser.affinity(x, t).to_bits());
                    prop_assert_eq!(par.coverage(x, t).to_bits(), ser.coverage(x, t).to_bits());
                }
            }
            prop_assert_eq!(par.truncated(), ser.truncated());
            prop_assert_eq!(par.floored(), ser.floored());
            prop_assert_eq!(par.expansions(), ser.expansions());
        }
    }

    /// Branch-and-bound pruning is exact: pruned and unpruned DFS
    /// enumeration produce bit-identical matrices on randomized
    /// value-linked graphs.
    #[test]
    fn pruned_dfs_matches_unpruned(
        secs in prop::collection::vec((1u64..40, 1usize..5), 3..6),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..8),
    ) {
        let (g, s) = linked_schema(&secs, &picks);
        let pruned_cfg = PathConfig { kernel: PathKernel::Dfs, prune: true, ..Default::default() };
        let unpruned_cfg = PathConfig { kernel: PathKernel::Dfs, prune: false, ..Default::default() };
        let pruned = PairMatrices::compute_serial(&s, &pruned_cfg);
        let unpruned = PairMatrices::compute_serial(&s, &unpruned_cfg);
        // Budget exhaustion stops the two searches at different points;
        // exactness is only claimed for complete explorations.
        prop_assume!(!unpruned.truncated());
        for x in g.element_ids() {
            for t in g.element_ids() {
                prop_assert_eq!(pruned.affinity(x, t).to_bits(), unpruned.affinity(x, t).to_bits());
                prop_assert_eq!(pruned.coverage(x, t).to_bits(), unpruned.coverage(x, t).to_bits());
            }
        }
        prop_assert!(pruned.expansions() <= unpruned.expansions());
    }

    /// The layered relaxation kernel agrees with exhaustive DFS enumeration
    /// on randomized value-linked graphs — the empirical counterpart of the
    /// walks-equal-paths argument (DESIGN.md §3.14).
    #[test]
    fn layered_kernel_matches_dfs(
        secs in prop::collection::vec((1u64..40, 1usize..5), 3..6),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..8),
    ) {
        let (g, s) = linked_schema(&secs, &picks);
        let layered = PairMatrices::compute_serial(
            &s,
            &PathConfig { kernel: PathKernel::Layered, ..Default::default() },
        );
        let dfs = PairMatrices::compute_serial(
            &s,
            &PathConfig { kernel: PathKernel::Dfs, ..Default::default() },
        );
        prop_assume!(!dfs.truncated() && !layered.truncated());
        for x in g.element_ids() {
            for t in g.element_ids() {
                let (la, da) = (layered.affinity(x, t), dfs.affinity(x, t));
                prop_assert!((la - da).abs() <= 1e-12 * da.max(1.0), "aff {x}→{t}: {la} vs {da}");
                let (lc, dc) = (layered.coverage(x, t), dfs.coverage(x, t));
                prop_assert!((lc - dc).abs() <= 1e-12 * dc.max(1.0), "cov {x}→{t}: {lc} vs {dc}");
            }
        }
    }

    /// A warm matrix refresh — `plan_delta` over a cardinality delta, then
    /// `PairMatrices::splice` of the recompute set into the old matrices —
    /// is bit-identical to a cold recompute on the new statistics,
    /// including the truncation/floor flags and expansion counts.
    #[test]
    fn incremental_splice_matches_cold(
        secs in prop::collection::vec((1u64..40, 1usize..5), 3..6),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..8),
        bump_idx in 0usize..8, bump in 2u64..5,
    ) {
        let (g, old) = linked_schema(&secs, &picks);
        // Perturb one section's cardinality; the graph is unchanged (same
        // labels, fans, and links), which is the warm-eligible regime.
        let mut secs2 = secs.clone();
        let i = bump_idx % secs2.len();
        secs2[i].0 *= bump;
        let (g2, new) = linked_schema(&secs2, &picks);
        prop_assert_eq!(&g, &g2);
        let delta = SchemaDelta::compute(&g, &old, &g2, &new);
        prop_assert!(!delta.is_empty());
        let config = PathConfig::default();
        let old_m = PairMatrices::compute_serial(&old, &config);
        let plan = plan_delta(&delta, &g, &old, &g2, &new, &old_m, &config, 1.0).unwrap();
        // A real delta either re-explores rows or rescales coverage.
        prop_assert!(plan.rows >= 1 || plan.rescaled);
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute_serial(&new, &config);
        prop_assert!(warm.bitwise_eq(&cold));
    }

    /// Incrementally refreshing a cached multi-level stack after a delta —
    /// patching only the rows the delta plan marked — yields exactly the
    /// stack a from-scratch `build_multi_level` produces on the new
    /// matrices, whether the patch path fires or falls back.
    #[test]
    fn incremental_multilevel_matches_cold(
        secs in prop::collection::vec((2u64..40, 2usize..5), 3..6),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..8),
        bump_idx in 0usize..8, bump in 2u64..5,
    ) {
        let (g, old) = linked_schema(&secs, &picks);
        let mut secs2 = secs.clone();
        let i = bump_idx % secs2.len();
        secs2[i].0 *= bump;
        let (_, new) = linked_schema(&secs2, &picks);
        let config = PathConfig::default();
        let delta = SchemaDelta::compute(&g, &old, &g, &new);
        let old_m = PairMatrices::compute_serial(&old, &config);
        let plan = plan_delta(&delta, &g, &old, &g, &new, &old_m, &config, 1.0).unwrap();
        let new_m = old_m.splice(&new, &config, &plan.recompute).unwrap();
        // Rows whose *values* may differ from the cached stack's matrices:
        // under a cardinality rescale every coverage row was rewritten.
        let row_changed = if plan.rescaled {
            vec![true; g.len()]
        } else {
            plan.recompute.clone()
        };
        let old_sel = Summarizer::new(&g, &old).select(4, Algorithm::Balance).unwrap();
        let new_sel = Summarizer::new(&g, &new).select(4, Algorithm::Balance).unwrap();
        let previous = build_multi_level(&g, &old_m, &old_sel, &[2]).unwrap();
        let (warm, _reused) =
            refresh_multi_level(&g, &new_m, &new_sel, &[2], &previous, &row_changed).unwrap();
        let cold = build_multi_level(&g, &new_m, &new_sel, &[2]).unwrap();
        prop_assert_eq!(warm, cold);
    }

    /// Warm refresh across randomized *additive structural* deltas —
    /// element-only, link-only, and mixed growth, depending on which extra
    /// inputs survive generation — is bit-identical to a cold recompute:
    /// the grown plan marks the appended rows plus the readers of every
    /// touched old record, and the resizing splice carries the rest.
    #[test]
    fn structural_growth_splice_matches_cold(
        secs in prop::collection::vec((1u64..40, 1usize..5), 3..6),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..8),
        extra_leaves in prop::collection::vec((0usize..8, 1u64..30), 0..3),
        extra_sec in (0u64..30, 1usize..4),
        extra_picks in prop::collection::vec((0usize..80, 0usize..80), 0..4),
    ) {
        let (g, old) = linked_schema(&secs, &picks);
        let (g2, cards2, links2) =
            grown_linked_schema(
                &secs,
                &picks,
                &extra_leaves,
                // Card 0 encodes "no extra section" (the shimmed proptest
                // has no Option strategy).
                (extra_sec.0 > 0).then_some(extra_sec),
                &extra_picks,
            );
        let new = SchemaStats::from_link_counts(&g2, &cards2, &links2).unwrap();
        let delta = SchemaDelta::compute(&g, &old, &g2, &new);
        // All growth inputs can degenerate (duplicate/self link picks):
        // skip the no-op draws, everything else must classify additive.
        prop_assume!(!delta.is_empty());
        prop_assert_eq!(delta.class, DeltaClass::AdditiveStructural);
        // Pin the kernel: growth may cross the auto-resolution thresholds,
        // which is a (tested) cold fallback, not the regime under test.
        let config = PathConfig { kernel: PathKernel::Layered, ..Default::default() };
        let old_m = PairMatrices::compute_serial(&old, &config);
        let plan = plan_delta(&delta, &g, &old, &g2, &new, &old_m, &config, 1.0)
            .expect("additive growth must plan warm");
        prop_assert_eq!(plan.grown, g2.len() - g.len());
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute_serial(&new, &config);
        prop_assert!(warm.bitwise_eq(&cold));
    }

    /// Dormant growth — DDL before data. Appended elements whose links
    /// all carry zero counts are invisible to every path kernel, so each
    /// old row replays bit-for-bit over the grown statistics: the plan
    /// recomputes nothing but the appended rows themselves and the
    /// splice is still bit-identical to a cold recompute.
    #[test]
    fn dormant_growth_recomputes_only_appended_rows(
        secs in prop::collection::vec((1u64..40, 1usize..5), 3..6),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..8),
        extra_leaves in prop::collection::vec((0usize..8, 1u64..30), 1..3),
        extra_sec in (0u64..30, 1usize..4),
    ) {
        let (g, old) = linked_schema(&secs, &picks);
        let (g2, cards2, mut links2) = grown_linked_schema(
            &secs,
            &picks,
            &extra_leaves,
            // Card 0 encodes "no extra section" (the shimmed proptest
            // has no Option strategy).
            (extra_sec.0 > 0).then_some(extra_sec),
            &[],
        );
        let n_old = g.len();
        prop_assert!(g2.len() > n_old);
        // Declare the growth without instances: every link incident to
        // an appended element drops to count 0.
        for l in links2.iter_mut() {
            if l.from.index() >= n_old || l.to.index() >= n_old {
                l.count = 0;
            }
        }
        let new = SchemaStats::from_link_counts(&g2, &cards2, &links2).unwrap();
        let delta = SchemaDelta::compute(&g, &old, &g2, &new);
        prop_assert_eq!(delta.class, DeltaClass::AdditiveStructural);
        let config = PathConfig { kernel: PathKernel::Layered, ..Default::default() };
        let old_m = PairMatrices::compute_serial(&old, &config);
        let plan = plan_delta(&delta, &g, &old, &g2, &new, &old_m, &config, 1.0)
            .expect("dormant growth must plan warm");
        prop_assert_eq!(plan.grown, g2.len() - n_old);
        prop_assert_eq!(plan.touched, 0);
        prop_assert_eq!(plan.rows, plan.grown);
        let warm = old_m.splice(&new, &config, &plan.recompute).unwrap();
        let cold = PairMatrices::compute_serial(&new, &config);
        prop_assert!(warm.bitwise_eq(&cold));
    }

    /// `SchemaStats::grow_from` appends CSR rows and edge lanes without
    /// rebuilding untouched rows, bit-identical to a from-scratch
    /// `from_link_counts` over the grown declaration.
    #[test]
    fn structural_grow_from_matches_cold_stats(
        secs in prop::collection::vec((1u64..40, 1usize..5), 3..6),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..8),
        extra_leaves in prop::collection::vec((0usize..8, 1u64..30), 0..3),
        extra_sec in (0u64..30, 1usize..4),
        extra_picks in prop::collection::vec((0usize..80, 0usize..80), 0..4),
    ) {
        let (_, old) = linked_schema(&secs, &picks);
        let (g2, cards2, links2) =
            grown_linked_schema(
                &secs,
                &picks,
                &extra_leaves,
                // Card 0 encodes "no extra section" (the shimmed proptest
                // has no Option strategy).
                (extra_sec.0 > 0).then_some(extra_sec),
                &extra_picks,
            );
        let cold = SchemaStats::from_link_counts(&g2, &cards2, &links2).unwrap();
        let warm = old.grow_from(&g2, &cards2, &links2).unwrap();
        prop_assert_eq!(warm.len(), cold.len());
        prop_assert_eq!(warm.total_card().to_bits(), cold.total_card().to_bits());
        for e in g2.element_ids() {
            prop_assert_eq!(warm.card(e).to_bits(), cold.card(e).to_bits(), "card {}", e);
            prop_assert!(warm.exploration_bits_eq(&cold, e), "exploration bits {}", e);
            prop_assert!(
                warm.edge_rcs(e)
                    .iter()
                    .zip(cold.edge_rcs(e))
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "rc lane {}", e
            );
        }
    }

    /// The reverse direction — dropping the grown elements — classifies
    /// destructive and refuses to plan: the cold fallback is the only path.
    #[test]
    fn destructive_delta_classifies_and_falls_back(
        secs in prop::collection::vec((1u64..40, 1usize..5), 3..6),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..8),
        extra_leaves in prop::collection::vec((0usize..8, 1u64..30), 1..3),
    ) {
        let (g, base) = linked_schema(&secs, &picks);
        let (g2, cards2, links2) =
            grown_linked_schema(&secs, &picks, &extra_leaves, None, &[]);
        let grown = SchemaStats::from_link_counts(&g2, &cards2, &links2).unwrap();
        let delta = SchemaDelta::compute(&g2, &grown, &g, &base);
        prop_assert_eq!(delta.class, DeltaClass::Destructive);
        let config = PathConfig { kernel: PathKernel::Layered, ..Default::default() };
        let old_m = PairMatrices::compute_serial(&grown, &config);
        prop_assert!(
            plan_delta(&delta, &g2, &grown, &g, &base, &old_m, &config, 1.0).is_none()
        );
    }

    /// The multi-source batched layered kernel is bit-identical to the
    /// single-source driver at every batch size — one lane, partial last
    /// batches (2, 7), a full 64-lane batch, and "all sources in one
    /// batch" — including the per-source expansion accounting.
    #[test]
    fn batched_layered_matches_single_source(
        secs in prop::collection::vec((1u64..40, 1usize..5), 3..6),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..8),
    ) {
        let (g, s) = linked_schema(&secs, &picks);
        let cfg = PathConfig {
            kernel: PathKernel::Layered,
            parallel_threshold: 0,
            ..Default::default()
        };
        let single = PairMatrices::compute_with_threads_batched(&s, &cfg, 4, 1);
        for batch in [2usize, 7, 64, s.len().max(1)] {
            let batched = PairMatrices::compute_with_threads_batched(&s, &cfg, 4, batch);
            for x in g.element_ids() {
                for t in g.element_ids() {
                    prop_assert_eq!(
                        batched.affinity(x, t).to_bits(),
                        single.affinity(x, t).to_bits(),
                        "aff {}→{} at batch {}", x, t, batch
                    );
                    prop_assert_eq!(
                        batched.coverage(x, t).to_bits(),
                        single.coverage(x, t).to_bits(),
                        "cov {}→{} at batch {}", x, t, batch
                    );
                }
            }
            prop_assert_eq!(batched.truncated(), single.truncated());
            prop_assert_eq!(batched.floored(), single.floored());
            prop_assert_eq!(batched.expansions(), single.expansions());
        }
    }

    /// The warm path's seeded importance restart obeys its tolerance
    /// contract on randomized statistic perturbations: mass conserved to
    /// rounding, never more iterations than cold, and the seeded stop
    /// lands inside the same stopping-rule resolution band as the cold
    /// stop. Both runs exit when the per-step change drops below ε, which
    /// leaves them a *resolution* (not ε) away from the true fixed point —
    /// so the contract bounds the seeded answer's distance from a tightly
    /// converged reference by the cold answer's own distance, within a
    /// small factor (DESIGN.md §3.19).
    #[test]
    fn seeded_fixpoint_conserves_mass_and_stays_close(
        a in 2u64..50, y in 1u64..8, b in 2u64..50, z in 1u64..8,
        ma in 1u64..6, mb in 1u64..6,
    ) {
        let (g, s_old, _) = build(a, y, b, z);
        // Non-uniform data growth: the two sections scale by different
        // factors, which is exactly the regime where a plain mass rescale
        // of the old vector is a poor seed and the cardinality rebase
        // matters (DESIGN.md §3.19).
        let (_, s_new, _) = build(a * ma, y, b * mb, z);
        let config = ImportanceConfig::default();
        let previous = compute_importance(&g, &s_old, &config);
        let cold = compute_importance(&g, &s_new, &config);
        let seeded = compute_importance_rebased(&g, &s_new, previous.scores(), &s_old, &config);
        prop_assert!(cold.converged && seeded.converged);
        // On tiny fast-mixing graphs an Aitken cycle can overshoot cold by
        // an iteration or two; the restart must never be materially worse.
        prop_assert!(
            seeded.iterations <= cold.iterations + 4,
            "seeded {} vs cold {}", seeded.iterations, cold.iterations
        );
        let mass: f64 = seeded.scores().iter().sum();
        prop_assert!(
            (mass - s_new.total_card()).abs() <= 1e-9 * s_new.total_card(),
            "mass {} vs total {}", mass, s_new.total_card()
        );
        // Tightly converged reference: the best answer the iteration can
        // produce, far inside both runs' stopping balls.
        let tight = compute_importance(
            &g,
            &s_new,
            &ImportanceConfig { epsilon: 1e-10, max_iterations: 2_000_000, ..config },
        );
        prop_assert!(tight.converged);
        let rel_dev = |r: &[f64]| {
            tight
                .scores()
                .iter()
                .zip(r)
                .map(|(t, v)| ((v - t) / t.abs().max(1e-12)).abs())
                .fold(0.0f64, f64::max)
        };
        let cold_dev = rel_dev(cold.scores());
        let seeded_dev = rel_dev(seeded.scores());
        prop_assert!(
            seeded_dev <= 2.0 * cold_dev + 10.0 * config.epsilon,
            "seeded {seeded_dev:e} from fixpoint vs cold {cold_dev:e}"
        );
    }

    /// The auto-switch heuristic (default kernel) always resolves to one of
    /// the two explicit kernels and reproduces that kernel bit-for-bit on
    /// randomized value-linked graphs.
    #[test]
    fn auto_kernel_matches_its_resolution(
        secs in prop::collection::vec((1u64..40, 1usize..5), 3..6),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..8),
    ) {
        let (g, s) = linked_schema(&secs, &picks);
        let auto_cfg = PathConfig::default();
        prop_assert_eq!(auto_cfg.kernel, PathKernel::Auto);
        let resolved = auto_cfg.effective_kernel(&s);
        prop_assert!(resolved == PathKernel::Layered || resolved == PathKernel::Dfs);
        let auto = PairMatrices::compute_serial(&s, &auto_cfg);
        let explicit = PairMatrices::compute_serial(
            &s,
            &PathConfig { kernel: resolved, ..Default::default() },
        );
        for x in g.element_ids() {
            for t in g.element_ids() {
                prop_assert_eq!(auto.affinity(x, t).to_bits(), explicit.affinity(x, t).to_bits());
                prop_assert_eq!(auto.coverage(x, t).to_bits(), explicit.coverage(x, t).to_bits());
            }
        }
        prop_assert_eq!(auto.expansions(), explicit.expansions());
    }
}
