//! XMark: the XML auction benchmark (Schmidt et al., used as the paper's
//! running example and first evaluation dataset).
//!
//! The schema graph is derived from the XMark DTD. Because structural links
//! form a tree, the `item` subtree is instantiated once under each of the
//! six region elements, exactly as a DTD-to-schema-graph conversion
//! produces (the paper's 327-element count likewise reflects per-context
//! duplication; ours lands at a comparable size — the small difference
//! comes from where the DTD's recursive `parlist`/`text` content models are
//! cut off, see EXPERIMENTS.md).
//!
//! Cardinalities follow `xmlgen`'s proportions at a configurable scale
//! factor: 25 500 persons, 21 750 items split unevenly across regions,
//! 12 000 open and 9 750 closed auctions, ~4 bidders per open auction, and
//! heavy markup (`text`/`keyword`/`bold`/`emph`) content — the skew that
//! makes purely data-driven summarization fail (Figure 9).

use crate::profile::ProfileBuilder;
use crate::Dataset;
use schema_summary_core::{ElementId, SchemaGraph, SchemaStats, SchemaType};
use schema_summary_discovery::QueryIntention;
use std::collections::BTreeSet;

/// The six XMark regions with their share of the item population.
pub const REGIONS: [(&str, f64); 6] = [
    ("africa", 0.0253),
    ("asia", 0.10),
    ("australia", 0.10),
    ("europe", 0.30),
    ("namerica", 0.4298),
    ("samerica", 0.0449),
];

/// Total items at scale factor 1 (xmlgen).
const ITEMS_SF1: f64 = 21_750.0;
/// Persons at scale factor 1 (xmlgen).
const PERSONS_SF1: f64 = 25_500.0;
/// Open auctions at scale factor 1 (xmlgen).
const OPEN_AUCTIONS_SF1: f64 = 12_000.0;
/// Closed auctions at scale factor 1 (xmlgen).
const CLOSED_AUCTIONS_SF1: f64 = 9_750.0;
/// Categories at scale factor 1 (xmlgen).
const CATEGORIES_SF1: f64 = 1_000.0;

/// Element handles for query construction and tests.
#[derive(Debug, Clone)]
pub struct XmarkHandles {
    /// `site/people/person`.
    pub person: ElementId,
    /// `person/@id`.
    pub person_id: ElementId,
    /// `person/name`.
    pub person_name: ElementId,
    /// `person/emailaddress`.
    pub emailaddress: ElementId,
    /// `person/phone`.
    pub phone: ElementId,
    /// `person/homepage`.
    pub homepage: ElementId,
    /// `person/profile`.
    pub profile: ElementId,
    /// `profile/@income`.
    pub income: ElementId,
    /// `profile/interest`.
    pub interest: ElementId,
    /// `interest/@category`.
    pub interest_category: ElementId,
    /// `profile/education`.
    pub education: ElementId,
    /// `person/watches/watch`.
    pub watch: ElementId,
    /// `site/open_auctions/open_auction`.
    pub open_auction: ElementId,
    /// `open_auction/initial`.
    pub initial: ElementId,
    /// `open_auction/reserve`.
    pub reserve: ElementId,
    /// `open_auction/current`.
    pub current: ElementId,
    /// `open_auction/bidder`.
    pub bidder: ElementId,
    /// `bidder/increase`.
    pub increase: ElementId,
    /// `open_auction/seller`.
    pub seller_open: ElementId,
    /// `open_auction/itemref`.
    pub itemref_open: ElementId,
    /// `open_auction/interval`.
    pub interval: ElementId,
    /// `interval/end`.
    pub interval_end: ElementId,
    /// `site/closed_auctions/closed_auction`.
    pub closed_auction: ElementId,
    /// `closed_auction/price`.
    pub price: ElementId,
    /// `closed_auction/buyer`.
    pub buyer: ElementId,
    /// `closed_auction/seller`.
    pub seller_closed: ElementId,
    /// `site/categories/category`.
    pub category: ElementId,
    /// `category/name`.
    pub category_name: ElementId,
    /// Per-region `item` elements, in [`REGIONS`] order.
    pub items: Vec<ElementId>,
    /// Per-region `item/name`.
    pub item_names: Vec<ElementId>,
    /// Per-region `item/location`.
    pub item_locations: Vec<ElementId>,
    /// Per-region `item/quantity`.
    pub item_quantities: Vec<ElementId>,
    /// Per-region `item/description`.
    pub item_descriptions: Vec<ElementId>,
}

/// Build the XMark schema and its cardinality profile at `scale`
/// (the paper uses scale factor 1).
pub fn schema(scale: f64) -> (SchemaGraph, SchemaStats, XmarkHandles) {
    let mut p = ProfileBuilder::new("site");
    let site = p.root();

    // -- categories -------------------------------------------------------
    let categories = p.child(site, "categories", SchemaType::rcd(), 1.0);
    let category = p.child(
        categories,
        "category",
        SchemaType::set_of_rcd(),
        CATEGORIES_SF1 * scale,
    );
    let category_id = p.child(category, "@id", SchemaType::simple_id(), 1.0);
    let category_name = p.child(category, "name", SchemaType::simple_str(), 1.0);
    description(&mut p, category, 1.0);
    let _ = category_id;

    // -- catgraph ----------------------------------------------------------
    let catgraph = p.child(site, "catgraph", SchemaType::rcd(), 1.0);
    let edge = p.child(catgraph, "edge", SchemaType::set_of_rcd(), CATEGORIES_SF1 * scale);
    p.child(edge, "@from", SchemaType::simple_idref(), 1.0);
    p.child(edge, "@to", SchemaType::simple_idref(), 1.0);
    // @from and @to both reference categories: two references per edge,
    // consolidated onto one value link (n-ary links are decomposed and
    // parallel RCs aggregate, Section 2).
    p.vlink(edge, category, 2.0);

    // -- regions ------------------------------------------------------------
    let regions = p.child(site, "regions", SchemaType::rcd(), 1.0);
    let mut items = Vec::new();
    let mut item_names = Vec::new();
    let mut item_locations = Vec::new();
    let mut item_quantities = Vec::new();
    let mut item_descriptions = Vec::new();
    for &(name, share) in REGIONS.iter() {
        let region = p.child(regions, name, SchemaType::rcd(), 1.0);
        let item = p.child(
            region,
            "item",
            SchemaType::set_of_rcd(),
            ITEMS_SF1 * scale * share,
        );
        p.child(item, "@id", SchemaType::simple_id(), 1.0);
        p.child(item, "@featured", SchemaType::simple_str(), 0.1);
        let location = p.child(item, "location", SchemaType::simple_str(), 1.0);
        let quantity = p.child(item, "quantity", SchemaType::simple_int(), 1.0);
        let iname = p.child(item, "name", SchemaType::simple_str(), 1.0);
        let payment = p.child(item, "payment", SchemaType::simple_str(), 1.0);
        let desc = description(&mut p, item, 1.0);
        let shipping = p.child(item, "shipping", SchemaType::simple_str(), 1.0);
        let incategory = p.child(item, "incategory", SchemaType::set_of_rcd(), 1.8);
        p.child(incategory, "@category", SchemaType::simple_idref(), 1.0);
        p.vlink(incategory, category, 1.0);
        let mailbox = p.child(item, "mailbox", SchemaType::rcd(), 1.0);
        let mail = p.child(mailbox, "mail", SchemaType::set_of_rcd(), 1.0);
        p.child(mail, "from", SchemaType::simple_str(), 1.0);
        p.child(mail, "to", SchemaType::simple_str(), 1.0);
        p.child(mail, "date", SchemaType::simple_str(), 1.0);
        text(&mut p, mail, 1.0);
        let _ = (payment, shipping);
        items.push(item);
        item_names.push(iname);
        item_locations.push(location);
        item_quantities.push(quantity);
        item_descriptions.push(desc);
    }

    // -- people --------------------------------------------------------------
    let people = p.child(site, "people", SchemaType::rcd(), 1.0);
    let person = p.child(people, "person", SchemaType::set_of_rcd(), PERSONS_SF1 * scale);
    let person_id = p.child(person, "@id", SchemaType::simple_id(), 1.0);
    let person_name = p.child(person, "name", SchemaType::simple_str(), 1.0);
    let emailaddress = p.child(person, "emailaddress", SchemaType::simple_str(), 0.8);
    let phone = p.child(person, "phone", SchemaType::simple_str(), 0.5);
    let address = p.child(person, "address", SchemaType::rcd(), 0.6);
    p.child(address, "street", SchemaType::simple_str(), 1.0);
    p.child(address, "city", SchemaType::simple_str(), 1.0);
    p.child(address, "country", SchemaType::simple_str(), 1.0);
    p.child(address, "province", SchemaType::simple_str(), 0.25);
    p.child(address, "zipcode", SchemaType::simple_str(), 1.0);
    let homepage = p.child(person, "homepage", SchemaType::simple_str(), 0.5);
    p.child(person, "creditcard", SchemaType::simple_str(), 0.5);
    let profile = p.child(person, "profile", SchemaType::rcd(), 0.6);
    let income = p.child(profile, "@income", SchemaType::simple_str(), 1.0);
    let interest = p.child(profile, "interest", SchemaType::set_of_rcd(), 2.0);
    let interest_category = p.child(interest, "@category", SchemaType::simple_idref(), 1.0);
    p.vlink(interest, category, 1.0);
    let education = p.child(profile, "education", SchemaType::simple_str(), 0.4);
    p.child(profile, "gender", SchemaType::simple_str(), 0.5);
    p.child(profile, "business", SchemaType::simple_str(), 1.0);
    p.child(profile, "age", SchemaType::simple_int(), 0.4);
    let watches = p.child(person, "watches", SchemaType::rcd(), 0.5);
    let watch = p.child(watches, "watch", SchemaType::set_of_rcd(), 3.0);
    p.child(watch, "@open_auction", SchemaType::simple_idref(), 1.0);

    // -- open auctions ---------------------------------------------------------
    let open_auctions = p.child(site, "open_auctions", SchemaType::rcd(), 1.0);
    let open_auction = p.child(
        open_auctions,
        "open_auction",
        SchemaType::set_of_rcd(),
        OPEN_AUCTIONS_SF1 * scale,
    );
    p.child(open_auction, "@id", SchemaType::simple_id(), 1.0);
    let initial = p.child(open_auction, "initial", SchemaType::simple_float(), 1.0);
    let reserve = p.child(open_auction, "reserve", SchemaType::simple_float(), 0.5);
    let bidder = p.child(open_auction, "bidder", SchemaType::set_of_rcd(), 4.0);
    p.child(bidder, "date", SchemaType::simple_str(), 1.0);
    p.child(bidder, "time", SchemaType::simple_str(), 1.0);
    let increase = p.child(bidder, "increase", SchemaType::simple_float(), 1.0);
    p.child(bidder, "@person", SchemaType::simple_idref(), 1.0);
    p.vlink(bidder, person, 1.0);
    let current = p.child(open_auction, "current", SchemaType::simple_float(), 1.0);
    p.child(open_auction, "privacy", SchemaType::simple_str(), 0.3);
    let itemref_open = p.child(open_auction, "itemref", SchemaType::rcd(), 1.0);
    p.child(itemref_open, "@item", SchemaType::simple_idref(), 1.0);
    for (i, &(_, share)) in REGIONS.iter().enumerate() {
        p.vlink(itemref_open, items[i], share);
    }
    let seller_open = p.child(open_auction, "seller", SchemaType::rcd(), 1.0);
    p.child(seller_open, "@person", SchemaType::simple_idref(), 1.0);
    p.vlink(seller_open, person, 1.0);
    annotation(&mut p, open_auction, 0.6, person);
    p.child(open_auction, "quantity", SchemaType::simple_int(), 1.0);
    p.child(open_auction, "type", SchemaType::simple_str(), 1.0);
    let interval = p.child(open_auction, "interval", SchemaType::rcd(), 1.0);
    p.child(interval, "start", SchemaType::simple_str(), 1.0);
    let interval_end = p.child(interval, "end", SchemaType::simple_str(), 1.0);
    p.vlink(watch, open_auction, 1.0);

    // -- closed auctions --------------------------------------------------------
    let closed_auctions = p.child(site, "closed_auctions", SchemaType::rcd(), 1.0);
    let closed_auction = p.child(
        closed_auctions,
        "closed_auction",
        SchemaType::set_of_rcd(),
        CLOSED_AUCTIONS_SF1 * scale,
    );
    let seller_closed = p.child(closed_auction, "seller", SchemaType::rcd(), 1.0);
    p.child(seller_closed, "@person", SchemaType::simple_idref(), 1.0);
    p.vlink(seller_closed, person, 1.0);
    let buyer = p.child(closed_auction, "buyer", SchemaType::rcd(), 1.0);
    p.child(buyer, "@person", SchemaType::simple_idref(), 1.0);
    p.vlink(buyer, person, 1.0);
    let itemref_closed = p.child(closed_auction, "itemref", SchemaType::rcd(), 1.0);
    p.child(itemref_closed, "@item", SchemaType::simple_idref(), 1.0);
    for (i, &(_, share)) in REGIONS.iter().enumerate() {
        p.vlink(itemref_closed, items[i], share);
    }
    let price = p.child(closed_auction, "price", SchemaType::simple_float(), 1.0);
    p.child(closed_auction, "date", SchemaType::simple_str(), 1.0);
    p.child(closed_auction, "quantity", SchemaType::simple_int(), 1.0);
    p.child(closed_auction, "type", SchemaType::simple_str(), 1.0);
    annotation(&mut p, closed_auction, 0.6, person);

    let (graph, stats) = p.finish();
    let handles = XmarkHandles {
        person,
        person_id,
        person_name,
        emailaddress,
        phone,
        homepage,
        profile,
        income,
        interest,
        interest_category,
        education,
        watch,
        open_auction,
        initial,
        reserve,
        current,
        bidder,
        increase,
        seller_open,
        itemref_open,
        interval,
        interval_end,
        closed_auction,
        price,
        buyer,
        seller_closed,
        category,
        category_name,
        items,
        item_names,
        item_locations,
        item_quantities,
        item_descriptions,
    };
    (graph, stats, handles)
}

/// The DTD's `text` content model (`(#PCDATA | bold | keyword | emph)*`),
/// cut at one level of markup nesting.
fn text(p: &mut ProfileBuilder, parent: ElementId, per_parent: f64) -> ElementId {
    let t = p.child(parent, "text", SchemaType::set_of_rcd(), per_parent);
    p.child(t, "bold", SchemaType::simple_str(), 0.8);
    p.child(t, "keyword", SchemaType::simple_str(), 1.2);
    p.child(t, "emph", SchemaType::simple_str(), 0.7);
    t
}

/// The DTD's `description` model (`(text | parlist)`), with `parlist`
/// recursion cut after one `listitem` level.
fn description(p: &mut ProfileBuilder, parent: ElementId, per_parent: f64) -> ElementId {
    let d = p.child(parent, "description", SchemaType::choice(), per_parent);
    text(p, d, 0.7);
    let parlist = p.child(d, "parlist", SchemaType::rcd(), 0.3);
    let listitem = p.child(parlist, "listitem", SchemaType::set_of_rcd(), 2.0);
    text(p, listitem, 1.0);
    d
}

/// The DTD's `annotation` model (`(author, description?, happiness)`).
fn annotation(p: &mut ProfileBuilder, parent: ElementId, per_parent: f64, person: ElementId) {
    let a = p.child(parent, "annotation", SchemaType::rcd(), per_parent);
    let author = p.child(a, "author", SchemaType::rcd(), 1.0);
    p.child(author, "@person", SchemaType::simple_idref(), 1.0);
    p.vlink(author, person, 1.0);
    description(p, a, 1.0);
    p.child(a, "happiness", SchemaType::simple_int(), 1.0);
}

/// The 20-query XMark workload expressed as query intentions. Queries that
/// target the per-region `item` subtrees use disjunctive groups ("any
/// region's item"), matching a user who does not care which region an item
/// lives in.
pub fn queries(handles: &XmarkHandles) -> Vec<QueryIntention> {
    let h = handles;
    let one = |e: ElementId| BTreeSet::from([e]);
    let group = |v: &[ElementId]| v.iter().copied().collect::<BTreeSet<_>>();
    let q = |name: &str, targets: Vec<BTreeSet<ElementId>>| QueryIntention {
        name: name.to_string(),
        targets,
    };
    vec![
        // Q1: name of the person with a given id.
        q("xmark-q01", vec![one(h.person), one(h.person_id), one(h.person_name)]),
        // Q2: initial increases of all open auctions.
        q("xmark-q02", vec![one(h.open_auction), one(h.bidder), one(h.increase)]),
        // Q3: auctions whose first bid doubled the initial price.
        q(
            "xmark-q03",
            vec![one(h.open_auction), one(h.bidder), one(h.increase), one(h.initial)],
        ),
        // Q4: bidder ordering within an auction.
        q("xmark-q04", vec![one(h.open_auction), one(h.bidder), one(h.person)]),
        // Q5: sold items with price over threshold.
        q("xmark-q05", vec![one(h.closed_auction), one(h.price)]),
        // Q6: items per region.
        q("xmark-q06", vec![group(&h.items)]),
        // Q7: amount of prose (descriptions, mails, annotations).
        q(
            "xmark-q07",
            vec![group(&h.item_descriptions), one(h.closed_auction)],
        ),
        // Q8: purchases per buyer.
        q("xmark-q08", vec![one(h.person), one(h.buyer), one(h.closed_auction)]),
        // Q9: purchased items per buyer.
        q(
            "xmark-q09",
            vec![one(h.person), one(h.buyer), one(h.closed_auction), group(&h.items)],
        ),
        // Q10: person profiles grouped by interest category.
        q(
            "xmark-q10",
            vec![
                one(h.person),
                one(h.interest),
                one(h.interest_category),
                one(h.education),
                one(h.income),
            ],
        ),
        // Q11: auctions a person can afford (income vs initial).
        q(
            "xmark-q11",
            vec![one(h.person), one(h.income), one(h.open_auction), one(h.initial)],
        ),
        // Q12: as Q11 with reserve prices.
        q(
            "xmark-q12",
            vec![one(h.person), one(h.income), one(h.open_auction), one(h.reserve)],
        ),
        // Q13: item names and descriptions in one region.
        q(
            "xmark-q13",
            vec![one(h.items[4]), one(h.item_names[4]), one(h.item_descriptions[4])],
        ),
        // Q14: items whose description mentions a keyword.
        q(
            "xmark-q14",
            vec![group(&h.items), group(&h.item_names), group(&h.item_descriptions)],
        ),
        // Q15: deeply nested annotation prose in closed auctions.
        q(
            "xmark-q15",
            vec![one(h.closed_auction), one(h.seller_closed), one(h.price)],
        ),
        // Q16: sellers of auctions with deep annotations.
        q(
            "xmark-q16",
            vec![one(h.closed_auction), one(h.seller_closed), one(h.person), one(h.person_id)],
        ),
        // Q17: persons without homepages.
        q("xmark-q17", vec![one(h.person), one(h.person_name), one(h.homepage)]),
        // Q18: user-defined conversion of reserve prices.
        q("xmark-q18", vec![one(h.open_auction), one(h.reserve)]),
        // Q19: item listing with location ordering.
        q(
            "xmark-q19",
            vec![group(&h.items), group(&h.item_locations), group(&h.item_names), group(&h.item_quantities)],
        ),
        // Q20: income distribution of people.
        q("xmark-q20", vec![one(h.person), one(h.profile), one(h.income)]),
    ]
}

/// The full XMark dataset at `scale`.
pub fn dataset(scale: f64) -> Dataset {
    let (graph, stats, handles) = schema(scale);
    let queries = queries(&handles);
    Dataset {
        name: "XMark",
        graph,
        stats,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_size_is_paper_scale() {
        let (g, _, _) = schema(1.0);
        // The paper reports 327 elements; the exact number depends on where
        // the DTD's recursive content models are cut. We require the same
        // order of size.
        assert!(
            (260..=360).contains(&g.len()),
            "XMark schema has {} elements",
            g.len()
        );
    }

    #[test]
    fn data_volume_matches_table1() {
        let (_, s, _) = schema(1.0);
        // Table 1: 1,573k data elements at SF 1. Accept ±15%.
        let total = s.total_card();
        assert!(
            (1_340_000.0..=1_810_000.0).contains(&total),
            "total data elements = {total}"
        );
    }

    #[test]
    fn scale_factor_scales_volume() {
        let (_, s1, _) = schema(1.0);
        let (_, s01, _) = schema(0.1);
        let ratio = s1.total_card() / s01.total_card();
        assert!((8.0..=12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn workload_shape_matches_table1() {
        let d = dataset(1.0);
        assert_eq!(d.queries.len(), 20);
        let avg = d.avg_intention_size();
        // Table 1: 3.65 average intention size.
        assert!((3.0..=4.3).contains(&avg), "avg intention size {avg}");
    }

    #[test]
    fn key_relative_cardinalities() {
        let (_, s, h) = schema(1.0);
        // ~4 bidders per open auction, each bidder tied to one auction.
        assert!((s.rc(h.open_auction, h.bidder) - 4.0).abs() < 0.05);
        assert!((s.rc(h.bidder, h.open_auction) - 1.0).abs() < 1e-9);
        // Each bidder references one person; persons receive many bids.
        assert!((s.rc(h.bidder, h.person) - 1.0).abs() < 1e-9);
        assert!(s.rc(h.person, h.bidder) > 1.0);
    }

    #[test]
    fn items_split_across_regions() {
        let (_, s, h) = schema(1.0);
        let total: f64 = h.items.iter().map(|&i| s.card(i)).sum();
        assert!((total - 21_750.0).abs() < 10.0, "items total {total}");
        // namerica is the largest region.
        let namerica = s.card(h.items[4]);
        for (i, &item) in h.items.iter().enumerate() {
            if i != 4 {
                assert!(s.card(item) <= namerica);
            }
        }
    }

    #[test]
    fn itemref_links_resolve_by_share() {
        let (_, s, h) = schema(1.0);
        // Each open-auction itemref references exactly one item overall.
        let total: f64 = h.items.iter().map(|&i| s.rc(h.itemref_open, i)).sum();
        assert!((total - 1.0).abs() < 0.01, "itemref out-RC sums to {total}");
    }

    #[test]
    fn queries_are_well_formed() {
        let (g, _, h) = schema(1.0);
        for q in queries(&h) {
            assert!(!q.targets.is_empty(), "{}", q.name);
            for group in &q.targets {
                for &e in group {
                    g.check(e).unwrap();
                }
            }
        }
    }

    #[test]
    fn markup_dominates_raw_cardinality() {
        // The Figure 9 precondition: among the highest-cardinality elements
        // there must be markup/leaf noise, so data-only summaries go wrong.
        let (g, s, h) = schema(1.0);
        let mut by_card: Vec<ElementId> = g.element_ids().collect();
        by_card.sort_by(|&a, &b| s.card(b).partial_cmp(&s.card(a)).unwrap());
        let top10: Vec<&str> = by_card[..10].iter().map(|&e| g.label(e)).collect();
        // person should NOT be the single top element; noise like bidder
        // fields / keyword / watch floods the top.
        assert!(
            top10.iter().filter(|l| ["keyword", "date", "time", "increase", "@person", "watch", "@open_auction", "bold", "emph", "text"].contains(l)).count() >= 4,
            "top-10 by cardinality: {top10:?}"
        );
        let _ = h;
    }
}
