//! A small DSL for declaring a schema together with its closed-form
//! cardinality profile.
//!
//! Each dataset in this crate declares, for every element, its average
//! number of occurrences **per parent instance**; cardinalities then
//! cascade down the tree, and link instance counts fall out as the child's
//! cardinality (every child node contributes one structural-link instance —
//! exactly what Figure 3's annotation pass would count on a materialized
//! instance). Value links declare an average number of references per
//! referrer instance.

use schema_summary_core::stats::LinkCount;
use schema_summary_core::{ElementId, SchemaGraph, SchemaGraphBuilder, SchemaStats, SchemaType};

/// Builder pairing a [`SchemaGraphBuilder`] with per-element expected
/// cardinalities and per-link instance counts.
pub struct ProfileBuilder {
    builder: SchemaGraphBuilder,
    card: Vec<f64>,
    links: Vec<(ElementId, ElementId, f64)>,
}

impl ProfileBuilder {
    /// Start a profile whose root element has cardinality 1.
    pub fn new(root_label: &str) -> Self {
        ProfileBuilder {
            builder: SchemaGraphBuilder::new(root_label),
            card: vec![1.0],
            links: Vec::new(),
        }
    }

    /// The root element id.
    pub fn root(&self) -> ElementId {
        self.builder.root()
    }

    /// Expected cardinality of an already-declared element.
    pub fn card(&self, e: ElementId) -> f64 {
        self.card[e.index()]
    }

    /// Declare a child occurring `per_parent` times per parent instance
    /// (values < 1 model optional elements, > 1 model sets).
    pub fn child(
        &mut self,
        parent: ElementId,
        label: impl Into<String>,
        ty: SchemaType,
        per_parent: f64,
    ) -> ElementId {
        let id = self
            .builder
            .add_child(parent, label, ty)
            .expect("dataset schemas are statically well-formed");
        let c = self.card[parent.index()] * per_parent;
        self.card.push(c);
        self.links.push((parent, id, c));
        id
    }

    /// Declare a value link carrying `per_referrer` references per referrer
    /// instance.
    pub fn vlink(&mut self, from: ElementId, to: ElementId, per_referrer: f64) {
        self.builder
            .add_value_link(from, to)
            .expect("dataset value links are statically well-formed");
        self.links
            .push((from, to, self.card[from.index()] * per_referrer));
    }

    /// Finish: build the graph and derive [`SchemaStats`] from the declared
    /// counts (rounded to whole instances).
    pub fn finish(self) -> (SchemaGraph, SchemaStats) {
        let graph = self.builder.build().expect("dataset schemas build");
        let cards: Vec<u64> = self.card.iter().map(|&c| c.round() as u64).collect();
        let link_counts: Vec<LinkCount> = self
            .links
            .iter()
            .map(|&(from, to, c)| LinkCount {
                from,
                to,
                count: c.round() as u64,
            })
            .collect();
        let stats = SchemaStats::from_link_counts(&graph, &cards, &link_counts)
            .expect("profile counts match the graph");
        (graph, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_cascade() {
        let mut p = ProfileBuilder::new("db");
        let a = p.child(p.root(), "a", SchemaType::set_of_rcd(), 10.0);
        let b = p.child(a, "b", SchemaType::set_of_rcd(), 3.0);
        let c = p.child(b, "c", SchemaType::simple_str(), 0.5);
        assert_eq!(p.card(a), 10.0);
        assert_eq!(p.card(b), 30.0);
        assert_eq!(p.card(c), 15.0);
        let (g, s) = p.finish();
        let a = g.find_unique("a").unwrap();
        let b = g.find_unique("b").unwrap();
        let c = g.find_unique("c").unwrap();
        assert_eq!(s.card(b), 30.0);
        assert!((s.rc(a, b) - 3.0).abs() < 1e-9);
        assert!((s.rc(b, a) - 1.0).abs() < 1e-9);
        assert!((s.rc(b, c) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn value_links_count_per_referrer() {
        let mut p = ProfileBuilder::new("db");
        let a = p.child(p.root(), "a", SchemaType::set_of_rcd(), 10.0);
        let b = p.child(p.root(), "b", SchemaType::set_of_rcd(), 40.0);
        p.vlink(b, a, 1.0);
        let (g, s) = p.finish();
        let a = g.find_unique("a").unwrap();
        let b = g.find_unique("b").unwrap();
        assert!((s.rc(b, a) - 1.0).abs() < 1e-9);
        assert!((s.rc(a, b) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn total_card_is_sum() {
        let mut p = ProfileBuilder::new("db");
        let a = p.child(p.root(), "a", SchemaType::set_of_rcd(), 10.0);
        p.child(a, "x", SchemaType::simple_str(), 1.0);
        let (_, s) = p.finish();
        assert_eq!(s.total_card(), 21.0);
    }
}
