//! TPC-H: the relational decision-support benchmark (the paper's second
//! evaluation dataset, at scale factor 0.1).
//!
//! The schema graph follows Section 2's relational mapping: an artificial
//! root with structural links to the eight relation elements, one `Simple`
//! child per column (61 columns — with the root and relations, exactly the
//! 70 schema elements of Table 1), and one value link per foreign key.
//! Row counts are the TPC-H specification's formulas, so "data elements"
//! (rows plus non-null column values) land at Table 1's 12.55M for SF 0.1.

use crate::profile::ProfileBuilder;
use crate::Dataset;
use schema_summary_core::{ElementId, SchemaGraph, SchemaStats, SchemaType};
use schema_summary_discovery::QueryIntention;
use std::collections::{BTreeSet, HashMap};

/// The eight TPC-H tables with their columns, in specification order.
pub const TABLES: [(&str, &[&str]); 8] = [
    ("region", &["r_regionkey", "r_name", "r_comment"]),
    ("nation", &["n_nationkey", "n_name", "n_regionkey", "n_comment"]),
    (
        "supplier",
        &["s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"],
    ),
    (
        "customer",
        &[
            "c_custkey",
            "c_name",
            "c_address",
            "c_nationkey",
            "c_phone",
            "c_acctbal",
            "c_mktsegment",
            "c_comment",
        ],
    ),
    (
        "part",
        &[
            "p_partkey",
            "p_name",
            "p_mfgr",
            "p_brand",
            "p_type",
            "p_size",
            "p_container",
            "p_retailprice",
            "p_comment",
        ],
    ),
    (
        "partsupp",
        &["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"],
    ),
    (
        "orders",
        &[
            "o_orderkey",
            "o_custkey",
            "o_orderstatus",
            "o_totalprice",
            "o_orderdate",
            "o_orderpriority",
            "o_clerk",
            "o_shippriority",
            "o_comment",
        ],
    ),
    (
        "lineitem",
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_linenumber",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_returnflag",
            "l_linestatus",
            "l_shipdate",
            "l_commitdate",
            "l_receiptdate",
            "l_shipinstruct",
            "l_shipmode",
            "l_comment",
        ],
    ),
];

/// Row count of each table at scale factor `sf`, per the TPC-H spec.
pub fn row_count(table: &str, sf: f64) -> f64 {
    match table {
        "region" => 5.0,
        "nation" => 25.0,
        "supplier" => 10_000.0 * sf,
        "customer" => 150_000.0 * sf,
        "part" => 200_000.0 * sf,
        "partsupp" => 800_000.0 * sf,
        "orders" => 1_500_000.0 * sf,
        "lineitem" => 6_000_000.0 * sf,
        other => panic!("unknown TPC-H table {other}"),
    }
}

/// Foreign keys as `(referrer table, referee table)` pairs.
pub const FOREIGN_KEYS: [(&str, &str); 10] = [
    ("nation", "region"),
    ("supplier", "nation"),
    ("customer", "nation"),
    ("partsupp", "part"),
    ("partsupp", "supplier"),
    ("orders", "customer"),
    ("lineitem", "orders"),
    ("lineitem", "part"),
    ("lineitem", "supplier"),
    ("lineitem", "partsupp"),
];

/// Handles: relation and column elements by name.
#[derive(Debug, Clone)]
pub struct TpchHandles {
    tables: HashMap<&'static str, ElementId>,
    columns: HashMap<&'static str, ElementId>,
}

impl TpchHandles {
    /// The relation element for `table`.
    pub fn table(&self, table: &str) -> ElementId {
        self.tables[table]
    }

    /// The column element for `column`.
    pub fn column(&self, column: &str) -> ElementId {
        self.columns[column]
    }
}

/// Build the TPC-H schema and its cardinality profile at scale factor `sf`
/// (the paper uses 0.1).
pub fn schema(sf: f64) -> (SchemaGraph, SchemaStats, TpchHandles) {
    let mut p = ProfileBuilder::new("tpch");
    let mut tables = HashMap::new();
    let mut columns = HashMap::new();
    for (tname, cols) in TABLES {
        let rows = row_count(tname, sf);
        let table = p.child(p.root(), tname, SchemaType::set_of_rcd(), rows);
        tables.insert(tname, table);
        for &c in cols {
            let ty = if c.ends_with("key") {
                SchemaType::simple_id()
            } else {
                SchemaType::simple_str()
            };
            // TPC-H columns are never null: one value per row.
            let col = p.child(table, c, ty, 1.0);
            columns.insert(c, col);
        }
    }
    for (from, to) in FOREIGN_KEYS {
        // Every referrer row carries exactly one reference (lineitem's
        // compound FK to partsupp decomposes to one reference as well).
        p.vlink(tables[from], tables[to], 1.0);
    }
    let (graph, stats) = p.finish();
    (graph, stats, TpchHandles { tables, columns })
}

/// The 22-query TPC-H workload as query intentions: each query's referenced
/// tables and columns (reverse-engineered from the specification queries,
/// as the paper does in Section 5.4).
pub fn queries(handles: &TpchHandles) -> Vec<QueryIntention> {
    let refs: [(&str, &[&str]); 22] = [
        // Q1 pricing summary report
        ("q01", &["lineitem", "l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax", "l_shipdate"]),
        // Q2 minimum cost supplier
        ("q02", &["part", "supplier", "partsupp", "nation", "region", "ps_partkey", "ps_suppkey", "s_suppkey", "s_nationkey", "n_nationkey", "n_regionkey", "r_regionkey", "p_partkey", "p_mfgr", "p_size", "p_type", "s_acctbal", "s_name", "s_address", "s_phone", "s_comment", "ps_supplycost", "n_name", "r_name"]),
        // Q3 shipping priority
        ("q03", &["customer", "orders", "lineitem", "c_custkey", "o_custkey", "o_orderkey", "l_orderkey", "c_mktsegment", "o_orderdate", "o_shippriority", "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"]),
        // Q4 order priority checking
        ("q04", &["orders", "lineitem", "o_orderkey", "l_orderkey", "o_orderdate", "o_orderpriority", "l_commitdate", "l_receiptdate"]),
        // Q5 local supplier volume
        ("q05", &["customer", "orders", "lineitem", "supplier", "nation", "region", "c_custkey", "o_custkey", "o_orderkey", "l_orderkey", "l_suppkey", "s_suppkey", "c_nationkey", "s_nationkey", "n_nationkey", "n_regionkey", "r_regionkey", "n_name", "r_name", "o_orderdate", "l_extendedprice", "l_discount"]),
        // Q6 forecasting revenue change
        ("q06", &["lineitem", "l_shipdate", "l_quantity", "l_extendedprice", "l_discount"]),
        // Q7 volume shipping
        ("q07", &["supplier", "lineitem", "orders", "customer", "nation", "s_suppkey", "l_suppkey", "o_orderkey", "l_orderkey", "c_custkey", "o_custkey", "s_nationkey", "c_nationkey", "n_nationkey", "n_name", "l_shipdate", "l_extendedprice", "l_discount"]),
        // Q8 national market share
        ("q08", &["part", "supplier", "lineitem", "orders", "customer", "nation", "region", "p_partkey", "l_partkey", "s_suppkey", "l_suppkey", "l_orderkey", "o_orderkey", "o_custkey", "c_custkey", "c_nationkey", "n_nationkey", "n_regionkey", "r_regionkey", "p_type", "r_name", "o_orderdate", "l_extendedprice", "l_discount", "n_name"]),
        // Q9 product type profit measure
        ("q09", &["part", "supplier", "lineitem", "partsupp", "orders", "nation", "p_partkey", "l_partkey", "s_suppkey", "l_suppkey", "ps_partkey", "ps_suppkey", "o_orderkey", "l_orderkey", "s_nationkey", "n_nationkey", "p_name", "n_name", "o_orderdate", "l_extendedprice", "l_discount", "ps_supplycost", "l_quantity"]),
        // Q10 returned item reporting
        ("q10", &["customer", "orders", "lineitem", "nation", "o_custkey", "o_orderkey", "l_orderkey", "c_nationkey", "n_nationkey", "c_custkey", "c_name", "c_acctbal", "c_address", "c_phone", "c_comment", "n_name", "l_returnflag", "o_orderdate", "l_extendedprice", "l_discount"]),
        // Q11 important stock identification
        ("q11", &["partsupp", "supplier", "nation", "ps_suppkey", "s_suppkey", "s_nationkey", "n_nationkey", "ps_partkey", "ps_supplycost", "ps_availqty", "n_name"]),
        // Q12 shipping modes and order priority
        ("q12", &["orders", "lineitem", "o_orderkey", "l_orderkey", "l_shipmode", "o_orderpriority", "l_commitdate", "l_receiptdate", "l_shipdate"]),
        // Q13 customer distribution
        ("q13", &["customer", "orders", "c_custkey", "o_custkey", "o_comment"]),
        // Q14 promotion effect
        ("q14", &["lineitem", "part", "l_partkey", "p_partkey", "p_type", "l_shipdate", "l_extendedprice", "l_discount"]),
        // Q15 top supplier
        ("q15", &["supplier", "lineitem", "l_suppkey", "s_suppkey", "s_name", "s_address", "s_phone", "l_shipdate", "l_extendedprice", "l_discount"]),
        // Q16 parts/supplier relationship
        ("q16", &["partsupp", "part", "supplier", "ps_partkey", "p_partkey", "s_suppkey", "p_brand", "p_type", "p_size", "ps_suppkey", "s_comment"]),
        // Q17 small-quantity-order revenue
        ("q17", &["lineitem", "part", "l_partkey", "p_partkey", "p_brand", "p_container", "l_quantity", "l_extendedprice"]),
        // Q18 large volume customer
        ("q18", &["customer", "orders", "lineitem", "o_custkey", "l_orderkey", "c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "l_quantity"]),
        // Q19 discounted revenue
        ("q19", &["lineitem", "part", "l_partkey", "p_partkey", "p_brand", "p_container", "p_size", "l_quantity", "l_shipmode", "l_shipinstruct", "l_extendedprice", "l_discount"]),
        // Q20 potential part promotion
        ("q20", &["supplier", "nation", "partsupp", "part", "ps_suppkey", "s_suppkey", "ps_partkey", "p_partkey", "s_nationkey", "n_nationkey", "s_name", "s_address", "n_name", "p_name", "ps_availqty", "l_quantity"]),
        // Q21 suppliers who kept orders waiting
        ("q21", &["supplier", "lineitem", "orders", "nation", "s_suppkey", "l_suppkey", "l_orderkey", "o_orderkey", "s_nationkey", "n_nationkey", "s_name", "o_orderstatus", "l_receiptdate", "l_commitdate", "n_name"]),
        // Q22 global sales opportunity
        ("q22", &["customer", "orders", "c_custkey", "c_phone", "c_acctbal", "o_custkey"]),
    ];
    refs.iter()
        .map(|&(name, elements)| QueryIntention {
            name: format!("tpch-{name}"),
            targets: elements
                .iter()
                .map(|&r| {
                    let e = if TABLES.iter().any(|&(t, _)| t == r) {
                        handles.table(r)
                    } else {
                        handles.column(r)
                    };
                    BTreeSet::from([e])
                })
                .collect(),
        })
        .collect()
}

/// Materialize a small TPC-H instance as a data tree: spec-proportional
/// row counts at `sf` (use a tiny factor, e.g. 0.0005), uniform foreign-key
/// distribution, no NULLs — mirroring `dbgen`'s structural properties.
/// Useful for exercising the full `annotateSchema` path on relational data.
pub fn materialize(sf: f64, seed: u64) -> schema_summary_instance::DataTree {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use schema_summary_instance::relational::{ForeignKey, RelationalInstance, Row, Table};

    let (graph, _, handles) = schema(sf);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut instance = RelationalInstance::new();
    let rows_of = |t: &str| row_count(t, sf).round().max(1.0) as u64;
    for (tname, cols) in TABLES {
        let table_el = handles.table(tname);
        let col_els: Vec<_> = cols.iter().map(|&c| handles.column(c)).collect();
        let fk_specs: Vec<(&str, u64)> = FOREIGN_KEYS
            .iter()
            .filter(|&&(f, _)| f == tname)
            .map(|&(_, to)| (to, rows_of(to)))
            .collect();
        let rows = (0..rows_of(tname))
            .map(|key| Row {
                key,
                columns: col_els.clone(),
                fks: fk_specs
                    .iter()
                    .map(|&(to, n)| ForeignKey {
                        to_table: handles.table(to),
                        key: rng.random_range(0..n),
                    })
                    .collect(),
            })
            .collect();
        instance = instance.with_table(Table { element: table_el, rows });
    }
    instance
        .to_data_tree(&graph)
        .expect("spec-proportional instance is well-formed")
}

/// The full TPC-H dataset at scale factor `sf`.
pub fn dataset(sf: f64) -> Dataset {
    let (graph, stats, handles) = schema(sf);
    let queries = queries(&handles);
    Dataset {
        name: "TPC-H",
        graph,
        stats,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_seventy_schema_elements() {
        let (g, _, _) = schema(0.1);
        // Table 1: 70 schema elements (root + 8 relations + 61 columns).
        assert_eq!(g.len(), 70);
        assert_eq!(g.num_value_links(), 10);
    }

    #[test]
    fn data_volume_matches_table1() {
        let (_, s, _) = schema(0.1);
        // Table 1: 12,550k data elements at SF 0.1.
        let total = s.total_card();
        assert!(
            (12_000_000.0..=13_000_000.0).contains(&total),
            "total = {total}"
        );
    }

    #[test]
    fn workload_shape_matches_table1() {
        let d = dataset(0.1);
        assert_eq!(d.queries.len(), 22);
        let avg = d.avg_intention_size();
        // Table 1: 13.4 average intention size. Ours is reverse-engineered
        // the same way; accept a tolerance.
        assert!((8.0..=15.0).contains(&avg), "avg = {avg}");
    }

    #[test]
    fn fk_relative_cardinalities() {
        let (_, s, h) = schema(0.1);
        // Each order belongs to one customer; each customer has ~10 orders
        // (1.5M / 150k at any SF).
        assert!((s.rc(h.table("orders"), h.table("customer")) - 1.0).abs() < 1e-9);
        assert!((s.rc(h.table("customer"), h.table("orders")) - 10.0).abs() < 0.1);
        // Each lineitem references one order; ~4 lineitems per order.
        assert!((s.rc(h.table("orders"), h.table("lineitem")) - 4.0).abs() < 0.1);
    }

    #[test]
    fn lineitem_dominates_volume() {
        let (g, s, h) = schema(0.1);
        let li = h.table("lineitem");
        for e in g.element_ids() {
            if e != li && g.parent(e) != Some(li) {
                assert!(s.card(li) >= s.card(e));
            }
        }
    }

    #[test]
    fn queries_reference_valid_elements() {
        let (g, _, h) = schema(0.1);
        for q in queries(&h) {
            for group in &q.targets {
                assert_eq!(group.len(), 1);
                for &e in group {
                    g.check(e).unwrap();
                }
            }
        }
    }

    #[test]
    fn materialized_instance_annotates_to_spec_ratios() {
        use schema_summary_instance::{annotate_schema, check_conformance};
        let sf = 0.0004;
        let (g, profile, h) = schema(sf);
        let tree = materialize(sf, 11);
        assert!(check_conformance(&g, &tree).is_empty());
        let measured = annotate_schema(&g, &tree).unwrap();
        // Row counts match the profile exactly (both round the spec).
        for (t, _) in TABLES {
            assert!(
                (measured.card(h.table(t)) - profile.card(h.table(t))).abs() < 1.5,
                "{t}: measured {} vs profile {}",
                measured.card(h.table(t)),
                profile.card(h.table(t))
            );
        }
        // FK ratios approximate the spec (uniform assignment).
        let rc = measured.rc(h.table("orders"), h.table("lineitem"));
        assert!((rc - 4.0).abs() < 0.6, "lineitems per order: {rc}");
    }

    #[test]
    fn columns_are_never_null() {
        let (_, s, h) = schema(0.1);
        assert!((s.rc(h.table("lineitem"), h.column("l_comment")) - 1.0).abs() < 1e-9);
    }
}
