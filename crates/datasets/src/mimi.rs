//! MiMI: a protein-interaction dataset modeled on the Michigan Molecular
//! Interactions database the paper evaluates on (Section 5.1).
//!
//! The production MiMI dataset and its query trace are long offline; this
//! module synthesizes a schema and data profile fully constrained by the
//! paper's published statistics (DESIGN.md §4): 155 schema elements, ~7.06M
//! data elements in the January 2006 version, and a 52-intention workload
//! averaging 3.35 elements per query, heavily skewed toward the
//! biologically central elements (proteins, interactions, GO annotations) —
//! the skew that makes purely schema-driven summarization fail (Figure 9).
//!
//! Three dated [`Version`]s reproduce Table 5's data-evolution experiment:
//! protein-domain data is imported between January 2005 and January 2006
//! ("during October 2005, information regarding protein domains were
//! imported into the database").

use crate::profile::ProfileBuilder;
use crate::Dataset;
use schema_summary_core::{ElementId, SchemaGraph, SchemaStats, SchemaType};
use schema_summary_discovery::QueryIntention;
use std::collections::{BTreeSet, HashMap};

/// Archived versions of the MiMI database (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// April 2004: early integration, ~40% of current protein volume, no
    /// domain or expression data.
    Apr04,
    /// January 2005: more sources integrated, still no domain data.
    Jan05,
    /// January 2006 ("Now" in Table 5): current version, domains imported
    /// October 2005.
    Jan06,
}

impl Version {
    /// All versions, oldest first.
    pub const ALL: [Version; 3] = [Version::Apr04, Version::Jan05, Version::Jan06];

    /// Display name matching Table 5's row labels.
    pub fn name(self) -> &'static str {
        match self {
            Version::Apr04 => "Apr 04",
            Version::Jan05 => "Jan 05",
            Version::Jan06 => "Now",
        }
    }

    fn knobs(self) -> VersionKnobs {
        match self {
            // Apr 04 and Jan 05 share the same per-protein distribution —
            // the sources grew, the shape of the data did not (the paper
            // observes that growth following the same distribution leaves
            // the summary untouched). The Oct 2005 domain import is the
            // only distribution change, visible in the Jan 06 version.
            Version::Apr04 => VersionKnobs {
                proteins: 15_000.0,
                interactions_per_protein: 4.0,
                goterms_per_annotation: 5.0,
                domains_per_protein: 0.0,
                expressions: 0.2,
                publications: 15_000.0,
                datasources: 4.0,
            },
            Version::Jan05 => VersionKnobs {
                proteins: 27_000.0,
                interactions_per_protein: 4.0,
                goterms_per_annotation: 5.0,
                domains_per_protein: 0.0,
                expressions: 0.2,
                publications: 27_000.0,
                datasources: 7.0,
            },
            Version::Jan06 => VersionKnobs {
                proteins: 38_000.0,
                interactions_per_protein: 4.0,
                goterms_per_annotation: 5.0,
                domains_per_protein: 3.0,
                expressions: 0.2,
                publications: 38_000.0,
                datasources: 10.0,
            },
        }
    }
}

struct VersionKnobs {
    proteins: f64,
    interactions_per_protein: f64,
    goterms_per_annotation: f64,
    domains_per_protein: f64,
    expressions: f64,
    publications: f64,
    datasources: f64,
}

/// Element handles keyed by semantic names.
#[derive(Debug, Clone)]
pub struct MimiHandles {
    map: HashMap<&'static str, ElementId>,
}

impl MimiHandles {
    /// Look up a handle by key; panics on unknown keys (all keys are
    /// crate-internal constants).
    pub fn get(&self, key: &str) -> ElementId {
        *self
            .map
            .get(key)
            .unwrap_or_else(|| panic!("unknown MiMI handle '{key}'"))
    }

    /// All registered keys (for tests).
    pub fn keys(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.map.keys().copied()
    }
}

/// Build the MiMI schema and the cardinality profile of `version`.
pub fn schema(version: Version) -> (SchemaGraph, SchemaStats, MimiHandles) {
    let k = version.knobs();
    let mut p = ProfileBuilder::new("mimi");
    let mut map: HashMap<&'static str, ElementId> = HashMap::new();
    let root = p.root();

    // ---- proteins ---------------------------------------------------------
    let proteins = p.child(root, "proteins", SchemaType::rcd(), 1.0);
    let protein = p.child(proteins, "protein", SchemaType::set_of_rcd(), k.proteins);
    map.insert("protein", protein);
    map.insert("protein_id", p.child(protein, "@id", SchemaType::simple_id(), 1.0));
    map.insert("symbol", p.child(protein, "symbol", SchemaType::simple_str(), 1.0));
    map.insert(
        "protein_description",
        p.child(protein, "description", SchemaType::simple_str(), 0.9),
    );
    let names = p.child(protein, "names", SchemaType::rcd(), 1.0);
    map.insert("name", p.child(names, "name", SchemaType::set_of_simple_str(), 1.5));
    map.insert("synonym", p.child(names, "synonym", SchemaType::set_of_simple_str(), 1.2));
    p.child(names, "alias", SchemaType::set_of_simple_str(), 0.8);
    let organism = p.child(protein, "organism", SchemaType::rcd(), 1.0);
    map.insert("taxid", p.child(organism, "@taxid", SchemaType::simple_idref(), 1.0));
    map.insert(
        "organism_name",
        p.child(organism, "organismName", SchemaType::simple_str(), 1.0),
    );
    let sequence = p.child(protein, "sequence", SchemaType::rcd(), 0.9);
    map.insert("seq_length", p.child(sequence, "length", SchemaType::simple_int(), 1.0));
    p.child(sequence, "checksum", SchemaType::simple_str(), 1.0);
    p.child(sequence, "residues", SchemaType::simple_str(), 1.0);
    let location = p.child(protein, "location", SchemaType::rcd(), 0.7);
    map.insert(
        "chromosome",
        p.child(location, "chromosome", SchemaType::simple_str(), 1.0),
    );
    p.child(location, "start", SchemaType::simple_int(), 1.0);
    p.child(location, "end", SchemaType::simple_int(), 1.0);
    p.child(location, "strand", SchemaType::simple_str(), 1.0);

    // interactions
    let interactions = p.child(protein, "interactions", SchemaType::rcd(), 0.8);
    let interaction = p.child(
        interactions,
        "interaction",
        SchemaType::set_of_rcd(),
        k.interactions_per_protein,
    );
    map.insert("interaction", interaction);
    p.child(interaction, "@id", SchemaType::simple_id(), 1.0);
    let partner = p.child(interaction, "partner", SchemaType::set_of_rcd(), 1.9);
    map.insert("partner", partner);
    p.child(partner, "@protein", SchemaType::simple_idref(), 1.0);
    p.vlink(partner, protein, 1.0);
    map.insert(
        "interaction_type",
        p.child(interaction, "type", SchemaType::simple_str(), 1.0),
    );
    map.insert(
        "confidence",
        p.child(interaction, "confidence", SchemaType::simple_float(), 0.8),
    );
    let experiments = p.child(interaction, "experiments", SchemaType::rcd(), 1.0);
    let experiment = p.child(experiments, "experiment", SchemaType::set_of_rcd(), 1.3);
    map.insert("experiment", experiment);
    map.insert("method", p.child(experiment, "method", SchemaType::simple_str(), 1.0));
    let pubmedref = p.child(experiment, "pubmedref", SchemaType::rcd(), 0.9);
    map.insert("pubmedref", pubmedref);
    p.child(pubmedref, "@pmid", SchemaType::simple_idref(), 1.0);
    map.insert("system", p.child(experiment, "system", SchemaType::simple_str(), 0.7));
    p.child(experiment, "score", SchemaType::simple_float(), 0.5);
    let binding_sites = p.child(interaction, "bindingSites", SchemaType::rcd(), 0.2);
    let binding_site = p.child(binding_sites, "bindingSite", SchemaType::set_of_rcd(), 1.5);
    p.child(binding_site, "start", SchemaType::simple_int(), 1.0);
    p.child(binding_site, "end", SchemaType::simple_int(), 1.0);
    let parameters = p.child(interaction, "parameters", SchemaType::rcd(), 0.3);
    let parameter = p.child(parameters, "parameter", SchemaType::set_of_rcd(), 2.0);
    p.child(parameter, "type", SchemaType::simple_str(), 1.0);
    p.child(parameter, "value", SchemaType::simple_str(), 1.0);

    // domains (imported Oct 2005: zero cardinality before Jan06)
    let domains = p.child(
        protein,
        "domains",
        SchemaType::rcd(),
        if k.domains_per_protein > 0.0 { 0.8 } else { 0.0 },
    );
    let domain = p.child(domains, "domain", SchemaType::set_of_rcd(), k.domains_per_protein);
    map.insert("domain", domain);
    p.child(domain, "@id", SchemaType::simple_id(), 1.0);
    map.insert("domain_name", p.child(domain, "name", SchemaType::simple_str(), 1.0));
    p.child(domain, "start", SchemaType::simple_int(), 1.0);
    p.child(domain, "end", SchemaType::simple_int(), 1.0);
    p.child(domain, "evalue", SchemaType::simple_float(), 0.8);
    map.insert("domain_source", p.child(domain, "source", SchemaType::simple_str(), 1.0));

    // GO annotations
    let annotations = p.child(protein, "annotations", SchemaType::rcd(), 0.9);
    let goterm = p.child(
        annotations,
        "goterm",
        SchemaType::set_of_rcd(),
        k.goterms_per_annotation,
    );
    map.insert("goterm", goterm);
    map.insert("goid", p.child(goterm, "@goid", SchemaType::simple_id(), 1.0));
    map.insert("term", p.child(goterm, "term", SchemaType::simple_str(), 1.0));
    map.insert("aspect", p.child(goterm, "aspect", SchemaType::simple_str(), 1.0));
    map.insert("evidence", p.child(goterm, "evidence", SchemaType::simple_str(), 1.0));
    p.child(goterm, "source", SchemaType::simple_str(), 1.0);

    // pathways, expressions, orthologs
    let pathways = p.child(protein, "pathways", SchemaType::rcd(), 0.5);
    let pathwayref = p.child(pathways, "pathwayref", SchemaType::set_of_rcd(), 2.0);
    map.insert("pathwayref", pathwayref);
    p.child(pathwayref, "@pathway", SchemaType::simple_idref(), 1.0);
    let expressions = p.child(protein, "expressions", SchemaType::rcd(), k.expressions);
    let expression = p.child(expressions, "expression", SchemaType::set_of_rcd(), 3.0);
    map.insert("expression", expression);
    map.insert("tissue", p.child(expression, "tissue", SchemaType::simple_str(), 1.0));
    p.child(expression, "level", SchemaType::simple_float(), 1.0);
    p.child(expression, "source", SchemaType::simple_str(), 1.0);
    let orthologs = p.child(protein, "orthologs", SchemaType::rcd(), 0.3);
    let ortholog = p.child(orthologs, "ortholog", SchemaType::set_of_rcd(), 2.0);
    p.child(ortholog, "species", SchemaType::simple_str(), 1.0);
    p.child(ortholog, "gene", SchemaType::simple_str(), 1.0);
    p.child(ortholog, "identity", SchemaType::simple_float(), 1.0);

    // genes, keywords, features, xrefs, functions, locations, modifications
    let genes = p.child(protein, "genes", SchemaType::rcd(), 0.9);
    let gene = p.child(genes, "gene", SchemaType::set_of_rcd(), 1.1);
    map.insert("gene", gene);
    p.child(gene, "@id", SchemaType::simple_id(), 1.0);
    map.insert("gene_name", p.child(gene, "name", SchemaType::simple_str(), 1.0));
    let keywords = p.child(protein, "keywords", SchemaType::rcd(), 0.8);
    map.insert(
        "keyword",
        p.child(keywords, "keyword", SchemaType::set_of_simple_str(), 3.0),
    );
    let features = p.child(protein, "features", SchemaType::rcd(), 0.5);
    let feature = p.child(features, "feature", SchemaType::set_of_rcd(), 2.5);
    map.insert("feature", feature);
    p.child(feature, "type", SchemaType::simple_str(), 1.0);
    p.child(feature, "start", SchemaType::simple_int(), 1.0);
    p.child(feature, "end", SchemaType::simple_int(), 1.0);
    p.child(feature, "description", SchemaType::simple_str(), 0.7);
    let xrefs = p.child(protein, "xrefs", SchemaType::rcd(), 1.0);
    let xref = p.child(xrefs, "xref", SchemaType::set_of_rcd(), 4.0);
    map.insert("xref", xref);
    map.insert("xref_db", p.child(xref, "db", SchemaType::simple_str(), 1.0));
    map.insert(
        "accession",
        p.child(xref, "accession", SchemaType::simple_str(), 1.0),
    );
    let functions = p.child(protein, "functions", SchemaType::rcd(), 0.6);
    let function = p.child(functions, "function", SchemaType::set_of_rcd(), 1.5);
    map.insert("function", function);
    p.child(function, "text", SchemaType::simple_str(), 1.0);
    p.child(function, "evidence", SchemaType::simple_str(), 0.8);
    let cellular = p.child(protein, "cellularLocations", SchemaType::rcd(), 0.5);
    map.insert(
        "cellular_location",
        p.child(cellular, "cellularLocation", SchemaType::set_of_simple_str(), 1.5),
    );
    let modifications = p.child(protein, "modifications", SchemaType::rcd(), 0.3);
    let modification = p.child(modifications, "modification", SchemaType::set_of_rcd(), 2.0);
    p.child(modification, "type", SchemaType::simple_str(), 1.0);
    p.child(modification, "position", SchemaType::simple_int(), 1.0);
    p.child(modification, "evidence", SchemaType::simple_str(), 0.6);

    // ---- molecules --------------------------------------------------------
    let molecules = p.child(root, "molecules", SchemaType::rcd(), 1.0);
    let molecule = p.child(molecules, "molecule", SchemaType::set_of_rcd(), 2_000.0);
    map.insert("molecule", molecule);
    p.child(molecule, "@id", SchemaType::simple_id(), 1.0);
    p.child(molecule, "name", SchemaType::simple_str(), 1.0);
    p.child(molecule, "formula", SchemaType::simple_str(), 1.0);
    p.child(molecule, "weight", SchemaType::simple_float(), 0.9);
    p.child(molecule, "smiles", SchemaType::simple_str(), 0.8);
    p.child(molecule, "inchi", SchemaType::simple_str(), 0.7);

    // ---- taxonomy ---------------------------------------------------------
    let taxonomy = p.child(root, "taxonomy", SchemaType::rcd(), 1.0);
    let taxon = p.child(taxonomy, "taxon", SchemaType::set_of_rcd(), 5_000.0);
    map.insert("taxon", taxon);
    p.child(taxon, "@taxid", SchemaType::simple_id(), 1.0);
    map.insert(
        "scientific_name",
        p.child(taxon, "scientificName", SchemaType::simple_str(), 1.0),
    );
    p.child(taxon, "commonName", SchemaType::simple_str(), 0.6);
    p.child(taxon, "lineage", SchemaType::simple_str(), 1.0);
    p.child(taxon, "rank", SchemaType::simple_str(), 1.0);
    p.child(taxon, "parentTaxid", SchemaType::simple_str(), 0.98);
    // organism/@taxid references the taxonomy.
    p.vlink(organism, taxon, 1.0);

    // ---- publications -----------------------------------------------------
    let publications = p.child(root, "publications", SchemaType::rcd(), 1.0);
    let publication = p.child(publications, "publication", SchemaType::set_of_rcd(), k.publications);
    map.insert("publication", publication);
    p.child(publication, "@pmid", SchemaType::simple_id(), 1.0);
    map.insert("title", p.child(publication, "title", SchemaType::simple_str(), 1.0));
    map.insert(
        "journal",
        p.child(publication, "journal", SchemaType::simple_str(), 1.0),
    );
    map.insert("year", p.child(publication, "year", SchemaType::simple_int(), 1.0));
    p.child(publication, "abstract", SchemaType::simple_str(), 0.75);
    p.child(publication, "volume", SchemaType::simple_str(), 0.9);
    let authors = p.child(publication, "authors", SchemaType::rcd(), 1.0);
    map.insert(
        "author",
        p.child(authors, "author", SchemaType::set_of_simple_str(), 3.5),
    );
    let meshterms = p.child(publication, "meshterms", SchemaType::rcd(), 0.5);
    p.child(meshterms, "meshterm", SchemaType::set_of_simple_str(), 4.0);
    p.vlink(pubmedref, publication, 1.0);

    // ---- pathway database --------------------------------------------------
    let pathwaydb = p.child(root, "pathwaydb", SchemaType::rcd(), 1.0);
    let pathway = p.child(pathwaydb, "pathway", SchemaType::set_of_rcd(), 1_500.0);
    map.insert("pathway", pathway);
    p.child(pathway, "@id", SchemaType::simple_id(), 1.0);
    map.insert("pathway_name", p.child(pathway, "name", SchemaType::simple_str(), 1.0));
    p.child(pathway, "source", SchemaType::simple_str(), 1.0);
    p.child(pathway, "description", SchemaType::simple_str(), 0.6);
    p.child(pathway, "class", SchemaType::simple_str(), 0.8);
    let memberref = p.child(pathway, "memberref", SchemaType::set_of_rcd(), 20.0);
    p.child(memberref, "@protein", SchemaType::simple_idref(), 1.0);
    p.vlink(memberref, protein, 1.0);
    p.vlink(pathwayref, pathway, 1.0);

    // ---- experiment method catalogue ---------------------------------------
    let method_defs = p.child(root, "experimentMethods", SchemaType::rcd(), 1.0);
    let method_def = p.child(method_defs, "methodDef", SchemaType::set_of_rcd(), 300.0);
    map.insert("method_def", method_def);
    p.child(method_def, "@id", SchemaType::simple_id(), 1.0);
    p.child(method_def, "name", SchemaType::simple_str(), 1.0);
    p.child(method_def, "description", SchemaType::simple_str(), 0.9);
    p.child(method_def, "@psi", SchemaType::simple_str(), 0.8);

    // ---- provenance ---------------------------------------------------------
    let provenance = p.child(root, "provenance", SchemaType::rcd(), 1.0);
    let datasource = p.child(provenance, "datasource", SchemaType::set_of_rcd(), k.datasources);
    map.insert("datasource", datasource);
    map.insert(
        "datasource_name",
        p.child(datasource, "name", SchemaType::simple_str(), 1.0),
    );
    p.child(datasource, "version", SchemaType::simple_str(), 1.0);
    p.child(datasource, "date", SchemaType::simple_str(), 1.0);
    p.child(datasource, "url", SchemaType::simple_str(), 1.0);
    p.child(datasource, "recordcount", SchemaType::simple_int(), 1.0);
    p.child(datasource, "contact", SchemaType::simple_str(), 0.7);
    p.child(datasource, "license", SchemaType::simple_str(), 0.8);

    // ---- statistics ----------------------------------------------------------
    let statistics = p.child(root, "statistics", SchemaType::rcd(), 1.0);
    let statistic = p.child(statistics, "statistic", SchemaType::set_of_rcd(), 40.0);
    p.child(statistic, "name", SchemaType::simple_str(), 1.0);
    p.child(statistic, "value", SchemaType::simple_str(), 1.0);

    let (graph, stats) = p.finish();
    (graph, stats, MimiHandles { map })
}

/// The 52-group MiMI query workload (Section 5.1 clusters 2167 traced
/// queries into 52 groups; each intention below stands for one cluster).
/// The skew mirrors a real trace: most clusters revolve around proteins,
/// interactions, and annotations.
pub fn queries(handles: &MimiHandles) -> Vec<QueryIntention> {
    // (query name, handle keys)
    let specs: [(&str, &[&str]); 52] = [
        ("q01", &["protein", "symbol", "name"]),
        ("q02", &["protein", "protein_id", "name", "symbol"]),
        ("q03", &["protein", "name", "synonym"]),
        ("q04", &["protein", "interaction", "partner", "confidence"]),
        ("q05", &["protein", "interaction", "confidence", "interaction_type"]),
        ("q06", &["interaction", "experiment", "method"]),
        ("q07", &["interaction", "partner", "protein_id"]),
        ("q08", &["protein", "goterm", "term", "goid"]),
        ("q09", &["goterm", "goid", "aspect"]),
        ("q10", &["protein", "goterm", "evidence"]),
        ("q11", &["protein", "organism_name", "taxid"]),
        ("q12", &["protein", "taxid", "scientific_name"]),
        ("q13", &["protein", "seq_length", "symbol"]),
        ("q14", &["protein", "chromosome", "protein_id"]),
        ("q15", &["interaction", "interaction_type", "confidence"]),
        ("q16", &["interaction", "experiment", "pubmedref", "title"]),
        ("q17", &["experiment", "method", "system"]),
        ("q18", &["protein", "xref", "xref_db", "accession"]),
        ("q19", &["protein", "keyword", "symbol"]),
        ("q20", &["protein", "feature", "symbol"]),
        ("q21", &["protein", "function", "symbol"]),
        ("q22", &["protein", "cellular_location", "symbol"]),
        ("q23", &["protein", "gene", "gene_name"]),
        ("q24", &["protein", "pathwayref", "pathway_name"]),
        ("q25", &["pathway", "pathway_name"]),
        ("q26", &["protein", "interaction", "partner", "goterm"]),
        ("q27", &["protein", "symbol", "interaction"]),
        ("q28", &["protein", "name", "interaction", "partner"]),
        ("q29", &["interaction", "confidence", "method"]),
        ("q30", &["protein", "goterm", "term", "aspect"]),
        ("q31", &["publication", "title", "year", "author"]),
        ("q32", &["publication", "journal", "author", "title"]),
        ("q33", &["experiment", "pubmedref", "publication"]),
        ("q34", &["protein", "interaction", "experiment"]),
        ("q35", &["protein", "expression", "tissue"]),
        ("q36", &["protein", "domain", "domain_name", "symbol"]),
        ("q37", &["domain", "domain_source"]),
        ("q38", &["protein", "symbol", "goterm", "term"]),
        ("q39", &["protein", "synonym", "name"]),
        ("q40", &["taxon", "scientific_name", "taxid"]),
        ("q41", &["protein", "interaction", "partner"]),
        ("q42", &["protein", "goterm"]),
        ("q43", &["interaction", "partner", "protein"]),
        ("q44", &["protein", "name", "symbol"]),
        ("q45", &["protein", "protein_description"]),
        ("q46", &["molecule", "protein"]),
        ("q47", &["datasource", "datasource_name"]),
        ("q48", &["protein", "interaction", "partner", "confidence", "method"]),
        ("q49", &["protein", "gene"]),
        ("q50", &["goterm", "term", "goid"]),
        ("q51", &["protein", "xref"]),
        ("q52", &["interaction", "experiment", "method", "system"]),
    ];
    specs
        .iter()
        .map(|&(name, keys)| QueryIntention {
            name: format!("mimi-{name}"),
            targets: keys
                .iter()
                .map(|&k| BTreeSet::from([handles.get(k)]))
                .collect(),
        })
        .collect()
}

/// The curated "major entity" labeling for MiMI used by Table 6's
/// "with human" baseline condition: the entity concepts a domain expert
/// annotating the schema for TWBK/CAFP would mark as cluster cores
/// (Teorey et al.'s step 1). Eight seeds, fewer than the summary size, so
/// each technique's own clustering still fills the remaining slots.
pub fn major_entities(handles: &MimiHandles) -> Vec<schema_summary_core::ElementId> {
    ["protein", "interaction", "experiment", "goterm", "publication", "pathway", "taxon", "molecule"]
        .iter()
        .map(|&k| handles.get(k))
        .collect()
}

/// The full MiMI dataset at `version`.
pub fn dataset(version: Version) -> Dataset {
    let (graph, stats, handles) = schema(version);
    let queries = queries(&handles);
    Dataset {
        name: "MiMI",
        graph,
        stats,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_element_count_matches_table1() {
        let (g, _, _) = schema(Version::Jan06);
        assert_eq!(g.len(), 155, "Table 1 reports 155 schema elements");
    }

    #[test]
    fn schema_is_version_independent() {
        let (g1, _, _) = schema(Version::Apr04);
        let (g2, _, _) = schema(Version::Jan06);
        assert_eq!(g1, g2, "only the data evolves, never the schema");
    }

    #[test]
    fn data_volume_matches_table1() {
        let (_, s, _) = schema(Version::Jan06);
        let total = s.total_card();
        // Table 1: 7,055k data elements.
        assert!(
            (6_300_000.0..=7_800_000.0).contains(&total),
            "total = {total}"
        );
    }

    #[test]
    fn volume_grows_across_versions() {
        let totals: Vec<f64> = Version::ALL
            .iter()
            .map(|&v| schema(v).1.total_card())
            .collect();
        assert!(totals[0] < totals[1] && totals[1] < totals[2], "{totals:?}");
    }

    #[test]
    fn domains_absent_before_oct05() {
        let (_, s04, h) = schema(Version::Apr04);
        let (_, s05, _) = schema(Version::Jan05);
        let (_, s06, _) = schema(Version::Jan06);
        let domain = h.get("domain");
        assert_eq!(s04.card(domain), 0.0);
        assert_eq!(s05.card(domain), 0.0);
        assert!(s06.card(domain) > 50_000.0);
    }

    #[test]
    fn workload_shape_matches_table1() {
        let d = dataset(Version::Jan06);
        assert_eq!(d.queries.len(), 52);
        let avg = d.avg_intention_size();
        // Table 1: 3.35 average intention size.
        assert!((2.8..=3.9).contains(&avg), "avg = {avg}");
    }

    #[test]
    fn protein_is_the_hub() {
        let (g, s, h) = schema(Version::Jan06);
        let protein = h.get("protein");
        // protein is highly connected: many children plus incoming value
        // links from partner and pathway members.
        assert!(g.degree(protein) >= 15);
        assert!(s.rc(protein, h.get("interaction")) == 0.0); // not directly linked
        assert!(s.rc(g.parent(h.get("interaction")).unwrap(), h.get("interaction")) > 0.0);
    }

    #[test]
    fn queries_reference_valid_elements() {
        let (g, _, h) = schema(Version::Jan06);
        for q in queries(&h) {
            for group in &q.targets {
                for &e in group {
                    g.check(e).unwrap();
                }
            }
        }
    }

    #[test]
    fn partner_references_protein() {
        let (_, s, h) = schema(Version::Jan06);
        assert!((s.rc(h.get("partner"), h.get("protein")) - 1.0).abs() < 1e-9);
        assert!(s.rc(h.get("protein"), h.get("partner")) > 1.0);
    }
}
