//! The paper's three evaluation datasets (Section 5.1, Table 1).
//!
//! | dataset | model | schema elements | data elements | queries |
//! |---------|-------|-----------------|---------------|---------|
//! | XMark   | XML   | ~327            | 1.57M (SF 1)  | 20      |
//! | TPC-H   | relational | 70         | 12.55M (SF 0.1) | 22    |
//! | MiMI    | XML   | 155             | 7.06M (Jan 06) | 52     |
//!
//! Each dataset module provides the schema graph, a closed-form cardinality
//! profile at a given scale factor (the summarization algorithms observe
//! the database only through [`schema_summary_core::SchemaStats`], so a
//! count-faithful profile exercises exactly the same code paths as a
//! materialized instance — see DESIGN.md §4), the paper's query workload as
//! [`schema_summary_discovery::QueryIntention`]s, and, for XMark and MiMI,
//! the expert-summary fixtures used by the Table 2 comparison.
//!
//! MiMI additionally ships three dated versions (Table 5's data-evolution
//! experiment): April 2004, January 2005, and January 2006 ("Now"), with
//! protein-domain data imported between the last two.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experts;
pub mod mimi;
pub mod profile;
pub mod tpch;
pub mod workloads;
pub mod xmark;

use schema_summary_core::{SchemaGraph, SchemaStats};
use schema_summary_discovery::QueryIntention;

/// A ready-to-summarize dataset: schema, statistics, and query workload.
pub struct Dataset {
    /// Short name (`"XMark"`, `"TPC-H"`, `"MiMI"`).
    pub name: &'static str,
    /// The schema graph.
    pub graph: SchemaGraph,
    /// Cardinality statistics at the configured scale.
    pub stats: SchemaStats,
    /// The paper's query workload as intentions.
    pub queries: Vec<QueryIntention>,
}

impl Dataset {
    /// Average query-intention size (Table 1's last row).
    pub fn avg_intention_size(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().map(|q| q.size()).sum::<usize>() as f64 / self.queries.len() as f64
    }
}

/// XMark at the paper's scale factor 1.
pub fn xmark() -> Dataset {
    xmark::dataset(1.0)
}

/// TPC-H at the paper's scale factor 0.1.
pub fn tpch() -> Dataset {
    tpch::dataset(0.1)
}

/// MiMI at its current (January 2006) version.
pub fn mimi() -> Dataset {
    mimi::dataset(mimi::Version::Jan06)
}
