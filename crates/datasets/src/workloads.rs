//! Workload analytics: what a query trace says about a schema.
//!
//! The paper argues that real workloads concentrate on few important
//! elements while benchmarks "spread their queries around the schema"
//! (Section 5.4). This module measures that concentration so the claim is
//! checkable on our reconstructions — and so users can profile their own
//! traces before trusting a summary.

use crate::Dataset;
use schema_summary_core::ElementId;
use schema_summary_discovery::QueryIntention;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregate statistics of a query workload against its schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Number of queries.
    pub queries: usize,
    /// Mean intention size.
    pub avg_intention_size: f64,
    /// Distinct schema elements referenced anywhere in the workload.
    pub distinct_elements: usize,
    /// Fraction of the schema's elements ever referenced.
    pub schema_coverage: f64,
    /// The most referenced elements, `(element, reference count)`,
    /// descending; at most ten entries.
    pub hottest: Vec<(ElementId, usize)>,
    /// Fraction of all references landing on the top five elements —
    /// the concentration measure behind the paper's benchmark-vs-real
    /// observation.
    pub top5_share: f64,
}

/// Profile `queries` against a schema of `schema_len` elements.
pub fn profile(queries: &[QueryIntention], schema_len: usize) -> WorkloadProfile {
    let mut refs: HashMap<ElementId, usize> = HashMap::new();
    let mut total_refs = 0usize;
    let mut intention_sizes = 0usize;
    for q in queries {
        intention_sizes += q.size();
        for group in &q.targets {
            for &e in group {
                *refs.entry(e).or_insert(0) += 1;
                total_refs += 1;
            }
        }
    }
    let mut hottest: Vec<(ElementId, usize)> = refs.iter().map(|(&e, &c)| (e, c)).collect();
    hottest.sort_by_key(|&(e, c)| (std::cmp::Reverse(c), e));
    let top5: usize = hottest.iter().take(5).map(|&(_, c)| c).sum();
    let distinct = refs.len();
    hottest.truncate(10);
    WorkloadProfile {
        queries: queries.len(),
        avg_intention_size: if queries.is_empty() {
            0.0
        } else {
            intention_sizes as f64 / queries.len() as f64
        },
        distinct_elements: distinct,
        schema_coverage: if schema_len == 0 {
            0.0
        } else {
            distinct as f64 / schema_len as f64
        },
        hottest,
        top5_share: if total_refs == 0 {
            0.0
        } else {
            top5 as f64 / total_refs as f64
        },
    }
}

/// Profile a [`Dataset`]'s own workload.
pub fn profile_dataset(d: &Dataset) -> WorkloadProfile {
    profile(&d.queries, d.graph.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mimi, tpch, xmark};

    #[test]
    fn real_style_workloads_concentrate_more_than_benchmarks() {
        // The paper's Section 5.4 conjecture, measured: the MiMI trace
        // concentrates its references more than TPC-H spreads its.
        let m = profile_dataset(&mimi::dataset(mimi::Version::Jan06));
        let t = profile_dataset(&tpch::dataset(0.1));
        assert!(
            m.top5_share > t.top5_share,
            "MiMI top-5 share {:.2} vs TPC-H {:.2}",
            m.top5_share,
            t.top5_share
        );
    }

    #[test]
    fn tpch_queries_touch_a_larger_schema_fraction() {
        let t = profile_dataset(&tpch::dataset(0.1));
        let x = profile_dataset(&xmark::dataset(1.0));
        // "the queries on TPC-H involve a substantially higher percentage
        // of schema elements" (Section 5.4).
        assert!(
            t.schema_coverage > x.schema_coverage,
            "TPC-H coverage {:.2} vs XMark {:.2}",
            t.schema_coverage,
            x.schema_coverage
        );
        assert!(t.schema_coverage > 0.5);
    }

    #[test]
    fn hottest_elements_are_the_biological_core() {
        let d = mimi::dataset(mimi::Version::Jan06);
        let p = profile_dataset(&d);
        let hot_labels: Vec<&str> = p.hottest.iter().map(|&(e, _)| d.graph.label(e)).collect();
        assert_eq!(hot_labels[0], "protein", "{hot_labels:?}");
        assert!(hot_labels.contains(&"interaction"), "{hot_labels:?}");
    }

    #[test]
    fn profile_internals_are_consistent() {
        let d = xmark::dataset(1.0);
        let p = profile_dataset(&d);
        assert_eq!(p.queries, 20);
        assert!(p.avg_intention_size > 2.0);
        assert!(p.distinct_elements <= d.graph.len());
        assert!(p.top5_share > 0.0 && p.top5_share <= 1.0);
        assert!(p.hottest.len() <= 10);
        // Hottest list is sorted descending.
        for w in p.hottest.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_workload_profile_is_well_defined() {
        let p = profile(&[], 100);
        assert_eq!(p.queries, 0);
        assert_eq!(p.avg_intention_size, 0.0);
        assert_eq!(p.schema_coverage, 0.0);
        assert_eq!(p.top5_share, 0.0);
    }
}
