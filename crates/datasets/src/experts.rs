//! Expert-summary fixtures for the Table 2 comparison (Section 5.2).
//!
//! The paper enlisted three human experts per dataset (MiMI administrators;
//! XMark veterans) to hand-pick summaries of sizes 5, 10, and 15. Those
//! judgments cannot be re-collected, so this module encodes three plausible
//! expert selections per dataset as **fixtures** (DESIGN.md §4): selections
//! a domain expert would defend — entity-like, high-traffic elements —
//! with the partial disagreement between experts the paper reports
//! (unanimous agreement 50–80%, decreasing with summary size). The
//! *measurement machinery* (pairwise agreement, consensus) lives in
//! `schema-summary-discovery` and is exercised for real.

use crate::mimi::MimiHandles;
use crate::xmark::XmarkHandles;
use schema_summary_core::ElementId;

/// Sizes for which expert fixtures exist.
pub const EXPERT_SIZES: [usize; 3] = [5, 10, 15];

/// Three expert selections of `size` elements for XMark.
///
/// # Panics
/// Panics if `size` is not one of [`EXPERT_SIZES`].
pub fn xmark_experts(h: &XmarkHandles, size: usize) -> Vec<Vec<ElementId>> {
    let namerica = h.items[4];
    let europe = h.items[3];
    let asia = h.items[1];
    match size {
        5 => vec![
            vec![h.person, h.open_auction, h.closed_auction, namerica, h.category],
            vec![h.person, h.open_auction, h.bidder, namerica, europe],
            vec![h.person, h.open_auction, h.closed_auction, namerica, h.bidder],
        ],
        10 => vec![
            vec![
                h.person, h.profile, h.open_auction, h.bidder, h.closed_auction,
                namerica, europe, h.category, h.interest, h.watch,
            ],
            vec![
                h.person, h.open_auction, h.bidder, h.closed_auction, h.buyer,
                namerica, europe, asia, h.category, h.seller_open,
            ],
            vec![
                h.person, h.profile, h.open_auction, h.bidder, h.closed_auction,
                namerica, europe, h.category, h.seller_open, h.price,
            ],
        ],
        15 => vec![
            vec![
                h.person, h.profile, h.interest, h.watch, h.open_auction, h.bidder,
                h.seller_open, h.closed_auction, h.buyer, h.price, namerica, europe,
                asia, h.category, h.item_descriptions[4],
            ],
            vec![
                h.person, h.person_name, h.profile, h.open_auction, h.bidder,
                h.initial, h.current, h.closed_auction, h.buyer, namerica, europe,
                asia, h.items[2], h.category, h.category_name,
            ],
            vec![
                h.person, h.profile, h.interest, h.open_auction, h.bidder,
                h.seller_open, h.itemref_open, h.closed_auction, h.buyer, h.price,
                namerica, europe, asia, h.category, h.watch,
            ],
        ],
        other => panic!("no XMark expert fixture for size {other}"),
    }
}

/// Three expert selections of `size` elements for MiMI.
///
/// # Panics
/// Panics if `size` is not one of [`EXPERT_SIZES`].
pub fn mimi_experts(h: &MimiHandles, size: usize) -> Vec<Vec<ElementId>> {
    let g = |k: &str| h.get(k);
    match size {
        5 => vec![
            vec![g("protein"), g("interaction"), g("goterm"), g("publication"), g("experiment")],
            vec![g("protein"), g("interaction"), g("goterm"), g("pathway"), g("partner")],
            vec![g("protein"), g("interaction"), g("experiment"), g("goterm"), g("taxon")],
        ],
        10 => vec![
            vec![
                g("protein"), g("interaction"), g("partner"), g("experiment"), g("goterm"),
                g("publication"), g("pathway"), g("taxon"), g("xref"), g("gene"),
            ],
            vec![
                g("protein"), g("interaction"), g("partner"), g("experiment"), g("goterm"),
                g("publication"), g("pathway"), g("domain"), g("name"), g("method"),
            ],
            vec![
                g("protein"), g("interaction"), g("partner"), g("experiment"), g("goterm"),
                g("publication"), g("taxon"), g("xref"), g("feature"), g("function"),
            ],
        ],
        15 => vec![
            vec![
                g("protein"), g("interaction"), g("partner"), g("experiment"), g("goterm"),
                g("publication"), g("pathway"), g("taxon"), g("xref"), g("gene"),
                g("domain"), g("name"), g("method"), g("feature"), g("molecule"),
            ],
            vec![
                g("protein"), g("interaction"), g("partner"), g("experiment"), g("goterm"),
                g("publication"), g("pathway"), g("taxon"), g("domain"), g("name"),
                g("method"), g("function"), g("expression"), g("keyword"), g("author"),
            ],
            vec![
                g("protein"), g("interaction"), g("partner"), g("experiment"), g("goterm"),
                g("publication"), g("pathway"), g("taxon"), g("xref"), g("domain"),
                g("gene"), g("datasource"), g("molecule"), g("title"), g("method"),
            ],
        ],
        other => panic!("no MiMI expert fixture for size {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mimi, xmark};
    use schema_summary_discovery::agreement::{agreement, consensus, unanimous_agreement};

    #[test]
    fn fixtures_have_requested_sizes_and_valid_elements() {
        let (xg, _, xh) = xmark::schema(1.0);
        let (mg, _, mh) = mimi::schema(mimi::Version::Jan06);
        for &size in &EXPERT_SIZES {
            for sel in xmark_experts(&xh, size) {
                assert_eq!(sel.len(), size);
                for &e in &sel {
                    xg.check(e).unwrap();
                    assert_ne!(e, xg.root());
                }
            }
            for sel in mimi_experts(&mh, size) {
                assert_eq!(sel.len(), size);
                for &e in &sel {
                    mg.check(e).unwrap();
                    assert_ne!(e, mg.root());
                }
            }
        }
    }

    #[test]
    fn fixtures_have_no_duplicates() {
        let (_, _, xh) = xmark::schema(1.0);
        for &size in &EXPERT_SIZES {
            for sel in xmark_experts(&xh, size) {
                let mut d = sel.clone();
                d.sort_unstable();
                d.dedup();
                assert_eq!(d.len(), sel.len(), "duplicate in size-{size} fixture");
            }
        }
        let (_, _, mh) = mimi::schema(mimi::Version::Jan06);
        for &size in &EXPERT_SIZES {
            for sel in mimi_experts(&mh, size) {
                let mut d = sel.clone();
                d.sort_unstable();
                d.dedup();
                assert_eq!(d.len(), sel.len(), "duplicate in size-{size} fixture");
            }
        }
    }

    #[test]
    fn experts_disagree_partially_like_the_paper() {
        // Table 2: unanimous agreement 50–80%, trending down with size.
        let (_, _, mh) = mimi::schema(mimi::Version::Jan06);
        for &size in &EXPERT_SIZES {
            let sels = mimi_experts(&mh, size);
            let ua = unanimous_agreement(&sels);
            assert!((0.4..=0.9).contains(&ua), "size {size}: {ua}");
            for i in 0..sels.len() {
                for j in (i + 1)..sels.len() {
                    let a = agreement(&sels[i], &sels[j]);
                    assert!(a > 0.3 && a < 1.0, "experts {i},{j} agree {a}");
                }
            }
        }
    }

    #[test]
    fn consensus_is_nonempty_majority() {
        let (_, _, xh) = xmark::schema(1.0);
        for &size in &EXPERT_SIZES {
            let sels = xmark_experts(&xh, size);
            let c = consensus(&sels, 2);
            assert!(!c.is_empty());
            assert!(c.len() <= size + 3);
        }
    }
}
