//! Structural-shape assertions over the three datasets: the schema
//! characteristics that drive the paper's per-dataset observations
//! (Section 5.4) must actually hold in our reconstructions.

use schema_summary_core::GraphMetrics;
use schema_summary_datasets::{mimi, tpch, xmark};

#[test]
fn tpch_is_flat_and_xml_datasets_are_deep() {
    let x = GraphMetrics::compute(&xmark::dataset(1.0).graph);
    let t = GraphMetrics::compute(&tpch::dataset(0.1).graph);
    let m = GraphMetrics::compute(&mimi::dataset(mimi::Version::Jan06).graph);
    // Relational mapping: root -> relations -> columns, depth exactly 2.
    assert_eq!(t.max_depth, 2);
    // XML schemas nest much deeper.
    assert!(x.max_depth >= 6, "XMark depth {}", x.max_depth);
    assert!(m.max_depth >= 4, "MiMI depth {}", m.max_depth);
}

#[test]
fn lineitem_has_the_widest_fanout_in_tpch() {
    let d = tpch::dataset(0.1);
    let m = GraphMetrics::compute(&d.graph);
    // 16 columns; the root has 8 children.
    assert_eq!(m.max_fanout, 16);
}

#[test]
fn value_link_density_varies_by_dataset() {
    let x = GraphMetrics::compute(&xmark::dataset(1.0).graph);
    let t = GraphMetrics::compute(&tpch::dataset(0.1).graph);
    let m = GraphMetrics::compute(&mimi::dataset(mimi::Version::Jan06).graph);
    assert_eq!(t.value_links, 10, "TPC-H: one per FK");
    // XMark: per-region itemrefs plus person/category references.
    assert!(x.value_links >= 15, "XMark has {}", x.value_links);
    assert!(m.value_links >= 4, "MiMI has {}", m.value_links);
}

#[test]
fn hubs_are_where_the_paper_says() {
    let d = xmark::dataset(1.0);
    let (_, _, h) = xmark::schema(1.0);
    // person receives value links from bidders, sellers, buyers, authors,
    // plus its many children: the highest-degree element in the schema.
    let person_degree = d.graph.degree(h.person);
    for e in d.graph.element_ids() {
        assert!(
            d.graph.degree(e) <= person_degree,
            "{} has degree {} > person's {}",
            d.graph.label(e),
            d.graph.degree(e),
            person_degree
        );
    }
}

#[test]
fn every_dataset_has_a_connected_structural_tree() {
    for d in [
        xmark::dataset(1.0),
        tpch::dataset(0.1),
        mimi::dataset(mimi::Version::Jan06),
    ] {
        assert_eq!(d.graph.preorder().len(), d.graph.len(), "{}", d.name);
        let m = GraphMetrics::compute(&d.graph);
        assert_eq!(m.structural_links, d.graph.len() - 1);
    }
}

#[test]
fn leaf_share_is_realistic() {
    // Most schema elements are attributes/leaf fields in all datasets.
    for d in [
        xmark::dataset(1.0),
        tpch::dataset(0.1),
        mimi::dataset(mimi::Version::Jan06),
    ] {
        let m = GraphMetrics::compute(&d.graph);
        let share = m.leaves as f64 / m.elements as f64;
        assert!(
            (0.4..0.95).contains(&share),
            "{}: leaf share {share:.2}",
            d.name
        );
    }
}
