use schema_summary_algo::{PairMatrices, PathConfig, PathKernel};
use std::time::Instant;

#[test]
#[ignore]
fn probe_xmark_matrices_cost() {
    let (g, s, _) = schema_summary_datasets::xmark::schema(1.0);
    for max_edges in [6, 8, 10] {
        for (label, kernel, prune) in [
            ("dfs-unpruned", PathKernel::Dfs, false),
            ("dfs-pruned", PathKernel::Dfs, true),
            ("layered", PathKernel::Layered, true),
        ] {
            let cfg = PathConfig {
                max_edges,
                max_expansions: 20_000_000,
                kernel,
                prune,
                ..Default::default()
            };
            let t = Instant::now();
            let m = PairMatrices::compute(&s, &cfg);
            println!(
                "xmark n={} max_edges={max_edges} kernel={label} took {:?} truncated={} expansions={}",
                g.len(),
                t.elapsed(),
                m.truncated(),
                m.expansions()
            );
        }
    }
}
