use schema_summary_algo::{PairMatrices, PathConfig};
use std::time::Instant;

#[test]
#[ignore]
fn probe_xmark_matrices_cost() {
    let (g, s, _) = schema_summary_datasets::xmark::schema(1.0);
    for max_edges in [6, 8, 10] {
        let cfg = PathConfig { max_edges, max_expansions: 2_000_000, ..Default::default() };
        let t = Instant::now();
        let m = PairMatrices::compute(&s, &cfg);
        println!("xmark n={} max_edges={max_edges} took {:?} truncated={}", g.len(), t.elapsed(), m.truncated());
    }
}
