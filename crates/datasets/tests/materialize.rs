//! Materialize small instances of the benchmark datasets from their
//! closed-form profiles and verify that Figure 3's annotation pass recovers
//! (approximately) the same statistics — the soundness check behind
//! profile-driven evaluation (DESIGN.md §4).

use schema_summary_core::SchemaStats;
use schema_summary_instance::generate::{generate_instance, GeneratorConfig};
use schema_summary_instance::{annotate_schema, check_conformance};
use schema_summary_datasets::{mimi, xmark};

#[test]
fn xmark_materialization_matches_profile_shape() {
    // A small scale factor keeps the materialized tree around 10^4 nodes.
    let (graph, profile, h) = xmark::schema(0.005);
    let config = GeneratorConfig::from_stats(&graph, &profile, 42, 60_000);
    let data = generate_instance(&graph, &config);
    assert!(data.len() > 3_000, "only {} nodes materialized", data.len());
    assert!(check_conformance(&graph, &data).is_empty());

    let measured = annotate_schema(&graph, &data).unwrap();
    // Key structural RCs agree within sampling tolerance.
    let rc_profile = profile.rc(h.open_auction, h.bidder);
    let rc_measured = measured.rc(h.open_auction, h.bidder);
    assert!(
        (rc_measured - rc_profile).abs() / rc_profile < 0.25,
        "RC(open_auction->bidder): profile {rc_profile}, measured {rc_measured}"
    );
    // Mandatory one-per-parent children stay exact.
    assert!((measured.rc(h.bidder, h.open_auction) - 1.0).abs() < 1e-9);
    // Optional elements keep their optional character.
    let reserve_rate = measured.rc(h.open_auction, h.reserve);
    assert!(
        reserve_rate > 0.2 && reserve_rate < 0.8,
        "reserve presence {reserve_rate}"
    );
}

#[test]
fn materialized_summaries_agree_with_profile_summaries() {
    use schema_summary_algo::{Algorithm, Summarizer};
    use schema_summary_discovery::agreement::agreement;

    let (graph, profile, _) = xmark::schema(0.005);
    let config = GeneratorConfig::from_stats(&graph, &profile, 7, 60_000);
    let data = generate_instance(&graph, &config);
    let measured = annotate_schema(&graph, &data).unwrap();

    let mut sp = Summarizer::new(&graph, &profile);
    let mut sm = Summarizer::new(&graph, &measured);
    let from_profile = sp.select(10, Algorithm::Balance).unwrap();
    let from_instance = sm.select(10, Algorithm::Balance).unwrap();
    let a = agreement(&from_profile, &from_instance);
    assert!(
        a >= 0.6,
        "summaries diverge: {a} agreement\nprofile: {from_profile:?}\ninstance: {from_instance:?}"
    );
}

#[test]
fn mimi_materialization_conforms_and_annotates() {
    let (graph, profile, h) = mimi::schema(mimi::Version::Jan06);
    // Scale the profile down by materializing with a node cap; rates stay.
    let mut config = GeneratorConfig::from_stats(&graph, &profile, 3, 50_000);
    // Shrink the top-level set sizes so the cap isn't dominated by one
    // branch: proteins/taxa/publications get small materialized counts.
    for (e, c) in [
        (h.get("protein"), 60.0),
        (h.get("taxon"), 30.0),
        (h.get("publication"), 40.0),
        (h.get("molecule"), 10.0),
        (h.get("pathway"), 10.0),
    ] {
        config.fanout_overrides.insert(e, c);
    }
    let data = generate_instance(&graph, &config);
    assert!(check_conformance(&graph, &data).is_empty());
    let measured = annotate_schema(&graph, &data).unwrap();
    // Interaction fan-out survives materialization.
    let interactions = graph.parent(h.get("interaction")).unwrap();
    let rc = measured.rc(interactions, h.get("interaction"));
    assert!(
        (rc - 4.0).abs() < 1.2,
        "interactions per container: {rc} (profile: 4.0)"
    );
}

#[test]
fn scale_controls_materialized_size() {
    let (graph, p1, _) = xmark::schema(0.002);
    let (_, p2, _) = xmark::schema(0.004);
    let d1 = generate_instance(&graph, &GeneratorConfig::from_stats(&graph, &p1, 5, 1_000_000));
    let d2 = generate_instance(&graph, &GeneratorConfig::from_stats(&graph, &p2, 5, 1_000_000));
    let ratio = d2.len() as f64 / d1.len() as f64;
    assert!(
        (1.5..3.0).contains(&ratio),
        "doubling scale changed size by {ratio} ({} -> {})",
        d1.len(),
        d2.len()
    );
    let stats = SchemaStats::uniform(&graph);
    let _ = stats; // silence: demonstrates uniform fallback also compiles
}
