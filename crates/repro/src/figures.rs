//! Figures 8 and 9, plus the Section 4.2 convergence observation.

use crate::util::*;
use schema_summary_algo::{
    Algorithm, ImportanceConfig, ImportanceMode, Summarizer, SummarizerConfig,
};
use schema_summary_datasets::{mimi, tpch, xmark};

/// Figure 8: impact of summary size on query-discovery cost (MiMI).
pub fn fig8() {
    header("Figure 8: Impact of summary size on query discovery (MiMI)");
    let d = mimi::dataset(mimi::Version::Jan06);
    let (_, _, best) = baseline_costs(&d.graph, &d.queries);
    println!("without summary (best-first): {best:.2}\n");
    println!("{:>6} {:>12} {:>8}", "size", "avg cost", "bar");
    let mut sum = Summarizer::new(&d.graph, &d.stats);
    for k in [1, 2, 3, 4, 5, 7, 9, 11, 13, 15, 17, 20, 25, 30, 40, 60, 90, 120] {
        if k >= d.graph.len() - 1 {
            break;
        }
        let summary = sum.summarize(k, Algorithm::Balance).expect("summary builds");
        let cost = summary_avg_cost(&d.graph, &summary, &d.queries);
        let bar = "#".repeat((cost * 2.0).round() as usize);
        println!("{k:>6} {cost:>12.2} {bar}");
    }
}

/// Figure 9: schema-structure vs data-distribution ablation.
pub fn fig9() {
    header("Figure 9: Data-driven vs schema-driven vs balanced summaries");
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "Avg. cost", "XMark", "TPC-H", "MiMI"
    );
    let ds = [
        xmark::dataset(1.0),
        tpch::dataset(0.1),
        mimi::dataset(mimi::Version::Jan06),
    ];
    let mut baseline = Vec::new();
    print!("{:<26}", "w/o summary (Best First)");
    for d in &ds {
        let (_, _, b) = baseline_costs(&d.graph, &d.queries);
        print!(" {:>10.2}", b);
        baseline.push(b);
    }
    println!();
    for (label, mode) in [
        ("data driven (p=1)", ImportanceMode::DataOnly),
        ("schema driven (RC=1)", ImportanceMode::SchemaOnly),
        ("data-and-schema (p=0.5)", ImportanceMode::DataAndSchema),
    ] {
        print!("{:<26}", label);
        for d in &ds {
            let k = paper_summary_size(d.name);
            let config = SummarizerConfig {
                importance: ImportanceConfig::default().with_mode(mode),
                ..Default::default()
            };
            let mut s = Summarizer::with_config(&d.graph, &d.stats, config);
            // Figure 9 isolates the importance signal: elements are taken
            // straight from the (ablated) importance ranking, "regardless
            // of the schema structure" — i.e. MaxImportance, without the
            // dominance filtering that would partially rescue a bad
            // ranking.
            let summary = s
                .summarize(k, Algorithm::MaxImportance)
                .expect("summary builds");
            let cost = summary_avg_cost(&d.graph, &summary, &d.queries);
            print!(" {:>10.2}", cost);
        }
        println!();
    }
}

/// Section 4.2 / 5.4: convergence behaviour of the importance iteration as
/// a function of the neighborhood factor p.
pub fn convergence() {
    header("Convergence: importance iterations vs neighborhood factor p");
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "p", "XMark", "TPC-H", "MiMI"
    );
    let ds = [
        xmark::dataset(1.0),
        tpch::dataset(0.1),
        mimi::dataset(mimi::Version::Jan06),
    ];
    for p in [0.05, 0.1, 0.3, 0.5, 0.7, 0.9] {
        print!("{:<8}", p);
        for d in &ds {
            let config = SummarizerConfig {
                importance: ImportanceConfig::default().with_p(p),
                ..Default::default()
            };
            let mut s = Summarizer::with_config(&d.graph, &d.stats, config);
            let r = s.importance();
            print!(
                " {:>10}",
                format!("{}{}", r.iterations, if r.converged { "" } else { "*" })
            );
        }
        println!();
    }
    println!("(* = iteration cap reached before the 0.1% criterion)");
}
