//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [table1|table2|table3|table4|table5|table6|fig8|fig9|convergence|all]
//! ```
//!
//! Each subcommand prints the corresponding table/figure with our measured
//! numbers; EXPERIMENTS.md records these against the paper's. `all` (the
//! default) runs everything in order.

mod extensions;
mod figures;
mod json_report;
mod tables;
mod util;

use std::time::Instant;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let started = Instant::now();
    match arg.as_str() {
        "table1" => tables::table1(),
        "table2" => tables::table2(),
        "table3" => tables::table3(),
        "table4" => tables::table4(),
        "table5" => tables::table5(),
        "table6" => tables::table6(),
        "fig8" => figures::fig8(),
        "fig9" => figures::fig9(),
        "convergence" => figures::convergence(),
        "extensions" => {
            extensions::multilevel();
            extensions::expanded();
            extensions::sessions();
            extensions::history();
        }
        "all" => {
            tables::table1();
            tables::table2();
            tables::table3();
            tables::table4();
            tables::table5();
            tables::table6();
            figures::fig8();
            figures::fig9();
            figures::convergence();
            extensions::multilevel();
            extensions::expanded();
            extensions::sessions();
            extensions::history();
        }
        "json" => json_report::run(std::env::args().nth(2).as_deref()),
        "debug" => tables::debug_xmark(),
        "debug-mimi" => tables::debug_mimi(),
        "debug-fig9" => tables::debug_fig9(),
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected table1..table6, fig8, fig9, convergence, extensions, json, all"
            );
            std::process::exit(2);
        }
    }
    eprintln!("\n[repro] total wall-clock: {:.1?}", started.elapsed());
}
