//! Shared helpers for the reproduction driver.

use schema_summary_algo::{Algorithm, Summarizer};
use schema_summary_core::{ElementId, SchemaGraph, SchemaSummary};
use schema_summary_datasets::Dataset;
use schema_summary_discovery::{
    best_first_cost, breadth_first_cost, depth_first_cost, summary_cost, CostModel, QueryIntention,
};

/// The summary sizes the paper uses in Tables 3, 4 and 6.
pub fn paper_summary_size(dataset: &str) -> usize {
    match dataset {
        "TPC-H" => 5,
        _ => 10,
    }
}

/// Average query-discovery cost over a workload for a no-summary strategy.
pub fn avg_cost<F>(queries: &[QueryIntention], f: F) -> f64
where
    F: Fn(&QueryIntention) -> schema_summary_discovery::DiscoveryCost,
{
    let mut total = 0usize;
    for q in queries {
        let r = f(q);
        assert!(r.found_all, "query {} did not complete", q.name);
        total += r.cost;
    }
    total as f64 / queries.len() as f64
}

/// Average depth-first / breadth-first / best-first costs for a dataset.
pub fn baseline_costs(graph: &SchemaGraph, queries: &[QueryIntention]) -> (f64, f64, f64) {
    (
        avg_cost(queries, |q| depth_first_cost(graph, q)),
        avg_cost(queries, |q| breadth_first_cost(graph, q)),
        avg_cost(queries, |q| best_first_cost(graph, q, CostModel::SiblingScan)),
    )
}

/// Average with-summary cost for a dataset.
pub fn summary_avg_cost(
    graph: &SchemaGraph,
    summary: &SchemaSummary,
    queries: &[QueryIntention],
) -> f64 {
    avg_cost(queries, |q| summary_cost(graph, summary, q, CostModel::SiblingScan))
}

/// Build a summary from an explicit selection and measure its average cost.
pub fn selection_avg_cost(d: &Dataset, selection: &[ElementId]) -> f64 {
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let summary = s
        .summarize_selection(selection)
        .expect("selection materializes");
    summary_avg_cost(&d.graph, &summary, &d.queries)
}

/// Run `algorithm` at size `k` and measure the summary's average cost.
pub fn algorithm_avg_cost(d: &Dataset, k: usize, algorithm: Algorithm) -> f64 {
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let summary = s.summarize(k, algorithm).expect("summary builds");
    summary_avg_cost(&d.graph, &summary, &d.queries)
}

/// Percentage saving of `with` relative to `without`.
pub fn saving(without: f64, with: f64) -> f64 {
    if without <= 0.0 {
        return 0.0;
    }
    (1.0 - with / without) * 100.0
}

/// Render selected element labels, for qualitative inspection.
pub fn labels(graph: &SchemaGraph, selection: &[ElementId]) -> String {
    selection
        .iter()
        .map(|&e| graph.label(e))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}
