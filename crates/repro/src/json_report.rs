//! Machine-readable reproduction report (`repro json [PATH]`).
//!
//! Recomputes the headline experiments into one serde structure so that
//! downstream tooling (plots, regression checks against EXPERIMENTS.md)
//! does not have to scrape the human-readable tables.

use crate::util::*;
use schema_summary_algo::{Algorithm, ImportanceConfig, ImportanceMode, Summarizer, SummarizerConfig};
use schema_summary_baselines::{cafp_select, cafp_select_seeded, twbk_select, twbk_select_seeded, Weighting};
use schema_summary_datasets::{mimi, tpch, xmark, Dataset};
use schema_summary_discovery::agreement::agreement;
use serde::Serialize;

/// Per-dataset statistics (Table 1).
#[derive(Debug, Serialize)]
pub struct DatasetStats {
    pub name: String,
    pub schema_elements: usize,
    pub data_elements: f64,
    pub queries: usize,
    pub avg_intention_size: f64,
}

/// Per-dataset discovery costs (Tables 3 and 4).
#[derive(Debug, Serialize)]
pub struct DiscoveryCosts {
    pub name: String,
    pub depth_first: f64,
    pub breadth_first: f64,
    pub best_first: f64,
    pub balance: f64,
    pub max_importance: f64,
    pub max_coverage: f64,
    pub summary_size: usize,
    pub balance_saving_pct: f64,
}

/// One Figure 8 point.
#[derive(Debug, Serialize)]
pub struct SizePoint {
    pub size: usize,
    pub avg_cost: f64,
}

/// One Figure 9 row.
#[derive(Debug, Serialize)]
pub struct ModeCosts {
    pub mode: String,
    pub xmark: f64,
    pub tpch: f64,
    pub mimi: f64,
}

/// Table 5 row.
#[derive(Debug, Serialize)]
pub struct EvolutionRow {
    pub pair: String,
    pub change_pct: f64,
    pub agreement_pct: Vec<f64>,
}

/// Table 6 row.
#[derive(Debug, Serialize)]
pub struct BaselineRow {
    pub technique: String,
    pub avg_cost: f64,
    pub saving_pct: f64,
}

/// The full report.
#[derive(Debug, Serialize)]
pub struct ReproReport {
    pub table1: Vec<DatasetStats>,
    pub table3_4: Vec<DiscoveryCosts>,
    pub fig8: Vec<SizePoint>,
    pub fig9: Vec<ModeCosts>,
    pub table5: Vec<EvolutionRow>,
    pub table6: Vec<BaselineRow>,
}

fn dataset_list() -> Vec<Dataset> {
    vec![xmark::dataset(1.0), tpch::dataset(0.1), mimi::dataset(mimi::Version::Jan06)]
}

/// Compute the report.
pub fn build() -> ReproReport {
    let datasets = dataset_list();

    let table1 = datasets
        .iter()
        .map(|d| DatasetStats {
            name: d.name.to_string(),
            schema_elements: d.graph.len(),
            data_elements: d.stats.total_card(),
            queries: d.queries.len(),
            avg_intention_size: d.avg_intention_size(),
        })
        .collect();

    let table3_4 = datasets
        .iter()
        .map(|d| {
            let (df, bf, best) = baseline_costs(&d.graph, &d.queries);
            let k = paper_summary_size(d.name);
            let balance = algorithm_avg_cost(d, k, Algorithm::Balance);
            DiscoveryCosts {
                name: d.name.to_string(),
                depth_first: df,
                breadth_first: bf,
                best_first: best,
                balance,
                max_importance: algorithm_avg_cost(d, k, Algorithm::MaxImportance),
                max_coverage: algorithm_avg_cost(d, k, Algorithm::MaxCoverage),
                summary_size: k,
                balance_saving_pct: saving(best, balance),
            }
        })
        .collect();

    // Figure 8 on MiMI.
    let d = mimi::dataset(mimi::Version::Jan06);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let fig8 = [1usize, 3, 5, 7, 9, 11, 13, 15, 17, 20, 25, 30, 40]
        .iter()
        .map(|&k| {
            let summary = s.summarize(k, Algorithm::Balance).expect("summary builds");
            SizePoint {
                size: k,
                avg_cost: summary_avg_cost(&d.graph, &summary, &d.queries),
            }
        })
        .collect();

    // Figure 9 over the three datasets.
    let fig9 = [
        ("data_only", ImportanceMode::DataOnly),
        ("schema_only", ImportanceMode::SchemaOnly),
        ("data_and_schema", ImportanceMode::DataAndSchema),
    ]
    .iter()
    .map(|&(label, mode)| {
        let mut costs = Vec::new();
        for d in &datasets {
            let config = SummarizerConfig {
                importance: ImportanceConfig::default().with_mode(mode),
                ..Default::default()
            };
            let mut s = Summarizer::with_config(&d.graph, &d.stats, config);
            let summary = s
                .summarize(paper_summary_size(d.name), Algorithm::MaxImportance)
                .expect("summary builds");
            costs.push(summary_avg_cost(&d.graph, &summary, &d.queries));
        }
        ModeCosts {
            mode: label.to_string(),
            xmark: costs[0],
            tpch: costs[1],
            mimi: costs[2],
        }
    })
    .collect();

    // Table 5.
    let versions = mimi::Version::ALL;
    let mut selections = Vec::new();
    let mut totals = Vec::new();
    for &v in &versions {
        let (g, st, _) = mimi::schema(v);
        totals.push(st.total_card());
        let mut sum = Summarizer::new(&g, &st);
        selections.push(
            [5usize, 10, 15]
                .iter()
                .map(|&sz| sum.select(sz, Algorithm::Balance).expect("selects"))
                .collect::<Vec<_>>(),
        );
    }
    let table5 = [(0usize, 1usize), (0, 2), (1, 2)]
        .iter()
        .map(|&(a, b)| EvolutionRow {
            pair: format!("{} vs {}", versions[a].name(), versions[b].name()),
            change_pct: (1.0 - totals[a] / totals[b]) * 100.0,
            agreement_pct: (0..3)
                .map(|i| agreement(&selections[a][i], &selections[b][i]) * 100.0)
                .collect(),
        })
        .collect();

    // Table 6.
    let d = mimi::dataset(mimi::Version::Jan06);
    let (_, _, h) = mimi::schema(mimi::Version::Jan06);
    let seeds = mimi::major_entities(&h);
    let (_, _, best) = baseline_costs(&d.graph, &d.queries);
    let k = 10;
    let mut table6 = vec![{
        let c = algorithm_avg_cost(&d, k, Algorithm::Balance);
        BaselineRow {
            technique: "BalanceSummary".into(),
            avg_cost: c,
            saving_pct: saving(best, c),
        }
    }];
    for (label, sel) in [
        ("TWBK w/o human", twbk_select(&d.graph, Weighting::unsupervised(), k)),
        ("TWBK with human", twbk_select_seeded(&d.graph, Weighting::human(), k, &seeds)),
        ("CAFP w/o human", cafp_select(&d.graph, Weighting::unsupervised(), k)),
        ("CAFP with human", cafp_select_seeded(&d.graph, Weighting::human(), k, &seeds)),
    ] {
        let c = selection_avg_cost(&d, &sel);
        table6.push(BaselineRow {
            technique: label.into(),
            avg_cost: c,
            saving_pct: saving(best, c),
        });
    }

    ReproReport {
        table1,
        table3_4,
        fig8,
        fig9,
        table5,
        table6,
    }
}

/// Compute the report and write it to `path` (or stdout when `None`).
pub fn run(path: Option<&str>) {
    let report = build();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match path {
        Some(p) => {
            std::fs::write(p, &json).expect("report file writes");
            eprintln!("[repro] wrote {p}");
        }
        None => println!("{json}"),
    }
}
