//! Extension experiments beyond the paper's evaluation: multi-level
//! summaries (Section 2's extension) and query-history-informed importance
//! (Section 5.4's discussion item).

use crate::util::*;
use schema_summary_algo::history::{compute_importance_with_history, QueryHistory};
use schema_summary_algo::{Algorithm, ImportanceConfig, Summarizer};
use schema_summary_datasets::mimi;
use schema_summary_discovery::agreement::agreement;

/// Multi-level summarization on MiMI: a 15-element fine level under a
/// 5-element overview.
pub fn multilevel() {
    header("Extension: multi-level summary (MiMI, levels 15 -> 5)");
    let d = mimi::dataset(mimi::Version::Jan06);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let ml = s
        .multi_level(&[15, 5], Algorithm::Balance)
        .expect("multi-level builds");
    ml.validate(&d.graph).expect("levels nest");
    for (i, level) in ml.levels().iter().enumerate() {
        let names: Vec<&str> = level
            .visible_elements()
            .iter()
            .map(|&e| d.graph.label(e))
            .collect();
        println!("level {i} (size {:>2}): {}", level.size(), names.join(", "));
    }
    // Discovery cost: drilling through the two levels vs flat summaries.
    use schema_summary_discovery::{
        multilevel_cost, summary_cost, CostModel, ExpansionModel,
    };
    let flat5 = s.summarize(5, Algorithm::Balance).expect("flat 5");
    let flat15 = s.summarize(15, Algorithm::Balance).expect("flat 15");
    let avg = |f: &dyn Fn(&schema_summary_discovery::QueryIntention) -> usize| -> f64 {
        d.queries.iter().map(f).sum::<usize>() as f64 / d.queries.len() as f64
    };
    let c5 = avg(&|q| summary_cost(&d.graph, &flat5, q, CostModel::SiblingScan).cost);
    let c15 = avg(&|q| summary_cost(&d.graph, &flat15, q, CostModel::SiblingScan).cost);
    let cml = avg(&|q| {
        let r = multilevel_cost(&d.graph, &ml, q, CostModel::SiblingScan, ExpansionModel::Scan);
        assert!(r.found_all, "{}", q.name);
        r.cost
    });
    println!("avg discovery cost: flat-5 {c5:.2}, flat-15 {c15:.2}, drill 15->5 {cml:.2}");

    // Drill-down map.
    let coarse = ml.level(1);
    for g in coarse.abstract_ids() {
        let children = ml.child_groups(0, g);
        let rep = d.graph.label(coarse.abstracts()[g.index()].representative);
        let kids: Vec<&str> = children
            .iter()
            .map(|&c| d.graph.label(ml.level(0).abstracts()[c.index()].representative))
            .collect();
        println!("  {rep} expands to: {}", kids.join(", "));
    }
}

/// Expanded summaries (Figure 2(C)): before each query, the group holding
/// most of the user's intention is pre-expanded — modeling a UI that keeps
/// the user's focus component open.
pub fn expanded() {
    header("Extension: expanded summaries (MiMI, size 10)");
    use schema_summary_core::summary::SummaryNode;
    use schema_summary_discovery::{summary_cost, CostModel};
    let d = mimi::dataset(mimi::Version::Jan06);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let summary = s.summarize(10, Algorithm::Balance).expect("summary builds");
    let mut full_total = 0usize;
    let mut expanded_total = 0usize;
    for q in &d.queries {
        full_total += summary_cost(&d.graph, &summary, q, CostModel::SiblingScan).cost;
        // The group containing the most intention elements.
        let mut counts = vec![0usize; summary.abstracts().len()];
        for group in &q.targets {
            for &e in group {
                if let SummaryNode::Abstract(aid) = summary.node_of(e) {
                    counts[aid.index()] += 1;
                }
            }
        }
        let focus = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| schema_summary_core::AbstractId(i as u32));
        let cost = match focus {
            Some(aid) if counts[aid.index()] > 0 => {
                let pre = summary.expand(&d.graph, aid).expect("expansion");
                summary_cost(&d.graph, &pre, q, CostModel::SiblingScan).cost
            }
            _ => summary_cost(&d.graph, &summary, q, CostModel::SiblingScan).cost,
        };
        expanded_total += cost;
    }
    let n = d.queries.len() as f64;
    println!(
        "avg cost: full summary {:.2}, focus group pre-expanded {:.2} ({:.0}% further saving)",
        full_total as f64 / n,
        expanded_total as f64 / n,
        saving(full_total as f64, expanded_total as f64)
    );
}

/// Session learning curves on MiMI: a single user runs the whole 52-query
/// trace, remembering what they have seen.
pub fn sessions() {
    header("Extension: session learning curves (MiMI, 52-query trace)");
    use schema_summary_discovery::{
        session_best_first, session_with_summary, CostModel, ExpansionModel,
    };
    let d = mimi::dataset(mimi::Version::Jan06);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let summary = s.summarize(10, Algorithm::Balance).expect("summary builds");
    let plain = session_best_first(&d.graph, &d.queries, CostModel::SiblingScan);
    let with = session_with_summary(
        &d.graph,
        &summary,
        &d.queries,
        CostModel::SiblingScan,
        ExpansionModel::Scan,
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10}",
        "", "total", "first 10", "last 10", "learned"
    );
    for (label, curve) in [("best-first", &plain), ("with summary", &with)] {
        println!(
            "{:<22} {:>10} {:>12.2} {:>12.2} {:>10}",
            label,
            curve.total(),
            curve.mean_of_first(10),
            curve.mean_of_last(10),
            curve.elements_learned
        );
    }
    println!(
        "summary advantage: {:.0}% of the whole-session total, {:.0}% of the first 10 queries",
        saving(plain.total() as f64, with.total() as f64),
        saving(plain.mean_of_first(10), with.mean_of_first(10))
    );
}

/// Query-history-blended importance on MiMI, trained on the first half of
/// the trace and evaluated on the second half.
pub fn history() {
    header("Extension: query-history-informed importance (MiMI)");
    let d = mimi::dataset(mimi::Version::Jan06);
    let (train, eval) = d.queries.split_at(d.queries.len() / 2);

    let mut h = QueryHistory::for_graph(&d.graph);
    for q in train {
        let elements: Vec<_> = q.all_elements().into_iter().collect();
        h.record(&elements);
    }

    println!(
        "{:<10} {:>12} {:>14}",
        "blend", "eval cost", "vs no history"
    );
    let mut baseline_cost = None;
    for blend in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let imp = compute_importance_with_history(
            &d.graph,
            &d.stats,
            &h,
            &ImportanceConfig::default(),
            blend,
        );
        // Select by the blended ranking (MaxImportance over it), then build
        // and evaluate on the held-out half.
        let selection = imp.top_k(&d.graph, 10);
        let mut s = Summarizer::new(&d.graph, &d.stats);
        let summary = s.summarize_selection(&selection).expect("summary builds");
        let cost = {
            let total: usize = eval
                .iter()
                .map(|q| {
                    schema_summary_discovery::summary_cost(
                        &d.graph,
                        &summary,
                        q,
                        schema_summary_discovery::CostModel::SiblingScan,
                    )
                    .cost
                })
                .sum();
            total as f64 / eval.len() as f64
        };
        let base = *baseline_cost.get_or_insert(cost);
        println!("{blend:<10} {cost:>12.2} {:>13.1}%", saving(base, cost));
        if blend == 1.0 {
            println!("  pure-history selection: {}", labels(&d.graph, &selection));
        }
    }

    // Stability note: summaries from blended vs plain importance.
    let plain = {
        let mut s = Summarizer::new(&d.graph, &d.stats);
        s.select(10, Algorithm::MaxImportance).expect("selects")
    };
    let blended = compute_importance_with_history(
        &d.graph,
        &d.stats,
        &h,
        &ImportanceConfig::default(),
        0.5,
    )
    .top_k(&d.graph, 10);
    println!(
        "selection agreement, history-blend 0.5 vs plain: {:.0}%",
        agreement(&plain, &blended) * 100.0
    );
}
