//! Tables 1–6 of the paper's evaluation.

use crate::util::*;
use schema_summary_algo::{Algorithm, Summarizer};
use schema_summary_baselines::{cafp_select, cafp_select_seeded, twbk_select, twbk_select_seeded, Weighting};
use schema_summary_datasets::{experts, mimi, tpch, xmark, Dataset};
use schema_summary_discovery::agreement::{agreement, consensus, unanimous_agreement};

fn datasets() -> Vec<Dataset> {
    vec![xmark::dataset(1.0), tpch::dataset(0.1), mimi::dataset(mimi::Version::Jan06)]
}

/// Diagnostic dump for the XMark pipeline (not part of the paper).
pub fn debug_xmark() {
    use schema_summary_discovery::{best_first_cost, summary_cost, CostModel};
    let d = xmark::dataset(1.0);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let imp = s.importance().clone();
    let ranked = imp.ranked(&d.graph);
    println!("top-15 by importance:");
    for &e in ranked.iter().take(15) {
        println!(
            "  {:<30} imp={:>12.0} card={:>10.0}",
            d.graph.label_path(e),
            imp.score(e),
            d.stats.card(e)
        );
    }
    let sel = s.select(10, Algorithm::Balance).unwrap();
    println!("\nbalance selection (10): {}", labels(&d.graph, &sel));
    let summary = s.summarize_selection(&sel).unwrap();
    for a in summary.abstracts() {
        println!(
            "  group {:<26} {} members",
            d.graph.label_path(a.representative),
            a.members.len()
        );
    }
    println!("\nper-query: best-first vs with-summary");
    for q in &d.queries {
        let b = best_first_cost(&d.graph, q, CostModel::SiblingScan);
        let w = summary_cost(&d.graph, &summary, q, CostModel::SiblingScan);
        println!("  {:<12} best={:>4} summary={:>4}", q.name, b.cost, w.cost);
    }
}

/// Table 1: dataset statistics.
pub fn table1() {
    header("Table 1: Dataset statistics");
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "", "XMark", "TPC-H", "MiMI"
    );
    let ds = datasets();
    print!("{:<28}", "# Schema elements");
    for d in &ds {
        print!(" {:>10}", d.graph.len());
    }
    println!();
    print!("{:<28}", "# Data elements (in 000s)");
    for d in &ds {
        print!(" {:>10.0}", d.stats.total_card() / 1000.0);
    }
    println!();
    print!("{:<28}", "# Queries");
    for d in &ds {
        print!(" {:>10}", d.queries.len());
    }
    println!();
    print!("{:<28}", "Avg. query intention size");
    for d in &ds {
        print!(" {:>10.2}", d.avg_intention_size());
    }
    println!();
}

/// Table 2: agreement between automatic and expert summaries.
pub fn table2() {
    header("Table 2: Agreement with expert summaries (XMark & MiMI)");
    for name in ["XMark", "MiMI"] {
        println!("\n{name}:");
        println!(
            "{:<22} {:>10} {:>10} {:>10}",
            "", "5-element", "10-element", "15-element"
        );
        let (graph, stats, expert_sets): (_, _, Vec<Vec<Vec<_>>>) = match name {
            "XMark" => {
                let (g, s, h) = xmark::schema(1.0);
                let sets = experts::EXPERT_SIZES
                    .iter()
                    .map(|&sz| experts::xmark_experts(&h, sz))
                    .collect();
                (g, s, sets)
            }
            _ => {
                let (g, s, h) = mimi::schema(mimi::Version::Jan06);
                let sets = experts::EXPERT_SIZES
                    .iter()
                    .map(|&sz| experts::mimi_experts(&h, sz))
                    .collect();
                (g, s, sets)
            }
        };
        let mut s = Summarizer::new(&graph, &stats);
        let autos: Vec<Vec<_>> = experts::EXPERT_SIZES
            .iter()
            .map(|&sz| s.select(sz, Algorithm::Balance).expect("balance selects"))
            .collect();
        for user in 0..3 {
            print!("{:<22}", format!("User {} vs. Auto.", user + 1));
            for (experts_at_size, auto) in expert_sets.iter().zip(&autos) {
                print!(" {:>9.0}%", agreement(&experts_at_size[user], auto) * 100.0);
            }
            println!();
        }
        print!("{:<22}", "User Agreement");
        for (i, _) in experts::EXPERT_SIZES.iter().enumerate() {
            print!(" {:>9.0}%", unanimous_agreement(&expert_sets[i]) * 100.0);
        }
        println!();
        print!("{:<22}", "Consen. vs. Auto.");
        for (i, _) in experts::EXPERT_SIZES.iter().enumerate() {
            let cons = consensus(&expert_sets[i], 2);
            // Agreement normalized by the nominal summary size, as the
            // paper's consensus summary targets the same size.
            let sz = experts::EXPERT_SIZES[i];
            let inter = autos[i].iter().filter(|e| cons.contains(e)).count();
            print!(" {:>9.0}%", inter as f64 / sz as f64 * 100.0);
        }
        println!();
    }
}

/// Table 3: average query-discovery cost with and without summaries.
pub fn table3() {
    use schema_summary_discovery::{
        best_first_cost, breadth_first_cost, depth_first_cost, summary_cost, CostModel,
        WorkloadReport,
    };
    header("Table 3: Query discovery cost (BalanceSummary)");
    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "Avg. cost", "XMark", "TPC-H", "MiMI"
    );
    let ds = datasets();
    // Full per-strategy reports; the table prints means, the extended rows
    // add the distribution the paper's averages hide.
    let mut reports: Vec<[WorkloadReport; 4]> = Vec::new();
    for d in &ds {
        let k = paper_summary_size(d.name);
        let mut s = Summarizer::new(&d.graph, &d.stats);
        let summary = s.summarize(k, Algorithm::Balance).expect("summary builds");
        reports.push([
            WorkloadReport::run("depth-first", &d.queries, |q| depth_first_cost(&d.graph, q)),
            WorkloadReport::run("breadth-first", &d.queries, |q| {
                breadth_first_cost(&d.graph, q)
            }),
            WorkloadReport::run("best-first", &d.queries, |q| {
                best_first_cost(&d.graph, q, CostModel::SiblingScan)
            }),
            WorkloadReport::run("with-summary", &d.queries, |q| {
                summary_cost(&d.graph, &summary, q, CostModel::SiblingScan)
            }),
        ]);
    }
    for (label, pick) in [
        ("Depth First", 0usize),
        ("Breadth First", 1),
        ("Best First", 2),
        ("w/ summary", 3),
    ] {
        print!("{:<18}", label);
        for r in &reports {
            print!(" {:>10.2}", r[pick].mean);
        }
        println!();
    }
    print!("{:<18}", "size (Summ.%)");
    for d in &ds {
        let k = paper_summary_size(d.name);
        print!(
            " {:>10}",
            format!("{k} ({:.1}%)", k as f64 / d.graph.len() as f64 * 100.0)
        );
    }
    println!();
    print!("{:<18}", "Saving%");
    for r in &reports {
        print!(" {:>9.1}%", r[3].saving_vs(&r[2]));
    }
    println!();
    // Extended distribution rows (not in the paper's table; the medians
    // show the mean is not carried by outliers).
    print!("{:<18}", "  median (best/summ)");
    for r in &reports {
        print!(" {:>10}", format!("{:.1}/{:.1}", r[2].median, r[3].median));
    }
    println!();
    print!("{:<18}", "  p95 (best/summ)");
    for r in &reports {
        print!(" {:>10}", format!("{}/{}", r[2].p95, r[3].p95));
    }
    println!();
}

/// Table 4: impact of balancing importance and coverage.
pub fn table4() {
    header("Table 4: BalanceSummary vs MaxImportance vs MaxCoverage");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "Avg. cost", "XMark", "TPC-H", "MiMI"
    );
    let ds = datasets();
    let mut best = Vec::new();
    print!("{:<22}", "w/o summary (Best)");
    for d in &ds {
        let (_, _, b) = baseline_costs(&d.graph, &d.queries);
        print!(" {:>10.2}", b);
        best.push(b);
    }
    println!();
    let mut balance_saving = Vec::new();
    for (label, alg) in [
        ("w/ BalanceSummary", Algorithm::Balance),
        ("w/ MaxImportance", Algorithm::MaxImportance),
        ("w/ MaxCoverage", Algorithm::MaxCoverage),
    ] {
        let mut costs = Vec::new();
        print!("{:<22}", label);
        for d in &ds {
            let k = paper_summary_size(d.name);
            let c = algorithm_avg_cost(d, k, alg);
            print!(" {:>10.2}", c);
            costs.push(c);
        }
        println!();
        print!("{:<22}", "  Saving%");
        for (i, &c) in costs.iter().enumerate() {
            print!(" {:>9.1}%", saving(best[i], c));
        }
        println!();
        if alg == Algorithm::Balance {
            balance_saving = costs
                .iter()
                .enumerate()
                .map(|(i, &c)| saving(best[i], c))
                .collect();
        } else {
            print!("{:<22}", "  Saving Reduction%");
            for (i, &c) in costs.iter().enumerate() {
                let s = saving(best[i], c);
                let red = if balance_saving[i] > 0.0 {
                    (balance_saving[i] - s) / balance_saving[i] * 100.0
                } else {
                    0.0
                };
                print!(" {:>9.1}%", red);
            }
            println!();
        }
    }
}

/// Table 5: summary stability across MiMI versions.
pub fn table5() {
    header("Table 5: Agreement between summaries on MiMI versions");
    let versions = mimi::Version::ALL;
    let mut selections: Vec<Vec<Vec<_>>> = Vec::new(); // [version][size_idx]
    let mut totals = Vec::new();
    for &v in &versions {
        let (g, s, _) = mimi::schema(v);
        totals.push(s.total_card());
        let mut sum = Summarizer::new(&g, &s);
        selections.push(
            experts::EXPERT_SIZES
                .iter()
                .map(|&sz| sum.select(sz, Algorithm::Balance).expect("selects"))
                .collect(),
        );
    }
    println!(
        "{:<22} {:>8} {:>8} {:>9} {:>9}",
        "", "change%", "5-ele.", "10-ele.", "15-ele."
    );
    let pairs = [(0usize, 1usize), (0, 2), (1, 2)];
    for &(a, b) in &pairs {
        let change = (1.0 - totals[a] / totals[b]) * 100.0;
        print!(
            "{:<22} {:>7.0}%",
            format!("{} vs. {}", versions[a].name(), versions[b].name()),
            change
        );
        for (sel_a, sel_b) in selections[a].iter().zip(&selections[b]) {
            print!(" {:>7.0}%", agreement(sel_a, sel_b) * 100.0);
        }
        println!();
    }
}

/// Table 6: comparison against ER model abstraction on MiMI.
pub fn table6() {
    header("Table 6: ER model abstraction techniques on MiMI (size 10)");
    let d = mimi::dataset(mimi::Version::Jan06);
    let (_, _, _, seeds) = {
        let (g, s, h) = mimi::schema(mimi::Version::Jan06);
        let seeds = mimi::major_entities(&h);
        (g, s, h, seeds)
    };
    let (_, _, best) = baseline_costs(&d.graph, &d.queries);
    let k = 10;
    println!("{:<26} {:>10} {:>10}", "", "Avg. cost", "Saving%");
    let balance = algorithm_avg_cost(&d, k, Algorithm::Balance);
    println!(
        "{:<26} {:>10.2} {:>9.1}%",
        "with BalanceSummary",
        balance,
        saving(best, balance)
    );
    for (label, sel) in [
        ("TWBK w/o human", twbk_select(&d.graph, Weighting::unsupervised(), k)),
        ("TWBK with human", twbk_select_seeded(&d.graph, Weighting::human(), k, &seeds)),
        ("CAFP w/o human", cafp_select(&d.graph, Weighting::unsupervised(), k)),
        ("CAFP with human", cafp_select_seeded(&d.graph, Weighting::human(), k, &seeds)),
    ] {
        let cost = selection_avg_cost(&d, &sel);
        println!("{:<26} {:>10.2} {:>9.1}%", label, cost, saving(best, cost));
        println!("{:<26}   [{}]", "", labels(&d.graph, &sel));
    }
}

/// Diagnostic dump for the MiMI pipeline (not part of the paper).
pub fn debug_mimi() {
    use schema_summary_discovery::{best_first_cost, summary_cost, CostModel};
    let d = mimi::dataset(mimi::Version::Jan06);
    let (_, _, h) = mimi::schema(mimi::Version::Jan06);
    let mut s = Summarizer::new(&d.graph, &d.stats);
    let sel = s.select(10, Algorithm::Balance).unwrap();
    println!("balance selection (10): {}", labels(&d.graph, &sel));
    let seeded = twbk_select_seeded(&d.graph, Weighting::human(), 10, &mimi::major_entities(&h));
    println!("seeded selection (10): {}", labels(&d.graph, &seeded));
    let sum_bal = s.summarize_selection(&sel).unwrap();
    let sum_seed = s.summarize_selection(&seeded).unwrap();
    for (name, sum) in [("balance", &sum_bal), ("seeded", &sum_seed)] {
        println!("\n{name} groups:");
        for a in sum.abstracts() {
            println!("  {:<40} {} members", d.graph.label_path(a.representative), a.members.len());
        }
    }
    println!("\nper-query: best vs balance-summary vs seeded-summary");
    for q in &d.queries {
        let b = best_first_cost(&d.graph, q, CostModel::SiblingScan);
        let w1 = summary_cost(&d.graph, &sum_bal, q, CostModel::SiblingScan);
        let w2 = summary_cost(&d.graph, &sum_seed, q, CostModel::SiblingScan);
        println!("  {:<10} best={:>4} bal={:>4} seed={:>4}", q.name, b.cost, w1.cost, w2.cost);
    }
}

/// Diagnostic: MiMI schema-only and data-only top selections.
pub fn debug_fig9() {
    use schema_summary_algo::{ImportanceConfig, ImportanceMode, SummarizerConfig};
    let d = mimi::dataset(mimi::Version::Jan06);
    for mode in [ImportanceMode::SchemaOnly, ImportanceMode::DataOnly] {
        let config = SummarizerConfig {
            importance: ImportanceConfig::default().with_mode(mode),
            ..Default::default()
        };
        let mut s = Summarizer::with_config(&d.graph, &d.stats, config);
        let sel = s.select(10, Algorithm::MaxImportance).unwrap();
        println!("{mode:?}: {}", labels(&d.graph, &sel));
    }
}
