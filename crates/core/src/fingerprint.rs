//! Content fingerprints for (annotated) schema graphs.
//!
//! The serving layer (`schema-summary-service`) keys its catalog, its
//! memoized matrices, and its result cache by schema *content*, not by
//! object identity: two structurally identical annotated graphs must share
//! every cached artifact, and any observable change — a label, a type, a
//! link, a cardinality — must produce a different key so stale results can
//! never be served.
//!
//! [`SchemaFingerprint`] is a 128-bit deterministic hash over a canonical
//! byte encoding of the graph (element labels and types in id order,
//! parent/child structure, sorted value links) and, for annotated
//! fingerprints, the cardinality statistics (per-element `Card`, sorted
//! per-element `RC` adjacency). Two independent FNV-1a streams over the
//! same byte sequence keep accidental collisions out of practical reach
//! while staying dependency-free and byte-for-byte reproducible across
//! platforms and processes.

use crate::graph::SchemaGraph;
use crate::stats::SchemaStats;
use crate::types::{AtomicType, SchemaType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 128-bit content fingerprint of a schema graph, optionally including
/// its cardinality annotations.
///
/// Fingerprints are stable across processes and platforms: equal content
/// always yields equal fingerprints, and the value is safe to persist or
/// exchange between services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SchemaFingerprint {
    hi: u64,
    lo: u64,
}

impl SchemaFingerprint {
    /// Fingerprint of the graph structure alone: labels, types, structural
    /// links (with child order), and value links. Statistics are ignored,
    /// so re-annotating a database does not change this value.
    pub fn of_graph(graph: &SchemaGraph) -> Self {
        let mut h = Fnv2::new();
        write_graph(&mut h, graph);
        h.finish()
    }

    /// Fingerprint of an annotated graph: everything
    /// [`of_graph`](Self::of_graph) covers plus every element cardinality
    /// and every relative-cardinality entry. This is the catalog key used
    /// by the serving layer — any change the summarization algorithms
    /// could observe changes this value.
    pub fn of_annotated(graph: &SchemaGraph, stats: &SchemaStats) -> Self {
        let mut h = Fnv2::new();
        write_graph(&mut h, graph);
        write_stats(&mut h, graph, stats);
        h.finish()
    }

    /// Stable 128-bit digest of arbitrary bytes, using the same dual
    /// FNV-1a streams as the graph fingerprint. The serving layer's disk
    /// tier keys store files and checksums payloads with this: equal bytes
    /// always yield equal digests, across processes and platforms.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = Fnv2::new();
        h.bytes(bytes);
        h.finish()
    }

    /// The fingerprint as 16 little-endian bytes (`hi` then `lo`), for
    /// fixed-width binary encodings such as store-file checksums.
    pub fn to_le_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.hi.to_le_bytes());
        out[8..].copy_from_slice(&self.lo.to_le_bytes());
        out
    }

    /// Rebuild a fingerprint from [`to_le_bytes`](Self::to_le_bytes).
    pub fn from_le_bytes(bytes: [u8; 16]) -> Self {
        SchemaFingerprint {
            hi: u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
            lo: u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes")),
        }
    }

    /// The fingerprint as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parse a fingerprint previously rendered with
    /// [`to_hex`](Self::to_hex) / `Display`.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(SchemaFingerprint { hi, lo })
    }
}

impl fmt::Display for SchemaFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Two independent 64-bit FNV-1a streams over the same byte feed. The
/// second stream perturbs each input byte so the two halves decorrelate.
struct Fnv2 {
    hi: u64,
    lo: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv2 {
    fn new() -> Self {
        Fnv2 {
            hi: FNV_OFFSET,
            lo: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn byte(&mut self, b: u8) {
        self.hi = (self.hi ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self.lo = (self.lo ^ u64::from(b ^ 0x5a)).wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        // to_bits distinguishes -0.0 from 0.0 and is total on NaN; stats
        // never produce NaN, and bit-identity is the right equivalence for
        // a cache key anyway.
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn finish(self) -> SchemaFingerprint {
        SchemaFingerprint {
            hi: self.hi,
            lo: self.lo,
        }
    }
}

fn write_type(h: &mut Fnv2, ty: &SchemaType) {
    match ty {
        SchemaType::Simple(at) => {
            h.byte(1);
            h.byte(match at {
                AtomicType::Str => 0,
                AtomicType::Int => 1,
                AtomicType::Float => 2,
                AtomicType::Bool => 3,
                AtomicType::Date => 4,
                AtomicType::Id => 5,
                AtomicType::IdRef => 6,
            });
        }
        SchemaType::SetOf(inner) => {
            h.byte(2);
            write_type(h, inner);
        }
        SchemaType::Rcd => h.byte(3),
        SchemaType::Choice => h.byte(4),
    }
}

fn write_graph(h: &mut Fnv2, graph: &SchemaGraph) {
    h.byte(0x01);
    h.u64(graph.len() as u64);
    for e in graph.element_ids() {
        h.str(graph.label(e));
        write_type(h, graph.ty(e));
    }
    h.byte(0x02);
    for e in graph.element_ids() {
        h.u64(graph.parent(e).map_or(u64::MAX, |p| u64::from(p.0)));
    }
    // Child order is part of the schema (document order), so it is hashed
    // as stored rather than sorted.
    h.byte(0x03);
    for e in graph.element_ids() {
        h.u64(graph.children(e).len() as u64);
        for &c in graph.children(e) {
            h.u64(u64::from(c.0));
        }
    }
    h.byte(0x04);
    let mut value_links: Vec<(u32, u32)> = graph.value_links().map(|(f, t)| (f.0, t.0)).collect();
    value_links.sort_unstable();
    h.u64(value_links.len() as u64);
    for (f, t) in value_links {
        h.u64(u64::from(f));
        h.u64(u64::from(t));
    }
}

fn write_stats(h: &mut Fnv2, graph: &SchemaGraph, stats: &SchemaStats) {
    h.byte(0x05);
    for e in graph.element_ids() {
        h.f64(stats.card(e));
    }
    h.byte(0x06);
    for e in graph.element_ids() {
        let mut adj: Vec<(u32, f64)> = stats.rc_neighbors(e).map(|(nb, rc)| (nb.0, rc)).collect();
        adj.sort_unstable_by_key(|&(nb, _)| nb);
        h.u64(adj.len() as u64);
        for (nb, rc) in adj {
            h.u64(u64::from(nb));
            h.f64(rc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SchemaGraphBuilder;
    use crate::stats::LinkCount;

    fn build(extra_link: bool) -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(person, "name", SchemaType::simple_str())
            .unwrap();
        let oa = b
            .add_child(b.root(), "open_auction", SchemaType::set_of_rcd())
            .unwrap();
        let bidder = b.add_child(oa, "bidder", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(bidder, person).unwrap();
        if extra_link {
            b.add_value_link(oa, person).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn identical_graphs_hash_equal() {
        let a = build(false);
        let b = build(false);
        assert_eq!(
            SchemaFingerprint::of_graph(&a),
            SchemaFingerprint::of_graph(&b)
        );
        let s1 = SchemaStats::uniform(&a);
        let s2 = SchemaStats::uniform(&b);
        assert_eq!(
            SchemaFingerprint::of_annotated(&a, &s1),
            SchemaFingerprint::of_annotated(&b, &s2)
        );
    }

    #[test]
    fn structural_change_changes_fingerprint() {
        let a = build(false);
        let b = build(true);
        assert_ne!(
            SchemaFingerprint::of_graph(&a),
            SchemaFingerprint::of_graph(&b)
        );
    }

    #[test]
    fn label_change_changes_fingerprint() {
        let g = build(false);
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(person, "fullname", SchemaType::simple_str())
            .unwrap();
        let oa = b
            .add_child(b.root(), "open_auction", SchemaType::set_of_rcd())
            .unwrap();
        let bidder = b.add_child(oa, "bidder", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(bidder, person).unwrap();
        let g2 = b.build().unwrap();
        assert_ne!(
            SchemaFingerprint::of_graph(&g),
            SchemaFingerprint::of_graph(&g2)
        );
    }

    #[test]
    fn cardinality_change_changes_annotated_but_not_structural() {
        let g = build(false);
        let uniform = SchemaStats::uniform(&g);
        let person = g.find_unique("person").unwrap();
        let people = g.find_unique("people").unwrap();
        let mut cards = vec![1u64; g.len()];
        cards[person.index()] = 500;
        let counts = vec![LinkCount {
            from: people,
            to: person,
            count: 500,
        }];
        let skewed = SchemaStats::from_link_counts(&g, &cards, &counts).unwrap();
        assert_ne!(
            SchemaFingerprint::of_annotated(&g, &uniform),
            SchemaFingerprint::of_annotated(&g, &skewed)
        );
        // The structural fingerprint ignores statistics entirely.
        assert_eq!(
            SchemaFingerprint::of_graph(&g),
            SchemaFingerprint::of_graph(&g)
        );
    }

    #[test]
    fn hex_roundtrip() {
        let g = build(false);
        let fp = SchemaFingerprint::of_graph(&g);
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(SchemaFingerprint::from_hex(&hex), Some(fp));
        assert_eq!(format!("{fp}"), hex);
        assert_eq!(SchemaFingerprint::from_hex("nope"), None);
    }

    #[test]
    fn byte_digest_is_stable_and_distinguishes_content() {
        let a = SchemaFingerprint::of_bytes(b"hello");
        let b = SchemaFingerprint::of_bytes(b"hello");
        let c = SchemaFingerprint::of_bytes(b"hellp");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(SchemaFingerprint::from_le_bytes(a.to_le_bytes()), a);
    }

    #[test]
    fn serde_roundtrip() {
        let g = build(false);
        let fp = SchemaFingerprint::of_annotated(&g, &SchemaStats::uniform(&g));
        let json = serde_json::to_string(&fp).unwrap();
        let back: SchemaFingerprint = serde_json::from_str(&json).unwrap();
        assert_eq!(fp, back);
    }
}
