//! The schema graph (Definition 1) and its builder.
//!
//! A [`SchemaGraph`] is a labeled directed graph whose nodes are schema
//! elements and whose edges are **structural links** (parent → child; these
//! always form a tree rooted at the root element) and **value links**
//! (referrer → referee; foreign keys and `IDREF` constraints, lifted to the
//! composite elements that contain the key fields, per Section 2 of the
//! paper).
//!
//! Graphs are immutable once built; use [`SchemaGraphBuilder`] to construct
//! them. All algorithm crates treat the graph as an array of elements with
//! adjacency lists, matching the representation in the paper's Figure 4.

use crate::error::SchemaError;
use crate::ids::ElementId;
use crate::types::SchemaType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A schema element: a relation, column, XML element, or XML attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Element {
    /// Human-readable label (tag name, relation name, column name).
    pub label: String,
    /// The element's type (Definition 1's type grammar).
    pub ty: SchemaType,
}

/// Which family a link belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Parent–child link derived from a composite type.
    Structural,
    /// Inclusion-constraint link (foreign key / `IDREF`).
    Value,
}

/// An immutable schema graph (Definition 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaGraph {
    elements: Vec<Element>,
    parent: Vec<Option<ElementId>>,
    children: Vec<Vec<ElementId>>,
    value_out: Vec<Vec<ElementId>>,
    value_in: Vec<Vec<ElementId>>,
    root: ElementId,
    n_value_links: usize,
}

impl SchemaGraph {
    /// Number of elements in the graph (including the root).
    #[inline]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the graph has no elements. Built graphs always contain at
    /// least the root, so this is only `true` for degenerate cases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The root element (the only element with no incoming structural link).
    #[inline]
    pub fn root(&self) -> ElementId {
        self.root
    }

    /// Iterator over all element ids in insertion (preorder-compatible)
    /// order.
    pub fn element_ids(&self) -> impl ExactSizeIterator<Item = ElementId> + '_ {
        (0..self.elements.len() as u32).map(ElementId)
    }

    /// The element record for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range; ids must come from this graph.
    #[inline]
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.index()]
    }

    /// The label of `id`.
    #[inline]
    pub fn label(&self, id: ElementId) -> &str {
        &self.elements[id.index()].label
    }

    /// The type of `id`.
    #[inline]
    pub fn ty(&self, id: ElementId) -> &SchemaType {
        &self.elements[id.index()].ty
    }

    /// Structural parent of `id` (`None` for the root).
    #[inline]
    pub fn parent(&self, id: ElementId) -> Option<ElementId> {
        self.parent[id.index()]
    }

    /// Ordered structural children of `id`.
    #[inline]
    pub fn children(&self, id: ElementId) -> &[ElementId] {
        &self.children[id.index()]
    }

    /// Referee elements of `id`'s outgoing value links.
    #[inline]
    pub fn value_links_from(&self, id: ElementId) -> &[ElementId] {
        &self.value_out[id.index()]
    }

    /// Referrer elements of `id`'s incoming value links.
    #[inline]
    pub fn value_links_to(&self, id: ElementId) -> &[ElementId] {
        &self.value_in[id.index()]
    }

    /// Total number of structural links (= `len() - 1`).
    #[inline]
    pub fn num_structural_links(&self) -> usize {
        self.elements.len().saturating_sub(1)
    }

    /// Total number of value links.
    #[inline]
    pub fn num_value_links(&self) -> usize {
        self.n_value_links
    }

    /// Iterator over all structural links as `(parent, child)` pairs.
    pub fn structural_links(&self) -> impl Iterator<Item = (ElementId, ElementId)> + '_ {
        self.element_ids().flat_map(move |p| {
            self.children(p).iter().map(move |&c| (p, c))
        })
    }

    /// Iterator over all value links as `(referrer, referee)` pairs.
    pub fn value_links(&self) -> impl Iterator<Item = (ElementId, ElementId)> + '_ {
        self.element_ids().flat_map(move |from| {
            self.value_links_from(from).iter().map(move |&to| (from, to))
        })
    }

    /// All elements directly connected to `id` via any link, each tagged with
    /// the link kind and direction. The same neighbor may appear multiple
    /// times when parallel links exist (e.g. both a structural and a value
    /// link).
    pub fn neighbors(&self, id: ElementId) -> Vec<(ElementId, LinkKind)> {
        let mut out = Vec::with_capacity(
            self.children(id).len()
                + usize::from(self.parent(id).is_some())
                + self.value_links_from(id).len()
                + self.value_links_to(id).len(),
        );
        if let Some(p) = self.parent(id) {
            out.push((p, LinkKind::Structural));
        }
        out.extend(self.children(id).iter().map(|&c| (c, LinkKind::Structural)));
        out.extend(self.value_links_from(id).iter().map(|&v| (v, LinkKind::Value)));
        out.extend(self.value_links_to(id).iter().map(|&v| (v, LinkKind::Value)));
        out
    }

    /// Number of links (of both kinds, both directions) incident to `id` —
    /// the element's *connectivity* in the sense of Section 3.1.
    pub fn degree(&self, id: ElementId) -> usize {
        self.children(id).len()
            + usize::from(self.parent(id).is_some())
            + self.value_links_from(id).len()
            + self.value_links_to(id).len()
    }

    /// Depth of `id` in the structural tree (root has depth 0).
    pub fn depth(&self, id: ElementId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Structural ancestors of `id`, nearest first (excludes `id` itself).
    pub fn ancestors(&self, id: ElementId) -> Vec<ElementId> {
        let mut out = Vec::new();
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Whether `anc` is a strict structural ancestor of `desc`.
    pub fn is_ancestor(&self, anc: ElementId, desc: ElementId) -> bool {
        let mut cur = desc;
        while let Some(p) = self.parent(cur) {
            if p == anc {
                return true;
            }
            cur = p;
        }
        false
    }

    /// Path of element ids from the root to `id`, inclusive.
    pub fn path_from_root(&self, id: ElementId) -> Vec<ElementId> {
        let mut path = self.ancestors(id);
        path.reverse();
        path.push(id);
        path
    }

    /// Slash-separated label path from the root to `id` (e.g.
    /// `site/people/person/name`).
    pub fn label_path(&self, id: ElementId) -> String {
        let path = self.path_from_root(id);
        let mut s = String::new();
        for (i, e) in path.iter().enumerate() {
            if i > 0 {
                s.push('/');
            }
            s.push_str(self.label(*e));
        }
        s
    }

    /// Preorder traversal of the whole structural tree, children in
    /// declaration order.
    pub fn preorder(&self) -> Vec<ElementId> {
        self.subtree(self.root)
    }

    /// Preorder traversal of the structural subtree rooted at `id`.
    pub fn subtree(&self, id: ElementId) -> Vec<ElementId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(e) = stack.pop() {
            out.push(e);
            for &c in self.children(e).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Number of elements in the structural subtree rooted at `id`
    /// (including `id`).
    pub fn subtree_size(&self, id: ElementId) -> usize {
        let mut n = 0;
        let mut stack = vec![id];
        while let Some(e) = stack.pop() {
            n += 1;
            stack.extend_from_slice(self.children(e));
        }
        n
    }

    /// All elements whose label equals `label`, in id order. Labels are not
    /// required to be unique (e.g. XMark's `item` appears under each region).
    pub fn find_by_label(&self, label: &str) -> Vec<ElementId> {
        self.element_ids()
            .filter(|&e| self.label(e) == label)
            .collect()
    }

    /// The single element with label `label`, if exactly one exists.
    pub fn find_unique(&self, label: &str) -> Option<ElementId> {
        let mut found = None;
        for e in self.element_ids() {
            if self.label(e) == label {
                if found.is_some() {
                    return None;
                }
                found = Some(e);
            }
        }
        found
    }

    /// The element at `path`, a slash-separated label path starting at (and
    /// including) the root label.
    pub fn find_by_path(&self, path: &str) -> Option<ElementId> {
        let mut parts = path.split('/');
        let root_label = parts.next()?;
        if self.label(self.root) != root_label {
            return None;
        }
        let mut cur = self.root;
        for part in parts {
            cur = *self
                .children(cur)
                .iter()
                .find(|&&c| self.label(c) == part)?;
        }
        Some(cur)
    }

    /// Check that `id` belongs to this graph.
    pub fn check(&self, id: ElementId) -> Result<(), SchemaError> {
        if id.index() < self.elements.len() {
            Ok(())
        } else {
            Err(SchemaError::UnknownElement(id))
        }
    }

    /// Render an indented text outline of the structural tree, annotating
    /// value links. Intended for debugging and examples.
    pub fn outline(&self) -> String {
        let mut s = String::new();
        self.outline_rec(self.root, 0, &mut s);
        s
    }

    fn outline_rec(&self, id: ElementId, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(self.label(id));
        if self.ty(id).is_set() {
            out.push('*');
        }
        for &v in self.value_links_from(id) {
            out.push_str(&format!(" ->{}", self.label(v)));
        }
        out.push('\n');
        for &c in self.children(id) {
            self.outline_rec(c, depth + 1, out);
        }
    }
}

impl fmt::Display for SchemaGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SchemaGraph({} elements, {} structural links, {} value links)",
            self.len(),
            self.num_structural_links(),
            self.num_value_links()
        )
    }
}

/// Incremental builder for [`SchemaGraph`].
///
/// The builder starts from a root element and grows the structural tree with
/// [`add_child`](Self::add_child); value links may be added between any two
/// existing elements. [`build`](Self::build) validates the whole graph.
#[derive(Debug, Clone)]
pub struct SchemaGraphBuilder {
    elements: Vec<Element>,
    parent: Vec<Option<ElementId>>,
    children: Vec<Vec<ElementId>>,
    value_out: Vec<Vec<ElementId>>,
    value_in: Vec<Vec<ElementId>>,
    n_value_links: usize,
}

impl SchemaGraphBuilder {
    /// Create a builder whose root element has `root_label` and `Rcd` type.
    pub fn new(root_label: impl Into<String>) -> Self {
        Self::with_root_type(root_label, SchemaType::Rcd)
    }

    /// Create a builder with an explicitly typed root.
    pub fn with_root_type(root_label: impl Into<String>, ty: SchemaType) -> Self {
        SchemaGraphBuilder {
            elements: vec![Element {
                label: root_label.into(),
                ty,
            }],
            parent: vec![None],
            children: vec![Vec::new()],
            value_out: vec![Vec::new()],
            value_in: vec![Vec::new()],
            n_value_links: 0,
        }
    }

    /// The root element id (always `ElementId(0)`).
    #[inline]
    pub fn root(&self) -> ElementId {
        ElementId(0)
    }

    /// Number of elements added so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether only the root exists.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elements.len() <= 1
    }

    /// Add a child element under `parent`, returning its id.
    pub fn add_child(
        &mut self,
        parent: ElementId,
        label: impl Into<String>,
        ty: SchemaType,
    ) -> Result<ElementId, SchemaError> {
        let label = label.into();
        if label.is_empty() {
            return Err(SchemaError::EmptyLabel);
        }
        if parent.index() >= self.elements.len() {
            return Err(SchemaError::UnknownElement(parent));
        }
        if self.elements[parent.index()].ty.is_simple() {
            return Err(SchemaError::ChildOfSimple { parent });
        }
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(Element { label, ty });
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.value_out.push(Vec::new());
        self.value_in.push(Vec::new());
        self.children[parent.index()].push(id);
        Ok(id)
    }

    /// Add a value link from referrer `from` to referee `to`.
    ///
    /// Per Section 2, value links are recorded between the composite elements
    /// that semantically own the reference (e.g. `bidder → person`), not
    /// between the simple key fields.
    pub fn add_value_link(
        &mut self,
        from: ElementId,
        to: ElementId,
    ) -> Result<(), SchemaError> {
        if from.index() >= self.elements.len() {
            return Err(SchemaError::UnknownElement(from));
        }
        if to.index() >= self.elements.len() {
            return Err(SchemaError::UnknownElement(to));
        }
        if from == to {
            return Err(SchemaError::SelfValueLink(from));
        }
        if self.value_out[from.index()].contains(&to) {
            return Err(SchemaError::DuplicateValueLink { from, to });
        }
        self.value_out[from.index()].push(to);
        self.value_in[to.index()].push(from);
        self.n_value_links += 1;
        Ok(())
    }

    /// Finish construction, validating Definition 1's invariants.
    pub fn build(self) -> Result<SchemaGraph, SchemaError> {
        // Structural links form a tree by construction (each add_child sets
        // exactly one parent, and parents always predate children, so no
        // cycles are possible). Validate the remaining invariants.
        if self.elements[0].ty.is_simple() && !self.children[0].is_empty() {
            return Err(SchemaError::Invalid(
                "root has Simple type but structural children".into(),
            ));
        }
        for (i, el) in self.elements.iter().enumerate() {
            if el.ty.is_simple() && !self.children[i].is_empty() {
                return Err(SchemaError::Invalid(format!(
                    "element e{i} ('{}') has Simple type but structural children",
                    el.label
                )));
            }
        }
        Ok(SchemaGraph {
            elements: self.elements,
            parent: self.parent,
            children: self.children,
            value_out: self.value_out,
            value_in: self.value_in,
            root: ElementId(0),
            n_value_links: self.n_value_links,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SchemaGraph {
        // site -> (people -> person* -> name, open_auctions -> open_auction* -> bidder*)
        // bidder ->V person
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        let _name = b.add_child(person, "name", SchemaType::simple_str()).unwrap();
        let oas = b
            .add_child(b.root(), "open_auctions", SchemaType::rcd())
            .unwrap();
        let oa = b.add_child(oas, "open_auction", SchemaType::set_of_rcd()).unwrap();
        let bidder = b.add_child(oa, "bidder", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(bidder, person).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let g = small();
        assert_eq!(g.len(), 7);
        assert_eq!(g.num_structural_links(), 6);
        assert_eq!(g.num_value_links(), 1);
        let person = g.find_unique("person").unwrap();
        let bidder = g.find_unique("bidder").unwrap();
        assert_eq!(g.value_links_from(bidder), &[person]);
        assert_eq!(g.value_links_to(person), &[bidder]);
        assert_eq!(g.label(g.root()), "site");
        assert_eq!(g.parent(g.root()), None);
    }

    #[test]
    fn depth_ancestors_paths() {
        let g = small();
        let name = g.find_unique("name").unwrap();
        assert_eq!(g.depth(name), 3);
        assert_eq!(g.depth(g.root()), 0);
        let anc = g.ancestors(name);
        assert_eq!(anc.len(), 3);
        assert_eq!(anc[2], g.root());
        assert_eq!(g.label_path(name), "site/people/person/name");
        assert!(g.is_ancestor(g.root(), name));
        assert!(!g.is_ancestor(name, g.root()));
        let person = g.find_unique("person").unwrap();
        assert!(g.is_ancestor(person, name));
    }

    #[test]
    fn preorder_visits_all_in_document_order() {
        let g = small();
        let order = g.preorder();
        assert_eq!(order.len(), g.len());
        let labels: Vec<_> = order.iter().map(|&e| g.label(e)).collect();
        assert_eq!(
            labels,
            vec![
                "site",
                "people",
                "person",
                "name",
                "open_auctions",
                "open_auction",
                "bidder"
            ]
        );
    }

    #[test]
    fn subtree_and_size() {
        let g = small();
        let people = g.find_unique("people").unwrap();
        assert_eq!(g.subtree_size(people), 3);
        let labels: Vec<_> = g.subtree(people).iter().map(|&e| g.label(e)).collect();
        assert_eq!(labels, vec!["people", "person", "name"]);
    }

    #[test]
    fn neighbors_and_degree() {
        let g = small();
        let person = g.find_unique("person").unwrap();
        // parent (people), child (name), incoming value link (bidder)
        assert_eq!(g.degree(person), 3);
        let n = g.neighbors(person);
        assert_eq!(n.len(), 3);
        assert!(n
            .iter()
            .any(|&(e, k)| g.label(e) == "bidder" && k == LinkKind::Value));
    }

    #[test]
    fn find_by_path() {
        let g = small();
        let name = g.find_by_path("site/people/person/name").unwrap();
        assert_eq!(g.label(name), "name");
        assert!(g.find_by_path("site/people/nope").is_none());
        assert!(g.find_by_path("wrong/people").is_none());
    }

    #[test]
    fn duplicate_labels_are_allowed() {
        let mut b = SchemaGraphBuilder::new("root");
        let a = b.add_child(b.root(), "region", SchemaType::rcd()).unwrap();
        let c = b.add_child(b.root(), "region2", SchemaType::rcd()).unwrap();
        b.add_child(a, "item", SchemaType::set_of_rcd()).unwrap();
        b.add_child(c, "item", SchemaType::set_of_rcd()).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.find_by_label("item").len(), 2);
        assert!(g.find_unique("item").is_none());
    }

    #[test]
    fn rejects_child_of_simple() {
        let mut b = SchemaGraphBuilder::new("root");
        let leaf = b
            .add_child(b.root(), "leaf", SchemaType::simple_str())
            .unwrap();
        let err = b.add_child(leaf, "x", SchemaType::rcd()).unwrap_err();
        assert!(matches!(err, SchemaError::ChildOfSimple { .. }));
    }

    #[test]
    fn rejects_bad_value_links() {
        let mut b = SchemaGraphBuilder::new("root");
        let a = b.add_child(b.root(), "a", SchemaType::rcd()).unwrap();
        let c = b.add_child(b.root(), "b", SchemaType::rcd()).unwrap();
        assert!(matches!(
            b.add_value_link(a, a),
            Err(SchemaError::SelfValueLink(_))
        ));
        b.add_value_link(a, c).unwrap();
        assert!(matches!(
            b.add_value_link(a, c),
            Err(SchemaError::DuplicateValueLink { .. })
        ));
        assert!(matches!(
            b.add_value_link(a, ElementId(99)),
            Err(SchemaError::UnknownElement(_))
        ));
    }

    #[test]
    fn rejects_empty_label() {
        let mut b = SchemaGraphBuilder::new("root");
        assert!(matches!(
            b.add_child(b.root(), "", SchemaType::rcd()),
            Err(SchemaError::EmptyLabel)
        ));
    }

    #[test]
    fn outline_render() {
        let g = small();
        let o = g.outline();
        assert!(o.contains("site"));
        assert!(o.contains("  people"));
        assert!(o.contains("person*"));
        assert!(o.contains("bidder* ->person"));
    }

    #[test]
    fn serde_roundtrip() {
        let g = small();
        let json = serde_json::to_string(&g).unwrap();
        let back: SchemaGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn structural_and_value_link_iterators() {
        let g = small();
        assert_eq!(g.structural_links().count(), 6);
        let vl: Vec<_> = g.value_links().collect();
        assert_eq!(vl.len(), 1);
        assert_eq!(g.label(vl[0].0), "bidder");
        assert_eq!(g.label(vl[0].1), "person");
    }
}
