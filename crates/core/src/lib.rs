//! Schema graph and schema summary data model.
//!
//! This crate implements Section 2 of *Schema Summarization* (Yu & Jagadish,
//! VLDB 2006): schemas as labeled directed graphs ([`SchemaGraph`],
//! Definition 1) and schema summaries ([`summary::SchemaSummary`],
//! Definition 2), together with the cardinality statistics
//! ([`stats::SchemaStats`]) that every formula in the paper consumes.
//!
//! A schema graph models both relational and hierarchical (XML) schemas:
//!
//! * every node is an **element** — a relation, a column, an XML element, or
//!   an XML attribute — carrying a label and a [`types::SchemaType`];
//! * **structural links** connect parents to children (relation → column,
//!   element → sub-element) and always form a tree rooted at the
//!   distinguished root element;
//! * **value links** connect referrer elements to referee elements (foreign
//!   keys, `IDREF`s) and may connect arbitrary pairs.
//!
//! # Example
//!
//! ```
//! use schema_summary_core::graph::SchemaGraphBuilder;
//! use schema_summary_core::types::SchemaType;
//!
//! let mut b = SchemaGraphBuilder::new("site");
//! let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
//! let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
//! let name = b.add_child(person, "name", SchemaType::simple_str()).unwrap();
//! let graph = b.build().unwrap();
//!
//! assert_eq!(graph.len(), 4);
//! assert_eq!(graph.parent(name), Some(person));
//! assert_eq!(graph.label(people), "people");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diff;
pub mod error;
pub mod fingerprint;
pub mod graph;
pub mod ids;
pub mod metrics;
pub mod stats;
pub mod summary;
pub mod types;

pub use diff::{DeltaClass, SchemaDelta, SummaryDiff};
pub use error::SchemaError;
pub use fingerprint::SchemaFingerprint;
pub use graph::{LinkKind, SchemaGraph, SchemaGraphBuilder};
pub use ids::{AbstractId, ElementId};
pub use metrics::GraphMetrics;
pub use stats::{EdgeRec, SchemaStats};
pub use summary::{SchemaSummary, SummaryNode};
pub use types::{AtomicType, SchemaType};
