//! Error types shared by the schema-summary crates.

use crate::ids::ElementId;
use std::fmt;

/// Errors raised while constructing or validating schema graphs and
/// summaries.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// An element id did not refer to an element of this graph.
    UnknownElement(ElementId),
    /// A second structural parent was declared for an element; structural
    /// links must form a tree (Definition 1 allows exactly one incoming
    /// structural link per non-root element).
    DuplicateParent {
        /// The element that already has a parent.
        child: ElementId,
        /// Its existing parent.
        existing: ElementId,
        /// The rejected additional parent.
        rejected: ElementId,
    },
    /// An element label was empty.
    EmptyLabel,
    /// A structural child was attached to a `Simple`-typed element.
    ChildOfSimple {
        /// The would-be parent.
        parent: ElementId,
    },
    /// A value link was declared twice between the same pair of elements.
    DuplicateValueLink {
        /// Referrer element.
        from: ElementId,
        /// Referee element.
        to: ElementId,
    },
    /// A value link endpoint coincided (self references are not allowed).
    SelfValueLink(ElementId),
    /// The graph failed whole-graph validation.
    Invalid(String),
    /// Statistics vector length did not match the graph's element count.
    StatsShape {
        /// Number of elements in the graph.
        expected: usize,
        /// Length of the offending vector.
        actual: usize,
    },
    /// A summary operation referenced an unknown abstract element.
    UnknownAbstract(crate::ids::AbstractId),
    /// A requested summary size was not achievable.
    BadSummarySize {
        /// Requested number of summary elements.
        requested: usize,
        /// Number of eligible elements available.
        available: usize,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownElement(id) => write!(f, "unknown element {id}"),
            SchemaError::DuplicateParent {
                child,
                existing,
                rejected,
            } => write!(
                f,
                "element {child} already has parent {existing}; cannot also attach to {rejected}"
            ),
            SchemaError::EmptyLabel => f.write_str("element label must be non-empty"),
            SchemaError::ChildOfSimple { parent } => {
                write!(f, "element {parent} has Simple type and cannot have children")
            }
            SchemaError::DuplicateValueLink { from, to } => {
                write!(f, "duplicate value link {from} -> {to}")
            }
            SchemaError::SelfValueLink(id) => write!(f, "self value link on {id}"),
            SchemaError::Invalid(msg) => write!(f, "invalid schema graph: {msg}"),
            SchemaError::StatsShape { expected, actual } => write!(
                f,
                "statistics shape mismatch: graph has {expected} elements, got {actual}"
            ),
            SchemaError::UnknownAbstract(id) => write!(f, "unknown abstract element {id}"),
            SchemaError::BadSummarySize {
                requested,
                available,
            } => write!(
                f,
                "cannot build summary of size {requested}: only {available} eligible elements"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SchemaError::DuplicateParent {
            child: ElementId(3),
            existing: ElementId(1),
            rejected: ElementId(2),
        };
        let s = e.to_string();
        assert!(s.contains("e3") && s.contains("e1") && s.contains("e2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&SchemaError::EmptyLabel);
    }

    #[test]
    fn stats_shape_message() {
        let e = SchemaError::StatsShape {
            expected: 10,
            actual: 7,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("7"));
    }
}
