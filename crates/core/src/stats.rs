//! Cardinality statistics over a schema graph (Section 4.1).
//!
//! Every formula in the paper consumes two statistics derived from the
//! database:
//!
//! * the **cardinality** `Card(e)` of each element — how many data nodes of
//!   that element the database contains; and
//! * the **relative cardinality** `RC(e1 → e2)` of each directed link
//!   endpoint — the average number of `e2` data nodes connected to each `e1`
//!   data node.
//!
//! [`SchemaStats`] packages both. It can be produced by the faithful
//! depth-first annotation pass over a materialized database
//! (`schema-summary-instance`), or constructed directly from closed-form
//! counts via [`SchemaStats::from_link_counts`] (used by the synthetic
//! dataset profiles, which is sound because the paper's algorithms observe
//! the database *only* through these statistics).

use crate::error::SchemaError;
use crate::graph::SchemaGraph;
use crate::ids::ElementId;
use serde::{Deserialize, Serialize};

/// Instance count for one schema link: `count` is the number of link
/// instances in the database (child data nodes for a structural link,
/// resolved references for a value link).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkCount {
    /// Source of the schema link (parent / referrer element).
    pub from: ElementId,
    /// Target of the schema link (child / referee element).
    pub to: ElementId,
    /// Number of instances of this link in the database.
    pub count: u64,
}

/// One record of the flat CSR adjacency: everything the path-exploration
/// and importance kernels need about an edge `u → neighbor`, precomputed so
/// the innermost loops never scan an adjacency list.
///
/// Since the struct-of-arrays overhaul (DESIGN.md §3.19) this is a *view*
/// assembled on the fly from the four parallel CSR lanes — the storage
/// itself keeps each field in its own contiguous array so the hot kernels
/// stream plain `f64` lanes. [`SchemaStats::edges`] yields these by value;
/// lane-slice accessors ([`SchemaStats::edge_rc_factors`] etc.) expose the
/// raw lanes for the data-parallel kernels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeRec {
    /// The other endpoint.
    pub neighbor: ElementId,
    /// `RC(u → neighbor)`, aggregated over parallel links.
    pub rc: f64,
    /// `min(1, 1/rc)` — the clamped per-edge affinity factor of Formula 2
    /// (see `PathConfig::rc_factor`); 0 when the edge is not traversable
    /// (`rc == 0`).
    pub rc_factor: f64,
    /// `W(neighbor → u)` — the *backward* neighbor weight of Formula 1,
    /// i.e. the weight the coverage product (Formula 3) multiplies in when
    /// a path crosses this edge forward. When the statistics are built via
    /// [`SchemaStats::from_link_counts`] this ratio is computed directly
    /// from the raw link counts (the cardinality denominators cancel
    /// algebraically), so its bits are invariant under cardinality-only
    /// changes — a property the incremental maintenance planner relies on.
    pub w_back: f64,
}

/// Number of trailing padding slots the CSR lanes are rounded up to. Four
/// `f64`s fill a 256-bit vector register, so kernels that stream a lane in
/// width-4 chunks never need a scalar tail guard against the allocation
/// edge; the padding carries zeros (`rc = 0` marks it non-traversable).
pub const LANE_PAD: usize = 4;

/// Cardinality and relative-cardinality annotations for a schema graph.
///
/// The adjacency is stored in compressed-sparse-row form as a
/// **struct of arrays**: `adj_off[e] .. adj_off[e+1]` indexes element `e`'s
/// edges in four parallel lanes (`adj_neighbor`, `adj_rc`, `adj_rc_factor`,
/// `adj_w_back`). Splitting the per-edge record into contiguous same-typed
/// lanes (rather than an array of `EdgeRec` structs) lets the layered
/// relaxation and importance kernels in `schema-summary-algo` stream the
/// `f64` factor lanes branch-light and autovectorized; each lane's tail is
/// padded to a multiple of [`LANE_PAD`] with non-traversable zeros.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaStats {
    card: Vec<f64>,
    /// CSR row offsets: element `e`'s edges live at lane positions
    /// `adj_off[e] .. adj_off[e + 1]`.
    adj_off: Vec<u32>,
    /// Lane: the other endpoint of each edge, aggregated over parallel
    /// links between the same pair.
    adj_neighbor: Vec<ElementId>,
    /// Lane: `RC(u → neighbor)` per edge.
    adj_rc: Vec<f64>,
    /// Lane: clamped affinity factor `min(1, 1/rc)` per edge (0 when not
    /// traversable).
    adj_rc_factor: Vec<f64>,
    /// Lane: backward neighbor weight `W(neighbor → u)` per edge.
    adj_w_back: Vec<f64>,
    /// Per element: number of traversable (`rc > 0`) edges in its row —
    /// exactly the expansions one frontier visit of the element costs, so
    /// the batched layered kernel can account budgets per source lane
    /// without re-scanning the rc lane.
    trav_deg: Vec<u32>,
    /// Per element: sum of outgoing RCs (denominator of the neighbor weight
    /// in Formula 1).
    rc_sum: Vec<f64>,
    total: f64,
}

impl SchemaStats {
    /// Build statistics from per-element cardinalities and per-link instance
    /// counts.
    ///
    /// `RC(e1 → e2) = count / Card(e1)` and `RC(e2 → e1) = count / Card(e2)`
    /// for each link `(e1 → e2)` with `count` instances (Figure 3, line 15).
    /// Elements with zero cardinality get zero RCs on their side.
    ///
    /// Every `(from, to)` pair must be a structural or value link of `graph`;
    /// links not mentioned get zero counts.
    pub fn from_link_counts(
        graph: &SchemaGraph,
        element_card: &[u64],
        link_counts: &[LinkCount],
    ) -> Result<Self, SchemaError> {
        if element_card.len() != graph.len() {
            return Err(SchemaError::StatsShape {
                expected: graph.len(),
                actual: element_card.len(),
            });
        }
        let card: Vec<f64> = element_card.iter().map(|&c| c as f64).collect();
        let (rc_adj, cnt_adj) = Self::count_adjacency(graph, &card, link_counts)?;
        let total = card.iter().sum();
        Ok(Self::from_adjacency_weighted(card, rc_adj, &cnt_adj, total))
    }

    /// Build the nested RC and raw-count adjacencies from per-link instance
    /// counts — the shared front half of [`from_link_counts`](Self::
    /// from_link_counts) and [`grow_from`](Self::grow_from), so a grown
    /// annotation accumulates its rows in exactly the order a cold build
    /// does (bitwise identity depends on the fold order).
    #[allow(clippy::type_complexity)]
    fn count_adjacency(
        graph: &SchemaGraph,
        card: &[f64],
        link_counts: &[LinkCount],
    ) -> Result<(Vec<Vec<(ElementId, f64)>>, Vec<Vec<(ElementId, f64)>>), SchemaError> {
        let n = graph.len();
        // Collect the set of schema links so we can validate inputs and
        // default unmentioned links to zero.
        let mut counts: Vec<(ElementId, ElementId, f64)> = Vec::new();
        let mut seen = std::collections::HashMap::<(ElementId, ElementId), usize>::new();
        for (p, c) in graph.structural_links() {
            seen.insert((p, c), counts.len());
            counts.push((p, c, 0.0));
        }
        for (f, t) in graph.value_links() {
            seen.insert((f, t), counts.len());
            counts.push((f, t, 0.0));
        }
        for lc in link_counts {
            match seen.get(&(lc.from, lc.to)) {
                Some(&i) => counts[i].2 += lc.count as f64,
                None => {
                    return Err(SchemaError::Invalid(format!(
                        "link count given for non-link {} -> {}",
                        lc.from, lc.to
                    )))
                }
            }
        }

        let mut rc_adj: Vec<Vec<(ElementId, f64)>> = vec![Vec::new(); n];
        // Raw-count adjacency, kept alongside the RC one: the neighbor
        // weight `W(e → ·)` is a ratio of RCs sharing the same cardinality
        // denominator, so it equals the ratio of raw counts. Computing it
        // from the counts keeps `w_back` bitwise independent of the
        // cardinalities (see `EdgeRec::w_back`).
        let mut cnt_adj: Vec<Vec<(ElementId, f64)>> = vec![Vec::new(); n];
        for &(e1, e2, cnt) in &counts {
            let rc_fwd = if card[e1.index()] > 0.0 {
                cnt / card[e1.index()]
            } else {
                0.0
            };
            let rc_bwd = if card[e2.index()] > 0.0 {
                cnt / card[e2.index()]
            } else {
                0.0
            };
            accumulate(&mut rc_adj[e1.index()], e2, rc_fwd);
            accumulate(&mut rc_adj[e2.index()], e1, rc_bwd);
            accumulate(&mut cnt_adj[e1.index()], e2, cnt);
            accumulate(&mut cnt_adj[e2.index()], e1, cnt);
        }
        Ok((rc_adj, cnt_adj))
    }

    /// Finalize statistics from per-element cardinalities and a nested
    /// outgoing-RC adjacency: flattens to CSR and precomputes the per-edge
    /// factors (`rc_factor`, `w_back`) consumed by the exploration and
    /// importance kernels.
    fn from_adjacency(card: Vec<f64>, rc_adj: Vec<Vec<(ElementId, f64)>>, total: f64) -> Self {
        let wsrc = rc_adj.clone();
        Self::from_adjacency_weighted(card, rc_adj, &wsrc, total)
    }

    /// [`from_adjacency`](Self::from_adjacency) with an explicit weight
    /// source for the backward neighbor weights: `w_back` is computed as a
    /// ratio within `wsrc`'s rows instead of `rc_adj`'s. The two are
    /// mathematically interchangeable whenever `wsrc` rows are a per-row
    /// positive rescaling of `rc_adj` rows (e.g. raw link counts, which are
    /// RCs times the row's cardinality) — but the choice fixes which inputs
    /// the ratio's *bits* depend on.
    fn from_adjacency_weighted(
        card: Vec<f64>,
        rc_adj: Vec<Vec<(ElementId, f64)>>,
        wsrc: &[Vec<(ElementId, f64)>],
        total: f64,
    ) -> Self {
        let n = card.len();
        let rc_sum: Vec<f64> = rc_adj
            .iter()
            .map(|adj| adj.iter().map(|&(_, rc)| rc).sum())
            .collect();
        let wsrc_sum: Vec<f64> = wsrc
            .iter()
            .map(|adj| adj.iter().map(|&(_, w)| w).sum())
            .collect();
        let edge_count: usize = rc_adj.iter().map(Vec::len).sum();
        let padded = edge_count.next_multiple_of(LANE_PAD);
        let mut adj_off = Vec::with_capacity(n + 1);
        adj_off.push(0u32);
        let mut adj_neighbor = Vec::with_capacity(padded);
        let mut adj_rc = Vec::with_capacity(padded);
        let mut adj_rc_factor = Vec::with_capacity(padded);
        let mut adj_w_back = Vec::with_capacity(padded);
        let mut trav_deg = Vec::with_capacity(n);
        for (u, out) in rc_adj.iter().enumerate() {
            let traversable = push_row(
                out,
                u,
                wsrc,
                &rc_sum,
                &wsrc_sum,
                &mut adj_neighbor,
                &mut adj_rc,
                &mut adj_rc_factor,
                &mut adj_w_back,
            );
            trav_deg.push(traversable);
            adj_off.push(adj_neighbor.len() as u32);
        }
        // Tail padding: zero-RC slots past the last row, outside every
        // `adj_off` range, so width-aligned lane sweeps stay in bounds.
        while adj_neighbor.len() < padded {
            adj_neighbor.push(ElementId(0));
            adj_rc.push(0.0);
            adj_rc_factor.push(0.0);
            adj_w_back.push(0.0);
        }
        SchemaStats {
            card,
            adj_off,
            adj_neighbor,
            adj_rc,
            adj_rc_factor,
            adj_w_back,
            trav_deg,
            rc_sum,
            total,
        }
    }

    /// Schema-driven statistics (Section 5.4's "Full Schema Driven" mode):
    /// every cardinality is 1 and every relative cardinality is 1, so only
    /// connectivity matters.
    pub fn uniform(graph: &SchemaGraph) -> Self {
        let n = graph.len();
        let card = vec![1.0; n];
        let mut rc_adj: Vec<Vec<(ElementId, f64)>> = vec![Vec::new(); n];
        for (p, c) in graph.structural_links() {
            accumulate(&mut rc_adj[p.index()], c, 1.0);
            accumulate(&mut rc_adj[c.index()], p, 1.0);
        }
        for (f, t) in graph.value_links() {
            accumulate(&mut rc_adj[f.index()], t, 1.0);
            accumulate(&mut rc_adj[t.index()], f, 1.0);
        }
        Self::from_adjacency(card, rc_adj, n as f64)
    }

    /// A copy of these statistics with every relative cardinality forced to
    /// 1 but cardinalities retained. Combined with uniform initial
    /// importance this realizes the paper's fully-schema-driven ablation.
    pub fn with_unit_rc(&self) -> Self {
        let rc_adj: Vec<Vec<(ElementId, f64)>> = (0..self.card.len())
            .map(|u| {
                self.edge_neighbors(ElementId(u as u32))
                    .iter()
                    .map(|&nb| (nb, 1.0))
                    .collect()
            })
            .collect();
        Self::from_adjacency(self.card.clone(), rc_adj, self.total)
    }

    /// Number of elements covered by these statistics.
    #[inline]
    pub fn len(&self) -> usize {
        self.card.len()
    }

    /// Whether the statistics cover zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.card.is_empty()
    }

    /// Cardinality of `e` in the database.
    #[inline]
    pub fn card(&self, e: ElementId) -> f64 {
        self.card[e.index()]
    }

    /// Sum of all element cardinalities — the paper's "number of data
    /// elements" (Table 1) and the conserved total importance mass.
    #[inline]
    pub fn total_card(&self) -> f64 {
        self.total
    }

    /// Relative cardinality `RC(from → to)`: average number of `to` data
    /// nodes connected to each `from` data node. Zero if the two elements
    /// are not linked.
    pub fn rc(&self, from: ElementId, to: ElementId) -> f64 {
        self.edges(from)
            .find(|e| e.neighbor == to)
            .map(|e| e.rc)
            .unwrap_or(0.0)
    }

    /// The lane positions of element `e`'s CSR row; index the whole-lane
    /// accessors ([`rc_factor_lane`](Self::rc_factor_lane) etc.) with it.
    #[inline]
    pub fn edge_range(&self, e: ElementId) -> std::ops::Range<usize> {
        self.adj_off[e.index()] as usize..self.adj_off[e.index() + 1] as usize
    }

    /// Number of CSR edge records in `e`'s row.
    #[inline]
    pub fn degree(&self, e: ElementId) -> usize {
        (self.adj_off[e.index() + 1] - self.adj_off[e.index()]) as usize
    }

    /// Number of traversable (`rc > 0`) edges in `e`'s row — the edge
    /// expansions one frontier visit of `e` costs a path kernel.
    #[inline]
    pub fn traversable_degree(&self, e: ElementId) -> u32 {
        self.trav_deg[e.index()]
    }

    /// The CSR edge records of `e`, assembled from the four lanes:
    /// neighbors with their outgoing RCs and the precomputed per-edge
    /// factors, aggregated over parallel links.
    #[inline]
    pub fn edges(&self, e: ElementId) -> impl ExactSizeIterator<Item = EdgeRec> + '_ {
        let r = self.edge_range(e);
        self.adj_neighbor[r.clone()]
            .iter()
            .zip(&self.adj_rc[r.clone()])
            .zip(&self.adj_rc_factor[r.clone()])
            .zip(&self.adj_w_back[r])
            .map(|(((&neighbor, &rc), &rc_factor), &w_back)| EdgeRec {
                neighbor,
                rc,
                rc_factor,
                w_back,
            })
    }

    /// Neighbor lane of `e`'s row.
    #[inline]
    pub fn edge_neighbors(&self, e: ElementId) -> &[ElementId] {
        &self.adj_neighbor[self.edge_range(e)]
    }

    /// RC lane of `e`'s row (`rc > 0` is the traversability predicate).
    #[inline]
    pub fn edge_rcs(&self, e: ElementId) -> &[f64] {
        &self.adj_rc[self.edge_range(e)]
    }

    /// Clamped affinity-factor lane of `e`'s row.
    #[inline]
    pub fn edge_rc_factors(&self, e: ElementId) -> &[f64] {
        &self.adj_rc_factor[self.edge_range(e)]
    }

    /// Backward neighbor-weight lane of `e`'s row.
    #[inline]
    pub fn edge_w_backs(&self, e: ElementId) -> &[f64] {
        &self.adj_w_back[self.edge_range(e)]
    }

    /// The full neighbor lane (all rows concatenated, tail-padded); index
    /// with [`edge_range`](Self::edge_range).
    #[inline]
    pub fn neighbor_lane(&self) -> &[ElementId] {
        &self.adj_neighbor
    }

    /// The full RC lane.
    #[inline]
    pub fn rc_lane(&self) -> &[f64] {
        &self.adj_rc
    }

    /// The full clamped affinity-factor lane.
    #[inline]
    pub fn rc_factor_lane(&self) -> &[f64] {
        &self.adj_rc_factor
    }

    /// The full backward neighbor-weight lane.
    #[inline]
    pub fn w_back_lane(&self) -> &[f64] {
        &self.adj_w_back
    }

    /// All neighbors of `e` with their outgoing RCs, aggregated over
    /// parallel links.
    #[inline]
    pub fn rc_neighbors(&self, e: ElementId) -> impl Iterator<Item = (ElementId, f64)> + '_ {
        let r = self.edge_range(e);
        self.adj_neighbor[r.clone()]
            .iter()
            .zip(&self.adj_rc[r])
            .map(|(&nb, &rc)| (nb, rc))
    }

    /// `Σ_k RC(e → e_k)` over all neighbors — the neighbor-weight
    /// denominator in Formula 1.
    #[inline]
    pub fn rc_sum(&self, e: ElementId) -> f64 {
        self.rc_sum[e.index()]
    }

    /// Neighbor weight `W(from → to) = RC(from → to) / Σ_k RC(from → e_k)`
    /// (Formula 1). Zero when `from` has no outgoing RC mass.
    pub fn neighbor_weight(&self, from: ElementId, to: ElementId) -> f64 {
        let s = self.rc_sum(from);
        if s > 0.0 {
            self.rc(from, to) / s
        } else {
            0.0
        }
    }

    /// Whether element `e`'s CSR row carries bit-identical
    /// **exploration-relevant** record bits in `self` and `other`: the
    /// edge-list shape, each edge's traversability (`rc > 0` — path
    /// kernels never read the RC value itself), and the
    /// `rc_factor`/`w_back` bits that enter the path products.
    /// Cardinality bits are deliberately excluded — exploration reads
    /// them exactly once, after the trace, when the coverage row is
    /// written. This is the row-invariance predicate of delta
    /// classification and the incremental maintenance planner; `e` must
    /// be in range for both annotations.
    pub fn exploration_bits_eq(&self, other: &SchemaStats, e: ElementId) -> bool {
        self.degree(e) == other.degree(e)
            && self.edge_neighbors(e) == other.edge_neighbors(e)
            && self
                .edge_rcs(e)
                .iter()
                .zip(other.edge_rcs(e))
                .all(|(a, b)| (*a > 0.0) == (*b > 0.0))
            && lane_bits_eq(self.edge_rc_factors(e), other.edge_rc_factors(e))
            && lane_bits_eq(self.edge_w_backs(e), other.edge_w_backs(e))
    }

    /// Like [`exploration_bits_eq`](Self::exploration_bits_eq), but
    /// tolerating **dormant growth**: `other`'s row may interleave extra
    /// edges with `rc == 0` (a link declared in the schema before any
    /// instance exists). Every path kernel skips non-traversable edges
    /// before touching its budget, expansion count, or read set, so a row
    /// passing this predicate replays bit-identically on `other` — same
    /// products, flags, and reads — even though its record shape changed.
    /// The surviving edges must match `self`'s in order and bits, exactly
    /// as the strict predicate demands; `e` must be in range for both.
    pub fn replay_bits_eq(&self, other: &SchemaStats, e: ElementId) -> bool {
        let (an, arc) = (self.edge_neighbors(e), self.edge_rcs(e));
        let (af, aw) = (self.edge_rc_factors(e), self.edge_w_backs(e));
        let (bn, brc) = (other.edge_neighbors(e), other.edge_rcs(e));
        let (bf, bw) = (other.edge_rc_factors(e), other.edge_w_backs(e));
        let mut i = 0;
        for j in 0..bn.len() {
            let matches = i < an.len()
                && an[i] == bn[j]
                && (arc[i] > 0.0) == (brc[j] > 0.0)
                && af[i].to_bits() == bf[j].to_bits()
                && aw[i].to_bits() == bw[j].to_bits();
            if matches {
                i += 1;
            } else if brc[j] > 0.0 {
                // An unmatched traversable edge: the replay would expand
                // through it and diverge.
                return false;
            }
            // An unmatched rc == 0 edge is invisible to every kernel.
        }
        i == an.len()
    }

    /// Grow these statistics into a larger schema version without
    /// rebuilding untouched rows: `graph` is the grown graph (the base
    /// elements keep their ids as an identity prefix — the append-only
    /// builder guarantees this when the new schema re-adds the old
    /// elements first), and `element_card`/`link_counts` annotate the
    /// *whole* grown schema, exactly as
    /// [`from_link_counts`](Self::from_link_counts) would receive them.
    ///
    /// Growth must be additive: every base element keeps its cardinality
    /// and every base link its instance count (new elements and links are
    /// free). Changed base cardinalities are rejected; the result is
    /// **bitwise identical** to a cold `from_link_counts` over the grown
    /// inputs.
    ///
    /// Only the rows a new or changed link can influence are recomputed:
    /// a row is rebuilt when its own outgoing adjacency moved (a new
    /// incident link adds a neighbor; new elements are all new rows) or
    /// when a *neighbor's* adjacency moved — `w_back` on edge `u → v`
    /// divides by `v`'s total outgoing count mass, so a link landing on
    /// `v` rewrites the `w_back` bits in every row adjacent to `v`.
    /// Every other row's lane slices are copied verbatim from the base.
    pub fn grow_from(
        &self,
        graph: &SchemaGraph,
        element_card: &[u64],
        link_counts: &[LinkCount],
    ) -> Result<Self, SchemaError> {
        let n_old = self.len();
        let n = graph.len();
        if element_card.len() != n {
            return Err(SchemaError::StatsShape {
                expected: n,
                actual: element_card.len(),
            });
        }
        if n < n_old {
            return Err(SchemaError::Invalid(format!(
                "grow_from: graph has {n} elements but the base statistics cover {n_old}"
            )));
        }
        let card: Vec<f64> = element_card.iter().map(|&c| c as f64).collect();
        for (i, c) in card.iter().enumerate().take(n_old) {
            if c.to_bits() != self.card[i].to_bits() {
                return Err(SchemaError::Invalid(format!(
                    "grow_from: cardinality of existing element e{i} changed; growth must be additive"
                )));
            }
        }
        let (rc_adj, cnt_adj) = Self::count_adjacency(graph, &card, link_counts)?;

        // Endpoints: base rows whose outgoing adjacency (neighbor list or
        // RC bits) differs from the base annotation — every new or
        // changed link incident to a base element surfaces here, because
        // a new link adds a neighbor entry and a changed count moves the
        // RC bits. New elements count as endpoints by definition. (A
        // changed count on a zero-cardinality element escapes the RC
        // comparison, but its RC row is all zero either way, so the
        // `rc_sum` guard zeroes every `w_back` it could influence.)
        let mut endpoint = vec![true; n];
        for (u, flag) in endpoint.iter_mut().enumerate().take(n_old) {
            let e = ElementId(u as u32);
            let base_nb = self.edge_neighbors(e);
            let base_rc = self.edge_rcs(e);
            let row = &rc_adj[u];
            *flag = !(row.len() == base_nb.len()
                && row.iter().zip(base_nb).all(|(&(nb, _), &b)| nb == b)
                && row
                    .iter()
                    .zip(base_rc)
                    .all(|(&(_, rc), &b)| rc.to_bits() == b.to_bits()));
        }
        // A row is rebuilt when it is an endpoint or adjacent to one (the
        // w_back denominator argument above); everything else copies.
        let mut rebuild = endpoint.clone();
        for u in 0..n {
            if endpoint[u] {
                for &(nb, _) in &rc_adj[u] {
                    rebuild[nb.index()] = true;
                }
            }
        }

        let rc_sum: Vec<f64> = rc_adj
            .iter()
            .map(|adj| adj.iter().map(|&(_, rc)| rc).sum())
            .collect();
        let wsrc_sum: Vec<f64> = cnt_adj
            .iter()
            .map(|adj| adj.iter().map(|&(_, w)| w).sum())
            .collect();
        let edge_count: usize = rc_adj.iter().map(Vec::len).sum();
        let padded = edge_count.next_multiple_of(LANE_PAD);
        let mut adj_off = Vec::with_capacity(n + 1);
        adj_off.push(0u32);
        let mut adj_neighbor = Vec::with_capacity(padded);
        let mut adj_rc = Vec::with_capacity(padded);
        let mut adj_rc_factor = Vec::with_capacity(padded);
        let mut adj_w_back = Vec::with_capacity(padded);
        let mut trav_deg = Vec::with_capacity(n);
        for (u, redo) in rebuild.iter().enumerate() {
            if *redo {
                let traversable = push_row(
                    &rc_adj[u],
                    u,
                    &cnt_adj,
                    &rc_sum,
                    &wsrc_sum,
                    &mut adj_neighbor,
                    &mut adj_rc,
                    &mut adj_rc_factor,
                    &mut adj_w_back,
                );
                trav_deg.push(traversable);
            } else {
                // Untouched row with untouched neighbors: every lane bit
                // (including the cross-row w_back ratios) is invariant.
                let r = self.edge_range(ElementId(u as u32));
                adj_neighbor.extend_from_slice(&self.adj_neighbor[r.clone()]);
                adj_rc.extend_from_slice(&self.adj_rc[r.clone()]);
                adj_rc_factor.extend_from_slice(&self.adj_rc_factor[r.clone()]);
                adj_w_back.extend_from_slice(&self.adj_w_back[r]);
                trav_deg.push(self.trav_deg[u]);
            }
            adj_off.push(adj_neighbor.len() as u32);
        }
        // Tail padding, re-derived for the grown edge count (the base
        // padding is never copied).
        while adj_neighbor.len() < padded {
            adj_neighbor.push(ElementId(0));
            adj_rc.push(0.0);
            adj_rc_factor.push(0.0);
            adj_w_back.push(0.0);
        }
        let total = card.iter().sum();
        Ok(SchemaStats {
            card,
            adj_off,
            adj_neighbor,
            adj_rc,
            adj_rc_factor,
            adj_w_back,
            trav_deg,
            rc_sum,
            total,
        })
    }

    /// A copy of these statistics with every cardinality multiplied by
    /// `factor` (relative cardinalities are ratios and do not change).
    /// Models proportional database growth — the paper's footnote 8
    /// scale-factor argument and the Table 5 growth-without-distribution-
    /// change scenario.
    pub fn scaled(&self, factor: f64) -> Self {
        SchemaStats {
            card: self.card.iter().map(|&c| c * factor).collect(),
            adj_off: self.adj_off.clone(),
            adj_neighbor: self.adj_neighbor.clone(),
            adj_rc: self.adj_rc.clone(),
            adj_rc_factor: self.adj_rc_factor.clone(),
            adj_w_back: self.adj_w_back.clone(),
            trav_deg: self.trav_deg.clone(),
            rc_sum: self.rc_sum.clone(),
            total: self.total * factor,
        }
    }

    /// Ids of elements adjacent to `e` (via either link kind).
    pub fn neighbor_ids(&self, e: ElementId) -> impl Iterator<Item = ElementId> + '_ {
        self.edge_neighbors(e).iter().copied()
    }
}

fn accumulate(adj: &mut Vec<(ElementId, f64)>, nb: ElementId, rc: f64) {
    match adj.iter_mut().find(|(e, _)| *e == nb) {
        Some((_, existing)) => *existing += rc,
        None => adj.push((nb, rc)),
    }
}

/// Append element `u`'s CSR row to the four lanes, computing the derived
/// per-edge factors. Shared by the full build
/// (`from_adjacency_weighted`) and the growth constructor
/// ([`SchemaStats::grow_from`]) so a recomputed row's bits cannot drift
/// from a cold build's. Returns the row's traversable degree.
#[allow(clippy::too_many_arguments)]
fn push_row(
    row: &[(ElementId, f64)],
    u: usize,
    wsrc: &[Vec<(ElementId, f64)>],
    rc_sum: &[f64],
    wsrc_sum: &[f64],
    adj_neighbor: &mut Vec<ElementId>,
    adj_rc: &mut Vec<f64>,
    adj_rc_factor: &mut Vec<f64>,
    adj_w_back: &mut Vec<f64>,
) -> u32 {
    let mut traversable = 0u32;
    for &(nb, rc) in row {
        let rc_factor = if rc > 0.0 { (1.0 / rc).min(1.0) } else { 0.0 };
        // W(nb → u): the reverse edge always exists because the
        // adjacency is built symmetrically, but its RC (and the
        // neighbor's whole RC mass) may be zero. The `rc_sum` guard
        // keeps zero-cardinality neighbors (whose RCs are all zero
        // while their raw counts may not be) weightless either way.
        let w_src_back = wsrc[nb.index()]
            .iter()
            .find(|&&(e, _)| e.index() == u)
            .map(|&(_, w)| w)
            .unwrap_or(0.0);
        let w_back = if rc_sum[nb.index()] > 0.0 && wsrc_sum[nb.index()] > 0.0 {
            w_src_back / wsrc_sum[nb.index()]
        } else {
            0.0
        };
        adj_neighbor.push(nb);
        adj_rc.push(rc);
        adj_rc_factor.push(rc_factor);
        adj_w_back.push(w_back);
        traversable += u32::from(rc > 0.0);
    }
    traversable
}

/// Bit-pattern equality over two `f64` lane slices of equal length.
fn lane_bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SchemaGraphBuilder;
    use crate::types::SchemaType;

    /// site -> open_auctions -> open_auction* -> {bidder*, seller},
    /// people -> person*; bidder ->V person, seller ->V person.
    fn graph() -> (SchemaGraph, [ElementId; 6]) {
        let mut b = SchemaGraphBuilder::new("site");
        let oas = b
            .add_child(b.root(), "open_auctions", SchemaType::rcd())
            .unwrap();
        let oa = b
            .add_child(oas, "open_auction", SchemaType::set_of_rcd())
            .unwrap();
        let bidder = b.add_child(oa, "bidder", SchemaType::set_of_rcd()).unwrap();
        let seller = b.add_child(oa, "seller", SchemaType::rcd()).unwrap();
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_value_link(bidder, person).unwrap();
        b.add_value_link(seller, person).unwrap();
        let g = b.build().unwrap();
        (g, [oas, oa, bidder, seller, people, person])
    }

    fn stats() -> (SchemaGraph, [ElementId; 6], SchemaStats) {
        let (g, ids) = graph();
        let [oas, oa, bidder, seller, people, person] = ids;
        // 1 site, 1 open_auctions, 100 auctions, 500 bidders, 100 sellers,
        // 1 people, 200 persons.
        let card = vec![1, 1, 100, 500, 100, 1, 200];
        let links = vec![
            LinkCount {
                from: ElementId(0),
                to: oas,
                count: 1,
            },
            LinkCount {
                from: oas,
                to: oa,
                count: 100,
            },
            LinkCount {
                from: oa,
                to: bidder,
                count: 500,
            },
            LinkCount {
                from: oa,
                to: seller,
                count: 100,
            },
            LinkCount {
                from: ElementId(0),
                to: people,
                count: 1,
            },
            LinkCount {
                from: people,
                to: person,
                count: 200,
            },
            LinkCount {
                from: bidder,
                to: person,
                count: 500,
            },
            LinkCount {
                from: seller,
                to: person,
                count: 100,
            },
        ];
        let s = SchemaStats::from_link_counts(&g, &card, &links).unwrap();
        (g, ids, s)
    }

    #[test]
    fn relative_cardinalities_follow_figure3() {
        let (_, ids, s) = stats();
        let [_, oa, bidder, _, _, person] = ids;
        // Average 5 bidders per auction; each bidder tied to 1 auction.
        assert!((s.rc(oa, bidder) - 5.0).abs() < 1e-12);
        assert!((s.rc(bidder, oa) - 1.0).abs() < 1e-12);
        // 500 bids over 200 persons = 2.5 bids per person.
        assert!((s.rc(person, bidder) - 2.5).abs() < 1e-12);
        assert!((s.rc(bidder, person) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn totals_and_cards() {
        let (_, ids, s) = stats();
        assert_eq!(s.total_card(), 903.0);
        assert_eq!(s.card(ids[2]), 500.0);
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn neighbor_weights_normalize() {
        let (g, _, s) = stats();
        for e in g.element_ids() {
            let total: f64 = s.neighbor_ids(e).map(|nb| s.neighbor_weight(e, nb)).sum();
            if s.rc_sum(e) > 0.0 {
                assert!((total - 1.0).abs() < 1e-9, "weights of {e} sum to {total}");
            }
        }
    }

    #[test]
    fn unlinked_pairs_have_zero_rc() {
        let (_, ids, s) = stats();
        let [_, oa, _, _, _, person] = ids;
        assert_eq!(s.rc(oa, person), 0.0);
        assert_eq!(s.neighbor_weight(oa, person), 0.0);
    }

    #[test]
    fn uniform_stats() {
        let (g, _) = graph();
        let s = SchemaStats::uniform(&g);
        assert_eq!(s.total_card(), g.len() as f64);
        for (p, c) in g.structural_links() {
            assert_eq!(s.rc(p, c), 1.0);
            assert_eq!(s.rc(c, p), 1.0);
        }
        for (f, t) in g.value_links() {
            assert_eq!(s.rc(f, t), 1.0);
        }
    }

    #[test]
    fn with_unit_rc_keeps_cards() {
        let (_, ids, s) = stats();
        let u = s.with_unit_rc();
        assert_eq!(u.card(ids[2]), 500.0);
        assert_eq!(u.rc(ids[1], ids[2]), 1.0);
        assert_eq!(u.total_card(), s.total_card());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (g, _) = graph();
        let err = SchemaStats::from_link_counts(&g, &[1, 2], &[]).unwrap_err();
        assert!(matches!(err, SchemaError::StatsShape { .. }));
    }

    #[test]
    fn non_link_count_rejected() {
        let (g, ids) = graph();
        let card = vec![1; g.len()];
        let bad = vec![LinkCount {
            from: ids[1],
            to: ids[5], // oa -> person is not a schema link
            count: 5,
        }];
        assert!(SchemaStats::from_link_counts(&g, &card, &bad).is_err());
    }

    #[test]
    fn zero_cardinality_element_yields_zero_rc() {
        let (g, ids) = graph();
        let mut card = vec![1u64; g.len()];
        card[ids[2].index()] = 0; // no bidders at all
        let s = SchemaStats::from_link_counts(&g, &card, &[]).unwrap();
        assert_eq!(s.rc(ids[2], ids[1]), 0.0);
        assert_eq!(s.rc(ids[1], ids[2]), 0.0);
    }

    #[test]
    fn scaled_preserves_ratios() {
        let (_, ids, s) = stats();
        let s2 = s.scaled(3.0);
        assert_eq!(s2.total_card(), s.total_card() * 3.0);
        assert_eq!(s2.card(ids[2]), s.card(ids[2]) * 3.0);
        // RCs are ratios: unchanged.
        for e in [ids[1], ids[2], ids[5]] {
            for nb in [ids[1], ids[2], ids[5]] {
                assert_eq!(s2.rc(e, nb), s.rc(e, nb));
            }
        }
    }

    /// Assert two annotations agree bit-for-bit on every stored lane and
    /// aggregate — stronger than `PartialEq` (which compares floats by
    /// value, not bits).
    fn assert_bitwise_eq(a: &SchemaStats, b: &SchemaStats) {
        assert_eq!(a.card.len(), b.card.len());
        assert!(a
            .card
            .iter()
            .zip(&b.card)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(a.adj_off, b.adj_off);
        assert_eq!(a.adj_neighbor, b.adj_neighbor);
        for (la, lb) in [
            (&a.adj_rc, &b.adj_rc),
            (&a.adj_rc_factor, &b.adj_rc_factor),
            (&a.adj_w_back, &b.adj_w_back),
            (&a.rc_sum, &b.rc_sum),
        ] {
            assert_eq!(la.len(), lb.len());
            assert!(la.iter().zip(lb).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
        assert_eq!(a.trav_deg, b.trav_deg);
        assert_eq!(a.total.to_bits(), b.total.to_bits());
    }

    /// Rebuild the `graph()` fixture with optional growth appended after
    /// the base elements (preserving the id prefix), plus the grown
    /// annotation.
    fn grown_fixture(grow: bool) -> (SchemaGraph, Vec<u64>, Vec<LinkCount>) {
        let mut b = SchemaGraphBuilder::new("site");
        let oas = b
            .add_child(b.root(), "open_auctions", SchemaType::rcd())
            .unwrap();
        let oa = b
            .add_child(oas, "open_auction", SchemaType::set_of_rcd())
            .unwrap();
        let bidder = b.add_child(oa, "bidder", SchemaType::set_of_rcd()).unwrap();
        let seller = b.add_child(oa, "seller", SchemaType::rcd()).unwrap();
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b
            .add_child(people, "person", SchemaType::set_of_rcd())
            .unwrap();
        b.add_value_link(bidder, person).unwrap();
        b.add_value_link(seller, person).unwrap();
        let mut cards = vec![1u64, 1, 100, 500, 100, 1, 200];
        let lc = |from, to, count| LinkCount { from, to, count };
        let mut links = vec![
            lc(ElementId(0), oas, 1),
            lc(oas, oa, 100),
            lc(oa, bidder, 500),
            lc(oa, seller, 100),
            lc(ElementId(0), people, 1),
            lc(people, person, 200),
            lc(bidder, person, 500),
            lc(seller, person, 100),
        ];
        if grow {
            let watches = b
                .add_child(person, "watches", SchemaType::set_of_rcd())
                .unwrap();
            b.add_value_link(watches, oa).unwrap();
            cards.push(340);
            links.push(lc(person, watches, 340));
            links.push(lc(watches, oa, 340));
        }
        (b.build().unwrap(), cards, links)
    }

    #[test]
    fn grow_from_matches_cold_build_bitwise() {
        let (base_g, base_cards, base_links) = grown_fixture(false);
        let base = SchemaStats::from_link_counts(&base_g, &base_cards, &base_links).unwrap();
        let (new_g, new_cards, new_links) = grown_fixture(true);
        let grown = base.grow_from(&new_g, &new_cards, &new_links).unwrap();
        let cold = SchemaStats::from_link_counts(&new_g, &new_cards, &new_links).unwrap();
        assert_bitwise_eq(&grown, &cold);
        assert_eq!(grown.len(), base.len() + 1);
    }

    #[test]
    fn grow_from_identity_is_bitwise_stable() {
        let (g, cards, links) = grown_fixture(false);
        let base = SchemaStats::from_link_counts(&g, &cards, &links).unwrap();
        let regrown = base.grow_from(&g, &cards, &links).unwrap();
        assert_bitwise_eq(&regrown, &base);
    }

    #[test]
    fn grow_from_rejects_changed_base_cardinality() {
        let (base_g, base_cards, base_links) = grown_fixture(false);
        let base = SchemaStats::from_link_counts(&base_g, &base_cards, &base_links).unwrap();
        let (new_g, mut new_cards, new_links) = grown_fixture(true);
        new_cards[3] += 1; // bidder count moved: not additive growth
        assert!(base.grow_from(&new_g, &new_cards, &new_links).is_err());
    }

    #[test]
    fn grow_from_rejects_shrunk_graph() {
        let (base_g, base_cards, base_links) = grown_fixture(false);
        let (new_g, new_cards, new_links) = grown_fixture(true);
        let grown = SchemaStats::from_link_counts(&new_g, &new_cards, &new_links).unwrap();
        assert!(grown.grow_from(&base_g, &base_cards, &base_links).is_err());
    }

    #[test]
    fn exploration_bits_survive_pure_rescale_but_not_fanout_change() {
        let (g, ids, s) = stats();
        let rescaled = s.scaled(2.0);
        for e in g.element_ids() {
            assert!(s.exploration_bits_eq(&rescaled, e));
        }
        // Push RC(oa→bidder) from 5 to 6: an unclamped factor moves.
        let (g2, cards, mut links) = {
            let (g2, ids2) = graph();
            let card = vec![1u64, 1, 100, 500, 100, 1, 200];
            let [oas, oa, bidder, seller, people, person] = ids2;
            let lc = |from, to, count| LinkCount { from, to, count };
            let links = vec![
                lc(ElementId(0), oas, 1),
                lc(oas, oa, 100),
                lc(oa, bidder, 500),
                lc(oa, seller, 100),
                lc(ElementId(0), people, 1),
                lc(people, person, 200),
                lc(bidder, person, 500),
                lc(seller, person, 100),
            ];
            (g2, card, links)
        };
        links[2].count = 600;
        let moved = SchemaStats::from_link_counts(&g2, &cards, &links).unwrap();
        assert!(!s.exploration_bits_eq(&moved, ids[1]));
    }

    #[test]
    fn replay_bits_tolerate_dormant_growth_only() {
        let (base_g, base_cards, base_links) = grown_fixture(false);
        let base = SchemaStats::from_link_counts(&base_g, &base_cards, &base_links).unwrap();

        // Identity: replay equivalence subsumes exploration equivalence.
        for e in base_g.element_ids() {
            assert!(base.replay_bits_eq(&base, e));
        }

        // Dormant growth: `watches` exists structurally but its links
        // carry no instances, so every new edge has rc == 0 and the old
        // rows replay identically over the grown stats.
        let (new_g, mut new_cards, _) = grown_fixture(true);
        new_cards[7] = 0; // watches has no instances yet
        let dormant = SchemaStats::from_link_counts(&new_g, &new_cards, &base_links).unwrap();
        for e in base_g.element_ids() {
            assert!(
                base.replay_bits_eq(&dormant, e),
                "dormant growth must leave element {e:?} replayable"
            );
        }
        // ...even though exploration bits do differ where edges appended.
        let person = ElementId(6);
        assert!(!base.exploration_bits_eq(&dormant, person));

        // Populated growth: the same edges with live counts make the
        // carrier rows non-replayable.
        let (_, new_cards, new_links) = grown_fixture(true);
        let populated = SchemaStats::from_link_counts(&new_g, &new_cards, &new_links).unwrap();
        assert!(!base.replay_bits_eq(&populated, person));

        // A changed factor on a pre-existing edge is never tolerated.
        let mut moved_links = base_links.clone();
        moved_links[2].count = 600;
        let moved = SchemaStats::from_link_counts(&base_g, &base_cards, &moved_links).unwrap();
        assert!(!base.replay_bits_eq(&moved, ElementId(2)));
    }

    #[test]
    fn parallel_links_aggregate() {
        // a is both structural parent of b and value-linked to b.
        let mut b = SchemaGraphBuilder::new("r");
        let a = b.add_child(b.root(), "a", SchemaType::rcd()).unwrap();
        let c = b.add_child(a, "c", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(a, c).unwrap();
        let g = b.build().unwrap();
        let card = vec![1, 10, 30];
        let links = vec![
            LinkCount {
                from: a,
                to: c,
                count: 30,
            }, // structural: 3 per a
            LinkCount {
                from: a,
                to: c,
                count: 10,
            }, // value: 1 per a
        ];
        let s = SchemaStats::from_link_counts(&g, &card, &links).unwrap();
        // Parallel RCs add: 4 per a. (But note from_link_counts merges the
        // two LinkCount entries into the *same* schema link here since both
        // structural and value links exist; count sums to 40.)
        assert!(s.rc(a, c) > 0.0);
        assert_eq!(s.rc_neighbors(a).count(), 2); // root + c
    }
}
