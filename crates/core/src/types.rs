//! Element types (Definition 1's type regular expressions).
//!
//! The paper gives each element a type drawn from the grammar
//!
//! ```text
//! τ ::= SetOf τ | Simple | (Rcd | Choice)[e1:τ1, ..., en:τn]
//! ```
//!
//! We keep the *shape* of the type on the element ([`SchemaType`]) and record
//! the `[e1:τ1, ...]` children as structural links in the graph itself, which
//! is the representation the paper's algorithms operate on (Section 4
//! represents "the schema graph as an array of elements, each with an array
//! of links").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Atomic value types carried by `Simple` elements.
///
/// These model relational column types, XML attribute types, and
/// atomic-valued XML elements. `Id`/`IdRef` mark the endpoints that induce
/// value links (keys / foreign keys, `ID` / `IDREF`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomicType {
    /// Character data (`str`, `CDATA`, `VARCHAR`, ...).
    Str,
    /// Integer data.
    Int,
    /// Floating point / decimal data.
    Float,
    /// Boolean data.
    Bool,
    /// Calendar dates and timestamps.
    Date,
    /// A key value other elements may refer to (`ID`, primary key).
    Id,
    /// A reference to a key value (`IDREF`, foreign key).
    IdRef,
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomicType::Str => "str",
            AtomicType::Int => "int",
            AtomicType::Float => "float",
            AtomicType::Bool => "bool",
            AtomicType::Date => "date",
            AtomicType::Id => "id",
            AtomicType::IdRef => "idref",
        };
        f.write_str(s)
    }
}

/// The type of a schema element (Definition 1).
///
/// `SetOf` nests arbitrarily, exactly as in the paper's grammar; children of
/// `Rcd` / `Choice` composites are represented as structural links in the
/// [`crate::SchemaGraph`] rather than inline.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemaType {
    /// Atomic value type.
    Simple(AtomicType),
    /// A set of values of the inner type (`maxOccurs > 1`, relations).
    SetOf(Box<SchemaType>),
    /// Record composite ("all" / "sequence" model groups, relational tuples).
    Rcd,
    /// Choice composite ("choice" model group).
    Choice,
}

impl SchemaType {
    /// `Simple str` — the most common atomic type.
    pub fn simple_str() -> Self {
        SchemaType::Simple(AtomicType::Str)
    }

    /// `Simple int`.
    pub fn simple_int() -> Self {
        SchemaType::Simple(AtomicType::Int)
    }

    /// `Simple float`.
    pub fn simple_float() -> Self {
        SchemaType::Simple(AtomicType::Float)
    }

    /// `Simple id` — a key element that value links point at.
    pub fn simple_id() -> Self {
        SchemaType::Simple(AtomicType::Id)
    }

    /// `Simple idref` — a referencing element that induces a value link.
    pub fn simple_idref() -> Self {
        SchemaType::Simple(AtomicType::IdRef)
    }

    /// `Rcd` composite.
    pub fn rcd() -> Self {
        SchemaType::Rcd
    }

    /// `Choice` composite.
    pub fn choice() -> Self {
        SchemaType::Choice
    }

    /// `SetOf Rcd` — relations, repeated XML composite elements.
    pub fn set_of_rcd() -> Self {
        SchemaType::SetOf(Box::new(SchemaType::Rcd))
    }

    /// `SetOf Simple str` — repeated atomic elements.
    pub fn set_of_simple_str() -> Self {
        SchemaType::SetOf(Box::new(SchemaType::simple_str()))
    }

    /// Whether the outermost constructor is `SetOf` (multi-occurrence).
    pub fn is_set(&self) -> bool {
        matches!(self, SchemaType::SetOf(_))
    }

    /// Strip all `SetOf` wrappers and return the base type.
    pub fn base(&self) -> &SchemaType {
        match self {
            SchemaType::SetOf(inner) => inner.base(),
            other => other,
        }
    }

    /// Whether the base type is atomic (`Simple`).
    pub fn is_simple(&self) -> bool {
        matches!(self.base(), SchemaType::Simple(_))
    }

    /// Whether the base type is a composite (`Rcd` or `Choice`), i.e. the
    /// element may have structural children.
    pub fn is_composite(&self) -> bool {
        matches!(self.base(), SchemaType::Rcd | SchemaType::Choice)
    }

    /// The atomic type, if the base type is `Simple`.
    pub fn atomic(&self) -> Option<AtomicType> {
        match self.base() {
            SchemaType::Simple(a) => Some(*a),
            _ => None,
        }
    }

    /// Depth of `SetOf` nesting (0 for non-set types).
    pub fn set_depth(&self) -> usize {
        match self {
            SchemaType::SetOf(inner) => 1 + inner.set_depth(),
            _ => 0,
        }
    }
}

impl fmt::Display for SchemaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaType::Simple(a) => write!(f, "{a}"),
            SchemaType::SetOf(inner) => write!(f, "SetOf {inner}"),
            SchemaType::Rcd => f.write_str("Rcd"),
            SchemaType::Choice => f.write_str("Choice"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_strips_nested_sets() {
        let t = SchemaType::SetOf(Box::new(SchemaType::SetOf(Box::new(SchemaType::Rcd))));
        assert_eq!(t.base(), &SchemaType::Rcd);
        assert_eq!(t.set_depth(), 2);
        assert!(t.is_set());
        assert!(t.is_composite());
        assert!(!t.is_simple());
    }

    #[test]
    fn simple_helpers() {
        assert!(SchemaType::simple_str().is_simple());
        assert_eq!(SchemaType::simple_int().atomic(), Some(AtomicType::Int));
        assert_eq!(SchemaType::rcd().atomic(), None);
        assert!(!SchemaType::simple_id().is_composite());
    }

    #[test]
    fn set_of_rcd_is_composite_set() {
        let t = SchemaType::set_of_rcd();
        assert!(t.is_set());
        assert!(t.is_composite());
        assert_eq!(t.set_depth(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SchemaType::set_of_rcd().to_string(), "SetOf Rcd");
        assert_eq!(SchemaType::simple_idref().to_string(), "idref");
        assert_eq!(SchemaType::choice().to_string(), "Choice");
        assert_eq!(
            SchemaType::SetOf(Box::new(SchemaType::simple_str())).to_string(),
            "SetOf str"
        );
    }

    #[test]
    fn atomic_display() {
        for (t, s) in [
            (AtomicType::Str, "str"),
            (AtomicType::Int, "int"),
            (AtomicType::Float, "float"),
            (AtomicType::Bool, "bool"),
            (AtomicType::Date, "date"),
            (AtomicType::Id, "id"),
            (AtomicType::IdRef, "idref"),
        ] {
            assert_eq!(t.to_string(), s);
        }
    }
}
