//! Structured diffs between summaries and between annotated schemas.
//!
//! The data-evolution story (Section 3.3, Table 5) needs more than an
//! agreement percentage: when a refreshed summary changes, operators want
//! to know *what* changed — which abstract elements appeared or vanished,
//! and which schema elements moved between groups. [`SummaryDiff`] reports
//! exactly that. [`SchemaDelta`] diffs two *annotated schemas* (graph +
//! statistics) and is what the serving layer consumes to invalidate
//! exactly the affected catalog entries.
//!
//! All reported change lists are sorted, so diff output is deterministic
//! and order-stable regardless of construction order — tests and cache
//! invalidation can compare reports structurally.

use crate::fingerprint::SchemaFingerprint;
use crate::ids::ElementId;
use crate::stats::SchemaStats;
use crate::summary::SchemaSummary;
use crate::SchemaGraph;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A structured difference between two summaries over the same graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryDiff {
    /// Representatives present only in the newer summary.
    pub added_groups: Vec<ElementId>,
    /// Representatives present only in the older summary.
    pub removed_groups: Vec<ElementId>,
    /// Elements whose owning representative changed (excluding elements of
    /// added/removed groups whose move is implied), as
    /// `(element, old representative, new representative)`.
    pub moved: Vec<(ElementId, ElementId, ElementId)>,
    /// Number of elements whose group membership is unchanged.
    pub stable: usize,
}

impl SummaryDiff {
    /// Compare `old` and `new`. Both must summarize the same schema graph.
    pub fn compute(graph: &SchemaGraph, old: &SchemaSummary, new: &SchemaSummary) -> Self {
        // Representative of each element in each summary (the root and kept
        // originals map to themselves).
        let rep_of = |s: &SchemaSummary, e: ElementId| -> ElementId {
            match s.node_of(e) {
                crate::summary::SummaryNode::Original(o) => o,
                crate::summary::SummaryNode::Abstract(a) => s.abstracts()[a.index()].representative,
            }
        };
        let old_reps: Vec<ElementId> = old.abstracts().iter().map(|a| a.representative).collect();
        let new_reps: Vec<ElementId> = new.abstracts().iter().map(|a| a.representative).collect();
        let mut added_groups: Vec<ElementId> = new_reps
            .iter()
            .copied()
            .filter(|r| !old_reps.contains(r))
            .collect();
        let mut removed_groups: Vec<ElementId> = old_reps
            .iter()
            .copied()
            .filter(|r| !new_reps.contains(r))
            .collect();
        // Sort every change list: summaries enumerate groups in selection
        // order, which depends on algorithm tie-breaking, and downstream
        // consumers (invalidation, golden tests) need order-stable reports.
        added_groups.sort_unstable();
        removed_groups.sort_unstable();
        let mut moved = Vec::new();
        let mut stable = 0usize;
        for e in graph.element_ids() {
            let o = rep_of(old, e);
            let n = rep_of(new, e);
            if o == n {
                stable += 1;
            } else {
                moved.push((e, o, n));
            }
        }
        moved.sort_unstable();
        SummaryDiff {
            added_groups,
            removed_groups,
            moved,
            stable,
        }
    }

    /// Whether the two summaries are identical in grouping.
    pub fn is_empty(&self) -> bool {
        self.added_groups.is_empty() && self.removed_groups.is_empty() && self.moved.is_empty()
    }

    /// Fraction of elements whose group membership is unchanged.
    pub fn stability(&self) -> f64 {
        let total = self.stable + self.moved.len();
        if total == 0 {
            1.0
        } else {
            self.stable as f64 / total as f64
        }
    }

    /// Render a short human-readable change report.
    pub fn render(&self, graph: &SchemaGraph) -> String {
        if self.is_empty() {
            return "no change".to_string();
        }
        let mut out = String::new();
        if !self.added_groups.is_empty() {
            out.push_str("added groups: ");
            out.push_str(
                &self
                    .added_groups
                    .iter()
                    .map(|&e| graph.label(e))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push('\n');
        }
        if !self.removed_groups.is_empty() {
            out.push_str("removed groups: ");
            out.push_str(
                &self
                    .removed_groups
                    .iter()
                    .map(|&e| graph.label(e))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push('\n');
        }
        out.push_str(&format!(
            "{} elements regrouped, {} stable ({:.0}% stability)\n",
            self.moved.len(),
            self.stable,
            self.stability() * 100.0
        ));
        out
    }
}

/// How a [`SchemaDelta`] relates two annotated schemas, ordered by how
/// much of the old version's derived artifacts survive:
///
/// * [`Rescale`](DeltaClass::Rescale) — only cardinality bits moved;
///   every exploration-relevant edge record
///   ([`SchemaStats::exploration_bits_eq`]) is bit-identical, so path
///   explorations replay unchanged and only coverage rows need
///   rewriting.
/// * [`EdgeTouch`](DeltaClass::EdgeTouch) — the element set and link set
///   are unchanged but some edge records moved (fan-out shifts on
///   existing links); rows whose traces read them must re-explore.
/// * [`AdditiveStructural`](DeltaClass::AdditiveStructural) — the new
///   schema adds elements and/or value links and removes nothing; the
///   old element space embeds as a prefix of the new one, so artifacts
///   can be *grown* in place.
/// * [`Destructive`](DeltaClass::Destructive) — elements or links were
///   removed or retyped; the old element space does not embed and
///   derived artifacts must be rebuilt cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeltaClass {
    /// Cardinality-only change (includes the empty delta).
    Rescale,
    /// In-place change to existing edge records.
    EdgeTouch,
    /// Pure growth: added elements/links, nothing removed or retyped.
    AdditiveStructural,
    /// Removals or retypes; no warm path exists.
    Destructive,
}

impl DeltaClass {
    /// Stable lowercase token for metrics labels and admin JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            DeltaClass::Rescale => "rescale",
            DeltaClass::EdgeTouch => "edge_touch",
            DeltaClass::AdditiveStructural => "additive_structural",
            DeltaClass::Destructive => "destructive",
        }
    }
}

impl std::fmt::Display for DeltaClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured difference between two *annotated schemas* — (graph,
/// statistics) pairs that may differ in structure, links, or
/// cardinalities.
///
/// Elements are matched across the two graphs by their root label path
/// (element ids are graph-local and not comparable across builds), and
/// every change list is sorted lexicographically, so equal inputs always
/// produce byte-identical reports. The serving layer feeds deltas to its
/// invalidation hook: a non-empty delta means `old_fingerprint` is stale
/// and exactly that catalog entry (and its cached results) must go.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaDelta {
    /// Fingerprint of the old annotated schema.
    pub old_fingerprint: SchemaFingerprint,
    /// Fingerprint of the new annotated schema.
    pub new_fingerprint: SchemaFingerprint,
    /// Label paths present only in the new schema, sorted.
    pub added_elements: Vec<String>,
    /// Label paths present only in the old schema, sorted.
    pub removed_elements: Vec<String>,
    /// Label paths present in both schemas whose type changed, sorted.
    pub retyped_elements: Vec<String>,
    /// Value links `(referrer path, referee path)` present only in the new
    /// schema, sorted.
    pub added_value_links: Vec<(String, String)>,
    /// Value links present only in the old schema, sorted.
    pub removed_value_links: Vec<(String, String)>,
    /// Label paths present in both schemas whose cardinality or outgoing
    /// relative cardinalities changed, sorted.
    pub changed_cardinalities: Vec<String>,
    /// Coarse classification of the whole delta (see [`DeltaClass`]):
    /// what kind of refresh the serving layer can attempt.
    pub class: DeltaClass,
}

impl SchemaDelta {
    /// Diff two annotated schemas.
    pub fn compute(
        old_graph: &SchemaGraph,
        old_stats: &SchemaStats,
        new_graph: &SchemaGraph,
        new_stats: &SchemaStats,
    ) -> Self {
        let paths_of = |g: &SchemaGraph| -> BTreeMap<String, ElementId> {
            g.element_ids().map(|e| (g.label_path(e), e)).collect()
        };
        let old_paths = paths_of(old_graph);
        let new_paths = paths_of(new_graph);

        let added_elements: Vec<String> = new_paths
            .keys()
            .filter(|p| !old_paths.contains_key(*p))
            .cloned()
            .collect();
        let removed_elements: Vec<String> = old_paths
            .keys()
            .filter(|p| !new_paths.contains_key(*p))
            .cloned()
            .collect();
        let mut retyped_elements = Vec::new();
        let mut changed_cardinalities = Vec::new();
        for (path, &oe) in &old_paths {
            let Some(&ne) = new_paths.get(path) else {
                continue;
            };
            if old_graph.ty(oe) != new_graph.ty(ne) {
                retyped_elements.push(path.clone());
            }
            if stats_differ(old_graph, old_stats, oe, new_graph, new_stats, ne) {
                changed_cardinalities.push(path.clone());
            }
        }
        // BTreeMap iteration is already sorted; these inherit that order.

        let links_of = |g: &SchemaGraph| -> BTreeSet<(String, String)> {
            g.value_links()
                .map(|(f, t)| (g.label_path(f), g.label_path(t)))
                .collect()
        };
        let old_links = links_of(old_graph);
        let new_links = links_of(new_graph);
        let added_value_links: Vec<(String, String)> =
            new_links.difference(&old_links).cloned().collect();
        let removed_value_links: Vec<(String, String)> =
            old_links.difference(&new_links).cloned().collect();

        let class = if !removed_elements.is_empty()
            || !retyped_elements.is_empty()
            || !removed_value_links.is_empty()
        {
            DeltaClass::Destructive
        } else if !added_elements.is_empty() || !added_value_links.is_empty() {
            DeltaClass::AdditiveStructural
        } else {
            // Same element and link sets. A pure rescale additionally
            // requires every exploration-relevant edge record to be
            // bit-identical — compared by id, which is meaningful only
            // when the graphs agree element-for-element (equal-but-
            // permuted builds classify conservatively as EdgeTouch).
            let pure_rescale = old_graph == new_graph
                && old_stats.len() == old_graph.len()
                && new_stats.len() == new_graph.len()
                && old_graph
                    .element_ids()
                    .all(|e| old_stats.exploration_bits_eq(new_stats, e));
            if pure_rescale {
                DeltaClass::Rescale
            } else {
                DeltaClass::EdgeTouch
            }
        };

        SchemaDelta {
            old_fingerprint: SchemaFingerprint::of_annotated(old_graph, old_stats),
            new_fingerprint: SchemaFingerprint::of_annotated(new_graph, new_stats),
            added_elements,
            removed_elements,
            retyped_elements,
            added_value_links,
            removed_value_links,
            changed_cardinalities,
            class,
        }
    }

    /// Whether the two annotated schemas are observably identical (the
    /// fingerprints agree and no change list has entries).
    pub fn is_empty(&self) -> bool {
        self.old_fingerprint == self.new_fingerprint
            && self.added_elements.is_empty()
            && self.removed_elements.is_empty()
            && self.retyped_elements.is_empty()
            && self.added_value_links.is_empty()
            && self.removed_value_links.is_empty()
            && self.changed_cardinalities.is_empty()
    }

    /// Render a short human-readable change report (sorted, stable).
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "no change".to_string();
        }
        let mut out = String::new();
        let mut section = |title: &str, items: &[String]| {
            if !items.is_empty() {
                out.push_str(title);
                out.push_str(": ");
                out.push_str(&items.join(", "));
                out.push('\n');
            }
        };
        section("added elements", &self.added_elements);
        section("removed elements", &self.removed_elements);
        section("retyped elements", &self.retyped_elements);
        let fmt_links = |ls: &[(String, String)]| -> Vec<String> {
            ls.iter().map(|(f, t)| format!("{f} -> {t}")).collect()
        };
        section("added value links", &fmt_links(&self.added_value_links));
        section("removed value links", &fmt_links(&self.removed_value_links));
        section("changed cardinalities", &self.changed_cardinalities);
        out
    }
}

fn stats_differ(
    old_graph: &SchemaGraph,
    old_stats: &SchemaStats,
    oe: ElementId,
    new_graph: &SchemaGraph,
    new_stats: &SchemaStats,
    ne: ElementId,
) -> bool {
    if old_stats.card(oe) != new_stats.card(ne) {
        return true;
    }
    // Compare outgoing RC adjacency by neighbor label path (ids are not
    // comparable across graphs).
    let adj = |g: &SchemaGraph, s: &SchemaStats, e: ElementId| -> BTreeMap<String, f64> {
        s.rc_neighbors(e)
            .map(|(nb, rc)| (g.label_path(nb), rc))
            .collect()
    };
    adj(old_graph, old_stats, oe) != adj(new_graph, new_stats, ne)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SchemaGraphBuilder;
    use crate::types::SchemaType;

    fn graph() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "a", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(a, "a1", SchemaType::simple_str()).unwrap();
        let c = b
            .add_child(b.root(), "c", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(c, "c1", SchemaType::simple_str()).unwrap();
        b.build().unwrap()
    }

    fn summary(g: &SchemaGraph, groups: Vec<(&str, Vec<&str>)>) -> SchemaSummary {
        let f = |l: &str| g.find_unique(l).unwrap();
        SchemaSummary::from_grouping(
            g,
            groups
                .into_iter()
                .map(|(rep, members)| (f(rep), members.into_iter().map(f).collect()))
                .collect(),
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn identical_summaries_diff_empty() {
        let g = graph();
        let s = summary(&g, vec![("a", vec!["a", "a1"]), ("c", vec!["c", "c1"])]);
        let d = SummaryDiff::compute(&g, &s, &s);
        assert!(d.is_empty());
        assert_eq!(d.stability(), 1.0);
        assert_eq!(d.render(&g), "no change");
    }

    #[test]
    fn group_swap_is_reported() {
        let g = graph();
        let old = summary(&g, vec![("a", vec!["a", "a1"]), ("c", vec!["c", "c1"])]);
        let new = summary(&g, vec![("a", vec!["a", "a1", "c", "c1"])]);
        let d = SummaryDiff::compute(&g, &old, &new);
        assert!(d.added_groups.is_empty());
        assert_eq!(d.removed_groups.len(), 1);
        // c and c1 moved from c's group to a's.
        assert_eq!(d.moved.len(), 2);
        assert!(d.stability() < 1.0);
        let text = d.render(&g);
        assert!(text.contains("removed groups: c"));
        assert!(text.contains("2 elements regrouped"));
    }

    #[test]
    fn member_movement_without_group_change() {
        let g = graph();
        let old = summary(&g, vec![("a", vec!["a", "a1", "c1"]), ("c", vec!["c"])]);
        let new = summary(&g, vec![("a", vec!["a", "a1"]), ("c", vec!["c", "c1"])]);
        let d = SummaryDiff::compute(&g, &old, &new);
        assert!(d.added_groups.is_empty());
        assert!(d.removed_groups.is_empty());
        assert_eq!(d.moved.len(), 1);
        let (e, o, n) = d.moved[0];
        assert_eq!(g.label(e), "c1");
        assert_eq!(g.label(o), "a");
        assert_eq!(g.label(n), "c");
    }

    #[test]
    fn serde_roundtrip() {
        let g = graph();
        let old = summary(&g, vec![("a", vec!["a", "a1"]), ("c", vec!["c", "c1"])]);
        let new = summary(&g, vec![("a", vec!["a", "a1", "c", "c1"])]);
        let d = SummaryDiff::compute(&g, &old, &new);
        let json = serde_json::to_string(&d).unwrap();
        let back: SummaryDiff = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    fn delta_graph(with_extra: bool, with_link: bool) -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("db");
        let a = b
            .add_child(b.root(), "a", SchemaType::set_of_rcd())
            .unwrap();
        b.add_child(a, "a1", SchemaType::simple_str()).unwrap();
        let c = b
            .add_child(b.root(), "c", SchemaType::set_of_rcd())
            .unwrap();
        if with_extra {
            b.add_child(c, "c1", SchemaType::simple_str()).unwrap();
        }
        if with_link {
            b.add_value_link(c, a).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn schema_delta_empty_for_identical_inputs() {
        let g = delta_graph(true, true);
        let s = SchemaStats::uniform(&g);
        let d = SchemaDelta::compute(&g, &s, &g, &s);
        assert!(d.is_empty());
        assert_eq!(d.old_fingerprint, d.new_fingerprint);
        assert_eq!(d.render(), "no change");
    }

    #[test]
    fn schema_delta_reports_sorted_changes() {
        let old = delta_graph(false, false);
        let new = delta_graph(true, true);
        let d = SchemaDelta::compute(
            &old,
            &SchemaStats::uniform(&old),
            &new,
            &SchemaStats::uniform(&new),
        );
        assert_ne!(d.old_fingerprint, d.new_fingerprint);
        assert_eq!(d.added_elements, vec!["db/c/c1".to_string()]);
        assert!(d.removed_elements.is_empty());
        assert_eq!(
            d.added_value_links,
            vec![("db/c".to_string(), "db/a".to_string())]
        );
        // Adding the link/child changes RC adjacency of existing elements;
        // the affected paths come back sorted.
        let mut sorted = d.changed_cardinalities.clone();
        sorted.sort();
        assert_eq!(d.changed_cardinalities, sorted);
        let text = d.render();
        assert!(text.contains("added elements: db/c/c1"));
        assert!(text.contains("added value links: db/c -> db/a"));
    }

    #[test]
    fn schema_delta_detects_pure_cardinality_change() {
        let g = delta_graph(true, false);
        let s1 = SchemaStats::uniform(&g);
        let s2 = s1.scaled(2.0);
        let d = SchemaDelta::compute(&g, &s1, &g, &s2);
        assert!(!d.is_empty());
        assert!(d.added_elements.is_empty());
        assert!(d.removed_elements.is_empty());
        assert!(!d.changed_cardinalities.is_empty());
        assert_ne!(d.old_fingerprint, d.new_fingerprint);
    }

    #[test]
    fn schema_delta_classifies_pure_rescale() {
        let g = delta_graph(true, false);
        let s1 = SchemaStats::uniform(&g);
        let s2 = s1.scaled(2.0);
        let d = SchemaDelta::compute(&g, &s1, &g, &s2);
        assert_eq!(d.class, DeltaClass::Rescale);
        // The empty delta is a (degenerate) rescale too.
        assert_eq!(SchemaDelta::compute(&g, &s1, &g, &s1).class, DeltaClass::Rescale);
    }

    #[test]
    fn schema_delta_classifies_edge_touch() {
        let g = delta_graph(true, true);
        let s1 = SchemaStats::uniform(&g);
        // Same graph, same cardinalities, but unit RCs forced: existing
        // edge records move without any structural change.
        let s2 = SchemaStats::from_link_counts(
            &g,
            &vec![1u64; g.len()],
            &g.structural_links()
                .chain(g.value_links())
                .map(|(f, t)| crate::stats::LinkCount { from: f, to: t, count: 2 })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let d = SchemaDelta::compute(&g, &s1, &g, &s2);
        assert!(d.added_elements.is_empty() && d.removed_elements.is_empty());
        assert_eq!(d.class, DeltaClass::EdgeTouch);
    }

    #[test]
    fn schema_delta_classifies_growth_and_destruction() {
        let old = delta_graph(false, false);
        let new = delta_graph(true, true);
        let grown = SchemaDelta::compute(
            &old,
            &SchemaStats::uniform(&old),
            &new,
            &SchemaStats::uniform(&new),
        );
        assert_eq!(grown.class, DeltaClass::AdditiveStructural);
        let shrunk = SchemaDelta::compute(
            &new,
            &SchemaStats::uniform(&new),
            &old,
            &SchemaStats::uniform(&old),
        );
        assert_eq!(shrunk.class, DeltaClass::Destructive);
        // A delta that both adds and removes is destructive: the old
        // element space does not embed in the new one.
        let sideways = SchemaDelta::compute(
            &delta_graph(true, false),
            &SchemaStats::uniform(&delta_graph(true, false)),
            &delta_graph(false, true),
            &SchemaStats::uniform(&delta_graph(false, true)),
        );
        assert_eq!(sideways.class, DeltaClass::Destructive);
    }

    #[test]
    fn schema_delta_serde_roundtrip() {
        let old = delta_graph(false, false);
        let new = delta_graph(true, true);
        let d = SchemaDelta::compute(
            &old,
            &SchemaStats::uniform(&old),
            &new,
            &SchemaStats::uniform(&new),
        );
        let json = serde_json::to_string(&d).unwrap();
        let back: SchemaDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
