//! Structured diffs between two summaries of the same schema.
//!
//! The data-evolution story (Section 3.3, Table 5) needs more than an
//! agreement percentage: when a refreshed summary changes, operators want
//! to know *what* changed — which abstract elements appeared or vanished,
//! and which schema elements moved between groups. [`SummaryDiff`] reports
//! exactly that.

use crate::ids::ElementId;
use crate::summary::SchemaSummary;
use crate::SchemaGraph;
use serde::{Deserialize, Serialize};

/// A structured difference between two summaries over the same graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryDiff {
    /// Representatives present only in the newer summary.
    pub added_groups: Vec<ElementId>,
    /// Representatives present only in the older summary.
    pub removed_groups: Vec<ElementId>,
    /// Elements whose owning representative changed (excluding elements of
    /// added/removed groups whose move is implied), as
    /// `(element, old representative, new representative)`.
    pub moved: Vec<(ElementId, ElementId, ElementId)>,
    /// Number of elements whose group membership is unchanged.
    pub stable: usize,
}

impl SummaryDiff {
    /// Compare `old` and `new`. Both must summarize the same schema graph.
    pub fn compute(graph: &SchemaGraph, old: &SchemaSummary, new: &SchemaSummary) -> Self {
        // Representative of each element in each summary (the root and kept
        // originals map to themselves).
        let rep_of = |s: &SchemaSummary, e: ElementId| -> ElementId {
            match s.node_of(e) {
                crate::summary::SummaryNode::Original(o) => o,
                crate::summary::SummaryNode::Abstract(a) => s.abstracts()[a.index()].representative,
            }
        };
        let old_reps: Vec<ElementId> = old.abstracts().iter().map(|a| a.representative).collect();
        let new_reps: Vec<ElementId> = new.abstracts().iter().map(|a| a.representative).collect();
        let added_groups: Vec<ElementId> = new_reps
            .iter()
            .copied()
            .filter(|r| !old_reps.contains(r))
            .collect();
        let removed_groups: Vec<ElementId> = old_reps
            .iter()
            .copied()
            .filter(|r| !new_reps.contains(r))
            .collect();
        let mut moved = Vec::new();
        let mut stable = 0usize;
        for e in graph.element_ids() {
            let o = rep_of(old, e);
            let n = rep_of(new, e);
            if o == n {
                stable += 1;
            } else {
                moved.push((e, o, n));
            }
        }
        SummaryDiff {
            added_groups,
            removed_groups,
            moved,
            stable,
        }
    }

    /// Whether the two summaries are identical in grouping.
    pub fn is_empty(&self) -> bool {
        self.added_groups.is_empty() && self.removed_groups.is_empty() && self.moved.is_empty()
    }

    /// Fraction of elements whose group membership is unchanged.
    pub fn stability(&self) -> f64 {
        let total = self.stable + self.moved.len();
        if total == 0 {
            1.0
        } else {
            self.stable as f64 / total as f64
        }
    }

    /// Render a short human-readable change report.
    pub fn render(&self, graph: &SchemaGraph) -> String {
        if self.is_empty() {
            return "no change".to_string();
        }
        let mut out = String::new();
        if !self.added_groups.is_empty() {
            out.push_str("added groups: ");
            out.push_str(
                &self
                    .added_groups
                    .iter()
                    .map(|&e| graph.label(e))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push('\n');
        }
        if !self.removed_groups.is_empty() {
            out.push_str("removed groups: ");
            out.push_str(
                &self
                    .removed_groups
                    .iter()
                    .map(|&e| graph.label(e))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push('\n');
        }
        out.push_str(&format!(
            "{} elements regrouped, {} stable ({:.0}% stability)\n",
            self.moved.len(),
            self.stable,
            self.stability() * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SchemaGraphBuilder;
    use crate::types::SchemaType;

    fn graph() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("db");
        let a = b.add_child(b.root(), "a", SchemaType::set_of_rcd()).unwrap();
        b.add_child(a, "a1", SchemaType::simple_str()).unwrap();
        let c = b.add_child(b.root(), "c", SchemaType::set_of_rcd()).unwrap();
        b.add_child(c, "c1", SchemaType::simple_str()).unwrap();
        b.build().unwrap()
    }

    fn summary(g: &SchemaGraph, groups: Vec<(&str, Vec<&str>)>) -> SchemaSummary {
        let f = |l: &str| g.find_unique(l).unwrap();
        SchemaSummary::from_grouping(
            g,
            groups
                .into_iter()
                .map(|(rep, members)| (f(rep), members.into_iter().map(f).collect()))
                .collect(),
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn identical_summaries_diff_empty() {
        let g = graph();
        let s = summary(&g, vec![("a", vec!["a", "a1"]), ("c", vec!["c", "c1"])]);
        let d = SummaryDiff::compute(&g, &s, &s);
        assert!(d.is_empty());
        assert_eq!(d.stability(), 1.0);
        assert_eq!(d.render(&g), "no change");
    }

    #[test]
    fn group_swap_is_reported() {
        let g = graph();
        let old = summary(&g, vec![("a", vec!["a", "a1"]), ("c", vec!["c", "c1"])]);
        let new = summary(&g, vec![("a", vec!["a", "a1", "c", "c1"])]);
        let d = SummaryDiff::compute(&g, &old, &new);
        assert!(d.added_groups.is_empty());
        assert_eq!(d.removed_groups.len(), 1);
        // c and c1 moved from c's group to a's.
        assert_eq!(d.moved.len(), 2);
        assert!(d.stability() < 1.0);
        let text = d.render(&g);
        assert!(text.contains("removed groups: c"));
        assert!(text.contains("2 elements regrouped"));
    }

    #[test]
    fn member_movement_without_group_change() {
        let g = graph();
        let old = summary(&g, vec![("a", vec!["a", "a1", "c1"]), ("c", vec!["c"])]);
        let new = summary(&g, vec![("a", vec!["a", "a1"]), ("c", vec!["c", "c1"])]);
        let d = SummaryDiff::compute(&g, &old, &new);
        assert!(d.added_groups.is_empty());
        assert!(d.removed_groups.is_empty());
        assert_eq!(d.moved.len(), 1);
        let (e, o, n) = d.moved[0];
        assert_eq!(g.label(e), "c1");
        assert_eq!(g.label(o), "a");
        assert_eq!(g.label(n), "c");
    }

    #[test]
    fn serde_roundtrip() {
        let g = graph();
        let old = summary(&g, vec![("a", vec!["a", "a1"]), ("c", vec!["c", "c1"])]);
        let new = summary(&g, vec![("a", vec!["a", "a1", "c", "c1"])]);
        let d = SummaryDiff::compute(&g, &old, &new);
        let json = serde_json::to_string(&d).unwrap();
        let back: SummaryDiff = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
