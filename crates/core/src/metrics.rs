//! Structural metrics over schema graphs.
//!
//! Summarization quality depends on schema shape (depth, fan-out, link
//! density — see the paper's Section 5.4 discussion of why the datasets
//! behave differently). This module computes the descriptive statistics
//! the `inspect` tooling and the dataset tests report.

use crate::graph::SchemaGraph;
use serde::{Deserialize, Serialize};

/// Descriptive statistics of a schema graph's structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphMetrics {
    /// Number of elements.
    pub elements: usize,
    /// Number of structural links.
    pub structural_links: usize,
    /// Number of value links.
    pub value_links: usize,
    /// Leaf elements (no structural children).
    pub leaves: usize,
    /// Composite elements (may have children).
    pub composites: usize,
    /// Maximum depth of the structural tree.
    pub max_depth: usize,
    /// Mean depth over all elements.
    pub avg_depth: f64,
    /// Maximum structural fan-out.
    pub max_fanout: usize,
    /// Mean fan-out over composite elements with at least one child.
    pub avg_fanout: f64,
    /// Maximum total degree (both link kinds, both directions).
    pub max_degree: usize,
}

impl GraphMetrics {
    /// Compute metrics for `graph`.
    pub fn compute(graph: &SchemaGraph) -> Self {
        let n = graph.len();
        let mut max_depth = 0usize;
        let mut depth_sum = 0usize;
        let mut max_fanout = 0usize;
        let mut fanout_sum = 0usize;
        let mut parents = 0usize;
        let mut leaves = 0usize;
        let mut composites = 0usize;
        let mut max_degree = 0usize;
        for e in graph.element_ids() {
            let d = graph.depth(e);
            depth_sum += d;
            max_depth = max_depth.max(d);
            let f = graph.children(e).len();
            if f > 0 {
                fanout_sum += f;
                parents += 1;
                max_fanout = max_fanout.max(f);
            } else {
                leaves += 1;
            }
            if graph.ty(e).is_composite() {
                composites += 1;
            }
            max_degree = max_degree.max(graph.degree(e));
        }
        GraphMetrics {
            elements: n,
            structural_links: graph.num_structural_links(),
            value_links: graph.num_value_links(),
            leaves,
            composites,
            max_depth,
            avg_depth: if n > 0 { depth_sum as f64 / n as f64 } else { 0.0 },
            max_fanout,
            avg_fanout: if parents > 0 {
                fanout_sum as f64 / parents as f64
            } else {
                0.0
            },
            max_degree,
        }
    }
}

impl std::fmt::Display for GraphMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} elements ({} composite, {} leaves), {} structural + {} value links",
            self.elements, self.composites, self.leaves, self.structural_links, self.value_links
        )?;
        write!(
            f,
            "depth max {} avg {:.1}; fanout max {} avg {:.1}; max degree {}",
            self.max_depth, self.avg_depth, self.max_fanout, self.avg_fanout, self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SchemaGraphBuilder;
    use crate::types::SchemaType;

    fn graph() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("r");
        let a = b.add_child(b.root(), "a", SchemaType::rcd()).unwrap();
        let x = b.add_child(a, "x", SchemaType::set_of_rcd()).unwrap();
        b.add_child(x, "x1", SchemaType::simple_str()).unwrap();
        b.add_child(x, "x2", SchemaType::simple_str()).unwrap();
        b.add_child(x, "x3", SchemaType::simple_str()).unwrap();
        let c = b.add_child(b.root(), "c", SchemaType::rcd()).unwrap();
        b.add_value_link(c, x).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_are_exact() {
        let m = GraphMetrics::compute(&graph());
        assert_eq!(m.elements, 7);
        assert_eq!(m.structural_links, 6);
        assert_eq!(m.value_links, 1);
        assert_eq!(m.leaves, 4); // x1, x2, x3, c
        assert_eq!(m.composites, 4); // r, a, x, c
        assert_eq!(m.max_depth, 3);
        assert_eq!(m.max_fanout, 3);
    }

    #[test]
    fn degree_counts_both_kinds() {
        let m = GraphMetrics::compute(&graph());
        // x: parent + 3 children + 1 incoming value link = 5.
        assert_eq!(m.max_degree, 5);
    }

    #[test]
    fn averages_are_consistent() {
        let m = GraphMetrics::compute(&graph());
        // depths: r0, a1, x2, x1..x3 = 3 each, c1 → sum 0+1+2+9+1 = 13.
        assert!((m.avg_depth - 13.0 / 7.0).abs() < 1e-12);
        // fanouts among parents: r=2, a=1, x=3 → avg 2.
        assert!((m.avg_fanout - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_facts() {
        let m = GraphMetrics::compute(&graph());
        let s = m.to_string();
        assert!(s.contains("7 elements"));
        assert!(s.contains("value links"));
    }
}
