//! Strongly typed identifiers for schema graph and summary entities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a schema element within a [`crate::SchemaGraph`].
///
/// Element ids are dense indices assigned in insertion order; the root is
/// always `ElementId(0)`. They are only meaningful relative to the graph that
/// produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElementId(pub u32);

impl ElementId {
    /// Index of this element in the graph's dense element array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of an abstract element within a [`crate::SchemaSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AbstractId(pub u32);

impl AbstractId {
    /// Index of this abstract element in the summary's dense array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AbstractId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_id_roundtrip() {
        let id = ElementId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "e42");
    }

    #[test]
    fn abstract_id_display() {
        assert_eq!(AbstractId(7).to_string(), "a7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ElementId(1) < ElementId(2));
        assert!(AbstractId(0) < AbstractId(1));
    }

    #[test]
    fn ids_serialize_as_numbers() {
        let json = serde_json::to_string(&ElementId(3)).unwrap();
        assert_eq!(json, "3");
        let back: ElementId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ElementId(3));
    }
}
