//! Schema summaries (Definition 2).
//!
//! A summary of a schema graph keeps a subset of original elements (`E'`),
//! groups every other element under an **abstract element** (the mapping
//! `M`), and consolidates links crossing group boundaries into **abstract
//! links** (`AL`). Each abstract element assumes the identity of a chosen
//! *representative* member; links wholly inside a group are hidden.
//!
//! A **full summary** keeps only the root as an original element; an
//! **expanded summary** additionally keeps the members of expanded groups
//! (see [`SchemaSummary::expand`]).
//!
//! Construction goes through [`SchemaSummary::from_grouping`], which
//! enforces every invariant of Definition 2: each schema element is
//! represented exactly once, each representative belongs to its own group,
//! the root is kept, and every original link is either kept, consolidated
//! into an abstract link, or hidden inside a group.

use crate::error::SchemaError;
use crate::graph::SchemaGraph;
use crate::ids::{AbstractId, ElementId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A node of the summary graph: either a kept original element or an
/// abstract element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SummaryNode {
    /// An original schema element kept in the summary (`E'`).
    Original(ElementId),
    /// An abstract element (`AE`).
    Abstract(AbstractId),
}

/// An abstract element: a group of original schema elements fronted by a
/// representative member whose identity (label) the group assumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbstractElement {
    /// The member whose label the abstract element displays.
    pub representative: ElementId,
    /// All original elements this abstract element represents, including the
    /// representative. Sorted by element id.
    pub members: Vec<ElementId>,
}

/// An abstract link consolidating one or more original links that cross a
/// group boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbstractLink {
    /// Source summary node.
    pub from: SummaryNode,
    /// Target summary node.
    pub to: SummaryNode,
    /// Number of original structural links consolidated into this link.
    pub structural_count: usize,
    /// Number of original value links consolidated into this link.
    pub value_count: usize,
}

impl AbstractLink {
    /// Whether this abstract link represents at least one value link
    /// (rendered dashed in the paper's figures).
    pub fn has_value(&self) -> bool {
        self.value_count > 0
    }

    /// Whether this abstract link represents at least one structural link.
    pub fn has_structural(&self) -> bool {
        self.structural_count > 0
    }
}

/// A schema summary (Definition 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaSummary {
    root: ElementId,
    /// Kept original elements `E'`, sorted; always contains the root.
    kept: Vec<ElementId>,
    /// Kept structural links `S'` (both endpoints kept, link not hidden).
    kept_structural: Vec<(ElementId, ElementId)>,
    /// Kept value links `V'`.
    kept_value: Vec<(ElementId, ElementId)>,
    /// Abstract elements `AE`.
    abstracts: Vec<AbstractElement>,
    /// Abstract links `AL`.
    abstract_links: Vec<AbstractLink>,
    /// The mapping `M`: for every schema element, the summary node that
    /// represents it (kept elements map to themselves).
    node_of: Vec<SummaryNode>,
}

impl SchemaSummary {
    /// Build a summary from a grouping decision.
    ///
    /// `groups` lists each abstract element as `(representative, members)`;
    /// `kept` lists original elements retained as-is (the root is always
    /// retained and may be omitted). Each schema element must appear exactly
    /// once in `kept ∪ groups`, and every representative must be a member of
    /// its own group.
    pub fn from_grouping(
        graph: &SchemaGraph,
        groups: Vec<(ElementId, Vec<ElementId>)>,
        mut kept: Vec<ElementId>,
    ) -> Result<Self, SchemaError> {
        let n = graph.len();
        if !kept.contains(&graph.root()) {
            kept.push(graph.root());
        }
        kept.sort_unstable();
        kept.dedup();

        // Assign every element to exactly one summary node.
        let mut node_of: Vec<Option<SummaryNode>> = vec![None; n];
        for &k in &kept {
            graph.check(k)?;
            if node_of[k.index()].is_some() {
                return Err(SchemaError::Invalid(format!(
                    "element {k} represented more than once"
                )));
            }
            node_of[k.index()] = Some(SummaryNode::Original(k));
        }
        let mut abstracts = Vec::with_capacity(groups.len());
        for (gi, (rep, mut members)) in groups.into_iter().enumerate() {
            let aid = AbstractId(gi as u32);
            members.sort_unstable();
            members.dedup();
            if !members.contains(&rep) {
                return Err(SchemaError::Invalid(format!(
                    "representative {rep} not a member of its group {aid}"
                )));
            }
            if members.is_empty() {
                return Err(SchemaError::Invalid(format!("abstract element {aid} is empty")));
            }
            for &m in &members {
                graph.check(m)?;
                if node_of[m.index()].is_some() {
                    return Err(SchemaError::Invalid(format!(
                        "element {m} represented more than once"
                    )));
                }
                node_of[m.index()] = Some(SummaryNode::Abstract(aid));
            }
            abstracts.push(AbstractElement {
                representative: rep,
                members,
            });
        }
        let node_of: Vec<SummaryNode> = node_of
            .into_iter()
            .enumerate()
            .map(|(i, n)| {
                n.ok_or_else(|| {
                    SchemaError::Invalid(format!("element e{i} not represented by the summary"))
                })
            })
            .collect::<Result<_, _>>()?;

        // Derive kept and abstract links (Definition 2's link conditions).
        let mut kept_structural = Vec::new();
        let mut kept_value = Vec::new();
        let mut alinks: BTreeMap<(SummaryNode, SummaryNode), (usize, usize)> = BTreeMap::new();
        for (p, c) in graph.structural_links() {
            let (np, nc) = (node_of[p.index()], node_of[c.index()]);
            match (np, nc) {
                _ if np == nc => {} // hidden inside one group
                (SummaryNode::Original(_), SummaryNode::Original(_)) => {
                    kept_structural.push((p, c));
                }
                _ => alinks.entry((np, nc)).or_insert((0, 0)).0 += 1,
            }
        }
        for (f, t) in graph.value_links() {
            let (nf, nt) = (node_of[f.index()], node_of[t.index()]);
            match (nf, nt) {
                _ if nf == nt => {}
                (SummaryNode::Original(_), SummaryNode::Original(_)) => {
                    kept_value.push((f, t));
                }
                _ => alinks.entry((nf, nt)).or_insert((0, 0)).1 += 1,
            }
        }
        let abstract_links = alinks
            .into_iter()
            .map(|((from, to), (s, v))| AbstractLink {
                from,
                to,
                structural_count: s,
                value_count: v,
            })
            .collect();

        Ok(SchemaSummary {
            root: graph.root(),
            kept,
            kept_structural,
            kept_value,
            abstracts,
            abstract_links,
            node_of,
        })
    }

    /// The root element (always kept).
    #[inline]
    pub fn root(&self) -> ElementId {
        self.root
    }

    /// Kept original elements `E'` (includes the root), sorted by id.
    #[inline]
    pub fn kept(&self) -> &[ElementId] {
        &self.kept
    }

    /// Kept structural links `S'`.
    #[inline]
    pub fn kept_structural(&self) -> &[(ElementId, ElementId)] {
        &self.kept_structural
    }

    /// Kept value links `V'`.
    #[inline]
    pub fn kept_value(&self) -> &[(ElementId, ElementId)] {
        &self.kept_value
    }

    /// The abstract elements `AE`.
    #[inline]
    pub fn abstracts(&self) -> &[AbstractElement] {
        &self.abstracts
    }

    /// The abstract links `AL`.
    #[inline]
    pub fn abstract_links(&self) -> &[AbstractLink] {
        &self.abstract_links
    }

    /// Ids of all abstract elements.
    pub fn abstract_ids(&self) -> impl ExactSizeIterator<Item = AbstractId> {
        (0..self.abstracts.len() as u32).map(AbstractId)
    }

    /// The abstract element `aid`.
    pub fn abstract_element(&self, aid: AbstractId) -> Result<&AbstractElement, SchemaError> {
        self.abstracts
            .get(aid.index())
            .ok_or(SchemaError::UnknownAbstract(aid))
    }

    /// The summary node representing schema element `e` (`M`, with kept
    /// elements mapping to themselves).
    #[inline]
    pub fn node_of(&self, e: ElementId) -> SummaryNode {
        self.node_of[e.index()]
    }

    /// Whether `e` is visible in the summary: kept, or the representative of
    /// an abstract element.
    pub fn is_summary_element(&self, e: ElementId) -> bool {
        match self.node_of(e) {
            SummaryNode::Original(_) => true,
            SummaryNode::Abstract(aid) => self.abstracts[aid.index()].representative == e,
        }
    }

    /// The elements whose labels a user sees: representatives of abstract
    /// elements plus kept elements **excluding the root** (matching the
    /// paper's "summary of size K" counting, where Figure 2(A)'s elements
    /// are all abstract except `site`). Sorted by id.
    pub fn visible_elements(&self) -> Vec<ElementId> {
        let mut out: Vec<ElementId> = self
            .kept
            .iter()
            .copied()
            .filter(|&e| e != self.root)
            .chain(self.abstracts.iter().map(|a| a.representative))
            .collect();
        out.sort_unstable();
        out
    }

    /// Summary size: number of summary elements excluding the root.
    pub fn size(&self) -> usize {
        self.abstracts.len() + self.kept.len() - 1
    }

    /// Whether this is a full summary (only the root is kept as an original
    /// element).
    pub fn is_full(&self) -> bool {
        self.kept.len() == 1
    }

    /// The display label of a summary node (the representative's label for
    /// abstract elements).
    pub fn node_label<'g>(&self, graph: &'g SchemaGraph, node: SummaryNode) -> &'g str {
        match node {
            SummaryNode::Original(e) => graph.label(e),
            SummaryNode::Abstract(aid) => graph.label(self.abstracts[aid.index()].representative),
        }
    }

    /// Expand abstract element `aid`: its members become kept original
    /// elements with their original interconnecting links restored, while
    /// all other groups stay abstract (producing an *expanded summary*,
    /// Figure 2(C)).
    pub fn expand(&self, graph: &SchemaGraph, aid: AbstractId) -> Result<SchemaSummary, SchemaError> {
        let target = self.abstract_element(aid)?;
        let mut kept = self.kept.clone();
        kept.extend_from_slice(&target.members);
        let groups = self
            .abstracts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != aid.index())
            .map(|(_, a)| (a.representative, a.members.clone()))
            .collect();
        SchemaSummary::from_grouping(graph, groups, kept)
    }

    /// Verify every invariant of Definition 2 against `graph`. Summaries
    /// produced by [`from_grouping`](Self::from_grouping) always pass; this
    /// is exposed for property tests and deserialized data.
    pub fn validate(&self, graph: &SchemaGraph) -> Result<(), SchemaError> {
        if self.node_of.len() != graph.len() {
            return Err(SchemaError::Invalid("mapping length mismatch".into()));
        }
        if !self.kept.contains(&graph.root()) {
            return Err(SchemaError::Invalid("root not kept".into()));
        }
        // Every element represented exactly once, consistently with node_of.
        let mut count = vec![0usize; graph.len()];
        for &k in &self.kept {
            count[k.index()] += 1;
            if self.node_of(k) != SummaryNode::Original(k) {
                return Err(SchemaError::Invalid(format!("kept {k} maps elsewhere")));
            }
        }
        for (gi, a) in self.abstracts.iter().enumerate() {
            if !a.members.contains(&a.representative) {
                return Err(SchemaError::Invalid("representative outside group".into()));
            }
            for &m in &a.members {
                count[m.index()] += 1;
                if self.node_of(m) != SummaryNode::Abstract(AbstractId(gi as u32)) {
                    return Err(SchemaError::Invalid(format!("member {m} maps elsewhere")));
                }
            }
        }
        if let Some(i) = count.iter().position(|&c| c != 1) {
            return Err(SchemaError::Invalid(format!(
                "element e{i} represented {} times",
                count[i]
            )));
        }
        // Every original link accounted for: kept, abstracted, or hidden.
        for (p, c) in graph.structural_links() {
            let (np, nc) = (self.node_of(p), self.node_of(c));
            if np == nc {
                continue;
            }
            let ok = if let (SummaryNode::Original(_), SummaryNode::Original(_)) = (np, nc) {
                self.kept_structural.contains(&(p, c))
            } else {
                self.abstract_links
                    .iter()
                    .any(|l| l.from == np && l.to == nc && l.structural_count > 0)
            };
            if !ok {
                return Err(SchemaError::Invalid(format!(
                    "structural link {p} -> {c} not represented"
                )));
            }
        }
        for (f, t) in graph.value_links() {
            let (nf, nt) = (self.node_of(f), self.node_of(t));
            if nf == nt {
                continue;
            }
            let ok = if let (SummaryNode::Original(_), SummaryNode::Original(_)) = (nf, nt) {
                self.kept_value.contains(&(f, t))
            } else {
                self.abstract_links
                    .iter()
                    .any(|l| l.from == nf && l.to == nt && l.value_count > 0)
            };
            if !ok {
                return Err(SchemaError::Invalid(format!(
                    "value link {f} -> {t} not represented"
                )));
            }
        }
        Ok(())
    }

    /// Render a human-readable description of the summary.
    pub fn outline(&self, graph: &SchemaGraph) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "summary of size {} ({} abstract, {} kept incl. root)\n",
            self.size(),
            self.abstracts.len(),
            self.kept.len()
        ));
        for (i, a) in self.abstracts.iter().enumerate() {
            s.push_str(&format!(
                "  [a{i}] {} ({} members)\n",
                graph.label(a.representative),
                a.members.len()
            ));
        }
        for l in &self.abstract_links {
            let kind = match (l.has_structural(), l.has_value()) {
                (true, true) => "s+v",
                (true, false) => "s",
                (false, true) => "v",
                (false, false) => "?",
            };
            s.push_str(&format!(
                "  {} -{}-> {}\n",
                self.node_label(graph, l.from),
                kind,
                self.node_label(graph, l.to)
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SchemaGraphBuilder;
    use crate::types::SchemaType;

    /// site -> {people -> person* -> {name, profile -> interest*},
    ///          open_auctions -> open_auction* -> bidder*}
    /// bidder ->V person
    fn graph() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
        b.add_child(person, "name", SchemaType::simple_str()).unwrap();
        let profile = b.add_child(person, "profile", SchemaType::rcd()).unwrap();
        b.add_child(profile, "interest", SchemaType::set_of_rcd()).unwrap();
        let oas = b.add_child(b.root(), "open_auctions", SchemaType::rcd()).unwrap();
        let oa = b.add_child(oas, "open_auction", SchemaType::set_of_rcd()).unwrap();
        let bidder = b.add_child(oa, "bidder", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(bidder, person).unwrap();
        b.build().unwrap()
    }

    fn two_group_summary(g: &SchemaGraph) -> SchemaSummary {
        let person = g.find_unique("person").unwrap();
        let oa = g.find_unique("open_auction").unwrap();
        let person_group: Vec<_> = ["people", "person", "name", "profile", "interest"]
            .iter()
            .map(|l| g.find_unique(l).unwrap())
            .collect();
        let oa_group: Vec<_> = ["open_auctions", "open_auction", "bidder"]
            .iter()
            .map(|l| g.find_unique(l).unwrap())
            .collect();
        SchemaSummary::from_grouping(
            g,
            vec![(person, person_group), (oa, oa_group)],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn full_summary_structure() {
        let g = graph();
        let s = two_group_summary(&g);
        assert!(s.is_full());
        assert_eq!(s.size(), 2);
        assert_eq!(s.abstracts().len(), 2);
        s.validate(&g).unwrap();

        // Links: root -> person-group (structural), root -> oa-group
        // (structural), oa-group -> person-group (value: bidder->person).
        assert_eq!(s.abstract_links().len(), 3);
        let value_links: Vec<_> = s.abstract_links().iter().filter(|l| l.has_value()).collect();
        assert_eq!(value_links.len(), 1);
        assert_eq!(s.node_label(&g, value_links[0].from), "open_auction");
        assert_eq!(s.node_label(&g, value_links[0].to), "person");
    }

    #[test]
    fn mapping_and_visibility() {
        let g = graph();
        let s = two_group_summary(&g);
        let person = g.find_unique("person").unwrap();
        let profile = g.find_unique("profile").unwrap();
        // person is directly represented, profile indirectly.
        assert!(s.is_summary_element(person));
        assert!(!s.is_summary_element(profile));
        assert_eq!(s.node_of(profile), s.node_of(person));
        let visible = s.visible_elements();
        assert_eq!(visible.len(), 2);
        assert!(visible.contains(&person));
    }

    #[test]
    fn hidden_links_are_hidden() {
        let g = graph();
        let s = two_group_summary(&g);
        // person -> profile is inside the person group: not kept, not abstract.
        assert!(s.kept_structural().is_empty());
        assert!(s.kept_value().is_empty());
        let total_structural: usize = s
            .abstract_links()
            .iter()
            .map(|l| l.structural_count)
            .sum();
        // Only site->people and site->open_auctions cross boundaries.
        assert_eq!(total_structural, 2);
    }

    #[test]
    fn expansion_restores_members() {
        let g = graph();
        let s = two_group_summary(&g);
        // Expand the person group (find which abstract id has label person).
        let aid = s
            .abstract_ids()
            .find(|&a| g.label(s.abstracts()[a.index()].representative) == "person")
            .unwrap();
        let e = s.expand(&g, aid).unwrap();
        e.validate(&g).unwrap();
        assert!(!e.is_full());
        assert_eq!(e.abstracts().len(), 1);
        // The person group members are now kept originals.
        let profile = g.find_unique("profile").unwrap();
        assert_eq!(e.node_of(profile), SummaryNode::Original(profile));
        // person->profile structural link is now a kept link.
        let person = g.find_unique("person").unwrap();
        assert!(e.kept_structural().contains(&(person, profile)));
        // bidder (inside remaining oa group) ->V person (now kept): abstract link.
        assert!(e
            .abstract_links()
            .iter()
            .any(|l| l.has_value() && l.to == SummaryNode::Original(person)));
    }

    #[test]
    fn rejects_double_representation() {
        let g = graph();
        let person = g.find_unique("person").unwrap();
        let all: Vec<_> = g.element_ids().filter(|&e| e != g.root()).collect();
        let err = SchemaSummary::from_grouping(
            &g,
            vec![(person, all.clone()), (person, vec![person])],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, SchemaError::Invalid(_)));
    }

    #[test]
    fn rejects_missing_elements() {
        let g = graph();
        let person = g.find_unique("person").unwrap();
        let err =
            SchemaSummary::from_grouping(&g, vec![(person, vec![person])], vec![]).unwrap_err();
        assert!(matches!(err, SchemaError::Invalid(_)));
    }

    #[test]
    fn rejects_rep_outside_group() {
        let g = graph();
        let person = g.find_unique("person").unwrap();
        let name = g.find_unique("name").unwrap();
        let err = SchemaSummary::from_grouping(&g, vec![(person, vec![name])], vec![]).unwrap_err();
        assert!(matches!(err, SchemaError::Invalid(_)));
    }

    #[test]
    fn root_always_kept() {
        let g = graph();
        let s = two_group_summary(&g);
        assert_eq!(s.kept(), &[g.root()]);
        assert_eq!(s.node_of(g.root()), SummaryNode::Original(g.root()));
    }

    #[test]
    fn outline_mentions_groups() {
        let g = graph();
        let s = two_group_summary(&g);
        let o = s.outline(&g);
        assert!(o.contains("person"));
        assert!(o.contains("open_auction"));
        assert!(o.contains("-v->") || o.contains("s+v"));
    }

    #[test]
    fn serde_roundtrip() {
        let g = graph();
        let s = two_group_summary(&g);
        let json = serde_json::to_string(&s).unwrap();
        let back: SchemaSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        back.validate(&g).unwrap();
    }
}
