//! Robustness: the hand-rolled parsers must never panic, whatever the
//! input — they either parse or return a `ParseError`.

use proptest::prelude::*;
use schema_summary_io::{parse_ddl, parse_dtd, parse_xsd, DtdConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ddl_never_panics(input in ".{0,300}") {
        let _ = parse_ddl(&input, "db");
    }

    #[test]
    fn xsd_never_panics(input in ".{0,300}") {
        let _ = parse_xsd(&input);
    }

    #[test]
    fn dtd_never_panics(input in ".{0,300}") {
        let _ = parse_dtd(&input, "root", &DtdConfig::default());
    }

    #[test]
    fn ddl_never_panics_on_sqlish_fragments(
        tables in prop::collection::vec("[a-z]{1,8}", 1..4),
        cols in prop::collection::vec("[a-z_]{1,10}", 1..6),
        junk in "[(),;'\" \n]{0,40}",
    ) {
        let mut ddl = String::new();
        for t in &tables {
            ddl.push_str(&format!("CREATE TABLE {t} ("));
            for (i, c) in cols.iter().enumerate() {
                if i > 0 { ddl.push(','); }
                ddl.push_str(&format!("{c}{i} INTEGER"));
            }
            ddl.push_str(");");
        }
        ddl.push_str(&junk);
        let _ = parse_ddl(&ddl, "db");
    }

    #[test]
    fn wellformed_ddl_roundtrips_structure(
        n_tables in 1usize..5,
        n_cols in 1usize..8,
    ) {
        let mut ddl = String::new();
        for t in 0..n_tables {
            ddl.push_str(&format!("CREATE TABLE t{t} ("));
            for c in 0..n_cols {
                if c > 0 { ddl.push_str(", "); }
                ddl.push_str(&format!("c{t}_{c} INTEGER"));
            }
            ddl.push_str(");\n");
        }
        let g = parse_ddl(&ddl, "db").unwrap();
        prop_assert_eq!(g.len(), 1 + n_tables * (1 + n_cols));
        for t in 0..n_tables {
            let table = g.find_unique(&format!("t{t}")).unwrap();
            prop_assert_eq!(g.children(table).len(), n_cols);
        }
    }

    #[test]
    fn xml_loader_never_panics(input in ".{0,300}") {
        use schema_summary_core::{SchemaGraphBuilder, SchemaType};
        let mut b = SchemaGraphBuilder::new("r");
        b.add_child(b.root(), "a", SchemaType::set_of_rcd()).unwrap();
        let g = b.build().unwrap();
        let _ = schema_summary_io::parse_xml_instance(&g, &input);
    }

    #[test]
    fn csv_loader_never_panics(input in ".{0,200}") {
        use schema_summary_core::{SchemaGraphBuilder, SchemaType};
        let mut b = SchemaGraphBuilder::new("r");
        let t = b.add_child(b.root(), "t", SchemaType::set_of_rcd()).unwrap();
        b.add_child(t, "x", SchemaType::simple_id()).unwrap();
        let g = b.build().unwrap();
        let _ = schema_summary_io::load_csv_instance(&g, &[("t", &input)]);
    }
}
