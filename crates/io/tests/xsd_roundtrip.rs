//! Round-trip: schema graph → XSD text → schema graph must be lossless for
//! everything the schema-graph model captures (labels, types, multiplicity,
//! structure, value links).

use proptest::prelude::*;
use schema_summary_core::{SchemaGraph, SchemaGraphBuilder, SchemaType};
use schema_summary_io::{parse_xsd, schema_to_xsd};

/// Order-insensitive structural equivalence by label path. (XSD syntax
/// places attributes after the model group, so the relative order of
/// attributes and sub-elements cannot round-trip; everything else must.)
fn assert_equivalent(a: &SchemaGraph, b: &SchemaGraph) {
    assert_eq!(a.len(), b.len(), "element counts differ");
    fn signature(g: &SchemaGraph) -> Vec<(String, bool, bool, Option<String>)> {
        let mut v: Vec<_> = g
            .element_ids()
            .map(|e| {
                (
                    g.label_path(e),
                    g.ty(e).is_set(),
                    g.ty(e).is_simple(),
                    g.ty(e).atomic().map(|t| t.to_string()),
                )
            })
            .collect();
        v.sort();
        v
    }
    assert_eq!(signature(a), signature(b), "element signatures differ");
    fn links(g: &SchemaGraph) -> Vec<(String, String)> {
        let mut v: Vec<_> = g
            .value_links()
            .map(|(f, t)| (g.label_path(f), g.label_path(t)))
            .collect();
        v.sort();
        v
    }
    assert_eq!(links(a), links(b), "value links differ");
}

#[test]
fn handcrafted_schema_roundtrips() {
    let mut b = SchemaGraphBuilder::new("site");
    let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
    let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
    b.add_child(person, "@id", SchemaType::simple_id()).unwrap();
    b.add_child(person, "name", SchemaType::simple_str()).unwrap();
    b.add_child(person, "age", SchemaType::simple_int()).unwrap();
    let auctions = b.add_child(b.root(), "auctions", SchemaType::rcd()).unwrap();
    let auction = b.add_child(auctions, "auction", SchemaType::set_of_rcd()).unwrap();
    b.add_child(auction, "@ref", SchemaType::simple_idref()).unwrap();
    b.add_child(auction, "price", SchemaType::simple_float()).unwrap();
    b.add_value_link(auction, person).unwrap();
    let g = b.build().unwrap();

    let xsd = schema_to_xsd(&g);
    let back = parse_xsd(&xsd).unwrap();
    assert_equivalent(&g, &back);
}

#[test]
fn dataset_schemas_roundtrip() {
    // The MiMI schema exercises deep nesting, attributes, and value links.
    let (g, _, _) = schema_summary_datasets::mimi::schema(
        schema_summary_datasets::mimi::Version::Jan06,
    );
    let xsd = schema_to_xsd(&g);
    let back = parse_xsd(&xsd).unwrap();
    assert_equivalent(&g, &back);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_schemas_roundtrip(n in 2usize..30, seed in any::<u64>()) {
        // Random tree with unique labels (the XSD ref declarations use
        // label paths, so same-label siblings are avoided here; duplicated
        // labels across contexts are covered by dataset_schemas_roundtrip).
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = SchemaGraphBuilder::new("root");
        let mut composites = vec![b.root()];
        let mut all = vec![b.root()];
        for i in 1..n {
            let parent = composites[(next() as usize) % composites.len()];
            let roll = next() % 5;
            let (label, ty) = match roll {
                0 => (format!("e{i}"), SchemaType::simple_str()),
                1 => (format!("@a{i}"), SchemaType::simple_id()),
                2 => (format!("e{i}"), SchemaType::set_of_rcd()),
                3 => (format!("e{i}"), SchemaType::set_of_simple_str()),
                _ => (format!("e{i}"), SchemaType::rcd()),
            };
            let id = b.add_child(parent, label, ty.clone()).unwrap();
            if ty.is_composite() {
                composites.push(id);
            }
            all.push(id);
        }
        // A couple of value links between composites.
        for _ in 0..(next() % 3) {
            let f = composites[(next() as usize) % composites.len()];
            let t = composites[(next() as usize) % composites.len()];
            let _ = b.add_value_link(f, t);
        }
        let g = b.build().unwrap();
        let xsd = schema_to_xsd(&g);
        let back = parse_xsd(&xsd).unwrap();
        assert_equivalent(&g, &back);
    }
}
