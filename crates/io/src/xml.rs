//! XML instance loader: documents → [`DataTree`]s over a schema graph.
//!
//! Elements are matched to schema elements by label within the current
//! parent's children; attributes become data nodes of the corresponding
//! `@name` schema child. Attributes whose schema type is `Id` register the
//! host node under their value; attributes typed `IdRef` produce value
//! references, resolved after the whole document is read (forward
//! references are legal in XML).

use crate::xmlparse::{XmlEvent, XmlReader};
use crate::ParseError;
use schema_summary_core::{AtomicType, ElementId, SchemaGraph};
use schema_summary_instance::{DataTree, DataTreeBuilder, NodeId};
use std::collections::HashMap;

/// Parse an XML document into a data tree conforming to `graph`.
pub fn parse_xml_instance(graph: &SchemaGraph, input: &str) -> Result<DataTree, ParseError> {
    let mut reader = XmlReader::new(input);

    // Find the document element.
    let (root_name, root_attrs) = loop {
        match reader.next_event()? {
            Some(XmlEvent::Open { name, attrs, self_closing }) => {
                if self_closing {
                    // A one-element document.
                    if name != graph.label(graph.root()) {
                        return Err(ParseError::new(
                            reader.line,
                            format!("document element <{name}> does not match schema root"),
                        ));
                    }
                }
                break (name, attrs);
            }
            Some(_) => continue,
            None => return Err(ParseError::new(reader.line, "empty document")),
        }
    };
    if root_name != graph.label(graph.root()) {
        return Err(ParseError::new(
            reader.line,
            format!(
                "document element <{root_name}> does not match schema root '{}'",
                graph.label(graph.root())
            ),
        ));
    }

    let mut builder = DataTreeBuilder::new(graph.root());
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut pending_refs: Vec<(NodeId, String, usize)> = Vec::new();

    let root_node = builder.root();
    process_attrs(
        graph,
        &mut builder,
        root_node,
        graph.root(),
        &root_attrs,
        &mut ids,
        &mut pending_refs,
        reader.line,
    )?;

    // (data node, schema element) stack.
    let mut stack: Vec<(NodeId, ElementId)> = vec![(builder.root(), graph.root())];
    loop {
        match reader.next_event()? {
            Some(XmlEvent::Open { name, attrs, self_closing }) => {
                let &(parent_node, parent_el) = stack.last().ok_or_else(|| {
                    ParseError::new(reader.line, "content after document element")
                })?;
                let child_el = *graph
                    .children(parent_el)
                    .iter()
                    .find(|&&c| graph.label(c) == name)
                    .ok_or_else(|| {
                        ParseError::new(
                            reader.line,
                            format!(
                                "<{name}> is not a child of <{}> in the schema",
                                graph.label(parent_el)
                            ),
                        )
                    })?;
                let node = builder.add_node(parent_node, child_el);
                process_attrs(
                    graph,
                    &mut builder,
                    node,
                    child_el,
                    &attrs,
                    &mut ids,
                    &mut pending_refs,
                    reader.line,
                )?;
                if !self_closing {
                    stack.push((node, child_el));
                }
            }
            Some(XmlEvent::Close(_)) => {
                stack.pop();
                if stack.is_empty() {
                    break;
                }
            }
            Some(XmlEvent::Text(_)) => {} // values are irrelevant to counts
            None => break,
        }
    }

    // Resolve idrefs.
    for (node, key, line) in pending_refs {
        let target = ids.get(&key).ok_or_else(|| {
            ParseError::new(line, format!("unresolved reference '{key}'"))
        })?;
        builder.add_ref(node, *target);
    }
    Ok(builder.build())
}

#[allow(clippy::too_many_arguments)]
fn process_attrs(
    graph: &SchemaGraph,
    builder: &mut DataTreeBuilder,
    node: NodeId,
    element: ElementId,
    attrs: &[(String, String)],
    ids: &mut HashMap<String, NodeId>,
    pending: &mut Vec<(NodeId, String, usize)>,
    line: usize,
) -> Result<(), ParseError> {
    for (name, value) in attrs {
        let label = format!("@{name}");
        let attr_el = *graph
            .children(element)
            .iter()
            .find(|&&c| graph.label(c) == label)
            .ok_or_else(|| {
                ParseError::new(
                    line,
                    format!("attribute '{name}' not declared on <{}>", graph.label(element)),
                )
            })?;
        builder.add_node(node, attr_el);
        match graph.ty(attr_el).atomic() {
            Some(AtomicType::Id)
                if ids.insert(value.clone(), node).is_some() => {
                    return Err(ParseError::new(line, format!("duplicate id '{value}'")));
                }
            Some(AtomicType::IdRef) => {
                // Whitespace-separated IDREFS are decomposed.
                for key in value.split_whitespace() {
                    pending.push((node, key.to_string(), line));
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xsd::parse_xsd;
    use schema_summary_instance::{annotate_schema, check_conformance};

    const SCHEMA: &str = r#"
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="site">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="person" maxOccurs="unbounded">
              <xs:complexType>
                <xs:sequence>
                  <xs:element name="name" type="xs:string"/>
                </xs:sequence>
                <xs:attribute name="id" type="xs:ID"/>
              </xs:complexType>
            </xs:element>
            <xs:element name="bid" maxOccurs="unbounded">
              <xs:complexType>
                <xs:attribute name="person" type="xs:IDREF"/>
              </xs:complexType>
            </xs:element>
          </xs:sequence>
        </xs:complexType>
      </xs:element>
      <ss:ref from="site/bid" to="site/person"/>
    </xs:schema>"#;

    const DOC: &str = r#"<?xml version="1.0"?>
    <site>
      <person id="p1"><name>Ada</name></person>
      <person id="p2"><name>Grace</name></person>
      <bid person="p1"/>
      <bid person="p1"/>
      <bid person="p2"/>
    </site>"#;

    #[test]
    fn loads_and_conforms() {
        let g = parse_xsd(SCHEMA).unwrap();
        let t = parse_xml_instance(&g, DOC).unwrap();
        // site + 2 persons + 2 @id + 2 names + 3 bids + 3 @person = 13.
        assert_eq!(t.len(), 13);
        assert!(check_conformance(&g, &t).is_empty());
    }

    #[test]
    fn references_resolve_and_annotate() {
        let g = parse_xsd(SCHEMA).unwrap();
        let t = parse_xml_instance(&g, DOC).unwrap();
        let stats = annotate_schema(&g, &t).unwrap();
        let person = g.find_unique("person").unwrap();
        let bid = g.find_unique("bid").unwrap();
        assert_eq!(stats.card(person), 2.0);
        assert_eq!(stats.card(bid), 3.0);
        // 3 references over 2 persons.
        assert!((stats.rc(person, bid) - 1.5).abs() < 1e-9);
        assert!((stats.rc(bid, person) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_element_is_rejected() {
        let g = parse_xsd(SCHEMA).unwrap();
        let err = parse_xml_instance(&g, "<site><alien/></site>").unwrap_err();
        assert!(err.message.contains("alien"), "{err}");
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        let g = parse_xsd(SCHEMA).unwrap();
        let err =
            parse_xml_instance(&g, r#"<site><person color="red"/></site>"#).unwrap_err();
        assert!(err.message.contains("color"), "{err}");
    }

    #[test]
    fn dangling_reference_is_rejected() {
        let g = parse_xsd(SCHEMA).unwrap();
        let err = parse_xml_instance(&g, r#"<site><bid person="ghost"/></site>"#).unwrap_err();
        assert!(err.message.contains("ghost"), "{err}");
    }

    #[test]
    fn wrong_root_is_rejected() {
        let g = parse_xsd(SCHEMA).unwrap();
        assert!(parse_xml_instance(&g, "<other/>").is_err());
    }

    #[test]
    fn duplicate_id_is_rejected() {
        let g = parse_xsd(SCHEMA).unwrap();
        let doc = r#"<site><person id="p1"/><person id="p1"/></site>"#;
        let err = parse_xml_instance(&g, doc).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }
}
