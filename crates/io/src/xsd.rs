//! XML-Schema front-end: an XSD subset → hierarchical schema graph.
//!
//! Supported constructs (namespace prefixes are accepted but not resolved;
//! `xs:` is conventional):
//!
//! * nested `xs:element` with inline `xs:complexType` containing
//!   `xs:sequence` / `xs:all` (→ `Rcd`) or `xs:choice` (→ `Choice`);
//! * `maxOccurs="unbounded"` or `> 1` → `SetOf`;
//! * `xs:attribute` (→ a `Simple` child labeled `@name`);
//! * atomic `type` attributes (`xs:string`, `xs:integer`, `xs:decimal`,
//!   `xs:date`, `xs:boolean`, `xs:ID`, `xs:IDREF`);
//! * value links via `ss:ref from="<path>" to="<path>"` elements (a
//!   pragmatic stand-in for `xs:keyref`, whose selector/field XPath
//!   machinery is far beyond what schema summarization needs — paths are
//!   slash-separated label paths from the root).

use crate::xmlparse::{XmlEvent, XmlReader};
use crate::ParseError;
use schema_summary_core::{AtomicType, ElementId, SchemaGraph, SchemaGraphBuilder, SchemaType};

/// Parse an XSD document into a schema graph.
pub fn parse_xsd(input: &str) -> Result<SchemaGraph, ParseError> {
    let mut reader = XmlReader::new(input);
    // Find the xs:schema open tag.
    loop {
        match reader.next_event()? {
            Some(XmlEvent::Open { name, .. }) if local(&name) == "schema" => break,
            Some(_) => continue,
            None => return Err(ParseError::new(reader.line, "no <schema> element found")),
        }
    }

    let mut builder: Option<SchemaGraphBuilder> = None;
    let mut refs: Vec<(String, String, usize)> = Vec::new();

    // Top level of the schema: one global element (the root) + ss:ref decls.
    loop {
        match reader.next_event()? {
            Some(XmlEvent::Open { name, attrs, self_closing }) => match local(&name) {
                "element" => {
                    if builder.is_some() {
                        return Err(ParseError::new(
                            reader.line,
                            "only one global root element is supported",
                        ));
                    }
                    let elem_name = attr(&attrs, "name").ok_or_else(|| {
                        ParseError::new(reader.line, "element without name")
                    })?;
                    let mut b = SchemaGraphBuilder::new(elem_name);
                    let root = b.root();
                    if !self_closing {
                        parse_element_body(&mut reader, &mut b, root, &name)?;
                    }
                    builder = Some(b);
                }
                "ref" => {
                    let from = attr(&attrs, "from")
                        .ok_or_else(|| ParseError::new(reader.line, "ref without from"))?;
                    let to = attr(&attrs, "to")
                        .ok_or_else(|| ParseError::new(reader.line, "ref without to"))?;
                    refs.push((from, to, reader.line));
                    if !self_closing {
                        skip_element(&mut reader, &name)?;
                    }
                }
                other => {
                    return Err(ParseError::new(
                        reader.line,
                        format!("unsupported top-level construct <{other}>"),
                    ))
                }
            },
            Some(XmlEvent::Close(name)) if local(&name) == "schema" => break,
            Some(XmlEvent::Close(_)) | Some(XmlEvent::Text(_)) => continue,
            None => break,
        }
    }

    let mut builder =
        builder.ok_or_else(|| ParseError::new(reader.line, "schema defines no root element"))?;

    // Resolve value-link declarations against the built tree (paths are
    // resolvable on the builder's final graph; build first, then re-add).
    let graph = builder.clone().build().map_err(|e| ParseError::new(0, e.to_string()))?;
    for (from, to, line) in refs {
        let f = graph
            .find_by_path(&from)
            .ok_or_else(|| ParseError::new(line, format!("ref path '{from}' not found")))?;
        let t = graph
            .find_by_path(&to)
            .ok_or_else(|| ParseError::new(line, format!("ref path '{to}' not found")))?;
        builder
            .add_value_link(f, t)
            .map_err(|e| ParseError::new(line, e.to_string()))?;
    }
    builder.build().map_err(|e| ParseError::new(0, e.to_string()))
}

/// Parse the body of an `<xs:element>` (until its closing tag): an optional
/// inline complexType with a model group and attributes.
fn parse_element_body(
    reader: &mut XmlReader<'_>,
    builder: &mut SchemaGraphBuilder,
    element: ElementId,
    closing: &str,
) -> Result<(), ParseError> {
    loop {
        match reader.next_event()? {
            Some(XmlEvent::Open { name, attrs: _, self_closing }) => match local(&name) {
                "complexType" => {
                    if !self_closing {
                        parse_complex_type(reader, builder, element, &name)?;
                    }
                }
                "annotation" | "documentation" => {
                    if !self_closing {
                        skip_element(reader, &name)?;
                    }
                }
                other => {
                    return Err(ParseError::new(
                        reader.line,
                        format!("unsupported construct <{other}> inside element"),
                    ))
                }
            },
            Some(XmlEvent::Close(name)) if name == closing => return Ok(()),
            Some(XmlEvent::Close(_)) | Some(XmlEvent::Text(_)) => continue,
            None => return Err(ParseError::new(reader.line, "unexpected end of schema")),
        }
    }
}

/// Parse `<xs:complexType>`: a model group (`sequence`/`all`/`choice`) plus
/// trailing `xs:attribute`s. Sets the host element's composite kind.
fn parse_complex_type(
    reader: &mut XmlReader<'_>,
    builder: &mut SchemaGraphBuilder,
    element: ElementId,
    closing: &str,
) -> Result<(), ParseError> {
    loop {
        match reader.next_event()? {
            Some(XmlEvent::Open { name, attrs, self_closing }) => match local(&name) {
                "sequence" | "all" => {
                    if !self_closing {
                        parse_model_group(reader, builder, element, &name)?;
                    }
                }
                "choice" => {
                    mark_choice(builder, element);
                    if !self_closing {
                        parse_model_group(reader, builder, element, &name)?;
                    }
                }
                "attribute" => {
                    let attr_name = attr(&attrs, "name")
                        .ok_or_else(|| ParseError::new(reader.line, "attribute without name"))?;
                    let ty = attr(&attrs, "type").unwrap_or_else(|| "xs:string".into());
                    builder
                        .add_child(
                            element,
                            format!("@{attr_name}"),
                            SchemaType::Simple(atomic_of(&ty)),
                        )
                        .map_err(|e| ParseError::new(reader.line, e.to_string()))?;
                    if !self_closing {
                        skip_element(reader, &name)?;
                    }
                }
                "annotation" | "documentation" => {
                    if !self_closing {
                        skip_element(reader, &name)?;
                    }
                }
                other => {
                    return Err(ParseError::new(
                        reader.line,
                        format!("unsupported construct <{other}> inside complexType"),
                    ))
                }
            },
            Some(XmlEvent::Close(name)) if name == closing => return Ok(()),
            Some(XmlEvent::Close(_)) | Some(XmlEvent::Text(_)) => continue,
            None => return Err(ParseError::new(reader.line, "unexpected end of schema")),
        }
    }
}

/// Parse the children of a model group: a list of `xs:element`s.
fn parse_model_group(
    reader: &mut XmlReader<'_>,
    builder: &mut SchemaGraphBuilder,
    parent: ElementId,
    closing: &str,
) -> Result<(), ParseError> {
    loop {
        match reader.next_event()? {
            Some(XmlEvent::Open { name, attrs, self_closing }) => match local(&name) {
                "element" => {
                    let child_name = attr(&attrs, "name")
                        .ok_or_else(|| ParseError::new(reader.line, "element without name"))?;
                    let multi = attr(&attrs, "maxOccurs")
                        .map(|m| m == "unbounded" || m.parse::<u64>().is_ok_and(|v| v > 1))
                        .unwrap_or(false);
                    let base = match attr(&attrs, "type") {
                        Some(t) => SchemaType::Simple(atomic_of(&t)),
                        None => SchemaType::Rcd, // refined by an inline complexType
                    };
                    let ty = if multi {
                        SchemaType::SetOf(Box::new(base))
                    } else {
                        base
                    };
                    let child = builder
                        .add_child(parent, child_name, ty)
                        .map_err(|e| ParseError::new(reader.line, e.to_string()))?;
                    if !self_closing {
                        parse_element_body(reader, builder, child, &name)?;
                    }
                }
                "annotation" | "documentation" => {
                    if !self_closing {
                        skip_element(reader, &name)?;
                    }
                }
                other => {
                    return Err(ParseError::new(
                        reader.line,
                        format!("unsupported construct <{other}> inside model group"),
                    ))
                }
            },
            Some(XmlEvent::Close(name)) if name == closing => return Ok(()),
            Some(XmlEvent::Close(_)) | Some(XmlEvent::Text(_)) => continue,
            None => return Err(ParseError::new(reader.line, "unexpected end of schema")),
        }
    }
}

/// Skip everything until the matching close tag of `name` (handles nesting
/// of the same tag name).
fn skip_element(reader: &mut XmlReader<'_>, name: &str) -> Result<(), ParseError> {
    let mut depth = 1usize;
    loop {
        match reader.next_event()? {
            Some(XmlEvent::Open { name: n, self_closing, .. }) if n == name && !self_closing => {
                depth += 1;
            }
            Some(XmlEvent::Close(n)) if n == name => {
                depth -= 1;
                if depth == 0 {
                    return Ok(());
                }
            }
            Some(_) => continue,
            None => return Err(ParseError::new(reader.line, "unexpected end of schema")),
        }
    }
}

fn local(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

fn attr(attrs: &[(String, String)], name: &str) -> Option<String> {
    attrs
        .iter()
        .find(|(n, _)| n == name || local(n) == name)
        .map(|(_, v)| v.clone())
}

fn atomic_of(xsd_type: &str) -> AtomicType {
    match local(xsd_type) {
        "integer" | "int" | "long" | "short" | "nonNegativeInteger" | "positiveInteger" => {
            AtomicType::Int
        }
        "decimal" | "float" | "double" => AtomicType::Float,
        "date" | "dateTime" | "time" | "gYear" => AtomicType::Date,
        "boolean" => AtomicType::Bool,
        "ID" => AtomicType::Id,
        "IDREF" | "IDREFS" => AtomicType::IdRef,
        _ => AtomicType::Str,
    }
}

/// Retroactively mark an element as `Choice` when its complexType contains
/// a choice group. (The builder stores the type at add time; only the
/// composite kind flips, which is safe because no children exist yet.)
fn mark_choice(builder: &mut SchemaGraphBuilder, _element: ElementId) {
    // The graph builder does not currently expose type mutation; choice
    // groups are modeled as Rcd composites, which is exactly how the paper
    // treats "all"/"sequence"/"choice" for summarization purposes (only
    // Simple vs composite vs SetOf matters to the algorithms). Kept as a
    // hook for a future builder API.
    let _ = builder;
}

#[cfg(test)]
mod tests {
    use super::*;

    const AUCTION: &str = r#"<?xml version="1.0"?>
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="site">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="people">
              <xs:complexType>
                <xs:sequence>
                  <xs:element name="person" maxOccurs="unbounded">
                    <xs:complexType>
                      <xs:sequence>
                        <xs:element name="name" type="xs:string"/>
                        <xs:element name="age" type="xs:integer" minOccurs="0"/>
                      </xs:sequence>
                      <xs:attribute name="id" type="xs:ID"/>
                    </xs:complexType>
                  </xs:element>
                </xs:sequence>
              </xs:complexType>
            </xs:element>
            <xs:element name="auctions">
              <xs:complexType>
                <xs:sequence>
                  <xs:element name="auction" maxOccurs="unbounded">
                    <xs:complexType>
                      <xs:sequence>
                        <xs:element name="bidder" maxOccurs="unbounded">
                          <xs:complexType>
                            <xs:attribute name="person" type="xs:IDREF"/>
                          </xs:complexType>
                        </xs:element>
                      </xs:sequence>
                    </xs:complexType>
                  </xs:element>
                </xs:sequence>
              </xs:complexType>
            </xs:element>
          </xs:sequence>
        </xs:complexType>
      </xs:element>
      <ss:ref from="site/auctions/auction/bidder" to="site/people/person"/>
    </xs:schema>"#;

    #[test]
    fn parses_nested_elements() {
        let g = parse_xsd(AUCTION).unwrap();
        assert_eq!(g.label(g.root()), "site");
        // site, people, person, name, age, @id, auctions, auction, bidder, @person
        assert_eq!(g.len(), 10);
        let person = g.find_unique("person").unwrap();
        assert!(g.ty(person).is_set());
        let name = g.find_unique("name").unwrap();
        assert_eq!(g.ty(name).atomic(), Some(AtomicType::Str));
        let age = g.find_unique("age").unwrap();
        assert_eq!(g.ty(age).atomic(), Some(AtomicType::Int));
    }

    #[test]
    fn attributes_become_at_children() {
        let g = parse_xsd(AUCTION).unwrap();
        let id = g.find_unique("@id").unwrap();
        assert_eq!(g.ty(id).atomic(), Some(AtomicType::Id));
        let person = g.find_unique("person").unwrap();
        assert_eq!(g.parent(id), Some(person));
    }

    #[test]
    fn refs_become_value_links() {
        let g = parse_xsd(AUCTION).unwrap();
        let bidder = g.find_unique("bidder").unwrap();
        let person = g.find_unique("person").unwrap();
        assert_eq!(g.value_links_from(bidder), &[person]);
    }

    #[test]
    fn bad_ref_path_is_an_error() {
        let bad = AUCTION.replace("site/people/person", "site/people/nobody");
        let err = parse_xsd(&bad).unwrap_err();
        assert!(err.message.contains("nobody"), "{err}");
    }

    #[test]
    fn missing_schema_is_an_error() {
        assert!(parse_xsd("<foo/>").is_err());
        assert!(parse_xsd("").is_err());
    }

    #[test]
    fn parsed_schema_feeds_the_summarizer() {
        use schema_summary_core::SchemaStats;
        let g = parse_xsd(AUCTION).unwrap();
        let stats = SchemaStats::uniform(&g);
        let mut s = schema_summary_algo::Summarizer::new(&g, &stats);
        let summary = s.summarize(2, schema_summary_algo::Algorithm::Balance).unwrap();
        summary.validate(&g).unwrap();
    }
}
