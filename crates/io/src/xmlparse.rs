//! A minimal, dependency-free XML pull parser.
//!
//! Supports the subset the `xsd` and `xml` front-ends need: elements with
//! attributes, self-closing tags, text content, comments, XML declarations,
//! and processing instructions. No namespaces resolution (prefixes are kept
//! as part of the name), no DTDs, no entities beyond the five predefined
//! ones.

use crate::ParseError;

/// One parse event.
#[derive(Debug, Clone, PartialEq)]
pub enum XmlEvent {
    /// An opening tag (`self_closing` when `<a/>`).
    Open {
        /// Tag name (prefix included verbatim).
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
        /// Whether the tag closed itself.
        self_closing: bool,
    },
    /// A closing tag.
    Close(String),
    /// Non-whitespace text content (entity-decoded).
    Text(String),
}

/// Pull parser over an XML string.
pub struct XmlReader<'a> {
    rest: &'a str,
    /// Current 1-based line.
    pub line: usize,
}

impl<'a> XmlReader<'a> {
    /// Create a reader over `input`.
    pub fn new(input: &'a str) -> Self {
        XmlReader { rest: input, line: 1 }
    }

    fn advance(&mut self, n: usize) {
        self.line += self.rest[..n].bytes().filter(|&b| b == b'\n').count();
        self.rest = &self.rest[n..];
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, msg)
    }

    /// Next event, or `None` at end of input.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>, ParseError> {
        loop {
            if self.rest.is_empty() {
                return Ok(None);
            }
            if let Some(after) = self.rest.strip_prefix("<!--") {
                let end = after
                    .find("-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.advance(4 + end + 3);
                continue;
            }
            if self.rest.starts_with("<?") {
                let end = self
                    .rest
                    .find("?>")
                    .ok_or_else(|| self.err("unterminated processing instruction"))?;
                self.advance(end + 2);
                continue;
            }
            if self.rest.starts_with("<!") {
                let end = self.rest.find('>').ok_or_else(|| self.err("unterminated declaration"))?;
                self.advance(end + 1);
                continue;
            }
            if let Some(after) = self.rest.strip_prefix("</") {
                let end = after.find('>').ok_or_else(|| self.err("unterminated closing tag"))?;
                let name = after[..end].trim().to_string();
                self.advance(2 + end + 1);
                return Ok(Some(XmlEvent::Close(name)));
            }
            if self.rest.starts_with('<') {
                return self.read_open_tag().map(Some);
            }
            // Text run until the next '<'.
            let end = self.rest.find('<').unwrap_or(self.rest.len());
            let raw = &self.rest[..end];
            let text = decode_entities(raw.trim());
            self.advance(end);
            if !text.is_empty() {
                return Ok(Some(XmlEvent::Text(text)));
            }
        }
    }

    fn read_open_tag(&mut self) -> Result<XmlEvent, ParseError> {
        let end = self.rest.find('>').ok_or_else(|| self.err("unterminated tag"))?;
        let inner = &self.rest[1..end];
        let (inner, self_closing) = match inner.strip_suffix('/') {
            Some(stripped) => (stripped, true),
            None => (inner, false),
        };
        let mut chars = inner.char_indices();
        let name_end = chars
            .find(|&(_, c)| c.is_whitespace())
            .map(|(i, _)| i)
            .unwrap_or(inner.len());
        let name = inner[..name_end].to_string();
        if name.is_empty() {
            return Err(self.err("empty tag name"));
        }
        let mut attrs = Vec::new();
        let mut rest = inner[name_end..].trim_start();
        while !rest.is_empty() {
            let eq = rest
                .find('=')
                .ok_or_else(|| self.err(format!("malformed attribute in <{name}>")))?;
            let attr_name = rest[..eq].trim().to_string();
            rest = rest[eq + 1..].trim_start();
            let quote = rest
                .chars()
                .next()
                .filter(|&c| c == '"' || c == '\'')
                .ok_or_else(|| self.err(format!("unquoted attribute value in <{name}>")))?;
            let close = rest[1..]
                .find(quote)
                .ok_or_else(|| self.err(format!("unterminated attribute value in <{name}>")))?;
            let value = decode_entities(&rest[1..1 + close]);
            attrs.push((attr_name, value));
            rest = rest[1 + close + 1..].trim_start();
        }
        self.advance(end + 1);
        Ok(XmlEvent::Open {
            name,
            attrs,
            self_closing,
        })
    }
}

fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<XmlEvent> {
        let mut r = XmlReader::new(input);
        let mut out = Vec::new();
        while let Some(e) = r.next_event().unwrap() {
            out.push(e);
        }
        out
    }

    #[test]
    fn basic_document() {
        let ev = events(r#"<?xml version="1.0"?><a x="1"><b/>hello</a>"#);
        assert_eq!(ev.len(), 4);
        assert!(matches!(&ev[0], XmlEvent::Open { name, attrs, self_closing: false }
            if name == "a" && attrs == &[("x".to_string(), "1".to_string())]));
        assert!(matches!(&ev[1], XmlEvent::Open { name, self_closing: true, .. } if name == "b"));
        assert_eq!(ev[2], XmlEvent::Text("hello".into()));
        assert_eq!(ev[3], XmlEvent::Close("a".into()));
    }

    #[test]
    fn comments_and_entities() {
        let ev = events("<a><!-- ignore &amp; me -->x &amp; y</a>");
        assert_eq!(ev[1], XmlEvent::Text("x & y".into()));
    }

    #[test]
    fn multiple_attributes_and_quotes() {
        let ev = events(r#"<e a="1" b='two' c="a &lt; b"/>"#);
        let XmlEvent::Open { attrs, .. } = &ev[0] else { panic!() };
        assert_eq!(attrs.len(), 3);
        assert_eq!(attrs[2].1, "a < b");
    }

    #[test]
    fn line_numbers_in_errors() {
        let mut r = XmlReader::new("<a>\n<b>\n<unclosed");
        r.next_event().unwrap();
        r.next_event().unwrap();
        let err = r.next_event().unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn whitespace_text_is_skipped() {
        let ev = events("<a>\n   \n<b/></a>");
        assert_eq!(ev.len(), 3);
    }
}
