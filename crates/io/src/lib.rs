//! Schema and data I/O.
//!
//! The summarizer is model-agnostic (Section 2 maps both hierarchical and
//! relational schemas onto the schema graph); this crate provides the
//! front-ends that get real-world inputs into that form:
//!
//! * [`xsd`] — a parser for a pragmatic XML-Schema subset (nested
//!   `element`/`complexType`/`sequence`/`choice`/`attribute`, `maxOccurs`,
//!   `xs:ID`/`xs:IDREF` with `keyref`-style reference declarations);
//! * [`ddl`] — a parser for a SQL DDL subset (`CREATE TABLE` with column
//!   types, `PRIMARY KEY`, and `REFERENCES`/`FOREIGN KEY` clauses),
//!   producing the artificial-root relational schema graph;
//! * [`csv`] — a loader for CSV table dumps over a relational schema
//!   graph, with key interning and foreign-key resolution;
//! * [`xml`] — a loader for XML documents into
//!   [`schema_summary_instance::DataTree`]s, resolving `id`/`idref`
//!   attributes into value references;
//! * [`export`] — DOT (Graphviz) rendering of schema graphs and summaries,
//!   plus JSON serialization helpers.
//!
//! All parsers are hand-rolled recursive-descent over a small lexer — no
//! external parsing dependencies — and aim for the subset the paper's
//! datasets need, with clear errors beyond it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csv;
pub mod ddl;
pub mod dtd;
pub(crate) mod xmlparse;
pub mod export;
pub mod xml;
pub mod xsd;

pub use csv::load_csv_instance;
pub use dtd::{parse_dtd, DtdConfig};
pub use ddl::parse_ddl;
pub use export::{schema_to_dot, schema_to_xsd, summary_to_dot, summary_to_markdown};
pub use xml::parse_xml_instance;
pub use xsd::parse_xsd;

use std::fmt;

/// Errors produced by the parsers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line where the problem was detected.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}
