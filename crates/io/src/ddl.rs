//! SQL DDL front-end: `CREATE TABLE` statements → relational schema graph.
//!
//! Supports the subset needed to express benchmark schemas:
//!
//! ```sql
//! CREATE TABLE customer (
//!     c_custkey   INTEGER PRIMARY KEY,
//!     c_name      VARCHAR(25),
//!     c_nationkey INTEGER REFERENCES nation,
//!     c_comment   VARCHAR(117)
//! );
//! ```
//!
//! Tables become `SetOf Rcd` elements under an artificial root (Section 2's
//! relational mapping), columns become `Simple` children typed from the SQL
//! type, and `REFERENCES` clauses (or table-level `FOREIGN KEY ...
//! REFERENCES ...`) become value links between the two relation elements.

use crate::ParseError;
use schema_summary_core::{AtomicType, SchemaGraph, SchemaGraphBuilder, SchemaType};

/// Parse DDL text into a schema graph rooted at `root_label`.
pub fn parse_ddl(input: &str, root_label: &str) -> Result<SchemaGraph, ParseError> {
    let mut lexer = Lexer::new(input);
    let mut builder = SchemaGraphBuilder::new(root_label);
    // (referrer table, referee table, line) resolved after all tables exist.
    let mut pending_fks: Vec<(String, String, usize)> = Vec::new();
    let mut tables: Vec<(String, schema_summary_core::ElementId)> = Vec::new();

    while let Some(tok) = lexer.peek()? {
        if !tok.eq_ignore_ascii_case("create") {
            return Err(ParseError::new(lexer.line, format!("expected CREATE, got '{tok}'")));
        }
        lexer.next_token()?;
        lexer.expect_keyword("table")?;
        let table_name = lexer.ident()?;
        let table_el = builder
            .add_child(builder.root(), table_name.clone(), SchemaType::set_of_rcd())
            .map_err(|e| ParseError::new(lexer.line, e.to_string()))?;
        tables.push((table_name.clone(), table_el));
        lexer.expect_symbol('(')?;

        loop {
            let first = lexer.ident()?;
            if first.eq_ignore_ascii_case("primary") {
                lexer.expect_keyword("key")?;
                lexer.skip_parenthesized()?;
            } else if first.eq_ignore_ascii_case("foreign") {
                lexer.expect_keyword("key")?;
                lexer.skip_parenthesized()?;
                lexer.expect_keyword("references")?;
                let target = lexer.ident()?;
                if lexer.peek_symbol('(') {
                    lexer.skip_parenthesized()?;
                }
                pending_fks.push((table_name.clone(), target, lexer.line));
            } else {
                // Column definition: name type [modifiers...].
                let col_name = first;
                let sql_type = lexer.ident()?;
                if lexer.peek_symbol('(') {
                    lexer.skip_parenthesized()?; // VARCHAR(25), DECIMAL(15,2)
                }
                let mut atomic = atomic_of(&sql_type);
                // Column modifiers until ',' or ')'.
                loop {
                    match lexer.peek()? {
                        Some(word) if word.eq_ignore_ascii_case("primary") => {
                            lexer.next_token()?;
                            lexer.expect_keyword("key")?;
                            atomic = AtomicType::Id;
                        }
                        Some(word) if word.eq_ignore_ascii_case("references") => {
                            lexer.next_token()?;
                            let target = lexer.ident()?;
                            if lexer.peek_symbol('(') {
                                lexer.skip_parenthesized()?;
                            }
                            atomic = AtomicType::IdRef;
                            pending_fks.push((table_name.clone(), target, lexer.line));
                        }
                        Some(word)
                            if word.eq_ignore_ascii_case("not")
                                || word.eq_ignore_ascii_case("null")
                                || word.eq_ignore_ascii_case("unique") =>
                        {
                            lexer.next_token()?;
                        }
                        _ => break,
                    }
                }
                builder
                    .add_child(table_el, col_name, SchemaType::Simple(atomic))
                    .map_err(|e| ParseError::new(lexer.line, e.to_string()))?;
            }
            if lexer.peek_symbol(',') {
                lexer.expect_symbol(',')?;
                continue;
            }
            break;
        }
        lexer.expect_symbol(')')?;
        if lexer.peek_symbol(';') {
            lexer.expect_symbol(';')?;
        }
    }

    for (from, to, line) in pending_fks {
        let find = |name: &str| {
            tables
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|&(_, e)| e)
        };
        let from_el = find(&from)
            .ok_or_else(|| ParseError::new(line, format!("unknown table '{from}'")))?;
        let to_el =
            find(&to).ok_or_else(|| ParseError::new(line, format!("unknown table '{to}'")))?;
        // Multiple FKs between the same tables collapse onto one value link.
        let _ = builder.add_value_link(from_el, to_el);
    }

    builder
        .build()
        .map_err(|e| ParseError::new(0, e.to_string()))
}

fn atomic_of(sql_type: &str) -> AtomicType {
    match sql_type.to_ascii_lowercase().as_str() {
        "integer" | "int" | "bigint" | "smallint" => AtomicType::Int,
        "decimal" | "numeric" | "float" | "double" | "real" => AtomicType::Float,
        "date" | "timestamp" | "datetime" | "time" => AtomicType::Date,
        "boolean" | "bool" => AtomicType::Bool,
        _ => AtomicType::Str,
    }
}

/// Minimal whitespace/comment-aware token stream over DDL text.
struct Lexer<'a> {
    rest: &'a str,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { rest: input, line: 1 }
    }

    fn skip_ws(&mut self) {
        loop {
            let before = self.rest;
            while let Some(c) = self.rest.chars().next() {
                if c.is_whitespace() {
                    if c == '\n' {
                        self.line += 1;
                    }
                    self.rest = &self.rest[c.len_utf8()..];
                } else {
                    break;
                }
            }
            if let Some(stripped) = self.rest.strip_prefix("--") {
                match stripped.find('\n') {
                    Some(i) => self.rest = &stripped[i..],
                    None => self.rest = "",
                }
            }
            if self.rest.len() == before.len() && self.rest == before {
                break;
            }
        }
    }

    /// Peek the next word (identifier/keyword) without consuming; `None` at
    /// end of input. Symbols are returned as single-char strings.
    fn peek(&mut self) -> Result<Option<&'a str>, ParseError> {
        self.skip_ws();
        if self.rest.is_empty() {
            return Ok(None);
        }
        let c = self.rest.chars().next().expect("non-empty");
        if c.is_alphanumeric() || c == '_' {
            let end = self
                .rest
                .find(|ch: char| !ch.is_alphanumeric() && ch != '_')
                .unwrap_or(self.rest.len());
            Ok(Some(&self.rest[..end]))
        } else {
            Ok(Some(&self.rest[..c.len_utf8()]))
        }
    }

    fn next_token(&mut self) -> Result<&'a str, ParseError> {
        let tok = self
            .peek()?
            .ok_or_else(|| ParseError::new(self.line, "unexpected end of input"))?;
        self.rest = &self.rest[tok.len()..];
        Ok(tok)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let tok = self.next_token()?;
        if tok.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
            Ok(tok.to_string())
        } else {
            Err(ParseError::new(self.line, format!("expected identifier, got '{tok}'")))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let tok = self.next_token()?;
        if tok.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(ParseError::new(self.line, format!("expected {kw}, got '{tok}'")))
        }
    }

    fn peek_symbol(&mut self, sym: char) -> bool {
        self.skip_ws();
        self.rest.starts_with(sym)
    }

    fn expect_symbol(&mut self, sym: char) -> Result<(), ParseError> {
        self.skip_ws();
        if self.rest.starts_with(sym) {
            self.rest = &self.rest[sym.len_utf8()..];
            Ok(())
        } else {
            Err(ParseError::new(self.line, format!("expected '{sym}'")))
        }
    }

    /// Skip a balanced parenthesized group, e.g. `(15, 2)`.
    fn skip_parenthesized(&mut self) -> Result<(), ParseError> {
        self.expect_symbol('(')?;
        let mut depth = 1usize;
        while depth > 0 {
            let Some(c) = self.rest.chars().next() else {
                return Err(ParseError::new(self.line, "unbalanced parentheses"));
            };
            if c == '(' {
                depth += 1;
            } else if c == ')' {
                depth -= 1;
            } else if c == '\n' {
                self.line += 1;
            }
            self.rest = &self.rest[c.len_utf8()..];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &str = r"
        -- two tables with a foreign key
        CREATE TABLE nation (
            n_nationkey INTEGER PRIMARY KEY,
            n_name      VARCHAR(25) NOT NULL,
            n_comment   VARCHAR(152)
        );
        CREATE TABLE customer (
            c_custkey   INTEGER PRIMARY KEY,
            c_name      VARCHAR(25),
            c_acctbal   DECIMAL(15,2),
            c_nationkey INTEGER REFERENCES nation (n_nationkey)
        );
    ";

    #[test]
    fn parses_tables_columns_fks() {
        let g = parse_ddl(SIMPLE, "db").unwrap();
        assert_eq!(g.len(), 1 + 2 + 3 + 4);
        let nation = g.find_unique("nation").unwrap();
        let customer = g.find_unique("customer").unwrap();
        assert_eq!(g.children(nation).len(), 3);
        assert_eq!(g.children(customer).len(), 4);
        assert_eq!(g.value_links_from(customer), &[nation]);
        assert!(g.ty(nation).is_set());
        assert!(g.ty(nation).is_composite());
    }

    #[test]
    fn column_types_map_to_atomics() {
        let g = parse_ddl(SIMPLE, "db").unwrap();
        let key = g.find_unique("n_nationkey").unwrap();
        assert_eq!(g.ty(key).atomic(), Some(AtomicType::Id));
        let bal = g.find_unique("c_acctbal").unwrap();
        assert_eq!(g.ty(bal).atomic(), Some(AtomicType::Float));
        let fk = g.find_unique("c_nationkey").unwrap();
        assert_eq!(g.ty(fk).atomic(), Some(AtomicType::IdRef));
        let name = g.find_unique("c_name").unwrap();
        assert_eq!(g.ty(name).atomic(), Some(AtomicType::Str));
    }

    #[test]
    fn table_level_foreign_key_clause() {
        let ddl = r"
            CREATE TABLE a (x INTEGER PRIMARY KEY);
            CREATE TABLE b (
                y INTEGER,
                FOREIGN KEY (y) REFERENCES a (x)
            );
        ";
        let g = parse_ddl(ddl, "db").unwrap();
        let a = g.find_unique("a").unwrap();
        let b = g.find_unique("b").unwrap();
        assert_eq!(g.value_links_from(b), &[a]);
    }

    #[test]
    fn unknown_reference_is_an_error() {
        let ddl = "CREATE TABLE b (y INTEGER REFERENCES missing);";
        let err = parse_ddl(ddl, "db").unwrap_err();
        assert!(err.message.contains("missing"), "{err}");
    }

    #[test]
    fn garbage_is_rejected_with_line_numbers() {
        let err = parse_ddl("CREATE TABLE t (x INTEGER", "db").unwrap_err();
        assert!(!err.message.is_empty());
        let err2 = parse_ddl("DROP TABLE t;", "db").unwrap_err();
        assert!(err2.message.contains("CREATE"));
    }

    #[test]
    fn tpch_full_schema_parses_to_seventy_elements() {
        // Mirrors the datasets crate's TPC-H definition through the DDL
        // front-end.
        let ddl = r"
            CREATE TABLE region (r_regionkey INTEGER PRIMARY KEY, r_name VARCHAR(25), r_comment VARCHAR(152));
            CREATE TABLE nation (n_nationkey INTEGER PRIMARY KEY, n_name VARCHAR(25), n_regionkey INTEGER REFERENCES region, n_comment VARCHAR(152));
            CREATE TABLE supplier (s_suppkey INTEGER PRIMARY KEY, s_name VARCHAR(25), s_address VARCHAR(40), s_nationkey INTEGER REFERENCES nation, s_phone VARCHAR(15), s_acctbal DECIMAL(15,2), s_comment VARCHAR(101));
            CREATE TABLE customer (c_custkey INTEGER PRIMARY KEY, c_name VARCHAR(25), c_address VARCHAR(40), c_nationkey INTEGER REFERENCES nation, c_phone VARCHAR(15), c_acctbal DECIMAL(15,2), c_mktsegment VARCHAR(10), c_comment VARCHAR(117));
            CREATE TABLE part (p_partkey INTEGER PRIMARY KEY, p_name VARCHAR(55), p_mfgr VARCHAR(25), p_brand VARCHAR(10), p_type VARCHAR(25), p_size INTEGER, p_container VARCHAR(10), p_retailprice DECIMAL(15,2), p_comment VARCHAR(23));
            CREATE TABLE partsupp (ps_partkey INTEGER REFERENCES part, ps_suppkey INTEGER REFERENCES supplier, ps_availqty INTEGER, ps_supplycost DECIMAL(15,2), ps_comment VARCHAR(199));
            CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, o_custkey INTEGER REFERENCES customer, o_orderstatus VARCHAR(1), o_totalprice DECIMAL(15,2), o_orderdate DATE, o_orderpriority VARCHAR(15), o_clerk VARCHAR(15), o_shippriority INTEGER, o_comment VARCHAR(79));
            CREATE TABLE lineitem (l_orderkey INTEGER REFERENCES orders, l_partkey INTEGER REFERENCES part, l_suppkey INTEGER REFERENCES supplier, l_linenumber INTEGER, l_quantity DECIMAL(15,2), l_extendedprice DECIMAL(15,2), l_discount DECIMAL(15,2), l_tax DECIMAL(15,2), l_returnflag VARCHAR(1), l_linestatus VARCHAR(1), l_shipdate DATE, l_commitdate DATE, l_receiptdate DATE, l_shipinstruct VARCHAR(25), l_shipmode VARCHAR(10), l_comment VARCHAR(44));
        ";
        let g = parse_ddl(ddl, "tpch").unwrap();
        assert_eq!(g.len(), 70, "Table 1's TPC-H element count");
        assert_eq!(g.num_value_links(), 9); // lineitem→partsupp needs a compound FK
    }
}
