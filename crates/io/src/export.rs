//! Exporters: Graphviz DOT for schema graphs and summaries, JSON helpers.
//!
//! The DOT renderings follow the paper's figure conventions: solid arrows
//! for structural links, dashed arrows for value links (and for abstract
//! links that represent at least one value link), boxes for elements, and
//! double boxes ("component" shape) for abstract elements.

use schema_summary_core::summary::SummaryNode;
use schema_summary_core::{SchemaGraph, SchemaSummary};
use std::fmt::Write;

/// Render a schema graph as Graphviz DOT (Figure 1 style).
pub fn schema_to_dot(graph: &SchemaGraph) -> String {
    let mut out = String::from("digraph schema {\n  rankdir=TB;\n  node [shape=box];\n");
    for e in graph.element_ids() {
        let star = if graph.ty(e).is_set() { "*" } else { "" };
        writeln!(out, "  {} [label=\"{}{}\"];", e.0, escape(graph.label(e)), star)
            .expect("writing to String cannot fail");
    }
    for (p, c) in graph.structural_links() {
        writeln!(out, "  {} -> {};", p.0, c.0).expect("infallible");
    }
    for (f, t) in graph.value_links() {
        writeln!(out, "  {} -> {} [style=dashed];", f.0, t.0).expect("infallible");
    }
    out.push_str("}\n");
    out
}

/// Render a schema summary as Graphviz DOT (Figure 2 style).
pub fn summary_to_dot(graph: &SchemaGraph, summary: &SchemaSummary) -> String {
    let mut out = String::from("digraph summary {\n  rankdir=TB;\n");
    let node_id = |n: SummaryNode| match n {
        SummaryNode::Original(e) => format!("o{}", e.0),
        SummaryNode::Abstract(a) => format!("a{}", a.0),
    };
    for &e in summary.kept() {
        writeln!(
            out,
            "  o{} [shape=box, label=\"{}\"];",
            e.0,
            escape(graph.label(e))
        )
        .expect("infallible");
    }
    for (i, a) in summary.abstracts().iter().enumerate() {
        writeln!(
            out,
            "  a{i} [shape=box, peripheries=2, label=\"{} ({})\"];",
            escape(graph.label(a.representative)),
            a.members.len()
        )
        .expect("infallible");
    }
    for &(p, c) in summary.kept_structural() {
        writeln!(out, "  o{} -> o{};", p.0, c.0).expect("infallible");
    }
    for &(f, t) in summary.kept_value() {
        writeln!(out, "  o{} -> o{} [style=dashed];", f.0, t.0).expect("infallible");
    }
    for l in summary.abstract_links() {
        let style = if l.has_value() && !l.has_structural() {
            " [style=dashed]"
        } else if l.has_value() {
            " [style=\"dashed,bold\"]"
        } else {
            ""
        };
        writeln!(out, "  {} -> {}{};", node_id(l.from), node_id(l.to), style)
            .expect("infallible");
    }
    out.push_str("}\n");
    out
}

/// Render a schema graph back to the XSD subset [`crate::xsd::parse_xsd`]
/// accepts, including `ss:ref` declarations for value links — so schemas
/// built programmatically (or parsed from DDL/DTD) can be shared in a
/// standard-ish form and round-tripped.
pub fn schema_to_xsd(graph: &SchemaGraph) -> String {
    use schema_summary_core::{AtomicType, ElementId, SchemaType};
    fn xsd_type(a: AtomicType) -> &'static str {
        match a {
            AtomicType::Str => "xs:string",
            AtomicType::Int => "xs:integer",
            AtomicType::Float => "xs:decimal",
            AtomicType::Bool => "xs:boolean",
            AtomicType::Date => "xs:date",
            AtomicType::Id => "xs:ID",
            AtomicType::IdRef => "xs:IDREF",
        }
    }
    fn emit(graph: &SchemaGraph, e: ElementId, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let label = graph.label(e);
        let max_occurs = if graph.ty(e).is_set() {
            " maxOccurs=\"unbounded\""
        } else {
            ""
        };
        if let Some(atomic) = graph.ty(e).atomic() {
            if let Some(attr) = label.strip_prefix('@') {
                writeln!(
                    out,
                    "{pad}<xs:attribute name=\"{attr}\" type=\"{}\"/>",
                    xsd_type(atomic)
                )
                .expect("infallible");
            } else {
                writeln!(
                    out,
                    "{pad}<xs:element name=\"{label}\" type=\"{}\"{max_occurs}/>",
                    xsd_type(atomic)
                )
                .expect("infallible");
            }
            return;
        }
        writeln!(out, "{pad}<xs:element name=\"{label}\"{max_occurs}>").expect("infallible");
        writeln!(out, "{pad}  <xs:complexType>").expect("infallible");
        let (subelems, attrs): (Vec<_>, Vec<_>) = graph
            .children(e)
            .iter()
            .partition(|&&c| !graph.label(c).starts_with('@'));
        let group = match graph.ty(e).base() {
            SchemaType::Choice => "xs:choice",
            _ => "xs:sequence",
        };
        if !subelems.is_empty() {
            writeln!(out, "{pad}    <{group}>").expect("infallible");
            for &c in subelems {
                emit(graph, c, indent + 3, out);
            }
            writeln!(out, "{pad}    </{group}>").expect("infallible");
        }
        for &a in attrs {
            let attr = graph.label(a).trim_start_matches('@');
            let atomic = graph.ty(a).atomic().unwrap_or(AtomicType::Str);
            writeln!(
                out,
                "{pad}    <xs:attribute name=\"{attr}\" type=\"{}\"/>",
                xsd_type(atomic)
            )
            .expect("infallible");
        }
        writeln!(out, "{pad}  </xs:complexType>").expect("infallible");
        writeln!(out, "{pad}</xs:element>").expect("infallible");
    }
    let mut out = String::from(
        "<?xml version=\"1.0\"?>\n<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n",
    );
    emit(graph, graph.root(), 1, &mut out);
    for (f, t) in graph.value_links() {
        writeln!(
            out,
            "  <ss:ref from=\"{}\" to=\"{}\"/>",
            graph.label_path(f),
            graph.label_path(t)
        )
        .expect("infallible");
    }
    out.push_str("</xs:schema>\n");
    out
}

/// Render a summary as a Markdown document — the format a documentation
/// portal or repository README would embed: one section per abstract
/// element with its member listing, plus the consolidated link table.
pub fn summary_to_markdown(graph: &SchemaGraph, summary: &SchemaSummary) -> String {
    let mut out = String::new();
    let nl = '\n';
    writeln!(out, "# Schema summary of `{}`{nl}", graph.label(graph.root())).expect("infallible");
    writeln!(
        out,
        "{} abstract elements over {} schema elements.{nl}",
        summary.abstracts().len(),
        graph.len()
    )
    .expect("infallible");
    for a in summary.abstracts() {
        writeln!(
            out,
            "## {} ({} elements){nl}",
            graph.label(a.representative),
            a.members.len()
        )
        .expect("infallible");
        writeln!(
            out,
            "Representative: `{}`{nl}",
            graph.label_path(a.representative)
        )
        .expect("infallible");
        if a.members.len() > 1 {
            writeln!(out, "Contains:").expect("infallible");
            for &m in &a.members {
                if m != a.representative {
                    writeln!(out, "- `{}`", graph.label_path(m)).expect("infallible");
                }
            }
            out.push(nl);
        }
    }
    if !summary.abstract_links().is_empty() {
        writeln!(out, "## Relationships{nl}").expect("infallible");
        writeln!(out, "| from | to | kind |").expect("infallible");
        writeln!(out, "|---|---|---|").expect("infallible");
        for l in summary.abstract_links() {
            let kind = match (l.has_structural(), l.has_value()) {
                (true, true) => "containment + reference",
                (true, false) => "containment",
                (false, true) => "reference",
                (false, false) => "-",
            };
            writeln!(
                out,
                "| {} | {} | {} |",
                summary.node_label(graph, l.from),
                summary.node_label(graph, l.to),
                kind
            )
            .expect("infallible");
        }
    }
    out
}

/// Serialize any serde-serializable artifact to pretty JSON.
pub fn to_json<T: serde::Serialize>(value: &T) -> serde_json::Result<String> {
    serde_json::to_string_pretty(value)
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    fn fixture() -> (SchemaGraph, SchemaSummary) {
        let mut b = SchemaGraphBuilder::new("site");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
        b.add_child(person, "name", SchemaType::simple_str()).unwrap();
        let auction = b.add_child(b.root(), "auction", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(auction, person).unwrap();
        let g = b.build().unwrap();
        let name = g.find_unique("name").unwrap();
        let s = SchemaSummary::from_grouping(
            &g,
            vec![
                (person, vec![people, person, name]),
                (auction, vec![auction]),
            ],
            vec![],
        )
        .unwrap();
        (g, s)
    }

    #[test]
    fn schema_dot_contains_all_elements_and_link_styles() {
        let (g, _) = fixture();
        let dot = schema_to_dot(&g);
        assert!(dot.contains("digraph schema"));
        assert!(dot.contains("person*")); // SetOf marker
        assert!(dot.contains("[style=dashed]")); // value link
        assert_eq!(dot.matches(" -> ").count(), g.num_structural_links() + 1);
    }

    #[test]
    fn summary_dot_marks_abstract_elements() {
        let (g, s) = fixture();
        let dot = summary_to_dot(&g, &s);
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("person (3)"));
        assert!(dot.contains("auction (1)"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut b = SchemaGraphBuilder::new("we\"ird");
        b.add_child(b.root(), "child", SchemaType::simple_str()).unwrap();
        let g = b.build().unwrap();
        let dot = schema_to_dot(&g);
        assert!(dot.contains("we\\\"ird"));
    }

    #[test]
    fn markdown_lists_groups_and_links() {
        let (g, s) = fixture();
        let md = summary_to_markdown(&g, &s);
        assert!(md.contains("# Schema summary of `site`"));
        assert!(md.contains("## person (3 elements)"));
        assert!(md.contains("- `site/people`"));
        assert!(md.contains("| auction | person | reference |"));
    }

    #[test]
    fn json_export_roundtrips() {
        let (g, s) = fixture();
        let json = to_json(&s).unwrap();
        let back: SchemaSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        let gjson = to_json(&g).unwrap();
        assert!(gjson.contains("person"));
    }
}
