//! CSV front-end: populate a relational schema graph from CSV table dumps.
//!
//! Each CSV corresponds to one relation element; the header row names the
//! relation's column elements. Cells:
//!
//! * the column typed `Id` supplies the row key (rows without one are
//!   keyed by position);
//! * columns typed `IdRef` hold foreign keys; the n-th `IdRef` column (in
//!   schema declaration order) resolves against the n-th declared value
//!   link of the relation — the convention the DDL front-end produces;
//! * empty cells are NULLs (the column node is simply absent, lowering the
//!   column's relative cardinality exactly as Figure 3 would measure).
//!
//! Quoting follows RFC-4180 basics: fields may be double-quoted, with `""`
//! as the escape.

use crate::ParseError;
use schema_summary_core::{AtomicType, ElementId, SchemaGraph};
use schema_summary_instance::relational::{ForeignKey, RelationalInstance, Row, Table};
use schema_summary_instance::DataTree;
use std::collections::HashMap;

/// One table's first-pass parse: the table element, its raw row cells
/// (`None` = NULL), and its columns in header order.
type ParsedTable = (ElementId, Vec<Vec<Option<String>>>, Vec<ElementId>);

/// Load CSV dumps (`(table label, csv text)` pairs) into a data tree over
/// `graph`.
pub fn load_csv_instance(
    graph: &SchemaGraph,
    inputs: &[(&str, &str)],
) -> Result<DataTree, ParseError> {
    let mut instance = RelationalInstance::new();
    // String keys are interned to u64 per table for the relational model.
    let mut key_interner: HashMap<(ElementId, String), u64> = HashMap::new();
    let mut next_key: HashMap<ElementId, u64> = HashMap::new();
    let mut intern = |table: ElementId, raw: &str| -> u64 {
        if let Some(&k) = key_interner.get(&(table, raw.to_string())) {
            return k;
        }
        let counter = next_key.entry(table).or_insert(0);
        let k = *counter;
        *counter += 1;
        key_interner.insert((table, raw.to_string()), k);
        k
    };

    // First pass: rows and keys (so forward foreign keys resolve).
    let mut parsed: Vec<ParsedTable> = Vec::new();
    for &(label, text) in inputs {
        let table = graph
            .find_unique(label)
            .ok_or_else(|| ParseError::new(0, format!("unknown table '{label}'")))?;
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (hline, header) = lines
            .next()
            .ok_or_else(|| ParseError::new(1, format!("{label}: empty CSV")))?;
        let header = split_csv_line(header, hline + 1)?;
        let columns: Vec<ElementId> = header
            .iter()
            .map(|name| {
                graph
                    .children(table)
                    .iter()
                    .copied()
                    .find(|&c| graph.label(c) == name.trim())
                    .ok_or_else(|| {
                        ParseError::new(
                            hline + 1,
                            format!("'{}' is not a column of {label}", name.trim()),
                        )
                    })
            })
            .collect::<Result<_, _>>()?;
        let mut rows = Vec::new();
        for (lno, line) in lines {
            let cells = split_csv_line(line, lno + 1)?;
            if cells.len() != columns.len() {
                return Err(ParseError::new(
                    lno + 1,
                    format!(
                        "{label}: row has {} cells, header has {}",
                        cells.len(),
                        columns.len()
                    ),
                ));
            }
            rows.push(
                cells
                    .into_iter()
                    .map(|c| if c.is_empty() { None } else { Some(c) })
                    .collect::<Vec<_>>(),
            );
        }
        parsed.push((table, rows, columns));
    }

    // Second pass: build rows with interned keys and resolved FKs.
    for (table, rows, columns) in &parsed {
        // Positions of special columns.
        let id_col = columns
            .iter()
            .position(|&c| graph.ty(c).atomic() == Some(AtomicType::Id));
        let idref_cols: Vec<usize> = columns
            .iter()
            .enumerate()
            .filter(|&(_, &c)| graph.ty(c).atomic() == Some(AtomicType::IdRef))
            .map(|(i, _)| i)
            .collect();
        let fk_targets = graph.value_links_from(*table);
        if idref_cols.len() > fk_targets.len() {
            return Err(ParseError::new(
                0,
                format!(
                    "{}: {} IdRef columns but only {} declared foreign keys",
                    graph.label(*table),
                    idref_cols.len(),
                    fk_targets.len()
                ),
            ));
        }
        let mut out_rows = Vec::with_capacity(rows.len());
        for (ri, cells) in rows.iter().enumerate() {
            let key = match id_col.and_then(|i| cells[i].as_deref()) {
                Some(raw) => intern(*table, raw),
                None => intern(*table, &format!("__row{ri}")),
            };
            let present: Vec<ElementId> = columns
                .iter()
                .zip(cells)
                .filter(|&(_, cell)| cell.is_some())
                .map(|(&c, _)| c)
                .collect();
            let mut fks = Vec::new();
            for (fk_idx, &ci) in idref_cols.iter().enumerate() {
                if let Some(raw) = cells[ci].as_deref() {
                    let target_table = fk_targets[fk_idx];
                    fks.push(ForeignKey {
                        to_table: target_table,
                        key: intern(target_table, raw),
                    });
                }
            }
            out_rows.push(Row {
                key,
                columns: present,
                fks,
            });
        }
        instance = instance.with_table(Table {
            element: *table,
            rows: out_rows,
        });
    }
    instance
        .to_data_tree(graph)
        .map_err(|e| ParseError::new(0, e.to_string()))
}

/// Split one CSV line into fields (RFC-4180 quoting, `""` escapes).
fn split_csv_line(line: &str, lineno: usize) -> Result<Vec<String>, ParseError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            '"' => return Err(ParseError::new(lineno, "stray quote inside field")),
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if in_quotes {
        return Err(ParseError::new(lineno, "unterminated quoted field"));
    }
    fields.push(cur);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::parse_ddl;
    use schema_summary_instance::{annotate_schema, check_conformance};

    const DDL: &str = r"
        CREATE TABLE dept (d_id INTEGER PRIMARY KEY, d_name VARCHAR(20));
        CREATE TABLE emp (
            e_id   INTEGER PRIMARY KEY,
            e_name VARCHAR(20),
            e_dept INTEGER REFERENCES dept
        );
    ";

    #[test]
    fn loads_tables_and_resolves_fks() {
        let g = parse_ddl(DDL, "db").unwrap();
        let tree = load_csv_instance(
            &g,
            &[
                ("dept", "d_id,d_name\n1,Eng\n2,Sales\n"),
                ("emp", "e_id,e_name,e_dept\n10,Ada,1\n11,Grace,1\n12,Edsger,2\n"),
            ],
        )
        .unwrap();
        assert!(check_conformance(&g, &tree).is_empty());
        let stats = annotate_schema(&g, &tree).unwrap();
        let dept = g.find_unique("dept").unwrap();
        let emp = g.find_unique("emp").unwrap();
        assert_eq!(stats.card(dept), 2.0);
        assert_eq!(stats.card(emp), 3.0);
        assert!((stats.rc(dept, emp) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn null_cells_lower_column_rc() {
        let g = parse_ddl(DDL, "db").unwrap();
        let tree = load_csv_instance(
            &g,
            &[
                ("dept", "d_id,d_name\n1,Eng\n2,\n"),
                ("emp", "e_id,e_name,e_dept\n10,Ada,1\n"),
            ],
        )
        .unwrap();
        let stats = annotate_schema(&g, &tree).unwrap();
        let dept = g.find_unique("dept").unwrap();
        let d_name = g.find_unique("d_name").unwrap();
        assert!((stats.rc(dept, d_name) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let fields =
            split_csv_line(r#"1,"hello, world","she said ""hi""",plain"#, 1).unwrap();
        assert_eq!(fields, vec!["1", "hello, world", "she said \"hi\"", "plain"]);
    }

    #[test]
    fn malformed_csv_is_rejected() {
        assert!(split_csv_line(r#""unterminated"#, 1).is_err());
        let g = parse_ddl(DDL, "db").unwrap();
        // Wrong cell count.
        assert!(load_csv_instance(&g, &[("dept", "d_id,d_name\n1\n")]).is_err());
        // Unknown column.
        assert!(load_csv_instance(&g, &[("dept", "d_id,bogus\n1,x\n")]).is_err());
        // Unknown table.
        assert!(load_csv_instance(&g, &[("nope", "a\n1\n")]).is_err());
    }

    #[test]
    fn dangling_fk_reaches_relational_check() {
        let g = parse_ddl(DDL, "db").unwrap();
        // e_dept=9 interns a dept key that has no row: to_data_tree rejects.
        let err = load_csv_instance(
            &g,
            &[
                ("dept", "d_id,d_name\n1,Eng\n"),
                ("emp", "e_id,e_name,e_dept\n10,Ada,9\n"),
            ],
        )
        .unwrap_err();
        assert!(err.message.contains("dangling"), "{err}");
    }

    #[test]
    fn string_keys_are_interned() {
        let ddl = r"
            CREATE TABLE t (code VARCHAR(4) PRIMARY KEY, v VARCHAR(4));
            CREATE TABLE u (x VARCHAR(4) REFERENCES t);
        ";
        let g = parse_ddl(ddl, "db").unwrap();
        let tree = load_csv_instance(
            &g,
            &[("t", "code,v\nAA,1\nBB,2\n"), ("u", "x\nAA\nAA\nBB\n")],
        )
        .unwrap();
        let stats = annotate_schema(&g, &tree).unwrap();
        let t = g.find_unique("t").unwrap();
        let u = g.find_unique("u").unwrap();
        assert!((stats.rc(t, u) - 1.5).abs() < 1e-9);
    }
}
