//! DTD front-end: XML Document Type Definitions → hierarchical schema
//! graphs.
//!
//! The paper's XML datasets are DTD-defined (XMark ships as a DTD), so this
//! front-end closes the loop: feed the benchmark's own DTD in, get the
//! schema graph out. Supported declarations:
//!
//! * `<!ELEMENT name (content)>` with sequence (`,`), choice (`|`),
//!   grouping, the `?`/`*`/`+` occurrence suffixes, `#PCDATA`, mixed
//!   content, `EMPTY`, and `ANY` (treated as `EMPTY`);
//! * `<!ATTLIST name attr TYPE default>` with `CDATA`, `ID`, `IDREF`,
//!   `IDREFS`, `NMTOKEN(S)`, and enumerated types.
//!
//! Because structural links form a tree, each element *declaration* is
//! instantiated once per parent context (XMark's `item` appears under each
//! of the six regions), and recursive content models (`parlist` inside
//! `listitem`) are cut after [`DtdConfig::max_recursion`] repetitions of
//! the same element name on a path — the same convention the paper's
//! 327-element XMark schema implies.
//!
//! DTDs say *that* an `IDREF` points somewhere, not where; the paper's
//! value links carry that knowledge. [`DtdConfig::refs`] supplies it as
//! `(referrer label, referee label)` pairs; every instantiated referrer
//! context is linked to every referee context (XMark's `itemref` points at
//! items in any region).

use crate::ParseError;
use schema_summary_core::{AtomicType, ElementId, SchemaGraph, SchemaGraphBuilder, SchemaType};
use std::collections::HashMap;

/// Configuration for DTD expansion.
#[derive(Debug, Clone)]
pub struct DtdConfig {
    /// Maximum number of times one element name may repeat along a single
    /// root-to-leaf path (recursion cut).
    pub max_recursion: usize,
    /// Treat the element children of **mixed-content** models
    /// (`(#PCDATA | a | b)*`) as repeated `Simple` leaves instead of
    /// expanding their own declarations. Inline markup vocabularies
    /// (`bold`/`keyword`/`emph`) are mutually recursive, and expanding
    /// their permutations inflates the schema without adding structure a
    /// summary could use; the paper's XMark element count implies this
    /// collapse.
    pub mixed_as_leaves: bool,
    /// Semantic reference declarations: `(referrer element label, referee
    /// element label)`. Each instantiated referrer is value-linked to every
    /// instantiated referee.
    pub refs: Vec<(String, String)>,
}

impl Default for DtdConfig {
    fn default() -> Self {
        DtdConfig {
            max_recursion: 1,
            mixed_as_leaves: false,
            refs: Vec::new(),
        }
    }
}

impl DtdConfig {
    /// Builder-style reference declaration.
    pub fn with_ref(mut self, referrer: &str, referee: &str) -> Self {
        self.refs.push((referrer.to_string(), referee.to_string()));
        self
    }
}

/// One child slot in a content model.
#[derive(Debug, Clone, PartialEq)]
struct ChildSpec {
    name: String,
    /// `*` or `+` anywhere around the name.
    repeated: bool,
}

/// A parsed element declaration.
#[derive(Debug, Clone, PartialEq)]
struct ElementDecl {
    children: Vec<ChildSpec>,
    /// Whether the top-level model is a choice group.
    is_choice: bool,
    /// Whether the model contains `#PCDATA`.
    has_text: bool,
}

/// Parse `input` as a DTD and expand it into a schema graph rooted at the
/// element named `root`.
pub fn parse_dtd(input: &str, root: &str, config: &DtdConfig) -> Result<SchemaGraph, ParseError> {
    let (elements, attlists) = parse_declarations(input)?;
    if !elements.contains_key(root) {
        return Err(ParseError::new(0, format!("no <!ELEMENT {root} ...> declaration")));
    }

    let mut builder = SchemaGraphBuilder::with_root_type(
        root,
        composite_type(&elements[root], false),
    );
    // All instantiations of each declared name, for reference resolution.
    let mut instances: HashMap<&str, Vec<ElementId>> = HashMap::new();
    instances.entry(root).or_default().push(builder.root());

    // Depth-first expansion with per-path name counts for the recursion cut.
    let mut path_counts: HashMap<String, usize> = HashMap::new();
    *path_counts.entry(root.to_string()).or_insert(0) += 1;
    expand(
        builder.root(),
        root,
        &elements,
        &attlists,
        config,
        &mut builder,
        &mut instances,
        &mut path_counts,
    )?;

    for (from_label, to_label) in &config.refs {
        let froms = instances.get(from_label.as_str()).cloned().unwrap_or_default();
        let tos = instances.get(to_label.as_str()).cloned().unwrap_or_default();
        if froms.is_empty() || tos.is_empty() {
            return Err(ParseError::new(
                0,
                format!("reference {from_label} -> {to_label} names unknown elements"),
            ));
        }
        for &f in &froms {
            for &t in &tos {
                // Parallel/self duplicates can arise from multi-context
                // instantiation; they are rejected by the builder and safe
                // to skip.
                let _ = builder.add_value_link(f, t);
            }
        }
    }
    builder.build().map_err(|e| ParseError::new(0, e.to_string()))
}

#[allow(clippy::too_many_arguments)]
fn expand<'d>(
    node: ElementId,
    name: &'d str,
    elements: &'d HashMap<String, ElementDecl>,
    attlists: &'d HashMap<String, Vec<(String, AtomicType)>>,
    config: &DtdConfig,
    builder: &mut SchemaGraphBuilder,
    instances: &mut HashMap<&'d str, Vec<ElementId>>,
    path_counts: &mut HashMap<String, usize>,
) -> Result<(), ParseError> {
    // Attributes first (document order puts @attrs before sub-elements in
    // our other front-ends too).
    if let Some(attrs) = attlists.get(name) {
        for (attr, ty) in attrs {
            builder
                .add_child(node, format!("@{attr}"), SchemaType::Simple(*ty))
                .map_err(|e| ParseError::new(0, e.to_string()))?;
        }
    }
    let Some(decl) = elements.get(name) else {
        return Ok(()); // undeclared children are treated as text leaves
    };
    let parent_is_mixed = decl.has_text;
    for child in &decl.children {
        if config.mixed_as_leaves && parent_is_mixed {
            let ty = if child.repeated {
                SchemaType::set_of_simple_str()
            } else {
                SchemaType::simple_str()
            };
            let id = builder
                .add_child(node, child.name.clone(), ty)
                .map_err(|e| ParseError::new(0, e.to_string()))?;
            if let Some((key, _)) = elements.get_key_value(&child.name) {
                instances.entry(key.as_str()).or_default().push(id);
            }
            continue;
        }
        let count = path_counts.get(&child.name).copied().unwrap_or(0);
        if count >= config.max_recursion && is_recursive(&child.name, name, elements) {
            continue; // recursion cut
        }
        let child_decl = elements.get(&child.name);
        let base = match child_decl {
            Some(d) if d.children.is_empty() && !attlists.contains_key(&child.name) => {
                SchemaType::simple_str()
            }
            Some(d) => composite_type(d, false),
            None => SchemaType::simple_str(),
        };
        let ty = if child.repeated {
            SchemaType::SetOf(Box::new(base))
        } else {
            base
        };
        let id = builder
            .add_child(node, child.name.clone(), ty)
            .map_err(|e| ParseError::new(0, e.to_string()))?;
        if let Some((key, _)) = elements.get_key_value(&child.name) {
            instances.entry(key.as_str()).or_default().push(id);
        }
        *path_counts.entry(child.name.clone()).or_insert(0) += 1;
        expand(id, &child.name, elements, attlists, config, builder, instances, path_counts)?;
        *path_counts.get_mut(&child.name).expect("just inserted") -= 1;
    }
    Ok(())
}

/// Whether expanding `child` can eventually reach `ancestor_name` again
/// (direct or mutual recursion), bounded by a small walk.
fn is_recursive(
    child: &str,
    _ancestor: &str,
    elements: &HashMap<String, ElementDecl>,
) -> bool {
    // A name is treated as recursive if it is reachable from itself.
    let mut seen = vec![child.to_string()];
    let mut frontier = vec![child.to_string()];
    while let Some(cur) = frontier.pop() {
        if let Some(decl) = elements.get(&cur) {
            for c in &decl.children {
                if c.name == child {
                    return true;
                }
                if !seen.contains(&c.name) {
                    seen.push(c.name.clone());
                    frontier.push(c.name.clone());
                }
            }
        }
    }
    false
}

fn composite_type(decl: &ElementDecl, _set: bool) -> SchemaType {
    if decl.is_choice && !decl.has_text {
        SchemaType::Choice
    } else {
        SchemaType::Rcd
    }
}

/// Parse all `<!ELEMENT>` / `<!ATTLIST>` declarations.
#[allow(clippy::type_complexity)]
fn parse_declarations(
    input: &str,
) -> Result<(HashMap<String, ElementDecl>, HashMap<String, Vec<(String, AtomicType)>>), ParseError>
{
    let mut elements = HashMap::new();
    let mut attlists: HashMap<String, Vec<(String, AtomicType)>> = HashMap::new();
    let mut rest = input;
    let mut line = 1usize;
    while let Some(start) = rest.find("<!") {
        line += rest[..start].bytes().filter(|&b| b == b'\n').count();
        rest = &rest[start..];
        if rest.starts_with("<!--") {
            let end = rest
                .find("-->")
                .ok_or_else(|| ParseError::new(line, "unterminated comment"))?;
            line += rest[..end].bytes().filter(|&b| b == b'\n').count();
            rest = &rest[end + 3..];
            continue;
        }
        let end = rest
            .find('>')
            .ok_or_else(|| ParseError::new(line, "unterminated declaration"))?;
        let decl = &rest[2..end];
        line += rest[..end].bytes().filter(|&b| b == b'\n').count();
        rest = &rest[end + 1..];
        let mut words = decl.split_whitespace();
        match words.next() {
            Some("ELEMENT") => {
                let name = words
                    .next()
                    .ok_or_else(|| ParseError::new(line, "ELEMENT without a name"))?
                    .to_string();
                let model: String = words.collect::<Vec<_>>().join(" ");
                elements.insert(name, parse_content_model(&model, line)?);
            }
            Some("ATTLIST") => {
                let name = words
                    .next()
                    .ok_or_else(|| ParseError::new(line, "ATTLIST without a name"))?
                    .to_string();
                let toks: Vec<&str> = words.collect();
                let mut i = 0;
                let list = attlists.entry(name).or_default();
                while i + 1 < toks.len() {
                    let attr = toks[i].to_string();
                    let ty = match toks[i + 1] {
                        "ID" => AtomicType::Id,
                        "IDREF" | "IDREFS" => AtomicType::IdRef,
                        t if t.starts_with('(') => {
                            // Enumerated type: skip to the closing paren.
                            while i + 1 < toks.len() && !toks[i + 1].ends_with(')') {
                                i += 1;
                            }
                            AtomicType::Str
                        }
                        _ => AtomicType::Str,
                    };
                    // Default declaration: #REQUIRED/#IMPLIED/#FIXED "v"/"v".
                    let mut skip = 2;
                    if i + skip < toks.len() && toks[i + skip] == "#FIXED" {
                        skip += 1;
                    }
                    if i + skip < toks.len()
                        && (toks[i + skip].starts_with('#') || toks[i + skip].starts_with('"'))
                    {
                        skip += 1;
                    }
                    list.push((attr, ty));
                    i += skip;
                }
            }
            _ => {} // ENTITY/NOTATION/etc.: ignored
        }
    }
    Ok((elements, attlists))
}

/// Flatten a content model into child slots.
fn parse_content_model(model: &str, line: usize) -> Result<ElementDecl, ParseError> {
    let trimmed = model.trim();
    if trimmed.eq_ignore_ascii_case("EMPTY") || trimmed.eq_ignore_ascii_case("ANY") {
        return Ok(ElementDecl {
            children: Vec::new(),
            is_choice: false,
            has_text: false,
        });
    }
    let mut children: Vec<ChildSpec> = Vec::new();
    let mut has_text = false;
    // Choice is decided by the top-level separator.
    let mut top_level_bar = false;
    let mut depth = 0usize;
    for c in trimmed.chars() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            '|' if depth == 1 => top_level_bar = true,
            _ => {}
        }
    }
    // Tokenize names with their suffixes.
    let mut cur = String::new();
    let flush = |cur: &mut String, repeated: bool, children: &mut Vec<ChildSpec>, has_text: &mut bool| {
        if cur.is_empty() {
            return;
        }
        let name = std::mem::take(cur);
        if name == "#PCDATA" {
            *has_text = true;
        } else if !children.iter().any(|c| c.name == name) {
            children.push(ChildSpec { name, repeated });
        } else if repeated {
            // A name may appear in several branches; repeated wins.
            if let Some(c) = children.iter_mut().find(|c| c.name == name) {
                c.repeated = true;
            }
        }
    };
    let mut group_stack: Vec<usize> = Vec::new(); // index of first child per group
    for ch in trimmed.chars() {
        match ch {
            '(' => {
                flush(&mut cur, false, &mut children, &mut has_text);
                group_stack.push(children.len());
            }
            ')' => {
                flush(&mut cur, false, &mut children, &mut has_text);
                group_stack.pop();
            }
            '*' | '+' => {
                if cur.is_empty() {
                    // Suffix on a group: everything since the group start
                    // repeats. (The matching '(' was already popped.)
                    let start = group_stack.last().copied().unwrap_or(0);
                    for c in &mut children[start..] {
                        c.repeated = true;
                    }
                } else {
                    flush(&mut cur, true, &mut children, &mut has_text);
                }
            }
            '?' => flush(&mut cur, false, &mut children, &mut has_text),
            ',' | '|' => flush(&mut cur, false, &mut children, &mut has_text),
            c if c.is_whitespace() => flush(&mut cur, false, &mut children, &mut has_text),
            c if c.is_alphanumeric() || c == '_' || c == '-' || c == '#' || c == '.' => {
                cur.push(c)
            }
            other => {
                return Err(ParseError::new(
                    line,
                    format!("unexpected '{other}' in content model '{trimmed}'"),
                ))
            }
        }
    }
    flush(&mut cur, false, &mut children, &mut has_text);
    Ok(ElementDecl {
        children,
        is_choice: top_level_bar,
        has_text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
        <!-- a tiny auction DTD -->
        <!ELEMENT site (people, auctions)>
        <!ELEMENT people (person*)>
        <!ELEMENT person (name, profile?)>
        <!ATTLIST person id ID #REQUIRED>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT profile (interest*)>
        <!ELEMENT interest EMPTY>
        <!ATTLIST interest category CDATA #IMPLIED>
        <!ELEMENT auctions (auction+)>
        <!ELEMENT auction (bidder*, seller)>
        <!ELEMENT bidder EMPTY>
        <!ATTLIST bidder person IDREF #REQUIRED>
        <!ELEMENT seller EMPTY>
        <!ATTLIST seller person IDREF #REQUIRED>
    "#;

    #[test]
    fn expands_declarations_into_a_tree() {
        let cfg = DtdConfig::default()
            .with_ref("bidder", "person")
            .with_ref("seller", "person");
        let g = parse_dtd(SMALL, "site", &cfg).unwrap();
        // site, people, person, @id, name, profile, interest, @category,
        // auctions, auction, bidder, @person, seller, @person = 14.
        assert_eq!(g.len(), 14);
        let person = g.find_unique("person").unwrap();
        assert!(g.ty(person).is_set());
        let bidder = g.find_unique("bidder").unwrap();
        assert_eq!(g.value_links_from(bidder), &[person]);
        assert_eq!(g.num_value_links(), 2);
    }

    #[test]
    fn pcdata_elements_are_simple() {
        let g = parse_dtd(SMALL, "site", &DtdConfig::default()).unwrap();
        let name = g.find_unique("name").unwrap();
        assert!(g.ty(name).is_simple());
    }

    #[test]
    fn recursion_is_cut() {
        let dtd = r#"
            <!ELEMENT doc (par)>
            <!ELEMENT par (text, par?)>
            <!ELEMENT text (#PCDATA)>
        "#;
        let g = parse_dtd(dtd, "doc", &DtdConfig { max_recursion: 2, ..Default::default() })
            .unwrap();
        // doc, par, text, par, text — two pars then cut.
        assert_eq!(g.find_by_label("par").len(), 2);
        let g1 = parse_dtd(dtd, "doc", &DtdConfig::default()).unwrap();
        assert_eq!(g1.find_by_label("par").len(), 1);
    }

    #[test]
    fn mutual_recursion_is_cut() {
        let dtd = r#"
            <!ELEMENT a (b)>
            <!ELEMENT b (a?)>
        "#;
        let g = parse_dtd(dtd, "a", &DtdConfig { max_recursion: 2, ..Default::default() })
            .unwrap();
        assert!(g.len() >= 3 && g.len() <= 8, "{} elements", g.len());
    }

    #[test]
    fn choice_models_become_choice_type() {
        let dtd = r#"
            <!ELEMENT msg (email | letter)>
            <!ELEMENT email (#PCDATA)>
            <!ELEMENT letter (#PCDATA)>
        "#;
        let g = parse_dtd(dtd, "msg", &DtdConfig::default()).unwrap();
        assert_eq!(g.ty(g.root()), &SchemaType::Choice);
        assert_eq!(g.children(g.root()).len(), 2);
    }

    #[test]
    fn group_repetition_marks_children_repeated() {
        let dtd = r#"
            <!ELEMENT text (#PCDATA | bold | keyword)*>
            <!ELEMENT bold (#PCDATA)>
            <!ELEMENT keyword (#PCDATA)>
        "#;
        let g = parse_dtd(dtd, "text", &DtdConfig::default()).unwrap();
        let bold = g.find_unique("bold").unwrap();
        assert!(g.ty(bold).is_set(), "mixed-content children repeat");
    }

    #[test]
    fn per_context_duplication() {
        let dtd = r#"
            <!ELEMENT regions (africa, asia)>
            <!ELEMENT africa (item*)>
            <!ELEMENT asia (item*)>
            <!ELEMENT item (name)>
            <!ELEMENT name (#PCDATA)>
        "#;
        let g = parse_dtd(dtd, "regions", &DtdConfig::default()).unwrap();
        assert_eq!(g.find_by_label("item").len(), 2, "one item per region");
        assert_eq!(g.find_by_label("name").len(), 2);
    }

    #[test]
    fn unknown_root_is_an_error() {
        assert!(parse_dtd(SMALL, "nope", &DtdConfig::default()).is_err());
    }

    #[test]
    fn bad_ref_is_an_error() {
        let cfg = DtdConfig::default().with_ref("bidder", "ghost");
        assert!(parse_dtd(SMALL, "site", &cfg).is_err());
    }

    #[test]
    fn parsed_dtd_summarizes() {
        use schema_summary_algo::{Algorithm, Summarizer};
        let cfg = DtdConfig::default().with_ref("bidder", "person");
        let g = parse_dtd(SMALL, "site", &cfg).unwrap();
        let stats = schema_summary_core::SchemaStats::uniform(&g);
        let mut s = Summarizer::new(&g, &stats);
        let summary = s.summarize(3, Algorithm::Balance).unwrap();
        summary.validate(&g).unwrap();
    }
}
