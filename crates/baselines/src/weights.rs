//! Semantic link weights for the ER baselines.
//!
//! TWBK and CAFP need each relationship labeled with a semantic strength
//! (is-a, part-of, association, ...). Schema graphs carry no such labels
//! (Section 1: "relational or hierarchical schemas do not have semantic
//! meanings attached to the structural or value links"), so the paper ran
//! the baselines twice: once with labels supplied *by humans* and once with
//! the best automatic substitute. [`Weighting::human`] encodes the curated
//! judgments (strong weights for genuine part-of containment and entity
//! references, weak ones for incidental wrappers); [`Weighting::unsupervised`]
//! derives weights from label-string similarity — the linguistic signal an
//! automatic system can extract, which is noisy exactly the way the paper
//! describes.

use schema_summary_core::{ElementId, SchemaGraph};

/// Source of semantic link weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weighting {
    /// Curated semantic judgments (the paper's "with human" condition).
    Human,
    /// Label-similarity heuristic (the "w/o human" condition).
    Unsupervised,
}

impl Weighting {
    /// The curated variant.
    pub fn human() -> Self {
        Weighting::Human
    }

    /// The unsupervised variant.
    pub fn unsupervised() -> Self {
        Weighting::Unsupervised
    }

    /// Centrality bonus per attribute when ranking cluster representatives.
    /// Identifying "major entities" by their attribute richness is part of
    /// the human annotation effort; the unsupervised condition has none.
    pub fn attribute_bonus(&self) -> f64 {
        match self {
            Weighting::Human => 0.3,
            Weighting::Unsupervised => 0.0,
        }
    }

    /// Weight of a structural (containment) link.
    pub fn structural(&self, graph: &SchemaGraph, parent: ElementId, child: ElementId) -> f64 {
        match self {
            Weighting::Human => {
                let pl = graph.label(parent);
                let cl = graph.label(child);
                if is_plural_wrapper(pl, cl) {
                    // "proteins" → "protein": pure containers belong with
                    // their content (TWBK's dominance grouping).
                    1.0
                } else if graph.ty(child).is_set() {
                    // Repeated sub-entities: strong part-of.
                    0.8
                } else {
                    // Singular components (profile, address): very strong
                    // part-of; a human groups them with their owner.
                    0.9
                }
            }
            Weighting::Unsupervised => label_similarity(graph.label(parent), graph.label(child)),
        }
    }

    /// Weight of a value (reference) link.
    pub fn value(&self, graph: &SchemaGraph, referrer: ElementId, referee: ElementId) -> f64 {
        match self {
            // References connect distinct entities: a human labels them as
            // associations, which TWBK/CAFP keep *between* clusters.
            Weighting::Human => 0.3,
            Weighting::Unsupervised => {
                label_similarity(graph.label(referrer), graph.label(referee)) * 0.8
            }
        }
    }
}

/// Whether `parent` is a plural/collection wrapper of `child`
/// (`proteins`/`protein`, `people`/`person`, `categories`/`category`).
pub(crate) fn is_plural_wrapper(parent: &str, child: &str) -> bool {
    let p = parent.to_ascii_lowercase();
    let c = child.to_ascii_lowercase();
    p == format!("{c}s")
        || (c.ends_with('y') && p == format!("{}ies", &c[..c.len() - 1]))
        || (p == "people" && c == "person")
        || p == format!("{c}es")
}

/// Normalized longest-common-prefix/suffix similarity between two labels —
/// the crude linguistic signal available without human labeling.
pub(crate) fn label_similarity(a: &str, b: &str) -> f64 {
    let a = a.trim_start_matches('@').to_ascii_lowercase();
    let b = b.trim_start_matches('@').to_ascii_lowercase();
    if a.is_empty() || b.is_empty() {
        return 0.1;
    }
    let prefix = a
        .bytes()
        .zip(b.bytes())
        .take_while(|(x, y)| x == y)
        .count();
    let suffix = a
        .bytes()
        .rev()
        .zip(b.bytes().rev())
        .take_while(|(x, y)| x == y)
        .count();
    let common = prefix.max(suffix) as f64;
    let denom = a.len().max(b.len()) as f64;
    // Floor at 0.1 so unrelated labels still have *some* connective weight
    // (the heuristic cannot tell "unrelated" from "renamed").
    (common / denom).max(0.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    #[test]
    fn plural_wrappers_detected() {
        assert!(is_plural_wrapper("proteins", "protein"));
        assert!(is_plural_wrapper("people", "person"));
        assert!(is_plural_wrapper("categories", "category"));
        assert!(is_plural_wrapper("boxes", "box"));
        assert!(!is_plural_wrapper("open_auctions", "bidder"));
    }

    #[test]
    fn label_similarity_behaves() {
        assert!(label_similarity("protein", "proteins") > 0.8);
        assert!(label_similarity("interaction", "interactions") > 0.8);
        assert!(label_similarity("person", "item") <= 0.2);
        assert!(label_similarity("@id", "id") > 0.9);
    }

    #[test]
    fn human_weights_rank_containment_over_reference() {
        let mut b = SchemaGraphBuilder::new("db");
        let person = b.add_child(b.root(), "person", SchemaType::set_of_rcd()).unwrap();
        let profile = b.add_child(person, "profile", SchemaType::rcd()).unwrap();
        let bidder = b.add_child(b.root(), "bidder", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(bidder, person).unwrap();
        let g = b.build().unwrap();
        let w = Weighting::human();
        assert!(w.structural(&g, person, profile) > w.value(&g, bidder, person));
    }

    #[test]
    fn unsupervised_weights_are_label_driven() {
        let mut b = SchemaGraphBuilder::new("db");
        let person = b.add_child(b.root(), "person", SchemaType::set_of_rcd()).unwrap();
        let personal = b.add_child(person, "personal", SchemaType::rcd()).unwrap();
        let zap = b.add_child(person, "zap", SchemaType::rcd()).unwrap();
        let g = b.build().unwrap();
        let w = Weighting::unsupervised();
        assert!(w.structural(&g, person, personal) > w.structural(&g, person, zap));
    }
}
