//! TWBK: Teorey–Wei–Bolton–Koenig ER model clustering (CACM 1989).
//!
//! TWBK builds "entity clusters" bottom-up through grouping operations
//! applied in order of cohesion: **dominance grouping** (absorb an entity's
//! dependent/weak entities), **abstraction grouping** (collapse is-a /
//! generalization hierarchies), and **constraint grouping** (merge entities
//! tied by strong integrity constraints); looser associations stay between
//! clusters. On a schema graph without semantic labels these operations are
//! driven by the supplied [`Weighting`]: our implementation first performs
//! dominance grouping (each entity absorbs maximal-weight containment
//! neighbors above a threshold), then agglomerates remaining clusters by
//! strongest link until the requested cluster count is reached — the same
//! control structure as Teorey et al.'s iterative grouping at successive
//! cohesion levels.

use crate::weights::Weighting;
use crate::{representatives, EntityView};
use schema_summary_core::{ElementId, SchemaGraph};

/// Cohesion threshold above which dominance grouping applies in the first
/// phase (Teorey et al. group the strongest cohesion levels first).
const DOMINANCE_THRESHOLD: f64 = 0.85;

/// Select `k` cluster representatives with TWBK-style grouping, seeded
/// with designer-identified **major entities** — the first step of Teorey
/// et al.'s method and the bulk of the human labeling effort the paper's
/// "with human" condition pays for. Seeds become cluster representatives
/// directly; remaining slots are filled by the unseeded grouping.
pub fn twbk_select_seeded(
    graph: &SchemaGraph,
    weighting: Weighting,
    k: usize,
    seeds: &[ElementId],
) -> Vec<ElementId> {
    let mut out: Vec<ElementId> = seeds.iter().copied().take(k).collect();
    if out.len() < k {
        for e in twbk_select(graph, weighting, k) {
            if out.len() == k {
                break;
            }
            if !out.contains(&e) {
                out.push(e);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Select `k` cluster representatives with TWBK-style grouping.
pub fn twbk_select(graph: &SchemaGraph, weighting: Weighting, k: usize) -> Vec<ElementId> {
    let view = EntityView::build(graph, &weighting);
    if view.entities.is_empty() {
        return Vec::new();
    }

    // Phase 1: dominance grouping — union entities across links whose
    // cohesion exceeds the threshold (wrapper containers, strong part-of).
    let n = view.entities.len();
    let mut cluster: Vec<usize> = (0..n).collect();
    let mut n_clusters = n;
    for &(a, b, w) in &view.links {
        if w >= DOMINANCE_THRESHOLD && n_clusters > k {
            let (ca, cb) = (cluster[a], cluster[b]);
            let combined = cluster.iter().filter(|&&c| c == ca || c == cb).count();
            if ca != cb && combined <= crate::MAX_CLUSTER_ENTITIES {
                for c in cluster.iter_mut() {
                    if *c == cb {
                        *c = ca;
                    }
                }
                n_clusters -= 1;
            }
        }
    }

    // Phase 2: agglomerate what remains by descending cohesion, balancing
    // cluster sizes on the (frequent) weight ties — constraint and
    // association grouping at successively looser levels.
    crate::merge_balanced(n, &view.links, &mut cluster, &mut n_clusters, k);

    representatives(graph, &view, &cluster, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    fn graph() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("db");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
        let profile = b.add_child(person, "profile", SchemaType::rcd()).unwrap();
        b.add_child(profile, "age", SchemaType::simple_int()).unwrap();
        let auctions = b.add_child(b.root(), "auctions", SchemaType::rcd()).unwrap();
        let auction = b.add_child(auctions, "auction", SchemaType::set_of_rcd()).unwrap();
        let bidder = b.add_child(auction, "bidder", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(bidder, person).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn selects_requested_count() {
        let g = graph();
        for k in 1..=3 {
            let sel = twbk_select(&g, Weighting::human(), k);
            assert_eq!(sel.len(), k, "k={k}");
        }
    }

    #[test]
    fn human_weights_group_wrappers_with_content() {
        let g = graph();
        let sel = twbk_select(&g, Weighting::human(), 2);
        let labels: Vec<_> = sel.iter().map(|&e| g.label(e)).collect();
        // With human labels, the people-side cluster and the auction-side
        // cluster emerge; wrappers (people/auctions) are absorbed, and the
        // representative is the best-connected member of each.
        assert!(
            labels.contains(&"person") || labels.contains(&"profile"),
            "{labels:?}"
        );
        assert!(
            labels.contains(&"auction") || labels.contains(&"bidder"),
            "{labels:?}"
        );
    }

    #[test]
    fn deterministic() {
        let g = graph();
        let a = twbk_select(&g, Weighting::unsupervised(), 2);
        let b = twbk_select(&g, Weighting::unsupervised(), 2);
        assert_eq!(a, b);
    }
}
