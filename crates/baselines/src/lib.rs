//! ER model abstraction baselines (Section 5.4, Table 6).
//!
//! The paper compares its summarizer against two representative conceptual
//! schema-clustering techniques:
//!
//! * **TWBK** — Teorey, Wei, Bolton & Koenig, *ER Model Clustering as an
//!   Aid for User Communication and Documentation in Database Design*
//!   (CACM 1989): grouping operations (dominance / abstraction / constraint
//!   grouping) driven by the semantic strength of relationships;
//! * **CAFP** — Castano, De Antonellis, Fugini & Pernici, *Conceptual
//!   Schema Analysis* (TODS 1998): affinity-based clustering over weighted
//!   relationship paths.
//!
//! Both techniques presuppose **semantically labeled links** — information
//! a relational or XML schema simply does not carry. The paper's finding is
//! that with significant human labeling effort they become competitive,
//! and without it they fall far behind. We reproduce that setup with two
//! weighting sources ([`Weighting`]): a curated fixture standing in for the
//! human annotator, and an unsupervised heuristic (label-string similarity),
//! which is the best a system can do automatically.
//!
//! Both baselines operate on an ER-style view of the schema graph: composite
//! elements act as entities, `Simple` children fold into their parent
//! entity as attributes, and entity-entity links (structural containment or
//! value references) carry the semantic weights.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cafp;
pub mod twbk;
pub mod weights;

pub use cafp::{cafp_select, cafp_select_seeded};
pub use twbk::{twbk_select, twbk_select_seeded};
pub use weights::Weighting;

use schema_summary_core::{ElementId, SchemaGraph};

/// The ER-style entity view shared by both baselines.
pub(crate) struct EntityView {
    /// Entity elements (composites), in id order.
    pub entities: Vec<ElementId>,
    /// Entity-entity links `(a, b, weight)` with `a < b`, deduplicated.
    pub links: Vec<(usize, usize, f64)>,
    /// Per-entity centrality bonus from its attributes. TWBK's "major
    /// entity" judgment weighs an entity's attribute richness — a call the
    /// human annotator makes; the unsupervised condition has no such
    /// signal, so its bonus is zero and wrappers with strong label
    /// similarity can outrank real entities.
    pub strength_bonus: Vec<f64>,
}

impl EntityView {
    pub(crate) fn build(graph: &SchemaGraph, weighting: &Weighting) -> Self {
        let entities: Vec<ElementId> = graph
            .element_ids()
            .filter(|&e| e != graph.root() && graph.ty(e).is_composite())
            .collect();
        let index: std::collections::HashMap<ElementId, usize> =
            entities.iter().enumerate().map(|(i, &e)| (e, i)).collect();

        let mut links: std::collections::HashMap<(usize, usize), f64> = Default::default();
        let mut add = |a: ElementId, b: ElementId, w: f64| {
            if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
                let key = (ia.min(ib), ia.max(ib));
                let entry = links.entry(key).or_insert(0.0);
                if w > *entry {
                    *entry = w;
                }
            }
        };
        for (p, c) in graph.structural_links() {
            add(p, c, weighting.structural(graph, p, c));
        }
        for (f, t) in graph.value_links() {
            add(f, t, weighting.value(graph, f, t));
        }
        let mut links: Vec<(usize, usize, f64)> =
            links.into_iter().map(|((a, b), w)| (a, b, w)).collect();
        links.sort_by_key(|x| (x.0, x.1));
        let strength_bonus = entities
            .iter()
            .map(|&e| {
                let attrs = graph
                    .children(e)
                    .iter()
                    .filter(|&&c| graph.ty(c).is_simple())
                    .count();
                weighting.attribute_bonus() * attrs as f64
            })
            .collect();
        EntityView {
            entities,
            links,
            strength_bonus,
        }
    }
}

/// Pick a representative per cluster: the member with the highest total
/// **semantic-weight** centrality (the sum of its incident link weights in
/// the entity view — the only notion of importance the ER techniques have;
/// they see neither data cardinalities nor anything beyond the labeled
/// relationships), preferring set-typed entities over singleton wrappers on
/// ties. Returns up to `k` representatives ordered by cluster size (largest
/// first), padded with the highest-centrality unselected entities when
/// clustering produced fewer than `k` clusters.
pub(crate) fn representatives(
    graph: &SchemaGraph,
    view: &EntityView,
    cluster: &[usize],
    k: usize,
) -> Vec<ElementId> {
    use std::collections::HashMap;
    let mut strength = view.strength_bonus.clone();
    for &(a, b, w) in &view.links {
        strength[a] += w;
        strength[b] += w;
    }
    let key = |i: usize| {
        let e = view.entities[i];
        (strength[i], graph.ty(e).is_set(), std::cmp::Reverse(e))
    };
    let mut members: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, &c) in cluster.iter().enumerate() {
        members.entry(c).or_default().push(i);
    }
    let mut clusters: Vec<Vec<usize>> = members.into_values().collect();
    // Tie-break equal sizes by the cluster's strongest member (the same
    // semantic-weight centrality used to pick representatives), then by
    // lowest member index. Clusters leave the map in arbitrary hash order,
    // and without a total order the k-truncation below would pick
    // different clusters from run to run.
    clusters.sort_by(|x, y| {
        let sx = x.iter().map(|&i| strength[i]).fold(f64::MIN, f64::max);
        let sy = y.iter().map(|&i| strength[i]).fold(f64::MIN, f64::max);
        y.len()
            .cmp(&x.len())
            .then(sy.partial_cmp(&sx).expect("weights are finite"))
            .then(x[0].cmp(&y[0]))
    });
    let mut out: Vec<ElementId> = Vec::new();
    for m in clusters.iter().take(k) {
        let rep = *m
            .iter()
            .max_by(|&&x, &&y| key(x).partial_cmp(&key(y)).expect("weights are finite"))
            .expect("clusters are non-empty");
        out.push(view.entities[rep]);
    }
    if out.len() < k {
        let mut rest: Vec<usize> = (0..view.entities.len())
            .filter(|&i| !out.contains(&view.entities[i]))
            .collect();
        rest.sort_by(|&x, &y| key(y).partial_cmp(&key(x)).expect("weights are finite"));
        out.extend(rest.into_iter().take(k - out.len()).map(|i| view.entities[i]));
    }
    out.sort_unstable();
    out
}

/// Upper bound on entities per cluster: Teorey et al. size clusters for
/// diagram readability, explicitly invoking Miller's 7±2 rule.
pub(crate) const MAX_CLUSTER_ENTITIES: usize = 9;

/// Size-balanced agglomeration: repeatedly merge the pair of clusters
/// joined by the heaviest link, breaking weight ties in favor of the
/// *smallest* combined cluster size (then lowest indices), and never
/// growing a cluster past [`MAX_CLUSTER_ENTITIES`]. Plain single-linkage
/// chains heavily tied containment weights into one blob cluster plus
/// singletons; balancing ties and capping sizes keeps clusters aligned
/// with the schema's entity neighborhoods, which is what TWBK's leveled
/// grouping produces on ER diagrams.
pub(crate) fn merge_balanced(
    n: usize,
    links: &[(usize, usize, f64)],
    cluster: &mut [usize],
    n_clusters: &mut usize,
    k: usize,
) {
    while *n_clusters > k {
        let mut size: std::collections::HashMap<usize, usize> = Default::default();
        for &c in cluster.iter() {
            *size.entry(c).or_insert(0) += 1;
        }
        let mut best: Option<(f64, std::cmp::Reverse<usize>, usize, usize)> = None;
        for &(a, b, w) in links {
            let (ca, cb) = (cluster[a], cluster[b]);
            if ca == cb {
                continue;
            }
            let combined = size[&ca] + size[&cb];
            if combined > MAX_CLUSTER_ENTITIES {
                continue;
            }
            let key = (w, std::cmp::Reverse(combined), ca.min(cb), ca.max(cb));
            let better = match &best {
                None => true,
                Some(cur) => {
                    (key.0, key.1, std::cmp::Reverse(key.2), std::cmp::Reverse(key.3))
                        .partial_cmp(&(cur.0, cur.1, std::cmp::Reverse(cur.2), std::cmp::Reverse(cur.3)))
                        == Some(std::cmp::Ordering::Greater)
                }
            };
            if better {
                best = Some(key);
            }
        }
        let Some((_, _, ca, cb)) = best else { break };
        for c in cluster.iter_mut() {
            if *c == cb {
                *c = ca;
            }
        }
        *n_clusters -= 1;
    }
    let _ = n;
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    fn graph() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("db");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
        b.add_child(person, "name", SchemaType::simple_str()).unwrap();
        let profile = b.add_child(person, "profile", SchemaType::rcd()).unwrap();
        b.add_child(profile, "age", SchemaType::simple_int()).unwrap();
        let auctions = b.add_child(b.root(), "auctions", SchemaType::rcd()).unwrap();
        let auction = b.add_child(auctions, "auction", SchemaType::set_of_rcd()).unwrap();
        let bidder = b.add_child(auction, "bidder", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(bidder, person).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn entity_view_excludes_attributes_and_root() {
        let g = graph();
        let v = EntityView::build(&g, &Weighting::human());
        let labels: Vec<_> = v.entities.iter().map(|&e| g.label(e)).collect();
        assert!(labels.contains(&"person"));
        assert!(labels.contains(&"bidder"));
        assert!(!labels.contains(&"name"));
        assert!(!labels.contains(&"db"));
        assert!(!v.links.is_empty());
    }

    #[test]
    fn representatives_have_requested_size() {
        let g = graph();
        let v = EntityView::build(&g, &Weighting::human());
        let cluster: Vec<usize> = (0..v.entities.len()).map(|i| i % 2).collect();
        let reps = representatives(&g, &v, &cluster, 2);
        assert_eq!(reps.len(), 2);
        // Representatives are distinct entities of the graph.
        for &r in &reps {
            g.check(r).unwrap();
        }
    }

    #[test]
    fn padding_when_too_few_clusters() {
        let g = graph();
        let v = EntityView::build(&g, &Weighting::human());
        let cluster = vec![0; v.entities.len()];
        let reps = representatives(&g, &v, &cluster, 4);
        assert_eq!(reps.len(), 4);
        let mut d = reps.clone();
        d.dedup();
        assert_eq!(d.len(), 4);
    }
}
