//! CAFP: Castano–De Antonellis–Fugini–Pernici conceptual schema analysis
//! (TODS 1998).
//!
//! CAFP clusters schema concepts by **conceptual affinity**: a pairwise
//! measure combining the strength of the direct relationship between two
//! concepts with the strength of their strongest connecting path
//! (path affinity = product of link weights, discounted per hop). Concepts
//! are clustered by descending affinity, and each cluster is fronted by its
//! most central concept. The link weights are semantic — here supplied by a
//! [`Weighting`], curated or unsupervised (Table 6's two conditions).

use crate::weights::Weighting;
use crate::{representatives, EntityView};
use schema_summary_core::{ElementId, SchemaGraph};

/// Per-hop discount applied to path affinity (Castano et al. weight longer
/// derivation paths lower).
const HOP_DISCOUNT: f64 = 0.8;

/// Select `k` cluster representatives with CAFP-style affinity clustering,
/// seeded with human-identified core concepts (see
/// [`crate::twbk::twbk_select_seeded`] for the rationale); remaining slots
/// are filled by the unseeded clustering.
pub fn cafp_select_seeded(
    graph: &SchemaGraph,
    weighting: Weighting,
    k: usize,
    seeds: &[ElementId],
) -> Vec<ElementId> {
    let mut out: Vec<ElementId> = seeds.iter().copied().take(k).collect();
    if out.len() < k {
        for e in cafp_select(graph, weighting, k) {
            if out.len() == k {
                break;
            }
            if !out.contains(&e) {
                out.push(e);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Select `k` cluster representatives with CAFP-style affinity clustering.
pub fn cafp_select(graph: &SchemaGraph, weighting: Weighting, k: usize) -> Vec<ElementId> {
    let view = EntityView::build(graph, &weighting);
    let n = view.entities.len();
    if n == 0 {
        return Vec::new();
    }

    // All-pairs conceptual affinity via repeated relaxation (max-product
    // paths with per-hop discount; Floyd–Warshall style).
    let mut aff = vec![0.0f64; n * n];
    for i in 0..n {
        aff[i * n + i] = 1.0;
    }
    for &(a, b, w) in &view.links {
        let v = w * HOP_DISCOUNT;
        if v > aff[a * n + b] {
            aff[a * n + b] = v;
            aff[b * n + a] = v;
        }
    }
    for mid in 0..n {
        for i in 0..n {
            let ai = aff[i * n + mid];
            if ai <= 0.0 {
                continue;
            }
            for j in 0..n {
                let through = ai * aff[mid * n + j] * HOP_DISCOUNT;
                if through > aff[i * n + j] {
                    aff[i * n + j] = through;
                }
            }
        }
    }

    // Affinity clustering: merge the pair of clusters with the highest
    // max-affinity until k remain, balancing sizes on affinity ties.
    let mut cluster: Vec<usize> = (0..n).collect();
    let mut n_clusters = n;
    let pairs: Vec<(usize, usize, f64)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .map(|(i, j)| (i, j, aff[i * n + j]))
        .filter(|&(_, _, w)| w > 0.0)
        .collect();
    crate::merge_balanced(n, &pairs, &mut cluster, &mut n_clusters, k);

    representatives(graph, &view, &cluster, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_summary_core::{SchemaGraphBuilder, SchemaType};

    fn graph() -> SchemaGraph {
        let mut b = SchemaGraphBuilder::new("db");
        let people = b.add_child(b.root(), "people", SchemaType::rcd()).unwrap();
        let person = b.add_child(people, "person", SchemaType::set_of_rcd()).unwrap();
        let profile = b.add_child(person, "profile", SchemaType::rcd()).unwrap();
        b.add_child(profile, "age", SchemaType::simple_int()).unwrap();
        let auctions = b.add_child(b.root(), "auctions", SchemaType::rcd()).unwrap();
        let auction = b.add_child(auctions, "auction", SchemaType::set_of_rcd()).unwrap();
        let bidder = b.add_child(auction, "bidder", SchemaType::set_of_rcd()).unwrap();
        b.add_value_link(bidder, person).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn selects_requested_count() {
        let g = graph();
        for k in 1..=3 {
            assert_eq!(cafp_select(&g, Weighting::human(), k).len(), k);
        }
    }

    #[test]
    fn nearby_entities_cluster_together() {
        let g = graph();
        let sel = cafp_select(&g, Weighting::human(), 2);
        // Two clusters: one around persons, one around auctions; the two
        // representatives must come from different sides.
        let person_side = ["people", "person", "profile"];
        let auction_side = ["auctions", "auction", "bidder"];
        let on_person = sel.iter().filter(|&&e| person_side.contains(&g.label(e))).count();
        let on_auction = sel.iter().filter(|&&e| auction_side.contains(&g.label(e))).count();
        assert_eq!(on_person, 1, "{sel:?}");
        assert_eq!(on_auction, 1, "{sel:?}");
    }

    #[test]
    fn deterministic_and_weighting_sensitive() {
        let g = graph();
        let a = cafp_select(&g, Weighting::human(), 2);
        let b = cafp_select(&g, Weighting::human(), 2);
        assert_eq!(a, b);
        // Unsupervised may or may not differ, but must still be valid.
        let c = cafp_select(&g, Weighting::unsupervised(), 2);
        assert_eq!(c.len(), 2);
    }
}
