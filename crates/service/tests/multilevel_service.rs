//! Multi-level summaries and drill-down over the wire: a pipelined TCP
//! session that builds a stack and expands its groups must return exactly
//! the levels `build_multi_level` produces, and once the stack is cached a
//! drill-down sequence never recomputes the all-pairs matrices.

use schema_summary_algo::multilevel::build_multi_level;
use schema_summary_algo::{Algorithm, Summarizer, SummarizerConfig};
use schema_summary_datasets::xmark;
use schema_summary_service::{ServerConfig, ServerReply, SummaryServer, SummaryService};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const SIZES: [usize; 3] = [12, 6, 3];

fn build_server() -> SummaryServer {
    let service = SummaryService::default();
    let (g, s, _) = xmark::schema(1.0);
    service.register_named("xmark", Arc::new(g), Arc::new(s));
    SummaryServer::bind(
        "127.0.0.1:0",
        Arc::new(service),
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            max_connections: 16,
            request_timeout: Duration::from_secs(60),
        },
    )
    .unwrap()
}

/// Pipeline `lines` on one connection; parse the `n` ordered replies.
fn pipelined(addr: std::net::SocketAddr, lines: &[String], n: usize) -> Vec<ServerReply> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let payload = lines.join("\n") + "\n";
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    (0..n)
        .map(|_| {
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            serde_json::from_str(&reply).expect("reply parses")
        })
        .collect()
}

#[test]
fn pipelined_drill_down_matches_direct_build_multi_level() {
    let server = build_server();
    let addr = server.local_addr();

    // One pipelined exploration session: build the stack, then drill into
    // every coarsest group, then open one finest group down to elements.
    let mut lines = vec![format!(
        "{{\"schema\":\"xmark\",\"levels\":[{},{},{}]}}",
        SIZES[0], SIZES[1], SIZES[2]
    )];
    for group in 0..SIZES[2] {
        lines.push(format!(
            "{{\"schema\":\"xmark\",\"levels\":[{},{},{}],\"expand\":{{\"level\":2,\"group\":{group}}}}}",
            SIZES[0], SIZES[1], SIZES[2]
        ));
    }
    lines.push(format!(
        "{{\"schema\":\"xmark\",\"levels\":[{},{},{}],\"expand\":{{\"level\":0,\"group\":0}}}}",
        SIZES[0], SIZES[1], SIZES[2]
    ));
    let replies = pipelined(addr, &lines, lines.len());

    // The reference stack, computed directly from the algorithm crate.
    let (g, s, _) = xmark::schema(1.0);
    let mut facade = Summarizer::with_config(&g, &s, SummarizerConfig::default());
    let expected = facade.multi_level(&SIZES, Algorithm::Balance).unwrap();
    // Sanity-check the reference against a from-parts build so the wire
    // comparison really pins down the whole pipeline.
    let direct = {
        let selection = facade.select(SIZES[0], Algorithm::Balance).unwrap();
        build_multi_level(&g, facade.matrices(), &selection, &SIZES[1..]).unwrap()
    };
    assert_eq!(expected, direct);

    // Reply 0: the multi-level view mirrors the direct stack level by
    // level — sizes, group count, and each group's representative label.
    let view = replies[0]
        .multilevel
        .as_ref()
        .expect("levels request returns a multilevel reply");
    assert_eq!(view.sizes, SIZES.to_vec());
    assert_eq!(view.levels.len(), expected.depth());
    for (wire_level, direct_level) in view.levels.iter().zip(expected.levels()) {
        assert_eq!(wire_level.size, direct_level.size());
        for (wire_group, direct_group) in wire_level.groups.iter().zip(direct_level.abstracts()) {
            assert_eq!(wire_group.representative, g.label_path(direct_group.representative));
            assert_eq!(wire_group.size, direct_group.members.len());
        }
    }

    // Replies 1..=3: expanding the coarsest level partitions the middle
    // level — every middle-level group appears under exactly one parent.
    let mut seen_children = Vec::new();
    for (i, reply) in replies[1..=SIZES[2]].iter().enumerate() {
        let exp = reply
            .expansion
            .as_ref()
            .unwrap_or_else(|| panic!("expand reply {i} missing: {:?}", reply.error));
        assert_eq!(exp.level, 2);
        assert!(exp.elements.is_empty());
        assert!(!exp.children.is_empty());
        seen_children.extend(exp.children.iter().map(|c| c.group));
    }
    seen_children.sort_unstable();
    assert_eq!(
        seen_children,
        (0..SIZES[1]).collect::<Vec<_>>(),
        "coarsest groups must partition the middle level"
    );

    // Last reply: a finest-level expansion lists raw schema elements.
    let leaf = replies.last().unwrap().expansion.as_ref().unwrap();
    assert_eq!(leaf.level, 0);
    assert!(leaf.children.is_empty());
    assert!(!leaf.elements.is_empty());
    assert_eq!(
        leaf.elements.len(),
        expected.level(0).abstracts()[0].members.len()
    );

    // The whole session computed the matrices exactly once, and only the
    // first request ran an algorithm; every expand walked the cached stack.
    let stats = server.service().cache_stats();
    assert_eq!(stats.matrices_computed, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits as usize, SIZES[2] + 1);
    server.shutdown();
}

#[test]
fn warm_expand_never_recomputes_matrices() {
    let server = build_server();
    let addr = server.local_addr();

    // Warm the stack.
    let build = format!(
        "{{\"schema\":\"xmark\",\"levels\":[{},{},{}]}}",
        SIZES[0], SIZES[1], SIZES[2]
    );
    pipelined(addr, std::slice::from_ref(&build), 1);
    let warm_stats = server.service().cache_stats();
    assert_eq!(warm_stats.matrices_computed, 1);
    assert_eq!(warm_stats.misses, 1);

    // A storm of concurrent drill-downs over every level and group.
    let handles: Vec<_> = (0..4)
        .map(|client| {
            std::thread::spawn(move || {
                let lines: Vec<String> = (0..SIZES[2])
                    .map(|group| {
                        format!(
                            "{{\"schema\":\"xmark\",\"levels\":[{},{},{}],\"expand\":{{\"level\":{},\"group\":{group}}}}}",
                            SIZES[0], SIZES[1], SIZES[2],
                            client % 3,
                        )
                    })
                    .collect();
                let replies = pipelined(addr, &lines, lines.len());
                for reply in replies {
                    assert!(reply.expansion.is_some(), "drill-down failed: {:?}", reply.error);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client panicked");
    }

    // Every drill-down was served from the cached stack: no new matrix
    // computation, no new algorithm run.
    let stats = server.service().cache_stats();
    assert_eq!(stats.matrices_computed, 1, "warm expand recomputed matrices");
    assert_eq!(stats.misses, 1, "warm expand recomputed a summary");
    assert_eq!(stats.hits, 4 * SIZES[2] as u64);

    // Malformed drill-downs fail cleanly without disturbing the cache.
    let bad = "{\"schema\":\"xmark\",\"expand\":{\"level\":0,\"group\":0}}".to_string();
    let replies = pipelined(addr, std::slice::from_ref(&bad), 1);
    let err = replies[0].error.as_ref().expect("expand without levels is rejected");
    assert_eq!(err.kind, "bad_request");
    assert_eq!(server.service().cache_stats().misses, 1);
    server.shutdown();
}
