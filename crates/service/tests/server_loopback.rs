//! Loopback integration tests for the TCP front-end: concurrent
//! pipelined clients, load shedding, per-request timeouts, the connection
//! cap, and graceful shutdown.

use schema_summary_datasets::{tpch, xmark};
use schema_summary_service::{
    ServerConfig, ServerReply, SummaryRequest, SummaryService, SummaryServer,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn build_service() -> Arc<SummaryService> {
    let service = SummaryService::default();
    let (xg, xs, _) = xmark::schema(1.0);
    let (tg, ts, _) = tpch::schema(1.0);
    service.register_named("xmark", Arc::new(xg), Arc::new(xs));
    service.register_named("tpch", Arc::new(tg), Arc::new(ts));
    Arc::new(service)
}

/// The pipelined workload every client sends, one JSON object per line.
fn request_lines() -> Vec<String> {
    let mut lines = vec![
        "# exploration session".to_string(),
        String::new(), // blank lines are skipped
    ];
    for k in 1..=4 {
        lines.push(format!("{{\"schema\":\"xmark\",\"algorithm\":\"balance\",\"k\":{k}}}"));
    }
    lines.push("{\"schema\":\"xmark\",\"algorithm\":\"importance\",\"k\":3}".to_string());
    lines.push("{\"schema\":\"tpch\",\"algorithm\":\"coverage\",\"k\":3}".to_string());
    lines.push("{\"schema\":\"tpch\",\"k\":2}".to_string());
    lines
}

/// What a single-threaded service answers for `request_lines()`, in the
/// exact bytes the server puts on the wire.
fn expected_reply_lines() -> Vec<String> {
    let reference = build_service();
    let mut seq = 0u64;
    request_lines()
        .iter()
        .filter(|l| !l.trim().is_empty() && !l.trim().starts_with('#'))
        .map(|line| {
            let request: SummaryRequest = serde_json::from_str(line).unwrap();
            let served = reference.handle(&request).unwrap();
            seq += 1;
            serde_json::to_string(&ServerReply {
                seq,
                ok: Some((*served.result).clone()),
                multilevel: None,
                expansion: None,
                error: None,
            })
            .unwrap()
        })
        .collect()
}

/// Connect, write every line up front (pipelining), then collect `n`
/// reply lines.
fn pipelined_session(addr: std::net::SocketAddr, lines: &[String], n: usize) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let payload = lines.join("\n") + "\n";
    stream.write_all(payload.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    (0..n)
        .map(|_| {
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        })
        .collect()
}

#[test]
fn concurrent_pipelined_clients_match_single_threaded_answers() {
    let expected = Arc::new(expected_reply_lines());
    let server = SummaryServer::bind(
        "127.0.0.1:0",
        build_service(),
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            max_connections: 32,
            request_timeout: Duration::from_secs(60),
        },
    )
    .unwrap();
    let addr = server.local_addr();

    const CLIENTS: usize = 10;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let replies = pipelined_session(addr, &request_lines(), expected.len());
                assert_eq!(
                    replies, *expected,
                    "socket replies must be byte-identical to the single-threaded service"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client panicked");
    }

    let stats = server.shutdown();
    assert_eq!(stats.accepted, CLIENTS as u64);
    assert_eq!(stats.served, (CLIENTS * expected.len()) as u64);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.timed_out, 0);
    assert_eq!(stats.active_connections, 0);
}

#[test]
fn queue_overflow_sheds_with_structured_overloaded_error() {
    // One worker, queue bound 1: simultaneous cold requests on distinct
    // keys cannot all be buffered — the excess must be answered with a
    // structured `overloaded` error, keeping server memory bounded.
    let server = SummaryServer::bind(
        "127.0.0.1:0",
        build_service(),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            max_connections: 64,
            request_timeout: Duration::from_secs(60),
        },
    )
    .unwrap();
    let addr = server.local_addr();

    const CLIENTS: usize = 16;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                // Distinct k per client: distinct cache keys, so
                // single-flight cannot collapse the stampede.
                let line =
                    format!("{{\"schema\":\"xmark\",\"algorithm\":\"coverage\",\"k\":{}}}", c + 1);
                let replies = pipelined_session(addr, &[line], 1);
                let reply: ServerReply = serde_json::from_str(&replies[0]).unwrap();
                match (&reply.ok, &reply.error) {
                    (Some(_), None) => false,
                    (None, Some(err)) => {
                        assert_eq!(err.kind, "overloaded", "unexpected error: {err:?}");
                        true
                    }
                    other => panic!("reply must be ok xor error, got {other:?}"),
                }
            })
        })
        .collect();
    let shed_replies = handles
        .into_iter()
        .map(|h| h.join().expect("client panicked"))
        .filter(|&was_shed| was_shed)
        .count();

    let stats = server.shutdown();
    assert!(
        shed_replies >= 1 && stats.shed as usize == shed_replies,
        "16 simultaneous cold requests through a 1-deep queue must shed \
         (clients saw {shed_replies}, server counted {})",
        stats.shed
    );
    assert_eq!(stats.accepted, CLIENTS as u64);
}

#[test]
fn slow_request_trips_the_timeout_and_later_completes_from_cache() {
    let server = SummaryServer::bind(
        "127.0.0.1:0",
        build_service(),
        ServerConfig {
            workers: 1,
            queue_capacity: 16,
            max_connections: 8,
            // Far below any cold computation: the first attempt must time
            // out while the worker keeps computing and warms the cache.
            request_timeout: Duration::from_millis(1),
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let line = "{\"schema\":\"xmark\",\"algorithm\":\"coverage\",\"k\":5}".to_string();
    let replies = pipelined_session(addr, std::slice::from_ref(&line), 1);
    let reply: ServerReply = serde_json::from_str(&replies[0]).unwrap();
    let err = reply.error.expect("cold request must exceed a 1ms budget");
    assert_eq!(err.kind, "timeout");
    assert!(reply.ok.is_none());
    assert!(server.stats().timed_out >= 1);

    // The computation was not abandoned: it finishes on the worker and
    // lands in the cache, so a retry eventually answers within the same
    // 1ms budget.
    let mut served = None;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(50));
        let replies = pipelined_session(addr, std::slice::from_ref(&line), 1);
        let reply: ServerReply = serde_json::from_str(&replies[0]).unwrap();
        if let Some(result) = reply.ok {
            served = Some(result);
            break;
        }
    }
    let result = served.expect("timed-out computation must eventually serve from cache");
    assert_eq!(result.k, 5);
    server.shutdown();
}

#[test]
fn connection_cap_sheds_with_structured_error() {
    let server = SummaryServer::bind(
        "127.0.0.1:0",
        build_service(),
        ServerConfig {
            workers: 1,
            queue_capacity: 4,
            max_connections: 2,
            request_timeout: Duration::from_secs(10),
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Two idle connections occupy the cap (accepted in connect order).
    let _c1 = TcpStream::connect(addr).unwrap();
    let _c2 = TcpStream::connect(addr).unwrap();
    let c3 = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(c3);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let reply: ServerReply = serde_json::from_str(&line).unwrap();
    let err = reply.error.expect("third connection must be shed");
    assert_eq!(err.kind, "overloaded");
    assert_eq!(reply.seq, 0);
    // The capped connection is closed after the error line.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "expected EOF");

    let stats = server.shutdown();
    assert!(stats.shed >= 1);
    assert_eq!(stats.active_connections, 0);
}

#[test]
fn graceful_shutdown_drains_inflight_requests_and_joins() {
    let server = SummaryServer::bind(
        "127.0.0.1:0",
        build_service(),
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            max_connections: 8,
            request_timeout: Duration::from_secs(60),
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // A client with a slow cold request in flight when shutdown begins.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"{\"schema\":\"xmark\",\"algorithm\":\"coverage\",\"k\":6}\n")
        .unwrap();
    stream.flush().unwrap();
    // Give the connection thread time to read the line; shutdown must
    // then wait for the answer to go out rather than cutting it off.
    std::thread::sleep(Duration::from_millis(100));

    let shutdown = std::thread::spawn(move || server.shutdown());

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let reply: ServerReply = serde_json::from_str(&line).unwrap();
    assert!(
        reply.ok.is_some(),
        "in-flight request must be answered during graceful shutdown: {line}"
    );

    let stats = shutdown.join().expect("shutdown panicked");
    assert_eq!(stats.served, 1);
    assert_eq!(stats.active_connections, 0);

    // The listener is gone: new connections are refused or immediately
    // closed without service.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            let _ = s.write_all(b"{\"k\":1}\n");
            let mut r = BufReader::new(s);
            let mut l = String::new();
            assert_eq!(r.read_line(&mut l).unwrap_or(0), 0, "no service after shutdown");
        }
    }
}
