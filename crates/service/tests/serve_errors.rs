//! Request-resolution error paths of [`SummaryService::handle`]: unknown
//! schema names, the ambiguous default when several schemas are
//! registered, malformed request payloads, and out-of-range `k`.

use schema_summary_datasets::{tpch, xmark};
use schema_summary_service::{ServiceError, SummaryRequest, SummaryService};
use std::sync::Arc;

fn service_with(names: &[&str]) -> SummaryService {
    let service = SummaryService::default();
    for &name in names {
        match name {
            "xmark" => {
                let (g, s, _) = xmark::schema(1.0);
                service.register_named(name, Arc::new(g), Arc::new(s));
            }
            "tpch" => {
                let (g, s, _) = tpch::schema(1.0);
                service.register_named(name, Arc::new(g), Arc::new(s));
            }
            other => panic!("unknown fixture '{other}'"),
        }
    }
    service
}

#[test]
fn unknown_schema_name_is_reported_with_the_name() {
    let service = service_with(&["xmark"]);
    let err = service
        .handle(&SummaryRequest {
            schema: Some("nope".into()),
            ..Default::default()
        })
        .unwrap_err();
    match err {
        ServiceError::UnknownSchema(name) => assert_eq!(name, "nope"),
        other => panic!("expected UnknownSchema, got {other}"),
    }
}

#[test]
fn defaulting_is_ambiguous_with_two_schemas_registered() {
    let service = service_with(&["xmark", "tpch"]);
    let err = service.handle(&SummaryRequest::default()).unwrap_err();
    match err {
        ServiceError::BadRequest(msg) => {
            assert!(msg.contains("2 are registered"), "message: {msg}")
        }
        other => panic!("expected BadRequest, got {other}"),
    }
    // Naming either schema resolves the ambiguity.
    for name in ["xmark", "tpch"] {
        service
            .handle(&SummaryRequest {
                schema: Some(name.into()),
                k: Some(2),
                ..Default::default()
            })
            .unwrap_or_else(|e| panic!("named request '{name}' must succeed: {e}"));
    }
}

#[test]
fn defaulting_with_no_schema_is_a_bad_request() {
    let service = SummaryService::default();
    assert!(matches!(
        service.handle(&SummaryRequest::default()),
        Err(ServiceError::BadRequest(_))
    ));
}

#[test]
fn zero_and_oversized_k_are_algorithm_errors_not_panics() {
    let service = service_with(&["xmark"]);
    for k in [0, usize::MAX, 10_000] {
        let err = service
            .handle(&SummaryRequest {
                schema: Some("xmark".into()),
                k: Some(k),
                ..Default::default()
            })
            .unwrap_err();
        assert!(matches!(err, ServiceError::Algo(_)), "k={k}: {err}");
    }
    // Errors are not cached: a sane request right after still works.
    let served = service
        .handle(&SummaryRequest {
            schema: Some("xmark".into()),
            k: Some(3),
            ..Default::default()
        })
        .unwrap();
    assert_eq!(served.result.k, 3);
    assert_eq!(service.cache_stats().entries, 1);
}

#[test]
fn malformed_request_lines_fail_to_parse_but_valid_ones_follow() {
    // The driver protocol: each line parses independently, so one bad
    // line cannot poison the stream.
    let bad = serde_json::from_str::<SummaryRequest>("{not json");
    assert!(bad.is_err());
    let good: SummaryRequest =
        serde_json::from_str("{\"schema\":\"xmark\",\"algorithm\":\"balance\",\"k\":2}").unwrap();
    let service = service_with(&["xmark"]);
    assert!(service.handle(&good).is_ok());
}
