//! Concurrency guarantees: N threads issuing mixed summarize requests
//! against one service instance get results identical to a single-threaded
//! run, and the cache counters account for every request.

use schema_summary_algo::Algorithm;
use schema_summary_datasets::{tpch, xmark};
use schema_summary_service::{ServiceConfig, SummaryService};
use std::sync::Arc;

const ALGORITHMS: [Algorithm; 3] = [
    Algorithm::MaxImportance,
    Algorithm::MaxCoverage,
    Algorithm::Balance,
];

fn build_service() -> (SummaryService, Vec<schema_summary_core::SchemaFingerprint>) {
    let service = SummaryService::default();
    let (xg, xs, _) = xmark::schema(1.0);
    let (tg, ts, _) = tpch::schema(1.0);
    let fps = vec![
        service.register_named("xmark", Arc::new(xg), Arc::new(xs)),
        service.register_named("tpch", Arc::new(tg), Arc::new(ts)),
    ];
    (service, fps)
}

#[test]
fn concurrent_mixed_requests_match_single_threaded() {
    let (reference, fps) = build_service();

    // The full mixed workload: every (schema, algorithm, k) combination.
    let requests: Vec<(schema_summary_core::SchemaFingerprint, Algorithm, usize)> = fps
        .iter()
        .flat_map(|&fp| {
            ALGORITHMS
                .iter()
                .flat_map(move |&alg| (1..=6).map(move |k| (fp, alg, k)))
        })
        .collect();

    // Single-threaded reference answers.
    let expected: Vec<Vec<schema_summary_core::ElementId>> = requests
        .iter()
        .map(|&(fp, alg, k)| {
            reference
                .summarize(fp, alg, k)
                .unwrap()
                .result
                .selection
                .clone()
        })
        .collect();

    // Fresh service, hammered by N threads, each running the whole
    // workload rotated to a different starting offset so cold computations
    // race on every key.
    let (service, _) = build_service();
    let service = Arc::new(service);
    let requests = Arc::new(requests);
    let expected = Arc::new(expected);
    const THREADS: usize = 8;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let requests = Arc::clone(&requests);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let n = requests.len();
                for i in 0..n {
                    let idx = (i + t * n / THREADS) % n;
                    let (fp, alg, k) = requests[idx];
                    let served = service.summarize(fp, alg, k).unwrap();
                    assert_eq!(
                        served.result.selection, expected[idx],
                        "thread {t}: {alg:?} k={k} diverged from single-threaded run"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }

    let stats = service.cache_stats();
    let total = (THREADS * requests.len()) as u64;
    // Every request is either a hit or a miss — nothing lost, nothing
    // double-counted.
    assert_eq!(stats.hits + stats.misses, total);
    // Single-flight: each distinct key is computed exactly once, no
    // matter how many threads race on it cold.
    assert_eq!(stats.misses, requests.len() as u64);
    // Capacity (default 1024) is far above the working set: no evictions,
    // and every distinct key stays resident.
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.entries, requests.len());
    assert_eq!(stats.schemas, 2);
}

#[test]
fn identical_cold_requests_are_computed_exactly_once() {
    // N threads released simultaneously onto the same cold key: the
    // single-flight leader computes, everyone else waits and shares the
    // answer — exactly one miss, N-1 hits, one shared allocation.
    let (service, fps) = build_service();
    let service = Arc::new(service);
    let fp = fps[0];
    const THREADS: usize = 8;
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service.summarize(fp, Algorithm::Balance, 4).unwrap().result
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &results[1..] {
        assert!(Arc::ptr_eq(&results[0], r), "all threads share one result");
    }
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1, "stampede: cold key computed more than once");
    assert_eq!(stats.hits, (THREADS - 1) as u64);
    assert_eq!(stats.entries, 1);
}

#[test]
fn concurrent_requests_under_eviction_pressure_stay_correct() {
    // A cache that can hold almost nothing still must serve correct
    // answers — only slower.
    let (reference, fps) = build_service();
    let requests: Vec<(schema_summary_core::SchemaFingerprint, Algorithm, usize)> = fps
        .iter()
        .flat_map(|&fp| (1..=5).map(move |k| (fp, Algorithm::Balance, k)))
        .collect();
    let expected: Vec<_> = requests
        .iter()
        .map(|&(fp, alg, k)| {
            reference
                .summarize(fp, alg, k)
                .unwrap()
                .result
                .selection
                .clone()
        })
        .collect();

    let service = SummaryService::new(ServiceConfig {
        cache_capacity: 2,
        cache_shards: 1,
        ..Default::default()
    });
    let (xg, xs, _) = xmark::schema(1.0);
    let (tg, ts, _) = tpch::schema(1.0);
    service.register_named("xmark", Arc::new(xg), Arc::new(xs));
    service.register_named("tpch", Arc::new(tg), Arc::new(ts));

    let service = Arc::new(service);
    let requests = Arc::new(requests);
    let expected = Arc::new(expected);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let service = Arc::clone(&service);
            let requests = Arc::clone(&requests);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                for round in 0..3 {
                    for (idx, &(fp, alg, k)) in requests.iter().enumerate() {
                        let served = service.summarize(fp, alg, k).unwrap();
                        assert_eq!(
                            served.result.selection, expected[idx],
                            "thread {t} round {round}: {alg:?} k={k}"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let stats = service.cache_stats();
    assert_eq!(stats.hits + stats.misses, (4 * 3 * 10) as u64);
    assert!(stats.evictions > 0, "capacity 2 must evict under 10 keys");
    assert!(stats.entries <= 2);
}
