//! The acceptance bar for the serving layer: answering a repeated XMark
//! summary request from the warm cache must be at least 5× faster than the
//! cold path that computes importance, matrices, and dominance.

use schema_summary_algo::Algorithm;
use schema_summary_datasets::xmark;
use schema_summary_service::SummaryService;
use std::sync::Arc;
use std::time::Instant;

#[test]
fn warm_requests_are_at_least_5x_faster_than_cold() {
    let (graph, stats, _) = xmark::schema(1.0);
    let graph = Arc::new(graph);
    let stats = Arc::new(stats);

    let service = SummaryService::default();
    let fp = service.register(Arc::clone(&graph), Arc::clone(&stats));

    let started = Instant::now();
    let cold = service.summarize(fp, Algorithm::Balance, 10).unwrap();
    let cold_time = started.elapsed();
    assert!(!cold.from_cache);

    const WARM_REQUESTS: u32 = 100;
    let started = Instant::now();
    for _ in 0..WARM_REQUESTS {
        let warm = service.summarize(fp, Algorithm::Balance, 10).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.result.selection, cold.result.selection);
    }
    let warm_time = started.elapsed() / WARM_REQUESTS;

    // The cold path runs the importance fixpoint plus all-pairs path
    // enumeration; the warm path is a sharded hash lookup. In practice the
    // gap is orders of magnitude — 5× leaves generous headroom for noisy
    // CI machines.
    assert!(
        cold_time >= warm_time * 5,
        "cold {cold_time:?} vs warm {warm_time:?}: speedup below 5x"
    );
}
